//! `timemask` — masking timing errors on speed-paths in logic circuits.
//!
//! A from-scratch Rust reproduction of Choudhury & Mohanram, *"Masking
//! timing errors on speed-paths in logic circuits"* (DATE 2009),
//! including every substrate the paper depends on: Boolean machinery
//! and BDDs ([`logic`]), netlists / cell library / synthesis
//! ([`netlist`]), static timing analysis ([`sta`]), functional and
//! event-driven timing simulation ([`sim`]), the three SPCF engines of
//! §3 ([`spcf`]), the error-masking synthesis of §4 ([`masking`]), and
//! the §2.1 runtime applications ([`monitor`]). Deterministic
//! computation budgets, the typed [`TmError`], and the synthesis
//! degradation ladder live in [`resilience`] (DESIGN.md §7).
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use timemask::masking::{synthesize, verify, MaskingOptions};
//! use timemask::netlist::{circuits::comparator2, library::lsi10k_like};
//!
//! // The paper's Fig. 2 comparator, mapped on an lsi10k-like library.
//! let circuit = comparator2(Arc::new(lsi10k_like()));
//!
//! // Synthesize the non-intrusive error-masking circuit.
//! let mut result = synthesize(&circuit, MaskingOptions::default());
//! assert!(result.design.is_protected());
//!
//! // 100% masking of speed-path timing errors, verified exactly.
//! assert!(verify(&mut result).all_ok());
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tm_logic as logic;
pub use tm_masking as masking;
pub use tm_monitor as monitor;
pub use tm_netlist as netlist;
pub use tm_resilience as resilience;
pub use tm_sim as sim;
pub use tm_spcf as spcf;
pub use tm_sta as sta;
pub use tm_telemetry as telemetry;

pub use tm_masking::{synthesize, MaskingOptions, MaskingResult};
pub use tm_netlist::Delay;
pub use tm_resilience::{Budget, TmError, TmResult};
