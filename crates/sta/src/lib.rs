//! Static timing analysis for technology-mapped netlists.
//!
//! Provides the timing quantities the paper's flow consumes:
//!
//! - worst-case **arrival times** per net and the **critical path delay**
//!   `Δ` of the design;
//! - **required times** and **slack** against a target arrival time
//!   `Δ_y` (e.g. `0.9·Δ` when protecting speed-paths within 10 % of the
//!   critical path, §3);
//! - the set of **critical primary outputs** (outputs where speed-paths
//!   terminate, §4) and **critical gates** (negative slack — the static
//!   marking the node-based SPCF baseline of ref \[22\] relies on);
//! - exact **path enumeration** above a delay threshold, with
//!   arrival-time pruning (used by diagnostics and by tests that
//!   cross-check the SPCF engines).
//!
//! Per-gate delay *scale factors* model aging and process variation:
//! wearout experiments inflate the factors of speed-path gates and re-run
//! the same analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use tm_netlist::netlist::Driver;
use tm_netlist::{Delay, GateId, NetId, Netlist};

/// One structural path from a primary input to a primary output.
#[derive(Clone, Debug)]
pub struct TimingPath {
    /// Nets along the path, primary input first, output net last.
    pub nets: Vec<NetId>,
    /// The gates traversed, paired with the input pin the path enters
    /// through; `gates.len() == nets.len() - 1`.
    pub gates: Vec<(GateId, usize)>,
    /// Total pin-to-pin delay of the path.
    pub delay: Delay,
}

/// Result of bounded path enumeration.
#[derive(Clone, Debug)]
pub struct PathEnumeration {
    /// The discovered paths, longest first.
    pub paths: Vec<TimingPath>,
    /// Whether the enumeration stopped early at the path limit.
    pub truncated: bool,
}

/// A static timing analysis view over a netlist.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use tm_netlist::{circuits::comparator2, library::lsi10k_like, Delay};
/// use tm_sta::Sta;
///
/// let nl = comparator2(Arc::new(lsi10k_like()));
/// let sta = Sta::new(&nl);
/// assert_eq!(sta.critical_path_delay(), Delay::new(7.0));
/// // Speed-paths within 10% of Δ terminate at the single output.
/// let critical = sta.critical_outputs(Delay::new(6.3));
/// assert_eq!(critical.len(), 1);
/// ```
#[derive(Debug)]
pub struct Sta<'a> {
    netlist: &'a Netlist,
    /// Per-gate delay multiplier (aging/variation model).
    scale: Vec<f64>,
    arrivals: Vec<Delay>,
}

impl<'a> Sta<'a> {
    /// Analysis with nominal (1.0×) gate delays.
    pub fn new(netlist: &'a Netlist) -> Self {
        Self::with_scale(netlist, vec![1.0; netlist.num_gates()])
    }

    /// Analysis with per-gate delay multipliers (index by
    /// `GateId::index`).
    ///
    /// # Panics
    ///
    /// Panics if `scale.len()` differs from the gate count or any factor
    /// is not finite and positive.
    pub fn with_scale(netlist: &'a Netlist, scale: Vec<f64>) -> Self {
        assert_eq!(scale.len(), netlist.num_gates(), "one scale factor per gate");
        assert!(
            scale.iter().all(|s| s.is_finite() && *s > 0.0),
            "scale factors must be finite and positive"
        );
        let mut sta = Sta { netlist, scale, arrivals: Vec::new() };
        sta.arrivals = sta.compute_arrivals();
        sta
    }

    /// The netlist under analysis.
    pub fn netlist(&self) -> &'a Netlist {
        self.netlist
    }

    /// Effective delay of `gate` input pin `pin` (library delay × the
    /// gate's scale factor).
    pub fn pin_delay(&self, gate: GateId, pin: usize) -> Delay {
        let g = self.netlist.gate(gate);
        let cell = self.netlist.library().cell(g.cell());
        cell.pin_delay(pin) * self.scale[gate.index()]
    }

    fn compute_arrivals(&self) -> Vec<Delay> {
        let mut arr = vec![Delay::ZERO; self.netlist.num_nets()];
        for (gid, g) in self.netlist.gates() {
            let mut worst = Delay::ZERO;
            for (pin, &inp) in g.inputs().iter().enumerate() {
                worst = worst.max(arr[inp.index()] + self.pin_delay(gid, pin));
            }
            arr[g.output().index()] = worst;
        }
        arr
    }

    /// Worst-case arrival time of every net (inputs arrive at time 0);
    /// index by `NetId::index`.
    pub fn arrivals(&self) -> &[Delay] {
        &self.arrivals
    }

    /// Arrival time at one net.
    pub fn arrival(&self, net: NetId) -> Delay {
        self.arrivals[net.index()]
    }

    /// The critical path delay `Δ`: the worst arrival over all primary
    /// outputs.
    pub fn critical_path_delay(&self) -> Delay {
        self.netlist
            .outputs()
            .iter()
            .map(|&o| self.arrivals[o.index()])
            .fold(Delay::ZERO, Delay::max)
    }

    /// Required times per net against a target arrival at every primary
    /// output. Nets driving nothing observable get an infinite required
    /// time.
    pub fn required(&self, target: Delay) -> Vec<Delay> {
        let mut req = vec![Delay::new(f64::INFINITY); self.netlist.num_nets()];
        for &o in self.netlist.outputs() {
            req[o.index()] = req[o.index()].min(target);
        }
        // Reverse topological order = reverse gate order.
        for (gid, g) in self.netlist.gates().collect::<Vec<_>>().into_iter().rev() {
            let out_req = req[g.output().index()];
            if !out_req.is_finite() {
                continue;
            }
            for (pin, &inp) in g.inputs().iter().enumerate() {
                let need = out_req - self.pin_delay(gid, pin);
                req[inp.index()] = req[inp.index()].min(need);
            }
        }
        req
    }

    /// Slack per net against a target: `required − arrival`. Negative
    /// slack means the net lies on a speed-path violating the target.
    pub fn slack(&self, target: Delay) -> Vec<Delay> {
        self.required(target)
            .into_iter()
            .zip(&self.arrivals)
            .map(|(r, &a)| if r.is_finite() { r - a } else { Delay::new(f64::INFINITY) })
            .collect()
    }

    /// Primary outputs where at least one path longer than the target
    /// terminates — the paper's *critical outputs* (§4: an output with
    /// slack greater than `Δ − Δ_y` is not critical).
    pub fn critical_outputs(&self, target: Delay) -> Vec<NetId> {
        self.netlist
            .outputs()
            .iter()
            .copied()
            .filter(|&o| self.arrivals[o.index()] > target)
            .collect()
    }

    /// Per-gate static criticality against the target: `true` when the
    /// gate's output net has negative slack. This is exactly the static
    /// marking the node-based SPCF algorithm \[22\] performs before its
    /// topological pass.
    pub fn critical_gates(&self, target: Delay) -> Vec<bool> {
        let slack = self.slack(target);
        self.netlist
            .gates()
            .map(|(_, g)| {
                let s = slack[g.output().index()];
                s.is_finite() && s < Delay::ZERO
            })
            .collect()
    }

    /// The single worst path terminating at `output`, reconstructed by
    /// walking maximal-arrival fanins backward.
    ///
    /// # Panics
    ///
    /// Panics if `output` is not a net of this netlist.
    pub fn worst_path(&self, output: NetId) -> TimingPath {
        let mut nets = vec![output];
        let mut gates: Vec<(GateId, usize)> = Vec::new();
        let mut cur = output;
        while let Driver::Gate(gid) = self.netlist.driver(cur) {
            let g = self.netlist.gate(gid);
            // Constant generators (zero-input cells) terminate the path.
            let Some((pin, &inp)) = g
                .inputs()
                .iter()
                .enumerate()
                .max_by(|(p1, &i1), (p2, &i2)| {
                    let a1 = self.arrivals[i1.index()] + self.pin_delay(gid, *p1);
                    let a2 = self.arrivals[i2.index()] + self.pin_delay(gid, *p2);
                    a1.units().total_cmp(&a2.units())
                })
            else {
                break;
            };
            gates.push((gid, pin));
            nets.push(inp);
            cur = inp;
        }
        nets.reverse();
        gates.reverse();
        TimingPath { nets, gates, delay: self.arrivals[output.index()] }
    }

    /// Enumerates **every** structural path to `output` whose delay
    /// strictly exceeds `threshold`, up to `limit` paths.
    ///
    /// Arrival times prune the search exactly: a prefix is abandoned as
    /// soon as no completion can exceed the threshold, so the
    /// enumeration visits only viable prefixes. `truncated` is set if
    /// the limit stopped the search early.
    pub fn enumerate_paths(&self, output: NetId, threshold: Delay, limit: usize) -> PathEnumeration {
        let mut result = Vec::new();
        let mut truncated = false;
        // Suffix stack: (net, suffix delay from net to output, partial
        // path in reverse).
        struct Frame {
            net: NetId,
            suffix: Delay,
            gates_rev: Vec<(GateId, usize)>,
            nets_rev: Vec<NetId>,
        }
        let mut stack = vec![Frame {
            net: output,
            suffix: Delay::ZERO,
            gates_rev: Vec::new(),
            nets_rev: vec![output],
        }];
        while let Some(frame) = stack.pop() {
            if result.len() >= limit {
                truncated = true;
                break;
            }
            // Prune: the best completion through this net is its arrival.
            if self.arrivals[frame.net.index()] + frame.suffix <= threshold {
                continue;
            }
            match self.netlist.driver(frame.net) {
                Driver::PrimaryInput => {
                    if frame.suffix > threshold {
                        let mut nets = frame.nets_rev.clone();
                        nets.reverse();
                        let mut gates = frame.gates_rev.clone();
                        gates.reverse();
                        result.push(TimingPath { nets, gates, delay: frame.suffix });
                    }
                }
                Driver::Gate(gid) => {
                    let g = self.netlist.gate(gid);
                    for (pin, &inp) in g.inputs().iter().enumerate() {
                        let mut gates_rev = frame.gates_rev.clone();
                        gates_rev.push((gid, pin));
                        let mut nets_rev = frame.nets_rev.clone();
                        nets_rev.push(inp);
                        stack.push(Frame {
                            net: inp,
                            suffix: frame.suffix + self.pin_delay(gid, pin),
                            gates_rev,
                            nets_rev,
                        });
                    }
                }
            }
        }
        result.sort_by(|a, b| b.delay.units().total_cmp(&a.delay.units()));
        PathEnumeration { paths: result, truncated }
    }

    /// Count of structural paths to `output` with delay strictly above
    /// `threshold` (exact unless it exceeds `limit`).
    pub fn count_paths_above(&self, output: NetId, threshold: Delay, limit: usize) -> (usize, bool) {
        let e = self.enumerate_paths(output, threshold, limit);
        (e.paths.len(), e.truncated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tm_netlist::circuits::{comparator2, ripple_adder};
    use tm_netlist::library::lsi10k_like;

    fn comparator() -> Netlist {
        comparator2(Arc::new(lsi10k_like()))
    }

    #[test]
    fn comparator_delta_is_seven() {
        let nl = comparator();
        let sta = Sta::new(&nl);
        assert_eq!(sta.critical_path_delay(), Delay::new(7.0));
    }

    #[test]
    fn comparator_speed_paths() {
        let nl = comparator();
        let sta = Sta::new(&nl);
        let target = Delay::new(6.3);
        // Exactly the two 7-unit paths through the inverters (Fig. 2a).
        let e = sta.enumerate_paths(nl.outputs()[0], target, 100);
        assert!(!e.truncated);
        assert_eq!(e.paths.len(), 2);
        for p in &e.paths {
            assert_eq!(p.delay, Delay::new(7.0));
            // Both start at b inputs through an inverter.
            let start = p.nets[0];
            let name = nl.net_name(start);
            assert!(name == "b0" || name == "b1", "unexpected start {name}");
            assert_eq!(p.gates.len() + 1, p.nets.len());
        }
    }

    #[test]
    fn required_and_slack_signs() {
        let nl = comparator();
        let sta = Sta::new(&nl);
        let target = Delay::new(6.3);
        let slack = sta.slack(target);
        // Inverter outputs nb0/nb1 lie on 7-delay paths: negative slack.
        let nb0 = nl.find_net("nb0").unwrap();
        assert!(slack[nb0.index()] < Delay::ZERO);
        // a1's longest use is via t3→t4→y (6 units): slack 0.3.
        let a1 = nl.find_net("a1").unwrap();
        assert!(slack[a1.index()] > Delay::ZERO);
        assert!(slack[a1.index()] < Delay::new(1.0));
        // With a relaxed target everything is positive.
        let relaxed = sta.slack(Delay::new(10.0));
        assert!(relaxed.iter().all(|s| !s.is_finite() || *s >= Delay::ZERO));
    }

    #[test]
    fn critical_gates_match_negative_slack() {
        let nl = comparator();
        let sta = Sta::new(&nl);
        let crit = sta.critical_gates(Delay::new(6.3));
        let names: Vec<&str> = nl
            .gates()
            .filter(|(gid, _)| crit[gid.index()])
            .map(|(_, g)| nl.net_name(g.output()))
            .collect();
        assert!(names.contains(&"nb0"));
        assert!(names.contains(&"nb1"));
        assert!(names.contains(&"t4"));
        assert!(names.contains(&"y"));
        // t1 only lies on paths of ≤ 5 units: not critical.
        assert!(!names.contains(&"t1"));
    }

    #[test]
    fn worst_path_reconstruction() {
        let nl = comparator();
        let sta = Sta::new(&nl);
        let p = sta.worst_path(nl.outputs()[0]);
        assert_eq!(p.delay, Delay::new(7.0));
        assert_eq!(p.nets.len(), p.gates.len() + 1);
        // Consistency: pin delays along the path sum to the path delay.
        let total: Delay = p.gates.iter().map(|&(g, pin)| sta.pin_delay(g, pin)).sum();
        assert_eq!(total, p.delay);
    }

    #[test]
    fn scaling_slows_gates() {
        let nl = comparator();
        let mut scale = vec![1.0; nl.num_gates()];
        // Slow the first inverter by 50%.
        scale[0] = 1.5;
        let aged = Sta::with_scale(&nl, scale);
        assert_eq!(aged.critical_path_delay(), Delay::new(7.5));
        // Nominal unaffected.
        assert_eq!(Sta::new(&nl).critical_path_delay(), Delay::new(7.0));
    }

    #[test]
    fn adder_critical_path_grows_with_width() {
        let lib = Arc::new(lsi10k_like());
        let a4 = ripple_adder(lib.clone(), 4);
        let a8 = ripple_adder(lib.clone(), 8);
        let d4 = Sta::new(&a4).critical_path_delay();
        let d8 = Sta::new(&a8).critical_path_delay();
        assert!(d8 > d4);
    }

    #[test]
    fn enumeration_truncates_at_limit() {
        let lib = Arc::new(lsi10k_like());
        let nl = ripple_adder(lib, 8);
        let sta = Sta::new(&nl);
        let cout = *nl.outputs().last().unwrap();
        let e = sta.enumerate_paths(cout, Delay::ZERO, 5);
        assert!(e.truncated);
        assert_eq!(e.paths.len(), 5);
    }

    #[test]
    fn enumeration_complete_without_limit() {
        let nl = comparator();
        let sta = Sta::new(&nl);
        // All paths to y: a1→t1→y, b1→nb1→t1→y, a0→t2→t4→y,
        // b0→nb0→t2→t4→y, a1→t3→t4→y, b1→nb1→t3→t4→y = 6 paths.
        let e = sta.enumerate_paths(nl.outputs()[0], Delay::ZERO, 1000);
        assert!(!e.truncated);
        assert_eq!(e.paths.len(), 6);
        // Sorted longest first.
        assert!(e.paths.windows(2).all(|w| w[0].delay >= w[1].delay));
    }

    #[test]
    fn critical_outputs_by_target() {
        let nl = comparator();
        let sta = Sta::new(&nl);
        assert_eq!(sta.critical_outputs(Delay::new(6.3)).len(), 1);
        assert_eq!(sta.count_paths_above(nl.outputs()[0], Delay::new(6.3), 100).0, 2);
        assert!(sta.critical_outputs(Delay::new(7.0)).is_empty());
    }
}
