//! Trace-buffer-based in-system silicon debug (paper §2.1).
//!
//! Trace buffers store a limited number of signal snapshots per debug
//! session. The paper proposes gating capture on the masking circuit's
//! indicator outputs — "by storing debug information only when `y_i` is
//! vulnerable to timing errors, the window size of the trace buffers can
//! be expanded significantly". [`DebugSession`] replays a workload
//! through the masked design under both capture policies and reports the
//! observation-window expansion.

use tm_masking::MaskedDesign;
use tm_netlist::Delay;
use tm_resilience::{Context, TmError, TmResult};
use tm_sim::timing::TimingSim;
use tm_sta::Sta;

/// When the trace buffer stores a snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CapturePolicy {
    /// Store every cycle (the conventional baseline).
    Always,
    /// Store only cycles where some indicator `e` sampled 1 — the
    /// paper's selective capture.
    OnSpeedPath,
}

/// One stored trace entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// Cycle index the snapshot was taken at.
    pub cycle: usize,
    /// Sampled values of the traced outputs (raw `y`, `ỹ`, `e` per
    /// protected output, in protection order).
    pub signals: Vec<bool>,
}

/// A bounded trace buffer.
#[derive(Clone, Debug)]
pub struct TraceBuffer {
    capacity: usize,
    entries: Vec<TraceEntry>,
    dropped: u64,
}

impl TraceBuffer {
    /// A buffer holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace buffer needs nonzero capacity");
        TraceBuffer { capacity, entries: Vec::with_capacity(capacity), dropped: 0 }
    }

    /// Stores an entry; returns `false` when full. A rejected entry is
    /// counted in [`TraceBuffer::dropped`] — overflow is data loss, not
    /// a silent no-op.
    pub fn push(&mut self, entry: TraceEntry) -> bool {
        if self.entries.len() >= self.capacity {
            self.dropped += 1;
            return false;
        }
        self.entries.push(entry);
        true
    }

    /// Whether the buffer is full.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Stored entries in capture order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Buffer capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries rejected because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Result of one debug session.
#[derive(Clone, Debug)]
pub struct SessionResult {
    /// The filled (or partially filled) buffer.
    pub buffer: TraceBuffer,
    /// Number of workload cycles observed before the buffer filled (the
    /// whole workload if it never filled) — the observation window.
    pub window: usize,
    /// Total cycles in the workload.
    pub total_cycles: usize,
    /// Capture-worthy cycles lost to buffer overflow — nonzero means
    /// the session's record of the workload is incomplete.
    pub dropped: u64,
}

/// A debug session over a masked design.
#[derive(Debug)]
pub struct DebugSession<'a> {
    design: &'a MaskedDesign,
    clock: Delay,
}

impl<'a> DebugSession<'a> {
    /// A session clocked at the original circuit's critical path delay.
    pub fn new(design: &'a MaskedDesign) -> Self {
        let clock = Sta::new(&design.original).critical_path_delay();
        DebugSession { design, clock }
    }

    /// Overrides the clock period.
    pub fn with_clock(design: &'a MaskedDesign, clock: Delay) -> Self {
        DebugSession { design, clock }
    }

    /// Replays `vectors` (with per-gate delay factors `scale` over the
    /// combined netlist) and captures into a buffer of `capacity` under
    /// the given policy.
    ///
    /// # Errors
    ///
    /// Returns [`TmError`] when the design is unprotected (nothing to
    /// trace), `capacity` is zero, `scale` does not have one finite
    /// positive entry per gate, or a vector's arity is wrong.
    pub fn run(
        &self,
        scale: &[f64],
        vectors: &[Vec<bool>],
        capacity: usize,
        policy: CapturePolicy,
    ) -> TmResult<SessionResult> {
        if !self.design.is_protected() {
            return Err(TmError::invalid_input("debug session needs protected outputs"));
        }
        if capacity == 0 {
            return Err(TmError::invalid_input("trace buffer needs nonzero capacity"));
        }
        let _span = tm_telemetry::span!("monitor.trace.session", cycles = vectors.len());
        let (instrumented, probes) = self.design.instrumented();
        if scale.len() != instrumented.num_gates() {
            return Err(TmError::invalid_input(format!(
                "one scale factor per gate: got {}, netlist has {}",
                scale.len(),
                instrumented.num_gates()
            )));
        }
        if let Some(&bad) = scale.iter().find(|f| !f.is_finite() || **f <= 0.0) {
            return Err(TmError::invalid_input(format!(
                "aging factor must be finite and positive, got {bad}"
            )));
        }
        let arity = instrumented.inputs().len();
        if let Some(bad) = vectors.iter().find(|v| v.len() != arity) {
            return Err(TmError::invalid_input(format!(
                "workload vector arity {} does not match {} primary inputs",
                bad.len(),
                arity
            )));
        }
        let sim = TimingSim::with_scale(&instrumented, scale.to_vec());
        let mut buffer = TraceBuffer::new(capacity);
        let mut window = 0usize;
        let mut overflowed = false;
        let total_cycles = vectors.len().saturating_sub(1);
        for (cycle, pair) in vectors.windows(2).enumerate() {
            let r = sim.transition(&pair[0], &pair[1], self.clock);
            let mut signals = Vec::with_capacity(probes.len() * 3);
            let mut vulnerable = false;
            for p in &probes {
                let e = r.sampled[p.e_position];
                signals.push(r.sampled[p.raw_position]);
                signals.push(r.sampled[p.ytilde_position]);
                signals.push(e);
                vulnerable |= e;
            }
            let capture = match policy {
                CapturePolicy::Always => true,
                CapturePolicy::OnSpeedPath => vulnerable,
            };
            // The window ends at the first overflow, but the rest of
            // the workload still runs so every lost capture is counted
            // (a full buffer used to end the session silently).
            if capture && !buffer.push(TraceEntry { cycle, signals }) && !overflowed {
                window = cycle;
                overflowed = true;
            }
            if !overflowed {
                window = cycle + 1;
            }
        }
        tm_telemetry::counter_add("monitor.trace.captured", buffer.entries().len() as u64);
        tm_telemetry::counter_add("monitor.trace.dropped", buffer.dropped());
        let dropped = buffer.dropped();
        Ok(SessionResult { buffer, window, total_cycles, dropped })
    }

    /// Runs both policies on the same workload and returns the window
    /// expansion factor `selective_window / always_window`.
    ///
    /// # Errors
    ///
    /// Propagates [`DebugSession::run`] errors.
    pub fn window_expansion(
        &self,
        scale: &[f64],
        vectors: &[Vec<bool>],
        capacity: usize,
    ) -> TmResult<f64> {
        let always = self
            .run(scale, vectors, capacity, CapturePolicy::Always)
            .context("window expansion: always-capture baseline")?;
        let selective = self
            .run(scale, vectors, capacity, CapturePolicy::OnSpeedPath)
            .context("window expansion: selective capture")?;
        Ok(selective.window as f64 / always.window.max(1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tm_masking::{synthesize, uniform_aging, MaskingOptions};
    use tm_netlist::circuits::comparator2;
    use tm_netlist::library::lsi10k_like;
    use tm_sim::patterns::random_vectors;

    fn setup() -> tm_masking::MaskedDesign {
        let nl = comparator2(Arc::new(lsi10k_like()));
        synthesize(&nl, MaskingOptions::default()).design
    }

    #[test]
    fn buffer_respects_capacity() {
        let mut b = TraceBuffer::new(2);
        assert!(b.push(TraceEntry { cycle: 0, signals: vec![true] }));
        assert_eq!(b.dropped(), 0);
        assert!(b.push(TraceEntry { cycle: 1, signals: vec![false] }));
        assert!(!b.push(TraceEntry { cycle: 2, signals: vec![true] }));
        assert!(!b.push(TraceEntry { cycle: 3, signals: vec![true] }));
        assert!(b.is_full());
        assert_eq!(b.entries().len(), 2);
        assert_eq!(b.capacity(), 2);
        assert_eq!(b.dropped(), 2, "every rejected entry must be counted");
    }

    #[test]
    fn overflow_session_reports_every_lost_capture() {
        let _scope = tm_telemetry::Scope::enter();
        let design = setup();
        let session = DebugSession::new(&design);
        let scale = uniform_aging(&design, 1.0).unwrap();
        let vectors = random_vectors(4, 100, 7);
        let r = session.run(&scale, &vectors, 10, CapturePolicy::Always).unwrap();
        // 99 cycles, 10 stored: the other 89 are lost and say so.
        assert_eq!(r.window, 10);
        assert_eq!(r.total_cycles, 99);
        assert_eq!(r.dropped, 89);
        assert_eq!(r.buffer.dropped(), 89);
        let snap = tm_telemetry::snapshot();
        assert_eq!(snap.counter("monitor.trace.captured"), Some(10));
        assert_eq!(snap.counter("monitor.trace.dropped"), Some(89));
        assert_eq!(snap.span("monitor.trace.session").unwrap().calls, 1);
    }

    #[test]
    fn always_capture_window_equals_capacity() {
        let design = setup();
        let session = DebugSession::new(&design);
        let scale = uniform_aging(&design, 1.0).unwrap();
        let vectors = random_vectors(4, 100, 7);
        let r = session.run(&scale, &vectors, 10, CapturePolicy::Always).unwrap();
        assert_eq!(r.window, 10);
        assert!(r.buffer.is_full());
    }

    #[test]
    fn selective_capture_expands_window() {
        let design = setup();
        let session = DebugSession::new(&design);
        let scale = uniform_aging(&design, 1.0).unwrap();
        let vectors = random_vectors(4, 200, 13);
        let expansion = session.window_expansion(&scale, &vectors, 10).unwrap();
        // The comparator's e fires on 10/16 of the input space under the
        // simplified indicator — but only *sampled* activity counts; the
        // window must expand or at worst match.
        assert!(expansion >= 1.0, "expansion {expansion}");
    }

    #[test]
    fn selective_entries_are_vulnerable_cycles() {
        let design = setup();
        let session = DebugSession::new(&design);
        let scale = uniform_aging(&design, 1.0).unwrap();
        let vectors = random_vectors(4, 120, 19);
        let r = session.run(&scale, &vectors, 50, CapturePolicy::OnSpeedPath).unwrap();
        for entry in r.buffer.entries() {
            // Every third signal is an e probe; at least one fired.
            let any_e = entry.signals.iter().skip(2).step_by(3).any(|&e| e);
            assert!(any_e, "captured a non-vulnerable cycle");
        }
    }

    #[test]
    fn small_workload_never_fills() {
        let design = setup();
        let session = DebugSession::new(&design);
        let scale = uniform_aging(&design, 1.0).unwrap();
        let vectors = random_vectors(4, 5, 29);
        let r = session.run(&scale, &vectors, 100, CapturePolicy::Always).unwrap();
        assert!(!r.buffer.is_full());
        assert_eq!(r.window, 4);
        assert_eq!(r.total_cycles, 4);
    }
}
