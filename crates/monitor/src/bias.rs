//! Adaptive speed-up of critical gates using body bias — the second of
//! the paper's §6 future-research directions, implemented.
//!
//! The wearout log (`e ∧ (y ⊕ ỹ)`, §2.1) tells the system *when*
//! speed-paths have degraded; forward body bias tells it what to do
//! about it: lower the threshold voltage of the speed-path gates,
//! buying delay back at a leakage cost. [`AdaptiveBiasController`]
//! closes the loop: it watches the masked-error rate epoch by epoch and
//! applies one bias step whenever the rate crosses a threshold — while
//! the masking circuit guarantees nothing escapes in the meantime.

use tm_masking::MaskedDesign;
use tm_sim::aging::AgingModel;
use tm_sim::timing::TimingSim;
use tm_sta::Sta;

/// Configuration of the closed-loop bias controller.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveBiasController {
    /// Masked-error rate that triggers a bias step.
    pub trigger_rate: f64,
    /// Per-step delay speed-up of the biased (speed-path) gates, as a
    /// multiplier < 1 (e.g. 0.95 = 5 % faster).
    pub speedup_per_step: f64,
    /// Maximum number of bias steps the hardware supports.
    pub max_steps: usize,
    /// Relative leakage-power cost per bias step (reported, not
    /// simulated).
    pub leakage_per_step: f64,
}

impl Default for AdaptiveBiasController {
    fn default() -> Self {
        AdaptiveBiasController {
            trigger_rate: 0.01,
            speedup_per_step: 0.94,
            max_steps: 3,
            leakage_per_step: 0.05,
        }
    }
}

/// One epoch of a closed-loop run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BiasEpoch {
    /// Epoch index.
    pub epoch: usize,
    /// Aging stress during the epoch.
    pub stress: f64,
    /// Bias steps active during the epoch.
    pub bias_steps: usize,
    /// Cycles simulated.
    pub cycles: usize,
    /// Masked-error log events (`e ∧ (y ⊕ ỹ)`).
    pub detected_errors: usize,
    /// Errors that escaped masking (must stay 0 inside the protected
    /// band).
    pub escapes: usize,
}

impl BiasEpoch {
    /// Masked-error rate of the epoch.
    pub fn error_rate(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.detected_errors as f64 / self.cycles as f64
        }
    }
}

/// Result of a closed-loop lifetime run.
#[derive(Clone, Debug)]
pub struct BiasRun {
    /// Per-epoch log.
    pub epochs: Vec<BiasEpoch>,
    /// Bias steps applied by the end of the run.
    pub final_bias_steps: usize,
    /// Total relative leakage cost at the end of the run.
    pub leakage_cost: f64,
}

impl AdaptiveBiasController {
    /// Runs a closed-loop lifetime simulation: aging stress sweeps
    /// linearly to `max_stress` across `epochs`; after each epoch whose
    /// masked-error rate exceeds the trigger, one bias step is applied
    /// to the speed-path gates of the original circuit.
    ///
    /// `workload` supplies the vectors replayed each epoch (the same
    /// workload each epoch, so rate changes reflect aging and bias, not
    /// input drift).
    ///
    /// # Panics
    ///
    /// Panics if the design is unprotected, the workload has fewer than
    /// two vectors, or `epochs == 0`.
    pub fn run(
        &self,
        design: &MaskedDesign,
        model: &AgingModel,
        epochs: usize,
        max_stress: f64,
        workload: &[Vec<bool>],
    ) -> BiasRun {
        assert!(design.is_protected(), "bias control needs protected outputs");
        assert!(workload.len() >= 2 && epochs > 0, "degenerate configuration");

        let sta = Sta::new(&design.original);
        let delta = sta.critical_path_delay();
        let clock = delta;
        let orig_critical = sta.critical_gates(delta * 0.9);
        let (instrumented, probes) = design.instrumented();
        let (orig_range, _, _) = design.combined_partition();
        let stressed: Vec<bool> = (0..instrumented.num_gates())
            .map(|g| orig_range.contains(&g) && orig_critical.get(g).copied().unwrap_or(false))
            .collect();
        let lib = instrumented.library().clone();

        let mut bias_steps = 0usize;
        let mut log = Vec::with_capacity(epochs);
        for epoch in 0..epochs {
            let stress = if epochs == 1 {
                max_stress
            } else {
                max_stress * epoch as f64 / (epochs - 1) as f64
            };
            let mut scale = model.scale_factors(&instrumented, &stressed, stress);
            // Forward body bias speeds up exactly the stressed gates.
            let bias = self.speedup_per_step.powi(bias_steps as i32);
            for (g, s) in scale.iter_mut().enumerate() {
                if stressed[g] {
                    *s = (*s * bias).max(0.4);
                }
            }
            let sim = TimingSim::with_scale(&instrumented, scale.clone());
            let mut sample_times = vec![clock; instrumented.outputs().len()];
            for p in &design.protected {
                if let tm_netlist::Driver::Gate(mux) = instrumented.driver(p.masked) {
                    let d =
                        lib.cell(instrumented.gate(mux).cell()).max_delay() * scale[mux.index()];
                    sample_times[p.position] = clock + d;
                }
            }

            let mut stat = BiasEpoch {
                epoch,
                stress,
                bias_steps,
                cycles: 0,
                detected_errors: 0,
                escapes: 0,
            };
            for pair in workload.windows(2) {
                let r = sim.transition_with_sample_times(&pair[0], &pair[1], &sample_times);
                stat.cycles += 1;
                let mut detected = false;
                let mut escaped = false;
                for p in &probes {
                    if r.sampled[p.e_position]
                        && r.sampled[p.raw_position] != r.sampled[p.ytilde_position]
                    {
                        detected = true;
                    }
                    if r.sampled[p.masked_position] != r.settled[p.masked_position] {
                        escaped = true;
                    }
                }
                if detected {
                    stat.detected_errors += 1;
                }
                if escaped {
                    stat.escapes += 1;
                }
            }
            let rate = stat.error_rate();
            log.push(stat);
            if rate > self.trigger_rate && bias_steps < self.max_steps {
                bias_steps += 1;
            }
        }

        BiasRun {
            epochs: log,
            final_bias_steps: bias_steps,
            leakage_cost: bias_steps as f64 * self.leakage_per_step,
        }
    }
}

/// Reference run with adaptation disabled (max_steps = 0), for
/// comparisons.
pub fn unadapted_run(
    design: &MaskedDesign,
    model: &AgingModel,
    epochs: usize,
    max_stress: f64,
    workload: &[Vec<bool>],
) -> BiasRun {
    let controller = AdaptiveBiasController { max_steps: 0, ..Default::default() };
    controller.run(design, model, epochs, max_stress, workload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tm_masking::{speedpath_patterns, synthesize, MaskingOptions};
    use tm_netlist::circuits::comparator2;
    use tm_netlist::library::lsi10k_like;
    use tm_sim::patterns::random_vectors;

    fn setup() -> (tm_masking::MaskingResult, Vec<Vec<bool>>) {
        let nl = comparator2(Arc::new(lsi10k_like()));
        let result = synthesize(&nl, MaskingOptions::default());
        let mut workload = random_vectors(4, 400, 77);
        for (k, s) in speedpath_patterns(&result, 100, 3).into_iter().enumerate() {
            workload.insert((k * 3 + 1) % workload.len(), s);
        }
        (result, workload)
    }

    #[test]
    fn adaptation_reduces_error_rate() {
        let (result, workload) = setup();
        let model = AgingModel { jitter: 0.0, ..AgingModel::default() };
        let controller = AdaptiveBiasController::default();
        let adapted = controller.run(&result.design, &model, 8, 0.9, &workload);
        let frozen = unadapted_run(&result.design, &model, 8, 0.9, &workload);

        assert!(adapted.final_bias_steps > 0, "controller never triggered: {adapted:?}");
        // No escapes in either mode while inside the protected band.
        assert!(adapted.epochs.iter().all(|e| e.escapes == 0));
        assert!(frozen.epochs.iter().all(|e| e.escapes == 0));
        // Total masked errors drop with adaptation.
        let total = |r: &BiasRun| r.epochs.iter().map(|e| e.detected_errors).sum::<usize>();
        assert!(
            total(&adapted) < total(&frozen),
            "adaptation did not help: {} vs {}",
            total(&adapted),
            total(&frozen)
        );
        assert!(adapted.leakage_cost > 0.0);
    }

    #[test]
    fn fresh_silicon_never_triggers() {
        let (result, workload) = setup();
        let model = AgingModel { jitter: 0.0, ..AgingModel::default() };
        let run = AdaptiveBiasController::default().run(&result.design, &model, 3, 0.0, &workload);
        assert_eq!(run.final_bias_steps, 0);
        assert_eq!(run.leakage_cost, 0.0);
        assert!(run.epochs.iter().all(|e| e.detected_errors == 0));
    }
}
