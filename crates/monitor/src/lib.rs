//! Runtime applications of error-masking circuits (paper §2.1):
//! wearout prediction and trace-buffer-based silicon debug.
//!
//! The masking circuit's indicator outputs are runtime sensors for
//! free: `e_i` says "a speed-path is being exercised right now" and
//! `e_i ∧ (y_i ⊕ ỹ_i)` says "a timing error just occurred (and was
//! masked)". This crate turns those signals into the paper's two
//! applications:
//!
//! - [`wearout`]: epoch-based masked-error logging over an aging sweep
//!   plus an offline predictor of wearout onset.
//! - [`trace`]: selective trace-buffer capture gated on `e_i`,
//!   measuring how much the debug observation window expands.
//!
//! The paper's §6 future-work directions and §2 alternatives are also
//! implemented here:
//!
//! - [`dvs`]: aggressive dynamic voltage scaling under masking — how
//!   much lower the supply can go when speed-path errors are masked.
//! - [`bias`]: adaptive body-bias speed-up of critical gates, driven in
//!   closed loop by the wearout log.
//! - [`razor`]: a Razor-style double-sampling detect-and-rollback
//!   baseline, including its bounded detection window and throughput
//!   cost.
//! - [`telescopic`]: variable-latency (telescopic-unit) operation —
//!   the SPCF's original application (refs \[27, 28\]) driven by the
//!   masking circuit's indicators.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use tm_masking::{synthesize, MaskingOptions};
//! use tm_monitor::wearout::{run_lifetime, LifetimeConfig, WearoutPredictor};
//! use tm_netlist::{circuits::comparator2, library::lsi10k_like};
//!
//! let nl = comparator2(Arc::new(lsi10k_like()));
//! let design = synthesize(&nl, MaskingOptions::default()).design;
//! let stats = run_lifetime(&design, &LifetimeConfig {
//!     epochs: 4,
//!     max_stress: 0.9,
//!     ..Default::default()
//! }).expect("valid lifetime config");
//! let assessment = WearoutPredictor::default().assess(&stats);
//! // Aged silicon shows masked errors; fresh silicon shows none.
//! assert_eq!(stats[0].detected_errors, 0);
//! assert!(stats.last().unwrap().detected_errors > 0);
//! assert!(assessment.onset_epoch.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bias;
pub mod dvs;
pub mod razor;
pub mod telescopic;
pub mod trace;
pub mod wearout;

pub use bias::{unadapted_run, AdaptiveBiasController, BiasEpoch, BiasRun};
pub use dvs::{
    DvsAnalyticPoint, DvsAnalyticSweep, DvsExplorer, DvsPoint, DvsSweep, VoltageModel,
};
pub use razor::{RazorModel, RazorOutcome};
pub use telescopic::{evaluate_telescopic, TelescopicOutcome};
pub use trace::{CapturePolicy, DebugSession, SessionResult, TraceBuffer, TraceEntry};
pub use wearout::{run_lifetime, EpochStats, LifetimeConfig, WearoutAssessment, WearoutPredictor};
