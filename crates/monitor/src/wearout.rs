//! Wearout detection through masked-error logging (paper §2.1).
//!
//! "As speed-paths slow down due to wearout and aging, timing errors at
//! the critical outputs start to increase. With the proposed
//! error-masking circuit in place, these timing errors will be masked.
//! However, the information that a timing error occurred, indicated by
//! `e_i(y_i ⊕ ỹ_i)`, can be recorded and analyzed offline periodically."
//!
//! [`run_lifetime`] plays a workload through the aged masked design
//! epoch by epoch, logging exactly that hardware-observable signal, and
//! [`WearoutPredictor`] does the offline analysis: detecting rate
//! crossings and extrapolating the onset of wearout.

use tm_masking::MaskedDesign;
use tm_netlist::Delay;
use tm_resilience::{TmError, TmResult};
use tm_sim::aging::AgingModel;
use tm_sim::timing::TimingSim;
use tm_sta::Sta;

/// Counters logged during one lifetime epoch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0 = fresh silicon).
    pub epoch: usize,
    /// Aging stress level applied during this epoch (0..=1).
    pub stress: f64,
    /// Clock cycles simulated.
    pub cycles: usize,
    /// Cycles where any indicator `e` sampled 1 (speed-path activity).
    pub activations: usize,
    /// Cycles where the hardware log `e ∧ (y ⊕ ỹ)` fired — masked
    /// timing errors.
    pub detected_errors: usize,
    /// Cycles where a masked output itself mis-sampled (escapes; 0 while
    /// aging stays inside the protected band).
    pub escapes: usize,
}

impl EpochStats {
    /// Masked-error rate: detected errors per cycle.
    pub fn error_rate(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.detected_errors as f64 / self.cycles as f64
        }
    }
}

/// Configuration of a lifetime simulation.
#[derive(Clone, Debug)]
pub struct LifetimeConfig {
    /// Number of epochs simulated, stress swept linearly 0 → `max_stress`.
    pub epochs: usize,
    /// Final stress level (1.0 = the aging model's full degradation).
    pub max_stress: f64,
    /// Clock period; defaults to the original circuit's `Δ` when `None`.
    pub clock: Option<Delay>,
    /// Workload vectors per epoch.
    pub vectors_per_epoch: usize,
    /// Workload seed (each epoch derives its own).
    pub seed: u64,
    /// The delay-degradation model.
    pub model: AgingModel,
    /// Optional pool of speed-path-sensitizing vectors (e.g. from
    /// `tm_masking::inject::speedpath_patterns`) mixed into the random
    /// workload. On deep circuits the SPCF is a thin slice of the input
    /// space, so purely random workloads rarely exercise speed-paths.
    pub stress_pool: Vec<Vec<bool>>,
    /// Probability a workload vector is drawn from `stress_pool`.
    pub pool_bias: f64,
}

impl Default for LifetimeConfig {
    fn default() -> Self {
        LifetimeConfig {
            epochs: 12,
            max_stress: 1.0,
            clock: None,
            vectors_per_epoch: 300,
            seed: 0x11FE,
            model: AgingModel { jitter: 0.0, ..AgingModel::default() },
            stress_pool: Vec::new(),
            pool_bias: 0.25,
        }
    }
}

/// Simulates the masked design across its lifetime, logging the
/// hardware-observable wearout signal per epoch.
///
/// Gates of the original circuit that lie on speed-paths age at the
/// model's speed-path rate; all other gates (including the masking
/// circuit, which rides on its ≥ 20 % slack) age at the base rate.
///
/// # Errors
///
/// Returns [`TmError`] when the design has no protected outputs
/// (nothing to monitor) or the config is degenerate (zero epochs,
/// fewer than two vectors per epoch, or a non-finite stress level).
pub fn run_lifetime(design: &MaskedDesign, config: &LifetimeConfig) -> TmResult<Vec<EpochStats>> {
    if !design.is_protected() {
        return Err(TmError::invalid_input("wearout monitoring needs protected outputs"));
    }
    if config.epochs < 1 || config.vectors_per_epoch < 2 {
        return Err(TmError::invalid_input(format!(
            "degenerate lifetime config: {} epochs, {} vectors per epoch (need >= 1 and >= 2)",
            config.epochs, config.vectors_per_epoch
        )));
    }
    if !config.max_stress.is_finite() || config.max_stress < 0.0 {
        return Err(TmError::invalid_input(format!(
            "max_stress must be finite and non-negative, got {}",
            config.max_stress
        )));
    }

    let sta = Sta::new(&design.original);
    let delta = sta.critical_path_delay();
    let clock = config.clock.unwrap_or(delta);
    let target = delta * 0.9;
    let orig_critical = sta.critical_gates(target);

    let (instrumented, probes) = design.instrumented();
    // Stress map over the combined gate space: original speed-path gates
    // marked, everything else base-rate.
    let (orig_range, _, _) = design.combined_partition();
    let stressed: Vec<bool> = (0..instrumented.num_gates())
        .map(|g| orig_range.contains(&g) && orig_critical.get(g).copied().unwrap_or(false))
        .collect();

    let lib = instrumented.library().clone();
    let mut stats = Vec::with_capacity(config.epochs);
    for epoch in 0..config.epochs {
        let stress = if config.epochs == 1 {
            config.max_stress
        } else {
            config.max_stress * epoch as f64 / (config.epochs - 1) as f64
        };
        let scale = config.model.scale_factors(&instrumented, &stressed, stress);
        let sim = TimingSim::with_scale(&instrumented, scale.clone());

        // Per-output sample times: MUXed outputs capture one aged MUX
        // delay after the edge (see `tm_masking::inject`).
        let mut sample_times = vec![clock; instrumented.outputs().len()];
        for p in &design.protected {
            if let tm_netlist::Driver::Gate(mux) = instrumented.driver(p.masked) {
                let d = lib.cell(instrumented.gate(mux).cell()).max_delay() * scale[mux.index()];
                sample_times[p.position] = clock + d;
            }
        }

        let epoch_seed = config.seed ^ (epoch as u64).wrapping_mul(0x9E3779B97F4A7C15);
        let mut vectors = tm_sim::patterns::random_vectors(
            instrumented.inputs().len(),
            config.vectors_per_epoch,
            epoch_seed,
        );
        if !config.stress_pool.is_empty() && config.pool_bias > 0.0 {
            use tm_testkit::rng::Rng;
            let mut rng = Rng::seed_from_u64(epoch_seed ^ 0xB1A5);
            for v in vectors.iter_mut() {
                if rng.gen_bool(config.pool_bias.clamp(0.0, 1.0)) {
                    *v = config.stress_pool[rng.gen_range(0..config.stress_pool.len())].clone();
                }
            }
        }
        let mut s = EpochStats {
            epoch,
            stress,
            cycles: 0,
            activations: 0,
            detected_errors: 0,
            escapes: 0,
        };
        for pair in vectors.windows(2) {
            let r = sim.transition_with_sample_times(&pair[0], &pair[1], &sample_times);
            s.cycles += 1;
            let mut activated = false;
            let mut detected = false;
            let mut escaped = false;
            for p in &probes {
                let e = r.sampled[p.e_position];
                let raw = r.sampled[p.raw_position];
                let yt = r.sampled[p.ytilde_position];
                if e {
                    activated = true;
                    if raw != yt {
                        detected = true; // the hardware log: e ∧ (y ⊕ ỹ)
                    }
                }
                if r.sampled[p.masked_position] != r.settled[p.masked_position] {
                    escaped = true;
                }
            }
            if activated {
                s.activations += 1;
            }
            if detected {
                s.detected_errors += 1;
            }
            if escaped {
                s.escapes += 1;
            }
        }
        stats.push(s);
    }
    Ok(stats)
}

/// Offline analyzer of epoch logs: detects the onset of wearout and
/// extrapolates when the error rate will cross a failure threshold.
#[derive(Clone, Copy, Debug)]
pub struct WearoutPredictor {
    /// Error rate above which wearout is considered to have set on.
    pub onset_threshold: f64,
    /// Error rate considered end-of-life for extrapolation.
    pub failure_threshold: f64,
}

impl Default for WearoutPredictor {
    fn default() -> Self {
        WearoutPredictor { onset_threshold: 0.005, failure_threshold: 0.10 }
    }
}

/// Result of offline wearout analysis.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WearoutAssessment {
    /// First epoch whose error rate crossed the onset threshold.
    pub onset_epoch: Option<usize>,
    /// Linear-regression slope of the error rate per epoch.
    pub rate_slope: f64,
    /// Extrapolated epoch where the failure threshold will be crossed.
    pub predicted_failure_epoch: Option<usize>,
}

impl WearoutPredictor {
    /// Analyzes an epoch log.
    pub fn assess(&self, stats: &[EpochStats]) -> WearoutAssessment {
        let onset_epoch = stats
            .iter()
            .find(|s| s.error_rate() > self.onset_threshold)
            .map(|s| s.epoch);

        // Least-squares slope of error rate over epoch index.
        let n = stats.len() as f64;
        let slope = if stats.len() >= 2 {
            let mean_x = stats.iter().map(|s| s.epoch as f64).sum::<f64>() / n;
            let mean_y = stats.iter().map(|s| s.error_rate()).sum::<f64>() / n;
            let num: f64 = stats
                .iter()
                .map(|s| (s.epoch as f64 - mean_x) * (s.error_rate() - mean_y))
                .sum();
            let den: f64 = stats.iter().map(|s| (s.epoch as f64 - mean_x).powi(2)).sum();
            if den > 0.0 {
                num / den
            } else {
                0.0
            }
        } else {
            0.0
        };

        let predicted_failure_epoch = if slope > 0.0 {
            let last = stats.last().expect("nonempty");
            let remaining = self.failure_threshold - last.error_rate();
            if remaining <= 0.0 {
                Some(last.epoch)
            } else {
                Some(last.epoch + (remaining / slope).ceil() as usize)
            }
        } else {
            None
        };

        WearoutAssessment { onset_epoch, rate_slope: slope, predicted_failure_epoch }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tm_masking::{synthesize, MaskingOptions};
    use tm_netlist::circuits::comparator2;
    use tm_netlist::library::lsi10k_like;

    fn masked_comparator() -> MaskedDesign {
        let nl = comparator2(Arc::new(lsi10k_like()));
        synthesize(&nl, MaskingOptions::default()).design
    }

    #[test]
    fn error_rate_grows_with_age_and_nothing_escapes() {
        let design = masked_comparator();
        let config = LifetimeConfig {
            epochs: 6,
            // Stay within the protected band: speed-path degradation
            // 12% × 0.9 stress ≈ 10.8% ≤ 1/0.9 − 1.
            max_stress: 0.9,
            vectors_per_epoch: 250,
            ..Default::default()
        };
        let stats = run_lifetime(&design, &config).unwrap();
        assert_eq!(stats.len(), 6);
        // Fresh silicon: no detected errors.
        assert_eq!(stats[0].detected_errors, 0);
        // Aged silicon: errors detected, none escape masking.
        let last = stats.last().unwrap();
        assert!(last.detected_errors > 0, "{stats:?}");
        for s in &stats {
            assert_eq!(s.escapes, 0, "epoch {} leaked", s.epoch);
            assert!(s.activations >= s.detected_errors);
        }
    }

    #[test]
    fn predictor_finds_onset_and_extrapolates() {
        let design = masked_comparator();
        let config = LifetimeConfig { epochs: 8, max_stress: 0.9, ..Default::default() };
        let stats = run_lifetime(&design, &config).unwrap();
        let predictor = WearoutPredictor::default();
        let a = predictor.assess(&stats);
        assert!(a.onset_epoch.is_some(), "{stats:?}");
        assert!(a.rate_slope > 0.0);
        let f = a.predicted_failure_epoch.expect("positive slope extrapolates");
        assert!(f >= a.onset_epoch.unwrap());
    }

    #[test]
    fn predictor_quiet_on_fresh_silicon() {
        let design = masked_comparator();
        let config = LifetimeConfig { epochs: 3, max_stress: 0.0, ..Default::default() };
        let stats = run_lifetime(&design, &config).unwrap();
        let a = WearoutPredictor::default().assess(&stats);
        assert_eq!(a.onset_epoch, None);
        assert_eq!(a.predicted_failure_epoch, None);
    }

    #[test]
    fn deterministic_runs() {
        let design = masked_comparator();
        let config = LifetimeConfig { epochs: 3, max_stress: 0.5, ..Default::default() };
        assert_eq!(
            run_lifetime(&design, &config).unwrap(),
            run_lifetime(&design, &config).unwrap()
        );
    }

    #[test]
    fn degenerate_configs_are_errors_not_panics() {
        let design = masked_comparator();
        let bad_epochs = LifetimeConfig { epochs: 0, ..Default::default() };
        assert!(run_lifetime(&design, &bad_epochs).is_err());
        let bad_vectors = LifetimeConfig { vectors_per_epoch: 1, ..Default::default() };
        assert!(run_lifetime(&design, &bad_vectors).is_err());
        let bad_stress = LifetimeConfig { max_stress: f64::NAN, ..Default::default() };
        assert!(run_lifetime(&design, &bad_stress).is_err());
        let unprotected = MaskedDesign::unprotected(design.original.clone());
        let err = run_lifetime(&unprotected, &LifetimeConfig::default()).expect_err("unprotected");
        assert!(err.to_string().contains("protected"));
    }
}
