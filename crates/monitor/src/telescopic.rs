//! Telescopic-unit (variable-latency) operation — the SPCF's original
//! application (paper §3, refs \[27, 28\]), built on the masking
//! circuit's indicator outputs.
//!
//! A telescopic unit clocks at the *target* period `Δ_y < Δ` and takes
//! one extra cycle whenever a speed-path pattern arrives. The indicator
//! `e` is exactly the required hold signal: `Σ_y ⇒ e` guarantees every
//! pattern that needs the second cycle gets it, so correctness is
//! inherited from the masking synthesis. Throughput then trades against
//! the faster clock:
//!
//! ```text
//! speedup = Δ · cycles / (Δ_y · (cycles + stalls))
//! ```

use tm_masking::MaskedDesign;
use tm_netlist::Delay;
use tm_sim::timing::TimingSim;
use tm_sta::Sta;

/// Counters from a telescopic evaluation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TelescopicOutcome {
    /// Vector transitions evaluated.
    pub cycles: usize,
    /// Cycles where some indicator fired (second cycle taken).
    pub stalls: usize,
    /// Fast-clock period used (`Δ_y`).
    pub fast_clock: Delay,
    /// Baseline single-cycle period (`Δ`).
    pub base_clock: Delay,
    /// Cycles where a *single-cycle* sample at `Δ_y` would have been
    /// wrong and the indicator did not fire — must be zero (correctness
    /// of the variable-latency scheme).
    pub violations: usize,
}

impl TelescopicOutcome {
    /// Fraction of cycles taking the extra cycle.
    pub fn stall_rate(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.stalls as f64 / self.cycles as f64
        }
    }

    /// Wall-clock speedup over fixed single-cycle operation at `Δ`.
    pub fn speedup(&self) -> f64 {
        if self.cycles == 0 {
            1.0
        } else {
            (self.base_clock.units() * self.cycles as f64)
                / (self.fast_clock.units() * (self.cycles + self.stalls) as f64)
        }
    }
}

/// Evaluates variable-latency operation of a masked design: clock at
/// `Δ_y = target_fraction × Δ`, take a second cycle whenever `e` fires.
///
/// The indicator is sampled at the fast clock edge from the masking
/// circuit (which has ≥ 20 % slack over `Δ`, hence comfortably more
/// over `Δ_y`... its own arrival is checked against the fast period and
/// the function panics if the masking circuit cannot keep up).
///
/// # Panics
///
/// Panics if the design is unprotected or the masking circuit's own
/// critical path exceeds the fast clock (then telescopic operation at
/// this `target_fraction` is physically impossible).
pub fn evaluate_telescopic(
    design: &MaskedDesign,
    target_fraction: f64,
    vectors: &[Vec<bool>],
) -> TelescopicOutcome {
    assert!(design.is_protected(), "telescopic operation needs indicators");
    let delta = Sta::new(&design.original).critical_path_delay();
    let fast = delta * target_fraction;
    let mask_delay = Sta::new(&design.masking).critical_path_delay();
    assert!(
        mask_delay <= fast,
        "masking circuit ({mask_delay:?}) cannot keep up with the fast clock ({fast:?})"
    );

    let (instrumented, probes) = design.instrumented();
    let sim = TimingSim::new(&instrumented);
    let mut outcome = TelescopicOutcome {
        fast_clock: fast,
        base_clock: delta,
        ..Default::default()
    };
    for pair in vectors.windows(2) {
        let r = sim.transition(&pair[0], &pair[1], fast);
        outcome.cycles += 1;
        let mut stall = false;
        let mut violation = false;
        for p in &probes {
            let e = r.sampled[p.e_position];
            stall |= e;
            // Would the single-cycle raw sample have been wrong while e
            // stayed silent?
            if !e && r.sampled[p.raw_position] != r.settled[p.raw_position] {
                violation = true;
            }
        }
        if stall {
            outcome.stalls += 1;
        }
        if violation {
            outcome.violations += 1;
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tm_masking::{speedpath_patterns, synthesize, MaskingOptions};
    use tm_netlist::circuits::comparator2;
    use tm_netlist::library::lsi10k_like;
    use tm_sim::patterns::random_vectors;

    #[test]
    fn telescopic_is_correct_and_faster() {
        let nl = comparator2(Arc::new(lsi10k_like()));
        let result = synthesize(&nl, MaskingOptions::default());
        let mut workload = random_vectors(4, 500, 9);
        for (k, s) in speedpath_patterns(&result, 60, 2).into_iter().enumerate() {
            workload.insert((k * 5 + 2) % workload.len(), s);
        }
        let outcome = evaluate_telescopic(&result.design, 0.9, &workload);
        assert_eq!(outcome.violations, 0, "{outcome:?}");
        assert!(outcome.stalls > 0, "stress workload must exercise speed-paths");
        assert!(outcome.stall_rate() < 1.0);
        // Speedup > 1 as long as the stall rate is below Δ/Δ_y − 1 ≈ 11%.
        if outcome.stall_rate() < 0.11 {
            assert!(outcome.speedup() > 1.0, "{outcome:?}");
        }
    }

    #[test]
    fn no_speed_paths_means_no_stalls() {
        let nl = comparator2(Arc::new(lsi10k_like()));
        let result = synthesize(&nl, MaskingOptions::default());
        // A workload that never leaves the 0-pattern: no transitions
        // sensitize anything late.
        let workload = vec![vec![false; 4]; 50];
        let outcome = evaluate_telescopic(&result.design, 0.9, &workload);
        assert_eq!(outcome.violations, 0);
        // With a constant pattern the indicator is constant too: the
        // unit either always or never stalls — and stays correct either
        // way (speedup is workload-dependent, correctness is not).
        assert!(outcome.stall_rate() == 0.0 || outcome.stall_rate() == 1.0);
    }
}
