//! Aggressive dynamic voltage scaling under error masking — the first
//! of the paper's §6 future-research directions, implemented.
//!
//! Lowering V_DD saves quadratic energy but slows every gate; without
//! protection the supply can only drop until the *first* speed-path
//! misses the clock. With the error-masking circuit in place, timing
//! errors on speed-paths are hidden outright (no rollback), so the
//! supply can keep dropping until the protection band — speed-paths
//! within `1 − target_fraction` of `Δ` — is exhausted.
//! [`DvsExplorer`] sweeps the supply, replays a workload through the
//! timing-accurate simulator at each point, and reports the lowest safe
//! voltage with and without masking plus the resulting energy saving.

use tm_logic::Bdd;
use tm_masking::{inject_and_measure, MaskedDesign};
use tm_netlist::{Delay, Netlist};
use tm_resilience::{Budget, Context, TmError, TmResult};
use tm_sim::timing::TimingSim;
use tm_spcf::{Algorithm, WarmSession};
use tm_sta::Sta;

/// A first-order alpha-power-law delay/energy model for supply scaling.
///
/// Delay scales as `V / (V − V_th)^α` (normalized to 1 at `v_nominal`);
/// dynamic energy scales as `(V / V_nominal)²`.
#[derive(Clone, Copy, Debug)]
pub struct VoltageModel {
    /// Nominal supply (delay factor 1.0, energy factor 1.0).
    pub v_nominal: f64,
    /// Threshold voltage.
    pub v_threshold: f64,
    /// Velocity-saturation exponent α.
    pub alpha: f64,
}

impl Default for VoltageModel {
    fn default() -> Self {
        VoltageModel { v_nominal: 1.0, v_threshold: 0.3, alpha: 1.3 }
    }
}

impl VoltageModel {
    /// Gate-delay multiplier at supply `vdd` relative to nominal.
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is not above the threshold voltage.
    pub fn delay_factor(&self, vdd: f64) -> f64 {
        assert!(vdd > self.v_threshold, "supply must exceed threshold");
        let d = |v: f64| v / (v - self.v_threshold).powf(self.alpha);
        d(vdd) / d(self.v_nominal)
    }

    /// Dynamic-energy multiplier at supply `vdd` relative to nominal.
    pub fn energy_factor(&self, vdd: f64) -> f64 {
        (vdd / self.v_nominal).powi(2)
    }
}

/// One measured point of a DVS sweep.
#[derive(Clone, Copy, Debug)]
pub struct DvsPoint {
    /// Supply voltage.
    pub vdd: f64,
    /// Gate-delay multiplier at this supply.
    pub delay_factor: f64,
    /// Dynamic-energy multiplier at this supply.
    pub energy_factor: f64,
    /// Cycles where a *raw* (unmasked) output mis-sampled.
    pub raw_errors: usize,
    /// Cycles where a *masked* output mis-sampled (escapes).
    pub escapes: usize,
}

/// Result of a DVS exploration.
#[derive(Clone, Debug)]
pub struct DvsSweep {
    /// Measured points, highest supply first.
    pub points: Vec<DvsPoint>,
    /// Lowest supply with zero raw errors — the limit *without*
    /// masking.
    pub min_safe_unmasked: Option<f64>,
    /// Lowest supply with zero escapes — the limit *with* masking.
    pub min_safe_masked: Option<f64>,
}

impl DvsSweep {
    /// Relative dynamic-energy saving enabled by masking: energy at the
    /// masked limit vs energy at the unmasked limit (0.0 when masking
    /// buys nothing).
    pub fn energy_saving(&self, model: &VoltageModel) -> f64 {
        match (self.min_safe_masked, self.min_safe_unmasked) {
            (Some(m), Some(u)) if m < u => {
                1.0 - model.energy_factor(m) / model.energy_factor(u)
            }
            _ => 0.0,
        }
    }
}

/// Sweeps the supply voltage for a masked design.
#[derive(Clone, Debug)]
pub struct DvsExplorer {
    /// The voltage/delay/energy model.
    pub model: VoltageModel,
    /// Lowest supply to try.
    pub v_min: f64,
    /// Sweep step (volts).
    pub v_step: f64,
    /// Clock period; defaults to the original circuit's `Δ` when
    /// `None`.
    pub clock: Option<Delay>,
}

impl Default for DvsExplorer {
    fn default() -> Self {
        DvsExplorer { model: VoltageModel::default(), v_min: 0.80, v_step: 0.01, clock: None }
    }
}

impl DvsExplorer {
    /// Runs the sweep with the given workload vectors.
    ///
    /// # Errors
    ///
    /// Returns [`TmError`] when the design is unprotected, the sweep
    /// range is degenerate (including `v_min` at or below the model's
    /// threshold voltage), or a workload vector has the wrong arity.
    pub fn sweep(&self, design: &MaskedDesign, vectors: &[Vec<bool>]) -> TmResult<DvsSweep> {
        if !design.is_protected() {
            return Err(TmError::invalid_input("DVS exploration needs a protected design"));
        }
        if !(self.v_min < self.model.v_nominal) {
            return Err(TmError::invalid_input("sweep range is empty"));
        }
        if self.v_min <= self.model.v_threshold {
            return Err(TmError::invalid_input(format!(
                "v_min {} must exceed the threshold voltage {}",
                self.v_min, self.model.v_threshold
            )));
        }
        if !(self.v_step > 0.0) || !self.v_step.is_finite() {
            return Err(TmError::invalid_input(format!(
                "v_step must be finite and positive, got {}",
                self.v_step
            )));
        }
        let clock = self
            .clock
            .unwrap_or_else(|| Sta::new(&design.original).critical_path_delay());

        let mut points = Vec::new();
        let mut vdd = self.model.v_nominal;
        while vdd >= self.v_min - 1e-12 {
            let factor = self.model.delay_factor(vdd);
            let scale = vec![factor; design.combined.num_gates()];
            let outcome = inject_and_measure(design, &scale, clock, vectors)
                .context(format!("DVS sweep at vdd {vdd:.3}"))?;
            points.push(DvsPoint {
                vdd,
                delay_factor: factor,
                energy_factor: self.model.energy_factor(vdd),
                raw_errors: outcome.raw_errors,
                escapes: outcome.masked_errors,
            });
            vdd -= self.v_step;
        }

        // The lowest safe supply is the *contiguous* clean range walked
        // from nominal downward — operating below a failing point is
        // unsafe even if a lower point happens to measure clean.
        let mut min_safe_unmasked = None;
        for p in &points {
            if p.raw_errors == 0 {
                min_safe_unmasked = Some(p.vdd);
            } else {
                break;
            }
        }
        let mut min_safe_masked = None;
        for p in &points {
            if p.escapes == 0 {
                min_safe_masked = Some(p.vdd);
            } else {
                break;
            }
        }

        Ok(DvsSweep { points, min_safe_unmasked, min_safe_masked })
    }
}

/// One analytically characterized point of a DVS sweep: instead of
/// replaying a workload, the point is described by the short-path SPCF
/// at the *effective* target `Δ_eff = clock / delay_factor` — under a
/// uniform supply-induced slowdown, a pattern mis-samples exactly when
/// its nominal stabilization delay exceeds `Δ_eff`.
#[derive(Clone, Copy, Debug)]
pub struct DvsAnalyticPoint {
    /// Supply voltage.
    pub vdd: f64,
    /// Gate-delay multiplier at this supply.
    pub delay_factor: f64,
    /// Dynamic-energy multiplier at this supply.
    pub energy_factor: f64,
    /// The clock expressed in nominal-delay units (`clock /
    /// delay_factor`): the arrival-time budget a pattern must meet at
    /// this supply.
    pub effective_target: Delay,
    /// Outputs whose worst arrival exceeds the effective target.
    pub critical_outputs: usize,
    /// Fraction of the input space whose stabilization delay exceeds
    /// the effective target (union SPCF over all critical outputs);
    /// `0.0` means every pattern meets the clock at this supply.
    pub error_pattern_fraction: f64,
}

/// Result of an analytic (simulation-free) DVS exploration.
#[derive(Clone, Debug)]
pub struct DvsAnalyticSweep {
    /// Characterized points, highest supply first.
    pub points: Vec<DvsAnalyticPoint>,
    /// Lowest supply whose whole input space still meets the clock
    /// (contiguous from nominal) — the guaranteed-safe limit without
    /// masking, over *all* patterns rather than a sampled workload.
    pub min_safe_unmasked: Option<f64>,
}

impl DvsExplorer {
    /// Characterizes the sweep analytically with a **warm SPCF
    /// session**: one BDD manager and one short-path memo serve every
    /// supply point. Lower supplies mean larger delay factors and thus
    /// a *descending* ladder of effective targets, so each point only
    /// extends the memoized stabilization queries of the previous one
    /// (`Σ_y(Δ') ⊆ Σ_y(Δ)` for `Δ' ≥ Δ`).
    ///
    /// The result is workload-independent and conservative: a supply is
    /// reported safe only when *no* input pattern can miss the clock,
    /// whereas [`DvsExplorer::sweep`] can only observe the vectors it
    /// replays.
    ///
    /// # Errors
    ///
    /// Returns [`TmError`] when the sweep range is degenerate (same
    /// conditions as [`DvsExplorer::sweep`]).
    pub fn analytic_sweep(&self, netlist: &Netlist) -> TmResult<DvsAnalyticSweep> {
        if !(self.v_min < self.model.v_nominal) {
            return Err(TmError::invalid_input("sweep range is empty"));
        }
        if self.v_min <= self.model.v_threshold {
            return Err(TmError::invalid_input(format!(
                "v_min {} must exceed the threshold voltage {}",
                self.v_min, self.model.v_threshold
            )));
        }
        if !(self.v_step > 0.0) || !self.v_step.is_finite() {
            return Err(TmError::invalid_input(format!(
                "v_step must be finite and positive, got {}",
                self.v_step
            )));
        }
        let sta = Sta::new(netlist);
        let clock = self.clock.unwrap_or_else(|| sta.critical_path_delay());

        let mut bdd = Bdd::new(netlist.inputs().len().max(1));
        let mut session =
            WarmSession::new(Algorithm::ShortPath, netlist, &sta, &mut bdd, Budget::unlimited());
        let mut points = Vec::new();
        let mut vdd = self.model.v_nominal;
        while vdd >= self.v_min - 1e-12 {
            let factor = self.model.delay_factor(vdd);
            let effective_target = clock * (1.0 / factor);
            let spcf = session.retarget(effective_target);
            let union = spcf.union(session.bdd_mut());
            points.push(DvsAnalyticPoint {
                vdd,
                delay_factor: factor,
                energy_factor: self.model.energy_factor(vdd),
                effective_target,
                critical_outputs: spcf.outputs.len(),
                error_pattern_fraction: session.bdd().sat_fraction(union),
            });
            vdd -= self.v_step;
        }

        let mut min_safe_unmasked = None;
        for p in &points {
            if p.error_pattern_fraction == 0.0 {
                min_safe_unmasked = Some(p.vdd);
            } else {
                break;
            }
        }
        Ok(DvsAnalyticSweep { points, min_safe_unmasked })
    }
}

/// Evaluates an *unmasked* netlist at one supply (for baselines).
pub fn unmasked_errors_at(
    netlist: &tm_netlist::Netlist,
    model: &VoltageModel,
    vdd: f64,
    clock: Delay,
    vectors: &[Vec<bool>],
) -> usize {
    let factor = model.delay_factor(vdd);
    let sim = TimingSim::with_scale(netlist, vec![factor; netlist.num_gates()]);
    let mut errors = 0;
    for pair in vectors.windows(2) {
        if sim.transition(&pair[0], &pair[1], clock).has_error() {
            errors += 1;
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tm_masking::{synthesize, MaskingOptions};
    use tm_netlist::circuits::comparator2;
    use tm_netlist::library::lsi10k_like;
    use tm_sim::patterns::random_vectors;

    #[test]
    fn voltage_model_monotone() {
        let m = VoltageModel::default();
        assert!((m.delay_factor(1.0) - 1.0).abs() < 1e-12);
        assert!(m.delay_factor(0.9) > 1.0);
        assert!(m.delay_factor(0.8) > m.delay_factor(0.9));
        assert!(m.energy_factor(0.8) < 1.0);
    }

    #[test]
    fn masking_extends_the_safe_voltage_range() {
        let nl = comparator2(Arc::new(lsi10k_like()));
        let design = synthesize(&nl, MaskingOptions::default()).design;
        let vectors = random_vectors(4, 300, 4242);
        let explorer = DvsExplorer { v_min: 0.80, v_step: 0.02, ..Default::default() };
        let sweep = explorer.sweep(&design, &vectors).expect("valid sweep");
        let safe_u = sweep.min_safe_unmasked.expect("nominal must be safe");
        let safe_m = sweep.min_safe_masked.expect("nominal must be safe");
        assert!(
            safe_m < safe_u,
            "masking should tolerate a lower supply: masked {safe_m} vs unmasked {safe_u}"
        );
        let saving = sweep.energy_saving(&explorer.model);
        assert!(saving > 0.0, "no energy saving measured");
        // Sanity: points are ordered and the nominal point is clean.
        assert_eq!(sweep.points[0].raw_errors, 0);
        assert_eq!(sweep.points[0].escapes, 0);
    }

    #[test]
    #[should_panic(expected = "exceed threshold")]
    fn below_threshold_rejected() {
        VoltageModel::default().delay_factor(0.2);
    }

    #[test]
    fn analytic_sweep_is_monotone_and_conservative() {
        let nl = comparator2(Arc::new(lsi10k_like()));
        let explorer = DvsExplorer { v_min: 0.80, v_step: 0.02, ..Default::default() };
        let analytic = explorer.analytic_sweep(&nl).expect("valid sweep");
        // Nominal supply meets the clock for every pattern.
        assert_eq!(analytic.points[0].error_pattern_fraction, 0.0);
        // Lower supply ⇒ smaller effective target ⇒ the error-pattern
        // set only grows (Σ_y monotonicity through the warm session).
        for w in analytic.points.windows(2) {
            assert!(w[1].error_pattern_fraction >= w[0].error_pattern_fraction);
            assert!(w[1].effective_target < w[0].effective_target);
        }
        // The analytic limit covers all patterns, so it is at least as
        // cautious as the sampled-workload simulation.
        let design = synthesize(&nl, MaskingOptions::default()).design;
        let vectors = random_vectors(4, 300, 4242);
        let simulated = explorer.sweep(&design, &vectors).expect("valid sweep");
        let sim_safe = simulated.min_safe_unmasked.expect("nominal must be safe");
        let ana_safe = analytic.min_safe_unmasked.expect("nominal must be safe");
        assert!(
            ana_safe >= sim_safe - 1e-12,
            "analytic limit {ana_safe} must not be below the sampled limit {sim_safe}"
        );
    }
}
