//! A Razor-style detect-and-rollback baseline (the §2 alternative the
//! paper positions against, refs \[5–8\]).
//!
//! Razor-class schemes double-sample each output: the main latch at the
//! clock edge and a shadow latch one margin later. A mismatch flags a
//! timing error and triggers rollback/replay at a multi-cycle penalty.
//! Two structural weaknesses the paper calls out are modelled
//! faithfully:
//!
//! - **Bounded detection window**: a transition later than the shadow
//!   margin corrupts *both* samples identically — a silent error
//!   ("inability to detect errors due to late transitions outside the
//!   stability checking period").
//! - **Rollback cost**: every detection stalls the pipeline for the
//!   replay penalty, degrading throughput; masking pays area instead
//!   and keeps throughput at 1.0.

use tm_netlist::{Delay, Netlist};
use tm_sim::timing::TimingSim;

/// A Razor-style double-sampling error-detection model.
#[derive(Clone, Copy, Debug)]
pub struct RazorModel {
    /// Shadow-latch margin after the main clock edge.
    pub margin: Delay,
    /// Cycles lost per detected error (rollback + replay).
    pub rollback_penalty: usize,
}

impl Default for RazorModel {
    fn default() -> Self {
        RazorModel { margin: Delay::new(1.0), rollback_penalty: 5 }
    }
}

/// Counters from one Razor evaluation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RazorOutcome {
    /// Clock cycles simulated.
    pub cycles: usize,
    /// Cycles with a true timing error at some output (main sample ≠
    /// settled value).
    pub true_errors: usize,
    /// Cycles where the shadow comparison flagged a mismatch (recovered
    /// by rollback).
    pub detected: usize,
    /// True-error cycles the shadow missed — silent data corruption.
    pub undetected: usize,
    /// Total stall cycles spent on rollback/replay.
    pub rollback_cycles: usize,
}

impl RazorOutcome {
    /// Effective throughput: useful cycles over total (useful + stall).
    pub fn throughput(&self) -> f64 {
        let total = self.cycles + self.rollback_cycles;
        if total == 0 {
            1.0
        } else {
            self.cycles as f64 / total as f64
        }
    }

    /// Fraction of true errors the scheme silently missed.
    pub fn silent_error_fraction(&self) -> f64 {
        if self.true_errors == 0 {
            0.0
        } else {
            self.undetected as f64 / self.true_errors as f64
        }
    }
}

impl RazorModel {
    /// Replays a workload through the (unprotected) netlist with
    /// per-gate delay factors `scale` at clock period `clock`, double
    /// sampling every primary output.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatches.
    pub fn evaluate(
        &self,
        netlist: &Netlist,
        scale: &[f64],
        clock: Delay,
        vectors: &[Vec<bool>],
    ) -> RazorOutcome {
        let sim = TimingSim::with_scale(netlist, scale.to_vec());
        let n_out = netlist.outputs().len();
        let main_times = vec![clock; n_out];
        let shadow_times = vec![clock + self.margin; n_out];

        let mut outcome = RazorOutcome::default();
        for pair in vectors.windows(2) {
            let main = sim.transition_with_sample_times(&pair[0], &pair[1], &main_times);
            let shadow = sim.transition_with_sample_times(&pair[0], &pair[1], &shadow_times);
            outcome.cycles += 1;
            let mut any_true = false;
            let mut any_flag = false;
            let mut any_silent = false;
            for k in 0..n_out {
                let true_error = main.sampled[k] != main.settled[k];
                let flagged = main.sampled[k] != shadow.sampled[k];
                any_true |= true_error;
                any_flag |= flagged;
                any_silent |= true_error && !flagged;
            }
            if any_true {
                outcome.true_errors += 1;
            }
            if any_flag {
                outcome.detected += 1;
                outcome.rollback_cycles += self.rollback_penalty;
            }
            if any_silent {
                outcome.undetected += 1;
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tm_netlist::circuits::comparator2;
    use tm_netlist::library::lsi10k_like;
    use tm_sim::patterns::random_vectors;
    use tm_sta::Sta;

    fn setup() -> (Netlist, Delay, Vec<Vec<bool>>) {
        let nl = comparator2(Arc::new(lsi10k_like()));
        let clock = Sta::new(&nl).critical_path_delay();
        let vectors = random_vectors(4, 600, 5150);
        (nl, clock, vectors)
    }

    #[test]
    fn fresh_silicon_never_rolls_back() {
        let (nl, clock, vectors) = setup();
        let razor = RazorModel::default();
        let r = razor.evaluate(&nl, &vec![1.0; nl.num_gates()], clock, &vectors);
        assert_eq!(r.true_errors, 0);
        assert_eq!(r.detected, 0);
        assert_eq!(r.throughput(), 1.0);
    }

    #[test]
    fn moderate_aging_is_detected_at_a_throughput_cost() {
        let (nl, clock, vectors) = setup();
        // 8% aging: speed-paths land ~0.56 units late — inside a 1.0
        // margin, so every true error is caught, at a rollback cost.
        let razor = RazorModel { margin: Delay::new(1.0), rollback_penalty: 5 };
        let r = razor.evaluate(&nl, &vec![1.08; nl.num_gates()], clock, &vectors);
        assert!(r.true_errors > 0);
        assert_eq!(r.undetected, 0, "{r:?}");
        assert!(r.throughput() < 1.0);
    }

    #[test]
    fn late_transitions_outside_the_window_are_silent() {
        let (nl, clock, vectors) = setup();
        // 25% aging pushes the 7-unit paths 1.75 units late — beyond a
        // 1.0-unit shadow margin: both samples read the same stale
        // value and the error goes undetected (the paper's §1 critique).
        let razor = RazorModel { margin: Delay::new(1.0), rollback_penalty: 5 };
        let r = razor.evaluate(&nl, &vec![1.25; nl.num_gates()], clock, &vectors);
        assert!(r.true_errors > 0);
        assert!(r.undetected > 0, "expected silent errors: {r:?}");
        assert!(r.silent_error_fraction() > 0.0);
    }
}
