//! Aging / wearout delay-degradation models.
//!
//! The paper's wearout application (§2.1) watches speed-paths slow down
//! over the device lifetime. [`AgingModel`] turns a scalar *stress*
//! level (0 = fresh silicon, 1 = end of modelled life) into per-gate
//! delay scale factors consumable by `tm_sta::Sta::with_scale` and
//! `tm_sim::timing::TimingSim::with_scale`: all gates degrade a little,
//! gates on speed-paths degrade more (they switch most and see the
//! worst NBTI/HCI stress), and optional per-gate jitter models process
//! variation.

use tm_testkit::rng::Rng;
use tm_netlist::Netlist;

/// A delay-degradation model.
#[derive(Clone, Copy, Debug)]
pub struct AgingModel {
    /// Fractional slowdown of every gate at full stress (e.g. 0.05 =
    /// 5 %).
    pub base_degradation: f64,
    /// Additional fractional slowdown of stressed (speed-path) gates at
    /// full stress.
    pub speedpath_degradation: f64,
    /// Half-width of uniform per-gate jitter applied at full stress.
    pub jitter: f64,
    /// Seed for the jitter.
    pub seed: u64,
}

impl Default for AgingModel {
    fn default() -> Self {
        AgingModel {
            base_degradation: 0.03,
            speedpath_degradation: 0.12,
            jitter: 0.01,
            seed: 0xA61A,
        }
    }
}

impl AgingModel {
    /// Computes per-gate delay scale factors at the given stress level.
    ///
    /// `stressed[g]` marks gates that carry speed-paths (e.g. from
    /// `tm_sta::Sta::critical_gates`). Factors are always ≥ 1 − jitter
    /// and grow monotonically with stress.
    ///
    /// # Panics
    ///
    /// Panics if `stressed.len()` differs from the gate count or
    /// `stress` is outside `[0, 2]` (beyond-end-of-life extrapolation is
    /// allowed up to 2×).
    pub fn scale_factors(&self, netlist: &Netlist, stressed: &[bool], stress: f64) -> Vec<f64> {
        assert_eq!(stressed.len(), netlist.num_gates(), "one stress flag per gate");
        assert!((0.0..=2.0).contains(&stress), "stress must be in [0, 2]");
        let mut rng = Rng::seed_from_u64(self.seed);
        (0..netlist.num_gates())
            .map(|g| {
                let jitter = if self.jitter > 0.0 {
                    rng.gen_range(-self.jitter..=self.jitter)
                } else {
                    0.0
                };
                let extra = if stressed[g] { self.speedpath_degradation } else { 0.0 };
                (1.0 + stress * (self.base_degradation + extra + jitter)).max(0.5)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tm_netlist::circuits::comparator2;
    use tm_netlist::library::lsi10k_like;

    fn setup() -> (Netlist, Vec<bool>) {
        let nl = comparator2(Arc::new(lsi10k_like()));
        // Mark the two inverters as stressed.
        let mut stressed = vec![false; nl.num_gates()];
        stressed[0] = true;
        stressed[1] = true;
        (nl, stressed)
    }

    #[test]
    fn fresh_silicon_is_nominal_modulo_jitter() {
        let (nl, stressed) = setup();
        let model = AgingModel { jitter: 0.0, ..AgingModel::default() };
        let s = model.scale_factors(&nl, &stressed, 0.0);
        assert!(s.iter().all(|&f| (f - 1.0).abs() < 1e-12));
    }

    #[test]
    fn stressed_gates_degrade_more() {
        let (nl, stressed) = setup();
        let model = AgingModel { jitter: 0.0, ..AgingModel::default() };
        let s = model.scale_factors(&nl, &stressed, 1.0);
        assert!((s[0] - 1.15).abs() < 1e-12); // base 3% + speedpath 12%
        assert!((s[2] - 1.03).abs() < 1e-12); // base only
    }

    #[test]
    fn monotone_in_stress() {
        let (nl, stressed) = setup();
        let model = AgingModel::default();
        let lo = model.scale_factors(&nl, &stressed, 0.2);
        let hi = model.scale_factors(&nl, &stressed, 0.8);
        for (a, b) in lo.iter().zip(&hi) {
            assert!(b >= a);
        }
    }

    #[test]
    fn jitter_is_deterministic() {
        let (nl, stressed) = setup();
        let model = AgingModel::default();
        assert_eq!(
            model.scale_factors(&nl, &stressed, 0.5),
            model.scale_factors(&nl, &stressed, 0.5)
        );
    }
}
