//! Switching-activity dynamic power estimation.
//!
//! Table 2 reports the masking circuit's *power overhead*; we estimate
//! dynamic power the standard way: per-gate toggle probability under a
//! random workload × the cell's per-switch energy. Only relative power
//! matters for the overhead percentages, so the absolute unit is the
//! library's energy unit per applied vector.

use crate::func::{simulate_block, PatternBlock};
use crate::patterns::random_block;
use tm_testkit::rng::Rng;
use tm_netlist::Netlist;

/// Result of a power estimation run.
#[derive(Clone, Debug)]
pub struct PowerEstimate {
    /// Mean dynamic energy per applied input vector (library units).
    pub dynamic_per_vector: f64,
    /// Mean output-toggle count per gate per vector (activity factor).
    pub mean_activity: f64,
    /// Number of vector transitions simulated.
    pub transitions: usize,
}

/// Estimates dynamic power of a netlist under a uniform random workload
/// of `num_vectors` input vectors (zero-delay toggle counting).
///
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `num_vectors < 2`.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use tm_netlist::{circuits::ripple_adder, library::lsi10k_like};
/// use tm_sim::power::estimate_power;
///
/// let nl = ripple_adder(Arc::new(lsi10k_like()), 4);
/// let p = estimate_power(&nl, 512, 7);
/// assert!(p.dynamic_per_vector > 0.0);
/// ```
pub fn estimate_power(netlist: &Netlist, num_vectors: usize, seed: u64) -> PowerEstimate {
    assert!(num_vectors >= 2, "need at least two vectors to observe switching");
    let lib = netlist.library();
    let n_inputs = netlist.inputs().len();
    let mut rng = Rng::seed_from_u64(seed);

    let mut energy = 0.0f64;
    let mut toggles_total = 0u64;
    let mut transitions = 0usize;
    let mut prev: Option<Vec<u64>> = None;
    let mut remaining = num_vectors;

    while remaining > 0 {
        let take = remaining.min(64);
        let block: PatternBlock = random_block(n_inputs, take, &mut rng);
        let values = simulate_block(netlist, &block);
        // Toggles between consecutive patterns inside the block, plus the
        // seam against the previous block's last pattern.
        for (_, g) in netlist.gates() {
            let w = values[g.output().index()];
            let sp = lib.cell(g.cell()).switch_power();
            // Consecutive in-block toggles: compare bit k with bit k+1.
            let t = if take >= 2 { (w ^ (w >> 1)) & mask_lower(take - 1) } else { 0 };
            let count = t.count_ones() as u64;
            toggles_total += count;
            energy += count as f64 * sp;
        }
        if let Some(prev_vals) = &prev {
            for (_, g) in netlist.gates() {
                let last_prev = (prev_vals[g.output().index()] >> 63) & 1;
                let first_cur = values[g.output().index()] & 1;
                if last_prev != first_cur {
                    toggles_total += 1;
                    energy += lib.cell(g.cell()).switch_power();
                }
            }
            transitions += 1;
        }
        transitions += take - 1;
        // Keep the block's last pattern aligned at bit 63 for the seam:
        // only exact 64-pattern blocks can seam; smaller tails skip it.
        prev = if take == 64 { Some(values) } else { None };
        remaining -= take;
    }

    let denom = transitions.max(1) as f64;
    PowerEstimate {
        dynamic_per_vector: energy / denom,
        mean_activity: toggles_total as f64 / denom / netlist.num_gates().max(1) as f64,
        transitions,
    }
}

fn mask_lower(bits: usize) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tm_netlist::circuits::{parity, ripple_adder};
    use tm_netlist::library::lsi10k_like;
    use tm_netlist::Netlist;

    #[test]
    fn deterministic_in_seed() {
        let nl = ripple_adder(Arc::new(lsi10k_like()), 4);
        let a = estimate_power(&nl, 256, 42);
        let b = estimate_power(&nl, 256, 42);
        assert_eq!(a.dynamic_per_vector, b.dynamic_per_vector);
        let c = estimate_power(&nl, 256, 43);
        assert_ne!(a.dynamic_per_vector, c.dynamic_per_vector);
    }

    #[test]
    fn bigger_circuits_burn_more() {
        let lib = Arc::new(lsi10k_like());
        let small = ripple_adder(lib.clone(), 2);
        let big = ripple_adder(lib.clone(), 8);
        let ps = estimate_power(&small, 512, 1);
        let pb = estimate_power(&big, 512, 1);
        assert!(pb.dynamic_per_vector > ps.dynamic_per_vector);
    }

    #[test]
    fn xor_activity_is_high() {
        // XOR outputs toggle with probability 1/2 under random inputs.
        let nl = parity(Arc::new(lsi10k_like()), 8);
        let p = estimate_power(&nl, 2048, 5);
        assert!(p.mean_activity > 0.3, "activity {}", p.mean_activity);
        assert!(p.mean_activity < 0.7, "activity {}", p.mean_activity);
    }

    #[test]
    fn idle_circuit_consumes_nothing() {
        // A circuit whose gates never toggle: constant generators.
        let lib = Arc::new(lsi10k_like());
        let mut nl = Netlist::new("const", lib.clone());
        let _a = nl.add_input("a");
        let one = nl.add_gate(lib.expect("TIE1"), &[], "one");
        nl.mark_output(one);
        let p = estimate_power(&nl, 128, 3);
        assert_eq!(p.dynamic_per_vector, 0.0);
    }
}
