//! Event-driven gate-level timing simulation.
//!
//! This is the "silicon" the reproduction observes: a two-vector
//! transition is played through the netlist with per-pin transport
//! delays, the outputs are sampled at the clock edge, and any output
//! still in flight produces a *timing error* — exactly the failure mode
//! the paper's error-masking circuit exists to hide.
//!
//! Gate delays can be scaled per gate (aging, variation), so the same
//! machinery drives the wearout experiments of §2.1.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tm_netlist::{Delay, GateId, Netlist};

/// Hard cap on simulation events per transition; a combinational
/// netlist settles long before this.
const MAX_EVENTS: usize = 50_000_000;

/// Sampling guard band: event times accumulate one quantization
/// rounding per gate hop, so a transition that mathematically lands
/// exactly on the clock edge can drift a few femto-units past it.
/// Sampling treats anything within this band as having arrived — four
/// orders of magnitude below the smallest cell delay (0.65 units), so
/// it can never hide a real timing error.
const SAMPLING_GUARD: Delay = Delay::from_units_const(1e-3);

/// Result of simulating one input transition.
#[derive(Clone, Debug)]
pub struct TransitionResult {
    /// Output values latched at the sample (clock) time.
    pub sampled: Vec<bool>,
    /// Final settled output values (= functional evaluation of the new
    /// inputs).
    pub settled: Vec<bool>,
    /// Time of the last transition observed at each output.
    pub output_settle: Vec<Delay>,
    /// Time of the last transition anywhere in the circuit.
    pub settle_time: Delay,
}

impl TransitionResult {
    /// Per-output timing-error flags: sampled value differs from the
    /// settled value.
    pub fn errors(&self) -> Vec<bool> {
        self.sampled
            .iter()
            .zip(&self.settled)
            .map(|(&s, &f)| s != f)
            .collect()
    }

    /// Whether any output mis-sampled.
    pub fn has_error(&self) -> bool {
        self.sampled.iter().zip(&self.settled).any(|(s, f)| s != f)
    }
}

/// An event-driven timing simulator bound to a netlist.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use tm_netlist::{circuits::comparator2, library::lsi10k_like, Delay};
/// use tm_sim::timing::TimingSim;
///
/// let nl = comparator2(Arc::new(lsi10k_like()));
/// let sim = TimingSim::new(&nl);
/// // Launch a transition and sample after the full critical path: clean.
/// let all0 = vec![false; 4];
/// let b0_rise = vec![false, false, true, false];
/// let r = sim.transition(&all0, &b0_rise, Delay::new(7.0));
/// assert!(!r.has_error());
/// ```
#[derive(Debug)]
pub struct TimingSim<'a> {
    netlist: &'a Netlist,
    scale: Vec<f64>,
    /// Per net: list of (gate, pin) readers.
    readers: Vec<Vec<(GateId, usize)>>,
}

impl<'a> TimingSim<'a> {
    /// Simulator with nominal delays.
    pub fn new(netlist: &'a Netlist) -> Self {
        Self::with_scale(netlist, vec![1.0; netlist.num_gates()])
    }

    /// Simulator with per-gate delay multipliers.
    ///
    /// # Panics
    ///
    /// Panics if the scale vector length differs from the gate count or
    /// contains non-positive factors.
    pub fn with_scale(netlist: &'a Netlist, scale: Vec<f64>) -> Self {
        assert_eq!(scale.len(), netlist.num_gates(), "one scale factor per gate");
        assert!(scale.iter().all(|s| s.is_finite() && *s > 0.0), "bad scale factor");
        let mut readers = vec![Vec::new(); netlist.num_nets()];
        for (gid, g) in netlist.gates() {
            for (pin, &inp) in g.inputs().iter().enumerate() {
                readers[inp.index()].push((gid, pin));
            }
        }
        TimingSim { netlist, scale, readers }
    }

    fn pin_delay(&self, gate: GateId, pin: usize) -> Delay {
        let g = self.netlist.gate(gate);
        self.netlist.library().cell(g.cell()).pin_delay(pin) * self.scale[gate.index()]
    }

    fn gate_output(&self, gate: GateId, values: &[bool]) -> bool {
        let g = self.netlist.gate(gate);
        let mut minterm = 0u64;
        for (pin, &inp) in g.inputs().iter().enumerate() {
            if values[inp.index()] {
                minterm |= 1 << pin;
            }
        }
        self.netlist.library().cell(g.cell()).function().eval(minterm)
    }

    /// Simulates the transition from `prev` to `next` input vectors,
    /// sampling primary outputs at `sample_time` after the input change.
    ///
    /// The circuit starts settled on `prev` (inputs switched at `t = 0`)
    /// and is simulated to quiescence with transport-delay semantics;
    /// glitches are modelled.
    ///
    /// # Panics
    ///
    /// Panics if the vector arities differ from the input count, or the
    /// event budget is exhausted (indicating a cyclic netlist).
    pub fn transition(&self, prev: &[bool], next: &[bool], sample_time: Delay) -> TransitionResult {
        let times = vec![sample_time; self.netlist.outputs().len()];
        self.transition_with_sample_times(prev, next, &times)
    }

    /// Like [`TimingSim::transition`], but with an individual sample
    /// time per primary output (in output order).
    ///
    /// Masked designs capture the MUXed outputs one MUX delay after the
    /// nominal edge (the "marginal, quantifiable impact" of the masking
    /// MUX the paper compensates during synthesis); per-output sample
    /// times model that skew.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatches or event-budget exhaustion.
    pub fn transition_with_sample_times(
        &self,
        prev: &[bool],
        next: &[bool],
        sample_times: &[Delay],
    ) -> TransitionResult {
        assert_eq!(prev.len(), self.netlist.inputs().len(), "prev arity mismatch");
        assert_eq!(next.len(), self.netlist.inputs().len(), "next arity mismatch");
        assert_eq!(
            sample_times.len(),
            self.netlist.outputs().len(),
            "one sample time per output"
        );

        let mut values = self.netlist.eval_all_nets(prev);
        let outputs = self.netlist.outputs();

        // Per-output change history (time, value), for sampling.
        let mut histories: Vec<Vec<(Delay, bool)>> = vec![Vec::new(); outputs.len()];
        let out_pos: std::collections::HashMap<usize, usize> = outputs
            .iter()
            .enumerate()
            .map(|(pos, &o)| (o.index(), pos))
            .collect();

        // Event heap: (quantized time, sequence, net index, new value).
        let mut heap: BinaryHeap<Reverse<(i64, u64, usize, bool)>> = BinaryHeap::new();
        let mut seq = 0u64;
        for (pos, &net) in self.netlist.inputs().iter().enumerate() {
            if prev[pos] != next[pos] {
                heap.push(Reverse((0, seq, net.index(), next[pos])));
                seq += 1;
            }
        }

        let mut settle_time = Delay::ZERO;
        let mut events = 0usize;
        while let Some(Reverse((qt, _, net_idx, value))) = heap.pop() {
            events += 1;
            assert!(events <= MAX_EVENTS, "event budget exhausted; netlist cyclic?");
            if values[net_idx] == value {
                continue; // superseded or redundant event
            }
            let t = Delay::from_quantized(qt);
            values[net_idx] = value;
            settle_time = settle_time.max(t);
            if let Some(&pos) = out_pos.get(&net_idx) {
                histories[pos].push((t, value));
            }
            for &(gate, pin) in &self.readers[net_idx] {
                let new_out = self.gate_output(gate, &values);
                let out_net = self.netlist.gate(gate).output();
                let fire = t + self.pin_delay(gate, pin);
                heap.push(Reverse((fire.quantize(), seq, out_net.index(), new_out)));
                seq += 1;
            }
        }

        tm_telemetry::counter_add("sim.timing.transitions", 1);
        tm_telemetry::counter_add("sim.timing.events", events as u64);

        let settled: Vec<bool> = outputs.iter().map(|&o| values[o.index()]).collect();
        let initial = self.netlist.eval(prev);
        let mut sampled = Vec::with_capacity(outputs.len());
        let mut output_settle = Vec::with_capacity(outputs.len());
        for (pos, hist) in histories.iter().enumerate() {
            let mut v = initial[pos];
            let mut last = Delay::ZERO;
            for &(t, val) in hist {
                if t <= sample_times[pos] + SAMPLING_GUARD {
                    v = val;
                }
                last = last.max(t);
            }
            sampled.push(v);
            output_settle.push(last);
        }
        TransitionResult { sampled, settled, output_settle, settle_time }
    }

    /// Convenience: simulate a sequence of input vectors as consecutive
    /// clock cycles with period `clock`, returning one
    /// [`TransitionResult`] per applied vector (the first vector
    /// initializes the state and produces no result).
    pub fn run_sequence(&self, vectors: &[Vec<bool>], clock: Delay) -> Vec<TransitionResult> {
        let mut results = Vec::new();
        for pair in vectors.windows(2) {
            results.push(self.transition(&pair[0], &pair[1], clock));
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tm_netlist::circuits::{comparator2, ripple_adder};
    use tm_netlist::library::lsi10k_like;

    fn comparator() -> Netlist {
        comparator2(Arc::new(lsi10k_like()))
    }

    #[test]
    fn settles_to_functional_value() {
        let nl = comparator();
        let sim = TimingSim::new(&nl);
        for from in 0..16u64 {
            for to in 0..16u64 {
                let prev: Vec<bool> = (0..4).map(|i| (from >> i) & 1 == 1).collect();
                let next: Vec<bool> = (0..4).map(|i| (to >> i) & 1 == 1).collect();
                let r = sim.transition(&prev, &next, Delay::new(100.0));
                assert_eq!(r.settled, nl.eval(&next), "{from}->{to}");
                assert_eq!(r.sampled, r.settled, "late sample is error-free");
                assert!(r.settle_time <= Delay::new(7.0));
            }
        }
    }

    #[test]
    fn early_sampling_creates_timing_errors() {
        let nl = comparator();
        let sim = TimingSim::new(&nl);
        // The 7-unit path b0 → nb0 → t2 → t4 → y: start at a=0,b=0
        // (y=1: 0>=0), then raise b0 so y must fall (0 < 1).
        let prev = vec![false, false, false, false];
        let next = vec![false, false, true, false];
        let clean = sim.transition(&prev, &next, Delay::new(7.0));
        assert!(!clean.has_error());
        assert_eq!(clean.output_settle[0], Delay::new(7.0));
        // Sampling at 6.3 (the paper's Δ_y) catches the old value.
        let bad = sim.transition(&prev, &next, Delay::new(6.3));
        assert!(bad.has_error());
        assert!(bad.sampled[0]);
        assert!(!bad.settled[0]);
    }

    #[test]
    fn short_path_transitions_sample_cleanly() {
        let nl = comparator();
        let sim = TimingSim::new(&nl);
        // a1 rising with everything else 0: path a1→t1→y is 4 units.
        let prev = vec![false, false, false, false];
        let next = vec![false, true, false, false];
        let r = sim.transition(&prev, &next, Delay::new(6.3));
        assert!(!r.has_error());
    }

    #[test]
    fn aging_pushes_paths_past_the_clock() {
        let nl = comparator();
        // Slow every gate by 10%: the 7-path becomes 7.7 > 7.0 clock.
        let sim = TimingSim::with_scale(&nl, vec![1.1; nl.num_gates()]);
        let prev = vec![false, false, false, false];
        let next = vec![false, false, true, false];
        let r = sim.transition(&prev, &next, Delay::new(7.0));
        assert!(r.has_error());
        // Nominal silicon is clean at the same clock.
        let fresh = TimingSim::new(&nl);
        assert!(!fresh.transition(&prev, &next, Delay::new(7.0)).has_error());
    }

    #[test]
    fn sequences_apply_in_order() {
        let nl = comparator();
        let sim = TimingSim::new(&nl);
        let vectors = vec![
            vec![false, false, false, false],
            vec![true, true, false, false],
            vec![false, false, true, true],
        ];
        let rs = sim.run_sequence(&vectors, Delay::new(10.0));
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].settled, nl.eval(&vectors[1]));
        assert_eq!(rs[1].settled, nl.eval(&vectors[2]));
    }

    #[test]
    fn glitches_do_not_corrupt_final_state() {
        // Reconvergent XOR logic in the adder glitches under skewed
        // arrival; final values must still match functional simulation.
        let lib = Arc::new(lsi10k_like());
        let nl = ripple_adder(lib, 4);
        let sim = TimingSim::new(&nl);
        let prev: Vec<bool> = vec![false; 9];
        let next: Vec<bool> = vec![true, true, true, true, true, false, false, false, true];
        let r = sim.transition(&prev, &next, Delay::new(200.0));
        assert_eq!(r.settled, nl.eval(&next));
        assert!(!r.has_error());
    }

    #[test]
    fn no_change_means_no_events() {
        let nl = comparator();
        let sim = TimingSim::new(&nl);
        let v = vec![true, false, true, false];
        let r = sim.transition(&v, &v, Delay::ZERO);
        assert_eq!(r.settle_time, Delay::ZERO);
        assert!(!r.has_error());
    }
}
