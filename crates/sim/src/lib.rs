//! Simulation substrate for the `timemask` workspace: the "silicon" the
//! reproduction observes.
//!
//! - [`func`]: 64-way bit-parallel functional simulation of mapped
//!   netlists and SOP networks.
//! - [`timing`]: event-driven gate-level timing simulation with clocked
//!   output sampling — late transitions sampled at the clock edge are
//!   the *timing errors* the paper's masking circuit hides.
//! - [`aging`]: wearout models producing per-gate delay scale factors.
//! - [`power`]: switching-activity dynamic power estimation (Table 2's
//!   power-overhead column).
//! - [`patterns`]: deterministic random workloads.
//!
//! # Example: watch a timing error appear and measure it
//!
//! ```
//! use std::sync::Arc;
//! use tm_netlist::{circuits::comparator2, library::lsi10k_like, Delay};
//! use tm_sim::timing::TimingSim;
//!
//! let nl = comparator2(Arc::new(lsi10k_like()));
//! let sim = TimingSim::new(&nl);
//! let prev = vec![false; 4];
//! let next = vec![false, false, true, false]; // exercises the 7-unit path
//! // Clock faster than the speed-path: the output mis-samples.
//! assert!(sim.transition(&prev, &next, Delay::new(6.3)).has_error());
//! assert!(!sim.transition(&prev, &next, Delay::new(7.0)).has_error());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aging;
pub mod func;
pub mod patterns;
pub mod power;
pub mod timing;

pub use aging::AgingModel;
pub use func::PatternBlock;
pub use power::PowerEstimate;
pub use timing::{TimingSim, TransitionResult};
