//! Bit-parallel (64-way) functional simulation.
//!
//! Each `u64` word carries 64 independent input patterns; one pass over
//! the netlist evaluates all of them. Used for switching-activity power
//! estimation, masking-coverage spot checks, and workload replay in the
//! monitor experiments.

use tm_netlist::{Netlist, SopNetwork};

/// A block of up to 64 patterns for a circuit with `num_inputs` inputs.
///
/// Bit `k` of `input_words[i]` is the value of input `i` in pattern `k`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PatternBlock {
    words: Vec<u64>,
    count: usize,
}

impl PatternBlock {
    /// Builds a block from explicit patterns (each a `Vec<bool>` of
    /// input values).
    ///
    /// # Panics
    ///
    /// Panics if more than 64 patterns are supplied, the block is empty,
    /// or pattern arities disagree.
    pub fn from_patterns(patterns: &[Vec<bool>]) -> Self {
        assert!(!patterns.is_empty(), "empty pattern block");
        assert!(patterns.len() <= 64, "a block holds at most 64 patterns");
        let arity = patterns[0].len();
        let mut words = vec![0u64; arity];
        for (k, p) in patterns.iter().enumerate() {
            assert_eq!(p.len(), arity, "pattern arity mismatch");
            for (i, &bit) in p.iter().enumerate() {
                if bit {
                    words[i] |= 1 << k;
                }
            }
        }
        PatternBlock { words, count: patterns.len() }
    }

    /// Builds a block directly from per-input words.
    pub fn from_words(words: Vec<u64>, count: usize) -> Self {
        assert!((1..=64).contains(&count), "count must be 1..=64");
        PatternBlock { words, count }
    }

    /// Per-input pattern words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of patterns in the block (≤ 64).
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the block holds no patterns (never true for constructed
    /// blocks).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Extracts pattern `k` as a `Vec<bool>`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= len()`.
    pub fn pattern(&self, k: usize) -> Vec<bool> {
        assert!(k < self.count, "pattern index out of range");
        self.words.iter().map(|w| (w >> k) & 1 == 1).collect()
    }
}

/// Simulates a netlist on a block of patterns; returns one word per net
/// (index by `NetId::index`).
///
/// # Panics
///
/// Panics if the block's arity differs from the input count.
pub fn simulate_block(netlist: &Netlist, block: &PatternBlock) -> Vec<u64> {
    assert_eq!(block.words().len(), netlist.inputs().len(), "block arity mismatch");
    let lib = netlist.library();
    let mut values = vec![0u64; netlist.num_nets()];
    for (pos, &net) in netlist.inputs().iter().enumerate() {
        values[net.index()] = block.words()[pos];
    }
    for (_, g) in netlist.gates() {
        let f = lib.cell(g.cell()).function();
        let ins: Vec<u64> = g.inputs().iter().map(|i| values[i.index()]).collect();
        let mut out = 0u64;
        // Evaluate the cell truth table bit-parallel: for each minterm of
        // the cell in the on-set, AND the matching literal words.
        for m in 0..(1u64 << ins.len()) {
            if !f.eval(m) {
                continue;
            }
            let mut term = u64::MAX;
            for (pin, &w) in ins.iter().enumerate() {
                term &= if (m >> pin) & 1 == 1 { w } else { !w };
            }
            out |= term;
        }
        values[g.output().index()] = out;
    }
    values
}

/// Simulates a netlist on a block and returns the primary-output words
/// in output order.
pub fn simulate_outputs(netlist: &Netlist, block: &PatternBlock) -> Vec<u64> {
    let values = simulate_block(netlist, block);
    netlist.outputs().iter().map(|&o| values[o.index()]).collect()
}

/// Simulates a technology-independent network on a block; returns one
/// word per signal (index by `SigId::index`).
///
/// # Panics
///
/// Panics if the block's arity differs from the input count.
pub fn simulate_sop_block(net: &SopNetwork, block: &PatternBlock) -> Vec<u64> {
    assert_eq!(block.words().len(), net.inputs().len(), "block arity mismatch");
    let mut values = vec![0u64; net.inputs().len() + net.num_nodes() + 64];
    // Signal ids are dense; size the array by probing the max id.
    let max_sig = net
        .node_sigs()
        .last()
        .map(|s| s.index())
        .unwrap_or(0)
        .max(net.inputs().iter().map(|s| s.index()).max().unwrap_or(0));
    values.resize(max_sig + 1, 0);
    for (pos, &sig) in net.inputs().iter().enumerate() {
        values[sig.index()] = block.words()[pos];
    }
    for sig in net.node_sigs() {
        let node = net.node_of(sig).expect("node");
        let ins: Vec<u64> = node.inputs().iter().map(|i| values[i.index()]).collect();
        let mut out = 0u64;
        for cube in node.cover().cubes() {
            let mut term = u64::MAX;
            for (pos, pol) in cube.literals() {
                term &= if pol { ins[pos] } else { !ins[pos] };
            }
            out |= term;
        }
        values[sig.index()] = out;
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tm_netlist::circuits::{comparator2, parity};
    use tm_netlist::extract::{extract, ExtractOptions};
    use tm_netlist::library::lsi10k_like;

    #[test]
    fn block_roundtrip() {
        let pats = vec![
            vec![true, false, true],
            vec![false, false, false],
            vec![true, true, true],
        ];
        let block = PatternBlock::from_patterns(&pats);
        assert_eq!(block.len(), 3);
        for (k, p) in pats.iter().enumerate() {
            assert_eq!(&block.pattern(k), p);
        }
    }

    #[test]
    fn parallel_matches_scalar() {
        let nl = comparator2(Arc::new(lsi10k_like()));
        let pats: Vec<Vec<bool>> =
            (0..16u64).map(|m| (0..4).map(|i| (m >> i) & 1 == 1).collect()).collect();
        let block = PatternBlock::from_patterns(&pats);
        let outs = simulate_outputs(&nl, &block);
        for k in 0..16 {
            let scalar = nl.eval(&block.pattern(k));
            assert_eq!((outs[0] >> k) & 1 == 1, scalar[0], "pattern {k}");
        }
    }

    #[test]
    fn xor_tree_parallel() {
        let nl = parity(Arc::new(lsi10k_like()), 7);
        let pats: Vec<Vec<bool>> =
            (0..64u64).map(|m| (0..7).map(|i| (m >> i) & 1 == 1).collect()).collect();
        let block = PatternBlock::from_patterns(&pats);
        let outs = simulate_outputs(&nl, &block);
        for k in 0..64u64 {
            assert_eq!((outs[0] >> k) & 1 == 1, k.count_ones() % 2 == 1);
        }
    }

    #[test]
    fn sop_network_simulation_matches_netlist() {
        let nl = comparator2(Arc::new(lsi10k_like()));
        let net = extract(&nl, ExtractOptions::default());
        let pats: Vec<Vec<bool>> =
            (0..16u64).map(|m| (0..4).map(|i| (m >> i) & 1 == 1).collect()).collect();
        let block = PatternBlock::from_patterns(&pats);
        let sig_values = simulate_sop_block(&net, &block);
        for k in 0..16 {
            let expect = nl.eval(&block.pattern(k));
            let y = net.outputs()[0];
            assert_eq!((sig_values[y.index()] >> k) & 1 == 1, expect[0]);
        }
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn oversized_block_rejected() {
        let pats: Vec<Vec<bool>> = (0..65).map(|_| vec![false]).collect();
        let _ = PatternBlock::from_patterns(&pats);
    }
}
