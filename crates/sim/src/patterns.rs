//! Pattern sources for simulation workloads.

use crate::func::PatternBlock;
use tm_testkit::rng::Rng;

/// A uniformly random pattern block of `count` patterns over
/// `num_inputs` inputs.
///
/// # Panics
///
/// Panics if `count` is 0 or exceeds 64.
pub fn random_block(num_inputs: usize, count: usize, rng: &mut Rng) -> PatternBlock {
    assert!((1..=64).contains(&count), "block size must be 1..=64");
    let mask = if count == 64 { u64::MAX } else { (1u64 << count) - 1 };
    let words: Vec<u64> = (0..num_inputs).map(|_| rng.next_u64() & mask).collect();
    PatternBlock::from_words(words, count)
}

/// `count` uniformly random input vectors, deterministic in `seed`.
pub fn random_vectors(num_inputs: usize, count: usize, seed: u64) -> Vec<Vec<bool>> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..count)
        .map(|_| (0..num_inputs).map(|_| rng.next_bool()).collect())
        .collect()
}

/// Converts a `u64` minterm index to an input vector of `num_inputs`
/// bits (bit `i` → input `i`).
pub fn minterm_to_vector(num_inputs: usize, minterm: u64) -> Vec<bool> {
    (0..num_inputs).map(|i| (minterm >> i) & 1 == 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_vectors_deterministic() {
        assert_eq!(random_vectors(8, 10, 3), random_vectors(8, 10, 3));
        assert_ne!(random_vectors(8, 10, 3), random_vectors(8, 10, 4));
    }

    #[test]
    fn block_sizes() {
        let mut rng = Rng::seed_from_u64(0);
        for count in [1usize, 17, 64] {
            let b = random_block(5, count, &mut rng);
            assert_eq!(b.len(), count);
            assert_eq!(b.words().len(), 5);
        }
    }

    #[test]
    fn minterm_expansion() {
        assert_eq!(minterm_to_vector(3, 0b101), vec![true, false, true]);
        assert_eq!(minterm_to_vector(2, 0), vec![false, false]);
    }
}
