//! Property tests tying the event-driven timing simulator to static
//! timing analysis: STA's worst-case arrival bounds every dynamic
//! settle time, and sampling after the critical path delay is always
//! clean.
//!
//! Runs on the in-repo `tm-testkit` property runner; a failing case
//! prints its seed (reproduce with `TM_PROP_SEED=<seed>`).

use std::sync::Arc;
use tm_netlist::generate::{generate, GeneratorSpec};
use tm_netlist::library::lsi10k_like;
use tm_netlist::{Delay, Netlist};
use tm_sim::patterns::random_vectors;
use tm_sim::timing::TimingSim;
use tm_sta::Sta;
use tm_testkit::prop::{check, Config, Gen};
use tm_testkit::{prop_assert, prop_assert_eq};

fn gen_circuit(g: &mut Gen) -> Netlist {
    let inputs = g.gen_range(5usize..10);
    let outputs = g.gen_range(2usize..5);
    let gates = g.gen_range(25usize..70);
    let seed = g.gen_range(0u64..100_000);
    let mut spec = GeneratorSpec::sized(format!("sta_sim_{seed}"), inputs, outputs, gates);
    spec.seed = seed;
    generate(&spec, Arc::new(lsi10k_like()))
}

/// No dynamic transition settles later than STA's worst-case arrival
/// at any output, and sampling at Δ is always error-free.
#[test]
fn arrivals_bound_settle_times() {
    check(
        "arrivals_bound_settle_times",
        &Config::with_cases(20),
        |g| (gen_circuit(g), g.gen_range(0u64..10_000)),
        |(nl, seed)| {
            let sta = Sta::new(nl);
            let delta = sta.critical_path_delay();
            let sim = TimingSim::new(nl);
            let vectors = random_vectors(nl.inputs().len(), 12, *seed);
            for pair in vectors.windows(2) {
                let r = sim.transition(&pair[0], &pair[1], delta);
                prop_assert!(!r.has_error(), "error when sampling at Δ");
                prop_assert!(r.settle_time <= delta + Delay::new(1e-3));
                for (pos, &o) in nl.outputs().iter().enumerate() {
                    prop_assert!(
                        r.output_settle[pos] <= sta.arrival(o) + Delay::new(1e-3),
                        "output {pos} settled after its STA arrival"
                    );
                }
                prop_assert_eq!(&r.settled, &nl.eval(&pair[1]));
            }
            Ok(())
        },
    );
}

/// Uniform gate slowdown scales STA and simulation consistently:
/// the aged simulator never settles later than the aged STA bound.
#[test]
fn aging_consistency() {
    check(
        "aging_consistency",
        &Config::with_cases(20),
        |g| (gen_circuit(g), g.gen_range(1u32..40)),
        |(nl, pct)| {
            let factor = 1.0 + *pct as f64 / 100.0;
            let scale = vec![factor; nl.num_gates()];
            let sta = Sta::with_scale(nl, scale.clone());
            let sim = TimingSim::with_scale(nl, scale);
            let delta = sta.critical_path_delay();
            let vectors = random_vectors(nl.inputs().len(), 8, 77);
            for pair in vectors.windows(2) {
                let r = sim.transition(&pair[0], &pair[1], delta);
                prop_assert!(!r.has_error());
                prop_assert!(r.settle_time <= delta + Delay::new(1e-3));
            }
            // And the aged Δ is exactly factor × nominal Δ under uniform scaling.
            let nominal = Sta::new(nl).critical_path_delay();
            prop_assert!((delta.units() - nominal.units() * factor).abs() < 1e-9);
            Ok(())
        },
    );
}

/// Functional simulation (bit-parallel) agrees with the settled
/// state of the event-driven simulator.
#[test]
fn functional_matches_event_driven() {
    check(
        "functional_matches_event_driven",
        &Config::with_cases(20),
        |g| (gen_circuit(g), g.gen_range(0u64..10_000)),
        |(nl, seed)| {
            use tm_sim::func::{simulate_outputs, PatternBlock};
            let vectors = random_vectors(nl.inputs().len(), 16, *seed);
            let block = PatternBlock::from_patterns(&vectors);
            let words = simulate_outputs(nl, &block);
            let sim = TimingSim::new(nl);
            let delta = Sta::new(nl).critical_path_delay();
            for k in 1..vectors.len() {
                let r = sim.transition(&vectors[k - 1], &vectors[k], delta);
                for (pos, &w) in words.iter().enumerate() {
                    prop_assert_eq!(r.settled[pos], (w >> k) & 1 == 1, "output {} vector {}", pos, k);
                }
            }
            Ok(())
        },
    );
}
