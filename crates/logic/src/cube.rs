//! Cubes (product terms) over a small variable set.
//!
//! A [`Cube`] is a conjunction of literals over at most 64 variables. The
//! representation is a pair of bit masks: `mask` marks the bound variables
//! and `value` gives the polarity of each bound variable. Unbound variables
//! are free (the cube does not constrain them).
//!
//! Cubes are the unit of the paper's essential-weight cover selection
//! (§4.1): sum-of-product expressions of technology-independent nodes are
//! lists of cubes, sorted by ascending literal count, and pruned against
//! the speed-path characteristic function.

use std::fmt;

/// Maximum number of variables a [`Cube`] can range over.
pub const MAX_CUBE_VARS: usize = 64;

/// A product term (conjunction of literals) over up to 64 variables.
///
/// # Examples
///
/// ```
/// use tm_logic::cube::Cube;
///
/// // x0 & !x2  over 3 variables
/// let c = Cube::from_literals(3, &[(0, true), (2, false)]);
/// assert!(c.eval(0b001)); // x0=1, x1=0, x2=0
/// assert!(!c.eval(0b101)); // x2=1 violates !x2
/// assert_eq!(c.literal_count(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cube {
    /// Bit i set iff variable i is bound by this cube.
    mask: u64,
    /// For bound variables, bit i gives the required value. Bits outside
    /// `mask` are zero (canonical form).
    value: u64,
}

impl Cube {
    /// The universal cube (no literals; covers every minterm).
    pub const fn universe() -> Self {
        Cube { mask: 0, value: 0 }
    }

    /// Builds a cube from `(variable, polarity)` literal pairs.
    ///
    /// # Panics
    ///
    /// Panics if a variable index is `>= num_vars`, if `num_vars >
    /// MAX_CUBE_VARS`, or if the same variable appears with both
    /// polarities (an empty product is not a valid cube; represent empty
    /// covers as an SOP with no cubes instead).
    pub fn from_literals(num_vars: usize, literals: &[(usize, bool)]) -> Self {
        assert!(num_vars <= MAX_CUBE_VARS, "cube supports at most 64 variables");
        let mut mask = 0u64;
        let mut value = 0u64;
        for &(var, pol) in literals {
            assert!(var < num_vars, "literal variable {var} out of range {num_vars}");
            let bit = 1u64 << var;
            if mask & bit != 0 {
                assert_eq!(
                    value & bit != 0,
                    pol,
                    "variable {var} bound with both polarities"
                );
            }
            mask |= bit;
            if pol {
                value |= bit;
            }
        }
        Cube { mask, value }
    }

    /// Builds a cube directly from bit masks.
    ///
    /// `mask` marks bound variables; `value` gives their polarities. Bits
    /// of `value` outside `mask` are cleared.
    pub fn from_masks(mask: u64, value: u64) -> Self {
        Cube { mask, value: value & mask }
    }

    /// The minterm cube binding every one of `num_vars` variables to the
    /// bits of `assignment`.
    pub fn minterm(num_vars: usize, assignment: u64) -> Self {
        assert!(num_vars <= MAX_CUBE_VARS);
        let mask = if num_vars == 64 { u64::MAX } else { (1u64 << num_vars) - 1 };
        Cube { mask, value: assignment & mask }
    }

    /// Bit mask of bound variables.
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// Polarity bits of bound variables.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Number of literals in the cube.
    pub fn literal_count(&self) -> u32 {
        self.mask.count_ones()
    }

    /// Whether variable `var` is bound, and if so with which polarity.
    pub fn literal(&self, var: usize) -> Option<bool> {
        let bit = 1u64 << var;
        if self.mask & bit != 0 {
            Some(self.value & bit != 0)
        } else {
            None
        }
    }

    /// Iterates over `(variable, polarity)` literals in ascending variable
    /// order.
    pub fn literals(&self) -> impl Iterator<Item = (usize, bool)> + '_ {
        let mask = self.mask;
        let value = self.value;
        (0..MAX_CUBE_VARS).filter_map(move |v| {
            let bit = 1u64 << v;
            if mask & bit != 0 {
                Some((v, value & bit != 0))
            } else {
                None
            }
        })
    }

    /// Evaluates the cube on a minterm given as an assignment bit vector.
    pub fn eval(&self, assignment: u64) -> bool {
        (assignment ^ self.value) & self.mask == 0
    }

    /// Whether `self` covers every minterm that `other` covers
    /// (containment: `other ⊆ self` as sets of minterms).
    pub fn contains(&self, other: &Cube) -> bool {
        // self's literals must be a subset of other's, with equal polarity.
        self.mask & !other.mask == 0 && (self.value ^ other.value) & self.mask == 0
    }

    /// Intersection of two cubes, or `None` if they conflict on some
    /// variable (empty intersection).
    pub fn intersect(&self, other: &Cube) -> Option<Cube> {
        let common = self.mask & other.mask;
        if (self.value ^ other.value) & common != 0 {
            return None;
        }
        Some(Cube {
            mask: self.mask | other.mask,
            value: self.value | other.value,
        })
    }

    /// Whether the two cubes share at least one minterm.
    pub fn intersects(&self, other: &Cube) -> bool {
        let common = self.mask & other.mask;
        (self.value ^ other.value) & common == 0
    }

    /// Attempts the Quine–McCluskey merge: if the cubes bind the same
    /// variables and differ in exactly one polarity, returns the merged
    /// cube with that variable freed.
    pub fn merge(&self, other: &Cube) -> Option<Cube> {
        if self.mask != other.mask {
            return None;
        }
        let diff = self.value ^ other.value;
        if diff.count_ones() == 1 {
            Some(Cube {
                mask: self.mask & !diff,
                value: self.value & !diff,
            })
        } else {
            None
        }
    }

    /// Number of minterms covered over a space of `num_vars` variables.
    pub fn minterm_count(&self, num_vars: usize) -> f64 {
        let free = num_vars as u32 - self.literal_count();
        (free as f64).exp2()
    }

    /// Renames variables through `map` (old index → new index).
    ///
    /// # Panics
    ///
    /// Panics if two bound variables map to the same new index.
    pub fn permute(&self, map: &[usize]) -> Cube {
        let mut mask = 0u64;
        let mut value = 0u64;
        for (var, pol) in self.literals() {
            let nv = map[var];
            let bit = 1u64 << nv;
            assert!(mask & bit == 0, "permutation collides on variable {nv}");
            mask |= bit;
            if pol {
                value |= bit;
            }
        }
        Cube { mask, value }
    }
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.mask == 0 {
            return write!(f, "1");
        }
        let mut first = true;
        for (var, pol) in self.literals() {
            if !first {
                write!(f, "·")?;
            }
            first = false;
            if pol {
                write!(f, "x{var}")?;
            } else {
                write!(f, "x{var}'")?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universe_covers_everything() {
        let u = Cube::universe();
        for m in 0..16u64 {
            assert!(u.eval(m));
        }
        assert_eq!(u.literal_count(), 0);
        assert_eq!(u.minterm_count(4), 16.0);
    }

    #[test]
    fn literal_eval() {
        let c = Cube::from_literals(4, &[(1, true), (3, false)]);
        assert!(c.eval(0b0010));
        assert!(c.eval(0b0110));
        assert!(!c.eval(0b1010)); // x3 = 1
        assert!(!c.eval(0b0000)); // x1 = 0
        assert_eq!(c.minterm_count(4), 4.0);
    }

    #[test]
    fn containment() {
        let big = Cube::from_literals(4, &[(0, true)]);
        let small = Cube::from_literals(4, &[(0, true), (2, false)]);
        assert!(big.contains(&small));
        assert!(!small.contains(&big));
        assert!(big.contains(&big));
    }

    #[test]
    fn intersection() {
        let a = Cube::from_literals(4, &[(0, true)]);
        let b = Cube::from_literals(4, &[(1, false)]);
        let c = a.intersect(&b).expect("compatible cubes");
        assert_eq!(c, Cube::from_literals(4, &[(0, true), (1, false)]));
        let conflicting = Cube::from_literals(4, &[(0, false)]);
        assert!(a.intersect(&conflicting).is_none());
        assert!(!a.intersects(&conflicting));
        assert!(a.intersects(&b));
    }

    #[test]
    fn qm_merge() {
        let a = Cube::minterm(3, 0b010);
        let b = Cube::minterm(3, 0b011);
        let m = a.merge(&b).expect("adjacent minterms merge");
        assert_eq!(m, Cube::from_literals(3, &[(1, true), (2, false)]));
        // Non-adjacent minterms don't merge.
        let c = Cube::minterm(3, 0b111);
        assert!(a.merge(&c).is_none());
    }

    #[test]
    fn minterm_cube() {
        let m = Cube::minterm(3, 0b101);
        assert!(m.eval(0b101));
        assert!(!m.eval(0b100));
        assert_eq!(m.literal_count(), 3);
    }

    #[test]
    fn permutation() {
        let c = Cube::from_literals(3, &[(0, true), (2, false)]);
        let p = c.permute(&[2, 1, 0]);
        assert_eq!(p, Cube::from_literals(3, &[(2, true), (0, false)]));
    }

    #[test]
    fn display_formats() {
        let c = Cube::from_literals(3, &[(0, true), (2, false)]);
        assert_eq!(format!("{c}"), "x0·x2'");
        assert_eq!(format!("{}", Cube::universe()), "1");
    }

    #[test]
    #[should_panic(expected = "both polarities")]
    fn conflicting_literals_panic() {
        let _ = Cube::from_literals(2, &[(0, true), (0, false)]);
    }
}
