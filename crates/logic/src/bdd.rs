//! Reduced ordered binary decision diagrams (ROBDDs) with complement
//! edges.
//!
//! Speed-path characteristic functions range over *all primary inputs* of
//! a circuit — hundreds of variables with astronomically many satisfying
//! patterns (Table 2 of the paper reports up to 8.8×10¹⁰⁷ critical
//! minterms). BDDs represent and count such sets exactly.
//!
//! The manager is a Shannon-expansion ROBDD tuned for the SPCF hot
//! path (see DESIGN.md "BDD internals & warm sessions"):
//!
//! - **Complement edges.** A [`BddRef`] packs `(node index << 1) |
//!   complement`; a single terminal node represents both constants, and
//!   negation is an O(1) bit flip. Canonicity is kept by the
//!   *low-edge-never-complemented* rule: `mk` that would store a
//!   complemented low edge stores the negated node and returns a
//!   complemented handle instead.
//! - **Struct-of-arrays node store.** `var[]` / `lo[]` / `hi[]` keep
//!   traversal (`sat_fraction`, export, the short-path memo recursion)
//!   cache-friendly.
//! - **Open-addressed unique table.** Power-of-two capacity, linear
//!   probing over FNV-mixed packed keys, and *incremental rehash*: a
//!   growth keeps the previous table alive and migrates a few slots per
//!   insert, so no single `mk` pays a full-table stall.
//! - **Direct-mapped lossy computed caches** for `ite` and the
//!   quantifier recursion: a collision simply overwrites (counted as an
//!   eviction) and a lost entry only costs a recomputation — never a
//!   wrong result.
//!
//! Functions are referenced by [`BddRef`] handles; equal functions
//! always have equal handles (canonicity), so equivalence checking is
//! `==`.

use std::collections::HashMap;
use std::fmt;

use tm_resilience::{Budget, Exhausted};

/// Handle to a BDD function inside a [`Bdd`] manager: a packed edge
/// `(node index << 1) | complement`.
///
/// Handles are only meaningful for the manager that created them.
/// Canonicity guarantees `f == g` iff the functions are equal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BddRef(u32);

impl BddRef {
    /// The raw packed edge (node index and complement bit), stable for
    /// the lifetime of the manager.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for BddRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            ONE => write!(f, "BddRef(⊤)"),
            ZERO => write!(f, "BddRef(⊥)"),
            e if e & 1 == 1 => write!(f, "BddRef(¬{})", e >> 1),
            e => write!(f, "BddRef({})", e >> 1),
        }
    }
}

/// The constant-true edge: the terminal node (index 0), uncomplemented.
const ONE: u32 = 0;
/// The constant-false edge: the terminal node, complemented.
const ZERO: u32 = 1;
/// Terminal "variable" index: compares greater than every real variable
/// so that terminals sink to the bottom of the order.
const TERMINAL_VAR: u32 = u32::MAX;
/// Node indices must leave room for the complement bit.
const MAX_NODE_INDEX: u32 = (u32::MAX >> 1) - 1;

/// Empty slot sentinel in the unique table: node 0 is the terminal and
/// is never hashed.
const UNIQUE_EMPTY: u32 = 0;
/// Initial unique-table capacity (power of two).
const UNIQUE_INITIAL_CAP: usize = 1 << 10;
/// Old-table slots migrated per insert during an incremental rehash.
const UNIQUE_MIGRATE_PER_INSERT: usize = 8;

/// Invalid-entry sentinel for the ITE cache's `f` field (a normalized
/// `f` is a non-terminal uncomplemented edge, so ≥ 2 and even).
const ITE_INVALID: u32 = u32::MAX;
/// Initial ITE-cache capacity (entries, power of two).
const ITE_INITIAL_CAP: usize = 1 << 13;
/// ITE-cache growth ceiling (entries).
const ITE_MAX_CAP: usize = 1 << 22;
/// Quantifier-cache capacity (entries, power of two). Entries are
/// invalidated wholesale per top-level `exists` via a generation tag.
const QUANT_CAP: usize = 1 << 12;

#[inline]
fn fnv_mix(packed: u64, var: u32) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = (FNV_OFFSET ^ packed).wrapping_mul(FNV_PRIME);
    h = (h ^ var as u64).wrapping_mul(FNV_PRIME);
    // Fold the well-mixed high bits down for short power-of-two masks.
    h ^ (h >> 31)
}

#[inline]
fn hash_node(var: u32, lo: u32, hi: u32) -> u64 {
    fnv_mix((lo as u64) | ((hi as u64) << 32), var)
}

/// One entry of the direct-mapped ITE computed cache.
#[derive(Clone, Copy)]
struct IteEntry {
    f: u32,
    g: u32,
    h: u32,
    r: u32,
}

const ITE_EMPTY: IteEntry = IteEntry { f: ITE_INVALID, g: 0, h: 0, r: 0 };

/// One entry of the direct-mapped quantifier cache; `gen` ties the
/// entry to one top-level `exists` call.
#[derive(Clone, Copy)]
struct QuantEntry {
    key: u64,
    gen: u32,
    r: u32,
}

/// A BDD manager: owns the node store, unique table and operation caches.
///
/// # Budgets
///
/// A deterministic [`Budget`] can be installed with [`Bdd::set_budget`];
/// the manager then checks its node count against `max_bdd_nodes` on
/// every allocation and its recursion-step counter against `max_steps`
/// on every cache miss. The `try_*` operation variants surface
/// exhaustion as a typed [`Exhausted`] error; the plain operations are
/// unchanged under the default unlimited budget and *panic* if a finite
/// budget runs out mid-call (budgeted callers must use `try_*`).
///
/// # Examples
///
/// ```
/// use tm_logic::bdd::Bdd;
///
/// let mut bdd = Bdd::new(3);
/// let x0 = bdd.var(0);
/// let x2 = bdd.var(2);
/// let f = bdd.and(x0, x2);
/// assert_eq!(bdd.sat_count(f), 2.0); // x1 free
/// let g = bdd.or(f, x0);
/// assert_eq!(g, x0); // absorption, found structurally
/// ```
pub struct Bdd {
    num_vars: u32,
    /// Struct-of-arrays node store; entry 0 is the shared terminal.
    vars: Vec<u32>,
    los: Vec<u32>,
    his: Vec<u32>,
    /// Open-addressed unique table: slots hold node indices,
    /// [`UNIQUE_EMPTY`] marks a free slot.
    u_slots: Vec<u32>,
    /// Previous table during an incremental rehash (empty otherwise).
    u_old: Vec<u32>,
    /// Next `u_old` slot to migrate.
    u_cursor: usize,
    /// Direct-mapped lossy ITE computed cache.
    ite_cache: Vec<IteEntry>,
    /// Direct-mapped lossy quantifier cache.
    quant_cache: Vec<QuantEntry>,
    quant_gen: u32,
    stats: BddStats,
    /// Stats as of the last [`Bdd::publish_metrics`] call, so repeated
    /// publishes from one manager emit deltas, never double-counts.
    published: BddStats,
    /// Deterministic limits; unlimited unless [`Bdd::set_budget`] is
    /// called.
    budget: Budget,
    /// Budgeted recursion steps taken (ITE and quantifier cache misses).
    steps: u64,
}

/// Lifetime operation counts of one [`Bdd`] manager.
///
/// Counted unconditionally on plain fields — keeping the hot `mk` /
/// `ite_rec` paths free of any telemetry-gating branches — and pushed
/// into `tm-telemetry` only when [`Bdd::publish_metrics`] is called.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BddStats {
    /// `mk` calls resolved from the unique table (node already existed).
    pub unique_hits: u64,
    /// `mk` calls that allocated a fresh node.
    pub unique_misses: u64,
    /// Unique-table growths (each starts an incremental rehash).
    pub unique_rehashes: u64,
    /// `ite` recursions resolved from the computed-cache.
    pub ite_cache_hits: u64,
    /// `ite` recursions that had to expand (and then filled the cache).
    pub ite_cache_misses: u64,
    /// Live ITE-cache entries overwritten by a colliding fill (the
    /// direct-mapped cache is lossy: an eviction costs a recomputation
    /// later, never a wrong result).
    pub ite_cache_evictions: u64,
    /// Quantifier recursions resolved from the quantifier cache.
    pub quant_cache_hits: u64,
    /// Quantifier recursions that had to expand.
    pub quant_cache_misses: u64,
    /// Times the operation caches were dropped via
    /// [`Bdd::clear_op_caches`].
    pub op_cache_clears: u64,
}

impl fmt::Debug for Bdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bdd({} vars, {} nodes)", self.num_vars, self.vars.len())
    }
}

impl Bdd {
    /// Creates a manager for functions over `num_vars` variables, ordered
    /// by ascending index.
    pub fn new(num_vars: usize) -> Self {
        Self::with_cache_capacity(num_vars, ITE_INITIAL_CAP)
    }

    /// Creates a manager with an explicit initial ITE computed-cache
    /// capacity (rounded up to a power of two, minimum 2). Smaller
    /// caches trade hit rate for memory; because the cache is lossy,
    /// capacity never affects any result — only the stats.
    pub fn with_cache_capacity(num_vars: usize, ite_entries: usize) -> Self {
        let ite_cap = ite_entries.next_power_of_two().max(2);
        Bdd {
            num_vars: num_vars as u32,
            vars: vec![TERMINAL_VAR],
            los: vec![ONE],
            his: vec![ONE],
            u_slots: vec![UNIQUE_EMPTY; UNIQUE_INITIAL_CAP],
            u_old: Vec::new(),
            u_cursor: 0,
            ite_cache: vec![ITE_EMPTY; ite_cap],
            quant_cache: vec![QuantEntry { key: 0, gen: 0, r: 0 }; QUANT_CAP],
            quant_gen: 0,
            stats: BddStats::default(),
            published: BddStats::default(),
            budget: Budget::unlimited(),
            steps: 0,
        }
    }

    /// Installs a computation budget. Limits apply to the manager's
    /// *lifetime* counters: nodes already allocated count against
    /// `max_bdd_nodes` and steps already taken against `max_steps`, so
    /// budgeted phases normally start from a fresh manager.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// The installed budget (unlimited by default).
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// Removes any installed budget.
    pub fn clear_budget(&mut self) {
        self.budget = Budget::unlimited();
    }

    /// Budgeted recursion steps taken so far (cache misses in apply and
    /// quantification).
    pub fn steps_taken(&self) -> u64 {
        self.steps
    }

    /// Unwraps an operation result for the infallible API: only a
    /// finite budget can make this panic.
    #[track_caller]
    fn infallible<T>(r: Result<T, Exhausted>) -> T {
        r.unwrap_or_else(|e| panic!("{e}; budgeted callers must use the try_* API"))
    }

    /// Charges one recursion step against the budget.
    fn charge_step(&mut self) -> Result<(), Exhausted> {
        self.budget.check_steps(self.steps)?;
        self.steps += 1;
        Ok(())
    }

    /// Number of variables in the manager's space.
    pub fn num_vars(&self) -> usize {
        self.num_vars as usize
    }

    /// Total nodes allocated so far (a capacity/effort metric; includes
    /// the shared terminal).
    pub fn node_count(&self) -> usize {
        self.vars.len()
    }

    /// The constant-false function.
    pub fn zero(&self) -> BddRef {
        BddRef(ZERO)
    }

    /// The constant-true function.
    pub fn one(&self) -> BddRef {
        BddRef(ONE)
    }

    /// The projection function of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn var(&mut self, var: usize) -> BddRef {
        Self::infallible(self.try_var(var))
    }

    /// Budget-checked [`Bdd::var`].
    pub fn try_var(&mut self, var: usize) -> Result<BddRef, Exhausted> {
        assert!((var as u32) < self.num_vars, "variable {var} out of range");
        Ok(BddRef(self.mk(var as u32, ZERO, ONE)?))
    }

    /// The negated projection of variable `var`.
    pub fn nvar(&mut self, var: usize) -> BddRef {
        Self::infallible(self.try_nvar(var))
    }

    /// Budget-checked [`Bdd::nvar`].
    pub fn try_nvar(&mut self, var: usize) -> Result<BddRef, Exhausted> {
        assert!((var as u32) < self.num_vars, "variable {var} out of range");
        Ok(BddRef(self.mk(var as u32, ONE, ZERO)?))
    }

    /// A literal: variable `var` with the given polarity.
    pub fn literal(&mut self, var: usize, polarity: bool) -> BddRef {
        Self::infallible(self.try_literal(var, polarity))
    }

    /// Budget-checked [`Bdd::literal`].
    pub fn try_literal(&mut self, var: usize, polarity: bool) -> Result<BddRef, Exhausted> {
        if polarity {
            self.try_var(var)
        } else {
            self.try_nvar(var)
        }
    }

    /// Finds-or-creates the node `(var, lo, hi)` and returns its edge,
    /// normalizing to the canonical polarity: the stored low edge is
    /// never complemented (`mk(v, ¬a, b) = ¬mk(v, a, ¬b)`).
    fn mk(&mut self, var: u32, lo: u32, hi: u32) -> Result<u32, Exhausted> {
        if lo == hi {
            return Ok(lo);
        }
        // Canonical polarity: push a complemented low edge to the output.
        let out = lo & 1;
        let (lo, hi) = (lo ^ out, hi ^ out);
        let hash = hash_node(var, lo, hi);
        if let Some(idx) = self.unique_find(hash, var, lo, hi) {
            self.stats.unique_hits += 1;
            return Ok((idx << 1) | out);
        }
        self.budget.check_bdd_nodes(self.vars.len() as u64)?;
        self.stats.unique_misses += 1;
        let idx = self.vars.len() as u32;
        assert!(idx <= MAX_NODE_INDEX, "BDD node store exceeds 2^31 nodes");
        self.vars.push(var);
        self.los.push(lo);
        self.his.push(hi);
        self.unique_insert(hash, idx);
        Ok((idx << 1) | out)
    }

    /// Probes the unique table (and, mid-rehash, the previous table)
    /// for the node `(var, lo, hi)`.
    #[inline]
    fn unique_find(&self, hash: u64, var: u32, lo: u32, hi: u32) -> Option<u32> {
        let probe = |slots: &[u32]| -> Option<u32> {
            if slots.is_empty() {
                return None;
            }
            let mask = slots.len() - 1;
            let mut i = hash as usize & mask;
            loop {
                let s = slots[i];
                if s == UNIQUE_EMPTY {
                    return None;
                }
                let n = s as usize;
                if self.vars[n] == var && self.los[n] == lo && self.his[n] == hi {
                    return Some(s);
                }
                i = (i + 1) & mask;
            }
        };
        probe(&self.u_slots).or_else(|| probe(&self.u_old))
    }

    /// Inserts a freshly allocated node index, growing (incrementally)
    /// at 3/4 load.
    fn unique_insert(&mut self, hash: u64, idx: u32) {
        // `unique_misses` counts exactly the inserted entries; the old
        // table holds a subset of them mid-rehash, never extras.
        let len = self.stats.unique_misses as usize;
        if len * 4 >= self.u_slots.len() * 3 {
            self.unique_grow();
        }
        self.unique_migrate(UNIQUE_MIGRATE_PER_INSERT);
        Self::slot_insert(&mut self.u_slots, hash, idx);
    }

    #[inline]
    fn slot_insert(slots: &mut [u32], hash: u64, idx: u32) {
        let mask = slots.len() - 1;
        let mut i = hash as usize & mask;
        while slots[i] != UNIQUE_EMPTY {
            i = (i + 1) & mask;
        }
        slots[i] = idx;
    }

    /// Starts an incremental rehash into a table of twice the capacity.
    /// Any rehash still in flight is flushed first.
    fn unique_grow(&mut self) {
        self.unique_migrate(usize::MAX);
        self.stats.unique_rehashes += 1;
        let cap = self.u_slots.len() * 2;
        self.u_old = std::mem::replace(&mut self.u_slots, vec![UNIQUE_EMPTY; cap]);
        self.u_cursor = 0;
    }

    /// Migrates up to `quota` occupied slots from the previous table.
    fn unique_migrate(&mut self, quota: usize) {
        if self.u_old.is_empty() {
            return;
        }
        let mut moved = 0;
        while self.u_cursor < self.u_old.len() && moved < quota {
            let s = self.u_old[self.u_cursor];
            self.u_cursor += 1;
            if s == UNIQUE_EMPTY {
                continue;
            }
            let n = s as usize;
            let hash = hash_node(self.vars[n], self.los[n], self.his[n]);
            // A lookup hit mid-rehash leaves the entry in the old table,
            // so it cannot already be in the new one; insert directly.
            Self::slot_insert(&mut self.u_slots, hash, s);
            moved += 1;
        }
        if self.u_cursor >= self.u_old.len() {
            self.u_old = Vec::new();
            self.u_cursor = 0;
        }
    }

    #[inline]
    fn top_var(&self, e: u32) -> u32 {
        self.vars[(e >> 1) as usize]
    }

    /// Cofactors of edge `e` w.r.t. `var`, complement bit pushed down.
    #[inline]
    fn cofactors(&self, e: u32, var: u32) -> (u32, u32) {
        let i = (e >> 1) as usize;
        if self.vars[i] == var {
            let c = e & 1;
            (self.los[i] ^ c, self.his[i] ^ c)
        } else {
            (e, e)
        }
    }

    /// If-then-else: `ite(f, g, h) = (f ∧ g) ∨ (¬f ∧ h)` — the universal
    /// connective all other operations reduce to.
    pub fn ite(&mut self, f: BddRef, g: BddRef, h: BddRef) -> BddRef {
        Self::infallible(self.try_ite(f, g, h))
    }

    /// Budget-checked [`Bdd::ite`].
    pub fn try_ite(&mut self, f: BddRef, g: BddRef, h: BddRef) -> Result<BddRef, Exhausted> {
        self.ite_cache_maybe_grow();
        Ok(BddRef(self.ite_rec(f.0, g.0, h.0)?))
    }

    /// Doubles the lossy ITE cache (rehashing the surviving entries)
    /// once the node store outgrows it, up to [`ITE_MAX_CAP`]. Called
    /// from operation entry points, never mid-recursion.
    fn ite_cache_maybe_grow(&mut self) {
        let cap = self.ite_cache.len();
        if cap >= ITE_MAX_CAP || self.vars.len() <= cap {
            return;
        }
        let new_cap = (cap * 2).min(ITE_MAX_CAP);
        let old = std::mem::replace(&mut self.ite_cache, vec![ITE_EMPTY; new_cap]);
        let mask = new_cap - 1;
        for e in old {
            if e.f != ITE_INVALID {
                let i = fnv_mix((e.f as u64) | ((e.g as u64) << 32), e.h) as usize & mask;
                self.ite_cache[i] = e;
            }
        }
    }

    fn ite_rec(&mut self, f: u32, mut g: u32, mut h: u32) -> Result<u32, Exhausted> {
        // Terminal cases.
        if f == ONE {
            return Ok(g);
        }
        if f == ZERO {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        // Arguments equal (up to complement) to f collapse to constants.
        if g == f {
            g = ONE;
        } else if g == f ^ 1 {
            g = ZERO;
        }
        if h == f {
            h = ZERO;
        } else if h == f ^ 1 {
            h = ONE;
        }
        if g == h {
            return Ok(g);
        }
        if g == ONE && h == ZERO {
            return Ok(f);
        }
        if g == ZERO && h == ONE {
            return Ok(f ^ 1);
        }
        // Normalize: f uncomplemented (swap branches), then g
        // uncomplemented (complement the result) — so each function
        // family occupies one canonical cache line.
        let (f, g, h) = if f & 1 == 1 { (f ^ 1, h, g) } else { (f, g, h) };
        let out = g & 1;
        let (g, h) = (g ^ out, h ^ out);

        let slot = fnv_mix((f as u64) | ((g as u64) << 32), h) as usize & (self.ite_cache.len() - 1);
        let e = self.ite_cache[slot];
        if e.f == f && e.g == g && e.h == h {
            self.stats.ite_cache_hits += 1;
            return Ok(e.r ^ out);
        }
        self.charge_step()?;
        self.stats.ite_cache_misses += 1;
        let v = self.top_var(f).min(self.top_var(g)).min(self.top_var(h));
        let (f0, f1) = self.cofactors(f, v);
        let (g0, g1) = self.cofactors(g, v);
        let (h0, h1) = self.cofactors(h, v);
        let lo = self.ite_rec(f0, g0, h0)?;
        let hi = self.ite_rec(f1, g1, h1)?;
        let r = self.mk(v, lo, hi)?;
        let e = &mut self.ite_cache[slot];
        if e.f != ITE_INVALID {
            self.stats.ite_cache_evictions += 1;
        }
        *e = IteEntry { f, g, h, r };
        Ok(r ^ out)
    }

    /// Conjunction.
    pub fn and(&mut self, f: BddRef, g: BddRef) -> BddRef {
        Self::infallible(self.try_and(f, g))
    }

    /// Budget-checked [`Bdd::and`].
    pub fn try_and(&mut self, f: BddRef, g: BddRef) -> Result<BddRef, Exhausted> {
        self.ite_cache_maybe_grow();
        Ok(BddRef(self.ite_rec(f.0, g.0, ZERO)?))
    }

    /// Disjunction.
    pub fn or(&mut self, f: BddRef, g: BddRef) -> BddRef {
        Self::infallible(self.try_or(f, g))
    }

    /// Budget-checked [`Bdd::or`].
    pub fn try_or(&mut self, f: BddRef, g: BddRef) -> Result<BddRef, Exhausted> {
        self.ite_cache_maybe_grow();
        Ok(BddRef(self.ite_rec(f.0, ONE, g.0)?))
    }

    /// Negation — with complement edges, a free bit flip.
    pub fn not(&mut self, f: BddRef) -> BddRef {
        BddRef(f.0 ^ 1)
    }

    /// Budget-checked [`Bdd::not`] (infallible: negation allocates
    /// nothing).
    pub fn try_not(&mut self, f: BddRef) -> Result<BddRef, Exhausted> {
        Ok(BddRef(f.0 ^ 1))
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: BddRef, g: BddRef) -> BddRef {
        Self::infallible(self.try_xor(f, g))
    }

    /// Budget-checked [`Bdd::xor`].
    pub fn try_xor(&mut self, f: BddRef, g: BddRef) -> Result<BddRef, Exhausted> {
        self.ite_cache_maybe_grow();
        Ok(BddRef(self.ite_rec(f.0, g.0 ^ 1, g.0)?))
    }

    /// Exclusive nor (equivalence).
    pub fn xnor(&mut self, f: BddRef, g: BddRef) -> BddRef {
        Self::infallible(self.try_xnor(f, g))
    }

    /// Budget-checked [`Bdd::xnor`].
    pub fn try_xnor(&mut self, f: BddRef, g: BddRef) -> Result<BddRef, Exhausted> {
        let x = self.try_xor(f, g)?;
        self.try_not(x)
    }

    /// Material implication `f ⇒ g`.
    pub fn implies(&mut self, f: BddRef, g: BddRef) -> BddRef {
        Self::infallible(self.try_implies(f, g))
    }

    /// Budget-checked [`Bdd::implies`].
    pub fn try_implies(&mut self, f: BddRef, g: BddRef) -> Result<BddRef, Exhausted> {
        self.ite_cache_maybe_grow();
        Ok(BddRef(self.ite_rec(f.0, g.0, ONE)?))
    }

    /// Difference `f ∧ ¬g`.
    pub fn diff(&mut self, f: BddRef, g: BddRef) -> BddRef {
        Self::infallible(self.try_diff(f, g))
    }

    /// Budget-checked [`Bdd::diff`].
    pub fn try_diff(&mut self, f: BddRef, g: BddRef) -> Result<BddRef, Exhausted> {
        self.ite_cache_maybe_grow();
        Ok(BddRef(self.ite_rec(f.0, g.0 ^ 1, ZERO)?))
    }

    /// Conjunction over an iterator (balanced fold to keep intermediate
    /// BDDs small).
    pub fn and_all<I: IntoIterator<Item = BddRef>>(&mut self, items: I) -> BddRef {
        Self::infallible(self.try_and_all(items))
    }

    /// Budget-checked [`Bdd::and_all`].
    pub fn try_and_all<I: IntoIterator<Item = BddRef>>(
        &mut self,
        items: I,
    ) -> Result<BddRef, Exhausted> {
        let mut v: Vec<BddRef> = items.into_iter().collect();
        if v.is_empty() {
            return Ok(self.one());
        }
        while v.len() > 1 {
            let mut next = Vec::with_capacity(v.len().div_ceil(2));
            for pair in v.chunks(2) {
                next.push(if pair.len() == 2 { self.try_and(pair[0], pair[1])? } else { pair[0] });
            }
            v = next;
        }
        Ok(v[0])
    }

    /// Disjunction over an iterator (balanced fold).
    pub fn or_all<I: IntoIterator<Item = BddRef>>(&mut self, items: I) -> BddRef {
        Self::infallible(self.try_or_all(items))
    }

    /// Budget-checked [`Bdd::or_all`].
    pub fn try_or_all<I: IntoIterator<Item = BddRef>>(
        &mut self,
        items: I,
    ) -> Result<BddRef, Exhausted> {
        let mut v: Vec<BddRef> = items.into_iter().collect();
        if v.is_empty() {
            return Ok(self.zero());
        }
        while v.len() > 1 {
            let mut next = Vec::with_capacity(v.len().div_ceil(2));
            for pair in v.chunks(2) {
                next.push(if pair.len() == 2 { self.try_or(pair[0], pair[1])? } else { pair[0] });
            }
            v = next;
        }
        Ok(v[0])
    }

    /// Whether `f ⊆ g` as sets of satisfying assignments.
    pub fn is_subset(&mut self, f: BddRef, g: BddRef) -> bool {
        Self::infallible(self.try_is_subset(f, g))
    }

    /// Budget-checked [`Bdd::is_subset`].
    pub fn try_is_subset(&mut self, f: BddRef, g: BddRef) -> Result<bool, Exhausted> {
        Ok(self.try_diff(f, g)? == self.zero())
    }

    /// Evaluates the function on an explicit assignment (`assignment[i]` =
    /// value of variable `i`).
    ///
    /// # Panics
    ///
    /// Panics if the assignment is shorter than the deepest variable
    /// consulted.
    pub fn eval(&self, f: BddRef, assignment: &[bool]) -> bool {
        let mut e = f.0;
        loop {
            let i = (e >> 1) as usize;
            if i == 0 {
                return e == ONE;
            }
            let next = if assignment[self.vars[i] as usize] { self.his[i] } else { self.los[i] };
            e = next ^ (e & 1);
        }
    }

    /// Number of satisfying assignments over the full `num_vars` space.
    ///
    /// Exact up to `f64` precision; valid for up to ~1000 variables
    /// (2¹⁰⁰⁰ < `f64::MAX`).
    pub fn sat_count(&self, f: BddRef) -> f64 {
        self.sat_fraction(f) * (self.num_vars as f64).exp2()
    }

    /// Satisfying-assignment *fraction* of the full space — numerically
    /// robust beyond 1000 variables.
    ///
    /// With complement edges this is the natural recursion: the
    /// fraction of a node is the mean of its children's fractions, and
    /// a complemented edge contributes `1 − p`. All intermediate values
    /// are dyadic, so counts stay exact as long as they fit a `f64`.
    pub fn sat_fraction(&self, f: BddRef) -> f64 {
        let mut memo: HashMap<u32, f64> = HashMap::new();
        self.fraction_rec(f.0, &mut memo)
    }

    /// The satisfying fraction of edge `e`; `memo` caches per node
    /// index (the uncomplemented edge's fraction).
    fn fraction_rec(&self, e: u32, memo: &mut HashMap<u32, f64>) -> f64 {
        let i = e >> 1;
        let p = if i == 0 {
            1.0
        } else if let Some(&p) = memo.get(&i) {
            p
        } else {
            let n = i as usize;
            let p = 0.5 * (self.fraction_rec(self.los[n], memo) + self.fraction_rec(self.his[n], memo));
            memo.insert(i, p);
            p
        };
        if e & 1 == 1 {
            1.0 - p
        } else {
            p
        }
    }

    /// One satisfying assignment, or `None` for the zero function. Free
    /// variables are returned as `false`.
    pub fn pick_sat(&self, f: BddRef) -> Option<Vec<bool>> {
        if f.0 == ZERO {
            return None;
        }
        let mut assignment = vec![false; self.num_vars as usize];
        let mut e = f.0;
        while e >> 1 != 0 {
            let i = (e >> 1) as usize;
            let c = e & 1;
            let lo = self.los[i] ^ c;
            if lo != ZERO {
                e = lo;
            } else {
                assignment[self.vars[i] as usize] = true;
                e = self.his[i] ^ c;
            }
        }
        debug_assert_eq!(e, ONE, "a non-zero function must reach ⊤");
        Some(assignment)
    }

    /// Samples a satisfying assignment approximately uniformly.
    ///
    /// `unit_random` must return values in `[0, 1)`; each call consumes
    /// a few of them. Returns `None` for the zero function. Sampling is
    /// weighted by exact satisfy-fractions, so it is uniform up to `f64`
    /// rounding.
    ///
    /// # Examples
    ///
    /// ```
    /// use tm_logic::bdd::Bdd;
    ///
    /// let mut b = Bdd::new(4);
    /// let x0 = b.var(0);
    /// let x3 = b.var(3);
    /// let f = b.and(x0, x3);
    /// let mut state = 0.7_f64;
    /// let sample = b
    ///     .sample_sat(f, || {
    ///         state = (state * 9301.0 + 49297.0) % 233280.0 / 233280.0;
    ///         state
    ///     })
    ///     .expect("satisfiable");
    /// assert!(b.eval(f, &sample));
    /// ```
    pub fn sample_sat(&self, f: BddRef, mut unit_random: impl FnMut() -> f64) -> Option<Vec<bool>> {
        if f.0 == ZERO {
            return None;
        }
        let mut memo: HashMap<u32, f64> = HashMap::new();
        let mut assignment = vec![false; self.num_vars as usize];
        // Free variables above the root.
        let mut next_var = 0u32;
        let mut e = f.0;
        loop {
            let i = (e >> 1) as usize;
            let node_var = if i == 0 { self.num_vars } else { self.vars[i] };
            while next_var < node_var {
                assignment[next_var as usize] = unit_random() < 0.5;
                next_var += 1;
            }
            if i == 0 {
                break;
            }
            let c = e & 1;
            let lo = self.los[i] ^ c;
            let hi = self.his[i] ^ c;
            let lo_weight = self.fraction_rec(lo, &mut memo);
            let hi_weight = self.fraction_rec(hi, &mut memo);
            let take_hi = unit_random() * (lo_weight + hi_weight) >= lo_weight;
            assignment[self.vars[i] as usize] = take_hi;
            e = if take_hi { hi } else { lo };
            next_var = node_var + 1;
        }
        Some(assignment)
    }

    /// Restricts variable `var` to a constant.
    pub fn restrict(&mut self, f: BddRef, var: usize, value: bool) -> BddRef {
        Self::infallible(self.try_restrict(f, var, value))
    }

    /// Budget-checked [`Bdd::restrict`].
    pub fn try_restrict(
        &mut self,
        f: BddRef,
        var: usize,
        value: bool,
    ) -> Result<BddRef, Exhausted> {
        let lit = self.try_literal(var, value)?;
        // restrict(f, v=c) = ∃v. (f ∧ (v=c))
        let g = self.try_and(f, lit)?;
        self.try_exists(g, &[var])
    }

    /// Existential quantification over a set of variables.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 distinct variables are quantified at once or
    /// any index is out of range.
    pub fn exists(&mut self, f: BddRef, vars: &[usize]) -> BddRef {
        Self::infallible(self.try_exists(f, vars))
    }

    /// Budget-checked [`Bdd::exists`].
    pub fn try_exists(&mut self, f: BddRef, vars: &[usize]) -> Result<BddRef, Exhausted> {
        assert!(vars.len() <= 64, "quantify at most 64 variables per call");
        let mut sorted: Vec<u32> = vars.iter().map(|&v| v as u32).collect();
        sorted.sort_unstable();
        sorted.dedup();
        for &v in &sorted {
            assert!(v < self.num_vars, "variable {v} out of range");
        }
        self.ite_cache_maybe_grow();
        // Invalidate the quantifier cache wholesale: its keys are only
        // meaningful relative to one sorted variable set.
        self.quant_gen = self.quant_gen.wrapping_add(1);
        Ok(BddRef(self.exists_rec(f.0, &sorted, 0)?))
    }

    /// Quantifier recursion. `from` indexes into the sorted `vars`
    /// suffix still to be quantified — because variables are visited in
    /// order, the remaining set is always a suffix, so the cache key is
    /// the packed `(edge, suffix start)` pair.
    fn exists_rec(&mut self, e: u32, vars: &[u32], mut from: usize) -> Result<u32, Exhausted> {
        if e >> 1 == 0 {
            return Ok(e);
        }
        let i = (e >> 1) as usize;
        let var = self.vars[i];
        // Quantified variables above the root are vacuous.
        while from < vars.len() && vars[from] < var {
            from += 1;
        }
        if from == vars.len() {
            return Ok(e);
        }
        debug_assert!(from < 1 << 32, "suffix index fits the packed key");
        let key = (e as u64) | ((from as u64) << 32);
        let slot = fnv_mix(key, 0x9E) as usize & (self.quant_cache.len() - 1);
        let q = self.quant_cache[slot];
        if q.key == key && q.gen == self.quant_gen {
            self.stats.quant_cache_hits += 1;
            return Ok(q.r);
        }
        self.charge_step()?;
        self.stats.quant_cache_misses += 1;
        let c = e & 1;
        let lo = self.los[i] ^ c;
        let hi = self.his[i] ^ c;
        let r = if vars[from] == var {
            let l = self.exists_rec(lo, vars, from + 1)?;
            let h = self.exists_rec(hi, vars, from + 1)?;
            self.ite_rec(l, ONE, h)?
        } else {
            let l = self.exists_rec(lo, vars, from)?;
            let h = self.exists_rec(hi, vars, from)?;
            self.mk(var, l, h)?
        };
        self.quant_cache[slot] = QuantEntry { key, gen: self.quant_gen, r };
        Ok(r)
    }

    /// The support of `f`: variables it structurally depends on.
    pub fn support(&self, f: BddRef) -> Vec<usize> {
        let mut seen = std::collections::HashSet::new();
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![f.0 >> 1];
        while let Some(i) = stack.pop() {
            if i == 0 || !seen.insert(i) {
                continue;
            }
            let n = i as usize;
            vars.insert(self.vars[n] as usize);
            stack.push(self.los[n] >> 1);
            stack.push(self.his[n] >> 1);
        }
        vars.into_iter().collect()
    }

    /// Number of BDD nodes reachable from `f` (its size): the count of
    /// distinct non-constant subfunctions, i.e. the node count of the
    /// function's plain (complement-free) reduced graph.
    pub fn size(&self, f: BddRef) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f.0];
        let mut count = 0;
        while let Some(e) = stack.pop() {
            if e >> 1 == 0 || !seen.insert(e) {
                continue;
            }
            count += 1;
            let i = (e >> 1) as usize;
            let c = e & 1;
            stack.push(self.los[i] ^ c);
            stack.push(self.his[i] ^ c);
        }
        count
    }

    /// Builds the BDD of a cube over manager variables given `(var,
    /// polarity)` literals.
    pub fn cube(&mut self, literals: &[(usize, bool)]) -> BddRef {
        Self::infallible(self.try_cube(literals))
    }

    /// Budget-checked [`Bdd::cube`].
    pub fn try_cube(&mut self, literals: &[(usize, bool)]) -> Result<BddRef, Exhausted> {
        let mut lits = Vec::with_capacity(literals.len());
        for &(v, p) in literals {
            lits.push(self.try_literal(v, p)?);
        }
        self.try_and_all(lits)
    }

    /// Clears the operation caches (the unique table is preserved, so all
    /// existing [`BddRef`]s stay valid). Useful between independent
    /// workloads to bound memory.
    pub fn clear_op_caches(&mut self) {
        self.stats.op_cache_clears += 1;
        self.ite_cache.fill(ITE_EMPTY);
        self.quant_gen = self.quant_gen.wrapping_add(1);
    }

    /// This manager's lifetime operation counts.
    pub fn stats(&self) -> BddStats {
        self.stats
    }

    /// Occupancy of the unique table (reduced, non-terminal nodes).
    pub fn unique_entries(&self) -> usize {
        self.stats.unique_misses as usize
    }

    /// Checks the structural invariants of the node store and unique
    /// table; returns a description of the first violation. Intended
    /// for tests and debugging — cost is linear in the store.
    ///
    /// Invariants: the low edge of every stored node is uncomplemented
    /// (canonical polarity), no node is redundant (`lo == hi`) or
    /// duplicated, variable order is strict along both edges, children
    /// precede parents, and every node is findable in the unique table.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut seen = std::collections::HashSet::new();
        for i in 1..self.vars.len() {
            let (v, lo, hi) = (self.vars[i], self.los[i], self.his[i]);
            if lo & 1 != 0 {
                return Err(format!("node {i}: complemented low edge"));
            }
            if v >= self.num_vars {
                return Err(format!("node {i}: variable {v} out of range"));
            }
            if lo == hi {
                return Err(format!("node {i}: redundant (lo == hi)"));
            }
            for (label, child) in [("lo", lo), ("hi", hi)] {
                let ci = (child >> 1) as usize;
                if ci >= i {
                    return Err(format!("node {i}: {label} child {ci} does not precede it"));
                }
                if ci != 0 && self.vars[ci] <= v {
                    return Err(format!("node {i}: {label} child violates variable order"));
                }
            }
            if !seen.insert((v, lo, hi)) {
                return Err(format!("node {i}: duplicate (var, lo, hi) triple"));
            }
            if self.unique_find(hash_node(v, lo, hi), v, lo, hi) != Some(i as u32) {
                return Err(format!("node {i}: not findable in the unique table"));
            }
        }
        Ok(())
    }

    /// Publishes this manager's counts to `tm-telemetry` under the
    /// `bdd.*` names: counters get the delta since the previous
    /// publish (safe to call repeatedly from nested instrumentation),
    /// gauges get the current node and unique-table occupancy.
    pub fn publish_metrics(&mut self) {
        // Coarse flight-recorder checkpoint: one instant event per
        // publish carrying the manager's size, so request traces show
        // BDD growth without per-operation overhead. Gated separately
        // from the metrics below — the serving daemon records flight
        // events even when thread-local metrics are off.
        if tm_telemetry::flight::recording() {
            tm_telemetry::flight::instant(
                "bdd.publish",
                &[
                    ("nodes", self.vars.len() as f64),
                    ("cache_hits", self.stats.ite_cache_hits as f64),
                    ("cache_misses", self.stats.ite_cache_misses as f64),
                ],
            );
        }
        if !tm_telemetry::enabled() {
            return;
        }
        let s = self.stats;
        let p = self.published;
        self.published = s;
        tm_telemetry::counter_add("bdd.unique.hits", s.unique_hits - p.unique_hits);
        tm_telemetry::counter_add("bdd.unique.misses", s.unique_misses - p.unique_misses);
        tm_telemetry::counter_add("bdd.unique.rehashes", s.unique_rehashes - p.unique_rehashes);
        tm_telemetry::counter_add("bdd.cache.hits", s.ite_cache_hits - p.ite_cache_hits);
        tm_telemetry::counter_add("bdd.cache.misses", s.ite_cache_misses - p.ite_cache_misses);
        tm_telemetry::counter_add(
            "bdd.cache.evictions",
            s.ite_cache_evictions - p.ite_cache_evictions,
        );
        tm_telemetry::counter_add("bdd.cache.clears", s.op_cache_clears - p.op_cache_clears);
        tm_telemetry::counter_add("bdd.quant.hits", s.quant_cache_hits - p.quant_cache_hits);
        tm_telemetry::counter_add("bdd.quant.misses", s.quant_cache_misses - p.quant_cache_misses);
        tm_telemetry::gauge_set("bdd.nodes", self.vars.len() as f64);
        tm_telemetry::gauge_set("bdd.unique.entries", self.unique_entries() as f64);
    }

    /// Exports `f` as a manager-independent [`PortableBdd`].
    ///
    /// The node list is in deterministic *structural* order: a
    /// depth-first walk from the root that finishes the `lo` subgraph
    /// before the `hi` subgraph and emits each node once, children
    /// first. Complement edges are resolved during the walk — each
    /// reachable `(node, parity)` pair is one distinct subfunction and
    /// exports as one plain entry — so the encoding depends only on the
    /// function's reduced graph, never on this manager's node indices,
    /// allocation history, or complement-edge placement. Two managers
    /// holding equal functions export byte-identical `PortableBdd`s.
    /// That is the property the parallel SPCF driver's determinism
    /// rests on: importing the same exports in the same order replays
    /// the same `mk` sequence in the target manager regardless of which
    /// worker produced them.
    pub fn export(&self, f: BddRef) -> PortableBdd {
        let mut ids: HashMap<u32, u32> = HashMap::new();
        ids.insert(ZERO, 0);
        ids.insert(ONE, 1);
        let mut entries: Vec<(u32, u32, u32)> = Vec::new();
        let mut stack = vec![(f.0, false)];
        while let Some((e, expanded)) = stack.pop() {
            if ids.contains_key(&e) {
                continue;
            }
            let i = (e >> 1) as usize;
            let c = e & 1;
            let lo = self.los[i] ^ c;
            let hi = self.his[i] ^ c;
            if expanded {
                entries.push((self.vars[i], ids[&lo], ids[&hi]));
                ids.insert(e, entries.len() as u32 + 1);
            } else {
                stack.push((e, true));
                stack.push((hi, false));
                stack.push((lo, false)); // popped first: lo finishes first
            }
        }
        PortableBdd { num_vars: self.num_vars, entries, root: ids[&f.0] }
    }

    /// Rebuilds an exported function in this manager.
    ///
    /// # Panics
    ///
    /// Panics if the export came from a manager with a different
    /// variable count, or (like every plain operation) if a finite
    /// budget runs out — budgeted callers use [`Bdd::try_import`].
    pub fn import(&mut self, portable: &PortableBdd) -> BddRef {
        Self::infallible(self.try_import(portable))
    }

    /// Budget-checked [`Bdd::import`]: every node materialized in this
    /// manager goes through the same budgeted `mk` as native
    /// operations, so an import cannot overrun an installed [`Budget`].
    pub fn try_import(&mut self, portable: &PortableBdd) -> Result<BddRef, Exhausted> {
        assert_eq!(
            portable.num_vars, self.num_vars,
            "import requires matching variable spaces"
        );
        let mut ids: Vec<u32> = Vec::with_capacity(portable.entries.len() + 2);
        ids.push(ZERO);
        ids.push(ONE);
        for &(var, lo, hi) in &portable.entries {
            let edge = self.mk(var, ids[lo as usize], ids[hi as usize])?;
            ids.push(edge);
        }
        Ok(BddRef(ids[portable.root as usize]))
    }
}

/// A manager-independent encoding of one BDD function, produced by
/// [`Bdd::export`] and consumed by [`Bdd::import`].
///
/// Entry `i` holds `(var, lo, hi)` where `lo`/`hi` are `0` (false),
/// `1` (true), or `j + 2` referring to entry `j < i` — children always
/// precede parents. The encoding is the function's *plain*
/// (complement-free) reduced graph, so it is independent of the
/// exporting manager's complement-edge placement. Equal functions
/// export equal values (see [`Bdd::export`] for the ordering
/// guarantee), which makes this the unit of cross-thread BDD transfer
/// in the parallel SPCF driver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PortableBdd {
    num_vars: u32,
    entries: Vec<(u32, u32, u32)>,
    root: u32,
}

impl PortableBdd {
    /// Variable-space size of the exporting manager.
    pub fn num_vars(&self) -> usize {
        self.num_vars as usize
    }

    /// Number of internal nodes in the encoding (the function's size).
    pub fn node_count(&self) -> usize {
        self.entries.len()
    }

    /// The `(var, lo, hi)` entries, children before parents (see the
    /// type docs for the reference encoding).
    pub fn entries(&self) -> &[(u32, u32, u32)] {
        &self.entries
    }

    /// The root reference: `0` (false), `1` (true), or entry `root - 2`.
    pub fn root(&self) -> u32 {
        self.root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_and_vars() {
        let mut b = Bdd::new(4);
        assert_ne!(b.zero(), b.one());
        let x = b.var(2);
        assert_eq!(b.sat_count(x), 8.0);
        let nx = b.not(x);
        assert_eq!(b.sat_count(nx), 8.0);
        let both = b.and(x, nx);
        assert_eq!(both, b.zero());
        let either = b.or(x, nx);
        assert_eq!(either, b.one());
    }

    #[test]
    fn negation_is_free_and_involutive() {
        let mut b = Bdd::new(3);
        let x = b.var(0);
        let y = b.var(1);
        let f = b.and(x, y);
        let nodes = b.node_count();
        let steps = b.steps_taken();
        let nf = b.not(f);
        assert_eq!(b.node_count(), nodes, "complement edges: negation allocates nothing");
        assert_eq!(b.steps_taken(), steps, "negation takes no recursion steps");
        assert_ne!(nf, f);
        let back = b.not(nf);
        assert_eq!(back, f);
        assert_eq!(b.not(b.one()), b.zero());
    }

    #[test]
    fn canonicity_detects_equivalence() {
        let mut b = Bdd::new(3);
        let x = b.var(0);
        let y = b.var(1);
        // x ∨ (x ∧ y) == x (absorption)
        let xy = b.and(x, y);
        let f = b.or(x, xy);
        assert_eq!(f, x);
        // De Morgan
        let nx = b.not(x);
        let ny = b.not(y);
        let and_xy = b.and(x, y);
        let lhs = b.not(and_xy);
        let rhs = b.or(nx, ny);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn sat_count_various() {
        let mut b = Bdd::new(10);
        let x0 = b.var(0);
        let x9 = b.var(9);
        let f = b.and(x0, x9);
        assert_eq!(b.sat_count(f), 256.0);
        let g = b.or(x0, x9);
        assert_eq!(b.sat_count(g), 768.0);
        let h = b.xor(x0, x9);
        assert_eq!(b.sat_count(h), 512.0);
        assert_eq!(b.sat_count(b.zero()), 0.0);
        assert_eq!(b.sat_count(b.one()), 1024.0);
        assert!((b.sat_fraction(h) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sat_count_wide_space() {
        // Hundreds of variables: counts stay finite in f64.
        let mut b = Bdd::new(900);
        let x = b.var(0);
        let count = b.sat_count(x);
        assert!(count.is_finite());
        assert_eq!(count, (899f64).exp2());
    }

    #[test]
    fn eval_walks_the_graph() {
        let mut b = Bdd::new(3);
        let x0 = b.var(0);
        let x1 = b.var(1);
        let x2 = b.var(2);
        let t = b.and(x0, x1);
        let f = b.or(t, x2);
        for m in 0..8u64 {
            let a: Vec<bool> = (0..3).map(|i| (m >> i) & 1 == 1).collect();
            let expect = (a[0] && a[1]) || a[2];
            assert_eq!(b.eval(f, &a), expect, "m={m}");
        }
    }

    #[test]
    fn pick_sat_finds_model() {
        let mut b = Bdd::new(4);
        let x1 = b.var(1);
        let nx3 = b.nvar(3);
        let f = b.and(x1, nx3);
        let m = b.pick_sat(f).expect("satisfiable");
        assert!(b.eval(f, &m));
        assert!(b.pick_sat(b.zero()).is_none());
        assert!(b.pick_sat(b.one()).is_some());
    }

    #[test]
    fn restrict_and_exists() {
        let mut b = Bdd::new(3);
        let x0 = b.var(0);
        let x1 = b.var(1);
        let f = b.xor(x0, x1);
        let r1 = b.restrict(f, 0, true);
        let nx1 = b.not(x1);
        assert_eq!(r1, nx1);
        let e = b.exists(f, &[0]);
        assert_eq!(e, b.one());
        let g = b.and(x0, x1);
        let eg = b.exists(g, &[0]);
        assert_eq!(eg, x1);
        let eg2 = b.exists(g, &[0, 1]);
        assert_eq!(eg2, b.one());
    }

    #[test]
    fn support_and_size() {
        let mut b = Bdd::new(5);
        let x1 = b.var(1);
        let x4 = b.var(4);
        let f = b.xor(x1, x4);
        assert_eq!(b.support(f), vec![1, 4]);
        assert_eq!(b.size(f), 3); // xor of 2 vars: 3 distinct subfunctions
        assert_eq!(b.support(b.one()), Vec::<usize>::new());
    }

    #[test]
    fn cube_builder() {
        let mut b = Bdd::new(4);
        let c = b.cube(&[(0, true), (3, false)]);
        assert_eq!(b.sat_count(c), 4.0);
        assert!(b.eval(c, &[true, false, false, false]));
        assert!(!b.eval(c, &[true, false, false, true]));
        assert_eq!(b.cube(&[]), b.one());
    }

    #[test]
    fn subset_relation() {
        let mut b = Bdd::new(3);
        let x0 = b.var(0);
        let x1 = b.var(1);
        let f = b.and(x0, x1);
        assert!(b.is_subset(f, x0));
        assert!(!b.is_subset(x0, f));
        let z = b.zero();
        assert!(b.is_subset(z, f));
    }

    #[test]
    fn implies_and_diff() {
        let mut b = Bdd::new(2);
        let x = b.var(0);
        let y = b.var(1);
        let imp = b.implies(x, y);
        // x ⇒ y false only on x=1,y=0
        assert_eq!(b.sat_count(imp), 3.0);
        let d = b.diff(x, y);
        assert_eq!(b.sat_count(d), 1.0);
    }

    #[test]
    fn balanced_folds() {
        let mut b = Bdd::new(8);
        let lits: Vec<BddRef> = (0..8).map(|i| b.var(i)).collect();
        let all = b.and_all(lits.clone());
        assert_eq!(b.sat_count(all), 1.0);
        let any = b.or_all(lits);
        assert_eq!(b.sat_count(any), 255.0);
        assert_eq!(b.and_all(Vec::new()), b.one());
        assert_eq!(b.or_all(Vec::new()), b.zero());
    }

    #[test]
    fn xnor_is_negated_xor() {
        let mut b = Bdd::new(2);
        let x = b.var(0);
        let y = b.var(1);
        let a = b.xnor(x, y);
        let x2 = b.xor(x, y);
        let n = b.not(x2);
        assert_eq!(a, n);
    }

    #[test]
    fn invariants_hold_after_mixed_workload() {
        let mut b = Bdd::new(10);
        let lits: Vec<BddRef> = (0..10).map(|i| b.literal(i, i % 2 == 0)).collect();
        let mut f = b.zero();
        for w in lits.windows(3) {
            let t = b.and(w[0], w[1]);
            let u = b.xor(t, w[2]);
            f = b.or(f, u);
        }
        let _ = b.exists(f, &[0, 3, 7]);
        let _ = b.restrict(f, 5, true);
        b.check_invariants().expect("canonical store");
    }

    #[test]
    fn unique_table_grows_through_incremental_rehash() {
        // Allocate well past several growth thresholds and verify every
        // node stays findable (lookups probe both tables mid-rehash).
        let build = |b: &mut Bdd| {
            let mut acc = b.zero();
            for m in 0..400u64 {
                let bits = m.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let lits: Vec<(usize, bool)> =
                    (0..16).map(|v| (v, (bits >> v) & 1 == 1)).collect();
                let c = b.cube(&lits);
                acc = b.xor(acc, c);
            }
            acc
        };
        let mut b = Bdd::new(16);
        let f = build(&mut b);
        let nodes = b.node_count();
        let g = build(&mut b);
        assert_eq!(f, g, "rebuilt function must hit the unique table, not reallocate");
        assert_eq!(b.node_count(), nodes, "second build allocates nothing");
        assert!(b.stats().unique_rehashes >= 1, "the workload must outgrow the initial table");
        b.check_invariants().expect("canonical store after rehashes");
    }

    #[test]
    fn lossy_cache_changes_stats_never_results() {
        // A 2-entry ITE cache thrashes constantly; results must match a
        // default manager's exactly (compared via structural exports).
        let mut tiny = Bdd::with_cache_capacity(12, 2);
        let mut full = Bdd::new(12);
        let build = |b: &mut Bdd| {
            let lits: Vec<BddRef> = (0..12).map(|i| b.var(i)).collect();
            let mut acc = b.zero();
            for w in lits.windows(4) {
                let t = b.and(w[0], w[1]);
                let u = b.xor(w[2], w[3]);
                let v = b.or(t, u);
                acc = b.xor(acc, v);
            }
            acc
        };
        let f_tiny = build(&mut tiny);
        let f_full = build(&mut full);
        assert_eq!(tiny.export(f_tiny), full.export(f_full));
        assert!(
            tiny.stats().ite_cache_evictions > full.stats().ite_cache_evictions,
            "the 2-entry cache must evict far more: {:?} vs {:?}",
            tiny.stats(),
            full.stats()
        );
        tiny.check_invariants().expect("evictions never corrupt the store");
    }

    #[test]
    fn stats_count_cache_traffic_and_publish_deltas() {
        let _scope = tm_telemetry::Scope::enter();
        let mut b = Bdd::new(6);
        let x0 = b.var(0);
        let x1 = b.var(1);
        let f = b.and(x0, x1);
        let _g = b.and(x0, x1); // identical op: pure cache hits
        let _h = b.or(f, x0);
        let s = b.stats();
        assert!(s.ite_cache_hits >= 1, "repeated op must hit the cache: {s:?}");
        assert!(s.unique_misses >= 3, "x0, x1, and f each allocate: {s:?}");
        assert_eq!(s.unique_misses as usize + 1, b.node_count(), "misses + terminal = nodes");

        b.publish_metrics();
        let snap = tm_telemetry::snapshot();
        assert_eq!(snap.counter("bdd.cache.hits"), Some(s.ite_cache_hits));
        assert_eq!(snap.gauge("bdd.nodes"), Some(b.node_count() as f64));

        // A second publish with no new work must add nothing.
        b.publish_metrics();
        let snap = tm_telemetry::snapshot();
        assert_eq!(snap.counter("bdd.cache.hits"), Some(s.ite_cache_hits));
    }

    #[test]
    fn node_budget_trips_with_typed_error() {
        use tm_resilience::Resource;
        let mut b = Bdd::new(16);
        b.set_budget(Budget::unlimited().with_max_bdd_nodes(6));
        let mut f = b.one();
        let mut err = None;
        for i in 0..16 {
            let x = match b.try_var(i) {
                Ok(x) => x,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            };
            match b.try_and(f, x) {
                Ok(g) => f = g,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        let e = err.expect("a 6-node cap cannot fit a 16-literal cube");
        assert_eq!(e.resource, Resource::BddNodes);
        assert_eq!(e.limit, 6);
        assert!(b.node_count() as u64 <= 6, "cap holds: {} nodes", b.node_count());
    }

    #[test]
    fn step_budget_trips_and_clearing_recovers() {
        let mut b = Bdd::new(10);
        let lits: Vec<BddRef> = (0..10).map(|i| b.var(i)).collect();
        b.set_budget(Budget::unlimited().with_max_steps(3));
        let r = b.try_or_all(lits.clone());
        assert!(r.is_err(), "3 steps cannot disjoin 10 fresh literals");
        assert!(b.steps_taken() >= 3);
        b.clear_budget();
        assert!(b.budget().is_unlimited());
        let f = b.try_or_all(lits).expect("unlimited again");
        assert_eq!(b.sat_count(f), 1023.0);
    }

    #[test]
    fn unlimited_budget_try_ops_never_fail() {
        let mut b = Bdd::new(6);
        let x = b.try_var(0).unwrap();
        let y = b.try_nvar(5).unwrap();
        let f = b.try_xor(x, y).unwrap();
        let g = b.try_exists(f, &[0]).unwrap();
        assert_eq!(g, b.one());
        let c = b.try_cube(&[(1, true), (2, false)]).unwrap();
        assert!(b.try_is_subset(b.zero(), c).unwrap());
        // f = x0 ⊕ ¬x5, so pinning x5=0 leaves ¬x0.
        let r = b.try_restrict(f, 5, false).unwrap();
        let nx = b.try_not(x).unwrap();
        assert_eq!(r, nx);
    }

    #[test]
    fn export_import_roundtrip() {
        let mut a = Bdd::new(5);
        let x0 = a.var(0);
        let x2 = a.var(2);
        let x4 = a.var(4);
        let t = a.xor(x0, x2);
        let f = a.or(t, x4);
        let p = a.export(f);
        assert_eq!(p.num_vars(), 5);
        assert_eq!(p.node_count(), a.size(f));

        let mut b = Bdd::new(5);
        let g = b.import(&p);
        for m in 0..32u64 {
            let asn: Vec<bool> = (0..5).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(a.eval(f, &asn), b.eval(g, &asn), "m={m}");
        }
        // Terminals survive the trip too.
        assert_eq!(b.import(&a.export(a.one())), b.one());
        assert_eq!(b.import(&a.export(a.zero())), b.zero());
    }

    #[test]
    fn export_is_structural_not_historical() {
        // Build the same function with different operation orders (and
        // different junk allocated in between): the exports must be
        // byte-identical, because the encoding depends only on the
        // reduced graph.
        let mut a = Bdd::new(6);
        let f = {
            let x1 = a.var(1);
            let x3 = a.var(3);
            let x5 = a.var(5);
            let t = a.and(x1, x3);
            a.or(t, x5)
        };
        let mut b = Bdd::new(6);
        let g = {
            let x5 = b.var(5);
            let junk1 = b.var(0);
            let junk2 = b.var(2);
            let _ = b.xor(junk1, junk2);
            let x3 = b.var(3);
            let x1 = b.var(1);
            let t = b.or(x5, x3); // different intermediate
            let _ = t;
            let u = b.and(x3, x1);
            b.or(x5, u)
        };
        assert_eq!(a.export(f), b.export(g));
    }

    #[test]
    fn export_resolves_complement_parity() {
        // f and ¬f share every node in the store but export as distinct
        // plain graphs; both round-trip.
        let mut a = Bdd::new(4);
        let x0 = a.var(0);
        let x1 = a.var(1);
        let x3 = a.var(3);
        let t = a.xor(x0, x1);
        let f = a.or(t, x3);
        let nf = a.not(f);
        let (pf, pnf) = (a.export(f), a.export(nf));
        assert_ne!(pf, pnf);
        let mut b = Bdd::new(4);
        let (gf, gnf) = (b.import(&pf), b.import(&pnf));
        assert_eq!(b.not(gf), gnf);
        for m in 0..16u64 {
            let asn: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(a.eval(f, &asn), b.eval(gf, &asn), "m={m}");
        }
    }

    #[test]
    fn import_is_canonical_in_the_target() {
        let mut a = Bdd::new(4);
        let x0 = a.var(0);
        let x1 = a.var(1);
        let f = a.and(x0, x1);
        let p = a.export(f);
        let mut b = Bdd::new(4);
        let y0 = b.var(0);
        let y1 = b.var(1);
        let native = b.and(y0, y1);
        // The function already exists in b: import finds it, allocating
        // nothing new.
        let before = b.node_count();
        assert_eq!(b.import(&p), native);
        assert_eq!(b.node_count(), before);
    }

    #[test]
    fn import_respects_the_budget() {
        use tm_resilience::Resource;
        let mut a = Bdd::new(16);
        let lits: Vec<BddRef> = (0..16).map(|i| a.var(i)).collect();
        let f = a.and_all(lits);
        let p = a.export(f);
        let mut b = Bdd::new(16);
        b.set_budget(Budget::unlimited().with_max_bdd_nodes(6));
        let e = b.try_import(&p).expect_err("16-node cube cannot fit in 6 nodes");
        assert_eq!(e.resource, Resource::BddNodes);
        assert!(b.node_count() as u64 <= 6);
    }

    #[test]
    fn cache_clearing_preserves_refs() {
        let mut b = Bdd::new(3);
        let x = b.var(0);
        let y = b.var(1);
        let f = b.and(x, y);
        b.clear_op_caches();
        let g = b.and(x, y);
        assert_eq!(f, g);
    }
}
