//! Reduced ordered binary decision diagrams (ROBDDs).
//!
//! Speed-path characteristic functions range over *all primary inputs* of
//! a circuit — hundreds of variables with astronomically many satisfying
//! patterns (Table 2 of the paper reports up to 8.8×10¹⁰⁷ critical
//! minterms). BDDs represent and count such sets exactly.
//!
//! The manager is a classic Shannon-expansion ROBDD with a unique table
//! and an ITE computed-cache. Functions are referenced by [`BddRef`]
//! handles; equal functions always have equal handles (canonicity), so
//! equivalence checking is `==`.

use std::collections::HashMap;
use std::fmt;

use tm_resilience::{Budget, Exhausted};

/// Handle to a BDD node (a Boolean function) inside a [`Bdd`] manager.
///
/// Handles are only meaningful for the manager that created them.
/// Canonicity guarantees `f == g` iff the functions are equal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BddRef(u32);

impl BddRef {
    /// The raw node index (stable for the lifetime of the manager).
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for BddRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            0 => write!(f, "BddRef(⊥)"),
            1 => write!(f, "BddRef(⊤)"),
            i => write!(f, "BddRef({i})"),
        }
    }
}

#[derive(Clone, Copy)]
struct Node {
    var: u32,
    lo: u32,
    hi: u32,
}

const FALSE_IDX: u32 = 0;
const TRUE_IDX: u32 = 1;
/// Terminal "variable" index: compares greater than every real variable so
/// that terminals sink to the bottom of the order.
const TERMINAL_VAR: u32 = u32::MAX;

/// A BDD manager: owns the node store, unique table and operation caches.
///
/// # Budgets
///
/// A deterministic [`Budget`] can be installed with [`Bdd::set_budget`];
/// the manager then checks its node count against `max_bdd_nodes` on
/// every allocation and its recursion-step counter against `max_steps`
/// on every cache miss. The `try_*` operation variants surface
/// exhaustion as a typed [`Exhausted`] error; the plain operations are
/// unchanged under the default unlimited budget and *panic* if a finite
/// budget runs out mid-call (budgeted callers must use `try_*`).
///
/// # Examples
///
/// ```
/// use tm_logic::bdd::Bdd;
///
/// let mut bdd = Bdd::new(3);
/// let x0 = bdd.var(0);
/// let x2 = bdd.var(2);
/// let f = bdd.and(x0, x2);
/// assert_eq!(bdd.sat_count(f), 2.0); // x1 free
/// let g = bdd.or(f, x0);
/// assert_eq!(g, x0); // absorption, found structurally
/// ```
pub struct Bdd {
    num_vars: u32,
    nodes: Vec<Node>,
    unique: HashMap<(u32, u32, u32), u32>,
    ite_cache: HashMap<(u32, u32, u32), u32>,
    quant_cache: HashMap<(u32, u64), u32>,
    stats: BddStats,
    /// Stats as of the last [`Bdd::publish_metrics`] call, so repeated
    /// publishes from one manager emit deltas, never double-counts.
    published: BddStats,
    /// Deterministic limits; unlimited unless [`Bdd::set_budget`] is
    /// called.
    budget: Budget,
    /// Budgeted recursion steps taken (ITE and quantifier cache misses).
    steps: u64,
}

/// Lifetime operation counts of one [`Bdd`] manager.
///
/// Counted unconditionally on plain fields — keeping the hot `mk` /
/// `ite_rec` paths free of any telemetry-gating branches — and pushed
/// into `tm-telemetry` only when [`Bdd::publish_metrics`] is called.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BddStats {
    /// `mk` calls resolved from the unique table (node already existed).
    pub unique_hits: u64,
    /// `mk` calls that allocated a fresh node.
    pub unique_misses: u64,
    /// `ite` recursions resolved from the computed-cache.
    pub ite_cache_hits: u64,
    /// `ite` recursions that had to expand (and then filled the cache).
    pub ite_cache_misses: u64,
    /// Times the operation caches were dropped via
    /// [`Bdd::clear_op_caches`].
    pub op_cache_clears: u64,
}

impl fmt::Debug for Bdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bdd({} vars, {} nodes)", self.num_vars, self.nodes.len())
    }
}

impl Bdd {
    /// Creates a manager for functions over `num_vars` variables, ordered
    /// by ascending index.
    pub fn new(num_vars: usize) -> Self {
        let nodes = vec![
            Node { var: TERMINAL_VAR, lo: FALSE_IDX, hi: FALSE_IDX },
            Node { var: TERMINAL_VAR, lo: TRUE_IDX, hi: TRUE_IDX },
        ];
        Bdd {
            num_vars: num_vars as u32,
            nodes,
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
            quant_cache: HashMap::new(),
            stats: BddStats::default(),
            published: BddStats::default(),
            budget: Budget::unlimited(),
            steps: 0,
        }
    }

    /// Installs a computation budget. Limits apply to the manager's
    /// *lifetime* counters: nodes already allocated count against
    /// `max_bdd_nodes` and steps already taken against `max_steps`, so
    /// budgeted phases normally start from a fresh manager.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// The installed budget (unlimited by default).
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// Removes any installed budget.
    pub fn clear_budget(&mut self) {
        self.budget = Budget::unlimited();
    }

    /// Budgeted recursion steps taken so far (cache misses in apply and
    /// quantification).
    pub fn steps_taken(&self) -> u64 {
        self.steps
    }

    /// Unwraps an operation result for the infallible API: only a
    /// finite budget can make this panic.
    #[track_caller]
    fn infallible<T>(r: Result<T, Exhausted>) -> T {
        r.unwrap_or_else(|e| panic!("{e}; budgeted callers must use the try_* API"))
    }

    /// Charges one recursion step against the budget.
    fn charge_step(&mut self) -> Result<(), Exhausted> {
        self.budget.check_steps(self.steps)?;
        self.steps += 1;
        Ok(())
    }

    /// Number of variables in the manager's space.
    pub fn num_vars(&self) -> usize {
        self.num_vars as usize
    }

    /// Total nodes allocated so far (a capacity/effort metric).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The constant-false function.
    pub fn zero(&self) -> BddRef {
        BddRef(FALSE_IDX)
    }

    /// The constant-true function.
    pub fn one(&self) -> BddRef {
        BddRef(TRUE_IDX)
    }

    /// The projection function of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn var(&mut self, var: usize) -> BddRef {
        Self::infallible(self.try_var(var))
    }

    /// Budget-checked [`Bdd::var`].
    pub fn try_var(&mut self, var: usize) -> Result<BddRef, Exhausted> {
        assert!((var as u32) < self.num_vars, "variable {var} out of range");
        Ok(BddRef(self.mk(var as u32, FALSE_IDX, TRUE_IDX)?))
    }

    /// The negated projection of variable `var`.
    pub fn nvar(&mut self, var: usize) -> BddRef {
        Self::infallible(self.try_nvar(var))
    }

    /// Budget-checked [`Bdd::nvar`].
    pub fn try_nvar(&mut self, var: usize) -> Result<BddRef, Exhausted> {
        assert!((var as u32) < self.num_vars, "variable {var} out of range");
        Ok(BddRef(self.mk(var as u32, TRUE_IDX, FALSE_IDX)?))
    }

    /// A literal: variable `var` with the given polarity.
    pub fn literal(&mut self, var: usize, polarity: bool) -> BddRef {
        Self::infallible(self.try_literal(var, polarity))
    }

    /// Budget-checked [`Bdd::literal`].
    pub fn try_literal(&mut self, var: usize, polarity: bool) -> Result<BddRef, Exhausted> {
        if polarity {
            self.try_var(var)
        } else {
            self.try_nvar(var)
        }
    }

    fn mk(&mut self, var: u32, lo: u32, hi: u32) -> Result<u32, Exhausted> {
        if lo == hi {
            return Ok(lo);
        }
        if let Some(&idx) = self.unique.get(&(var, lo, hi)) {
            self.stats.unique_hits += 1;
            return Ok(idx);
        }
        self.budget.check_bdd_nodes(self.nodes.len() as u64)?;
        self.stats.unique_misses += 1;
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node { var, lo, hi });
        self.unique.insert((var, lo, hi), idx);
        Ok(idx)
    }

    fn top_var(&self, f: u32) -> u32 {
        self.nodes[f as usize].var
    }

    fn cofactors(&self, f: u32, var: u32) -> (u32, u32) {
        let n = self.nodes[f as usize];
        if n.var == var {
            (n.lo, n.hi)
        } else {
            (f, f)
        }
    }

    /// If-then-else: `ite(f, g, h) = (f ∧ g) ∨ (¬f ∧ h)` — the universal
    /// connective all other operations reduce to.
    pub fn ite(&mut self, f: BddRef, g: BddRef, h: BddRef) -> BddRef {
        Self::infallible(self.try_ite(f, g, h))
    }

    /// Budget-checked [`Bdd::ite`].
    pub fn try_ite(&mut self, f: BddRef, g: BddRef, h: BddRef) -> Result<BddRef, Exhausted> {
        Ok(BddRef(self.ite_rec(f.0, g.0, h.0)?))
    }

    fn ite_rec(&mut self, f: u32, g: u32, h: u32) -> Result<u32, Exhausted> {
        // Terminal cases.
        if f == TRUE_IDX {
            return Ok(g);
        }
        if f == FALSE_IDX {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g == TRUE_IDX && h == FALSE_IDX {
            return Ok(f);
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            self.stats.ite_cache_hits += 1;
            return Ok(r);
        }
        self.charge_step()?;
        self.stats.ite_cache_misses += 1;
        let v = self
            .top_var(f)
            .min(self.top_var(g))
            .min(self.top_var(h));
        let (f0, f1) = self.cofactors(f, v);
        let (g0, g1) = self.cofactors(g, v);
        let (h0, h1) = self.cofactors(h, v);
        let lo = self.ite_rec(f0, g0, h0)?;
        let hi = self.ite_rec(f1, g1, h1)?;
        let r = self.mk(v, lo, hi)?;
        self.ite_cache.insert((f, g, h), r);
        Ok(r)
    }

    /// Conjunction.
    pub fn and(&mut self, f: BddRef, g: BddRef) -> BddRef {
        Self::infallible(self.try_and(f, g))
    }

    /// Budget-checked [`Bdd::and`].
    pub fn try_and(&mut self, f: BddRef, g: BddRef) -> Result<BddRef, Exhausted> {
        Ok(BddRef(self.ite_rec(f.0, g.0, FALSE_IDX)?))
    }

    /// Disjunction.
    pub fn or(&mut self, f: BddRef, g: BddRef) -> BddRef {
        Self::infallible(self.try_or(f, g))
    }

    /// Budget-checked [`Bdd::or`].
    pub fn try_or(&mut self, f: BddRef, g: BddRef) -> Result<BddRef, Exhausted> {
        Ok(BddRef(self.ite_rec(f.0, TRUE_IDX, g.0)?))
    }

    /// Negation.
    pub fn not(&mut self, f: BddRef) -> BddRef {
        Self::infallible(self.try_not(f))
    }

    /// Budget-checked [`Bdd::not`].
    pub fn try_not(&mut self, f: BddRef) -> Result<BddRef, Exhausted> {
        Ok(BddRef(self.ite_rec(f.0, FALSE_IDX, TRUE_IDX)?))
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: BddRef, g: BddRef) -> BddRef {
        Self::infallible(self.try_xor(f, g))
    }

    /// Budget-checked [`Bdd::xor`].
    pub fn try_xor(&mut self, f: BddRef, g: BddRef) -> Result<BddRef, Exhausted> {
        let ng = self.try_not(g)?;
        Ok(BddRef(self.ite_rec(f.0, ng.0, g.0)?))
    }

    /// Exclusive nor (equivalence).
    pub fn xnor(&mut self, f: BddRef, g: BddRef) -> BddRef {
        Self::infallible(self.try_xnor(f, g))
    }

    /// Budget-checked [`Bdd::xnor`].
    pub fn try_xnor(&mut self, f: BddRef, g: BddRef) -> Result<BddRef, Exhausted> {
        let x = self.try_xor(f, g)?;
        self.try_not(x)
    }

    /// Material implication `f ⇒ g`.
    pub fn implies(&mut self, f: BddRef, g: BddRef) -> BddRef {
        Self::infallible(self.try_implies(f, g))
    }

    /// Budget-checked [`Bdd::implies`].
    pub fn try_implies(&mut self, f: BddRef, g: BddRef) -> Result<BddRef, Exhausted> {
        Ok(BddRef(self.ite_rec(f.0, g.0, TRUE_IDX)?))
    }

    /// Difference `f ∧ ¬g`.
    pub fn diff(&mut self, f: BddRef, g: BddRef) -> BddRef {
        Self::infallible(self.try_diff(f, g))
    }

    /// Budget-checked [`Bdd::diff`].
    pub fn try_diff(&mut self, f: BddRef, g: BddRef) -> Result<BddRef, Exhausted> {
        let ng = self.try_not(g)?;
        self.try_and(f, ng)
    }

    /// Conjunction over an iterator (balanced fold to keep intermediate
    /// BDDs small).
    pub fn and_all<I: IntoIterator<Item = BddRef>>(&mut self, items: I) -> BddRef {
        Self::infallible(self.try_and_all(items))
    }

    /// Budget-checked [`Bdd::and_all`].
    pub fn try_and_all<I: IntoIterator<Item = BddRef>>(
        &mut self,
        items: I,
    ) -> Result<BddRef, Exhausted> {
        let mut v: Vec<BddRef> = items.into_iter().collect();
        if v.is_empty() {
            return Ok(self.one());
        }
        while v.len() > 1 {
            let mut next = Vec::with_capacity(v.len().div_ceil(2));
            for pair in v.chunks(2) {
                next.push(if pair.len() == 2 { self.try_and(pair[0], pair[1])? } else { pair[0] });
            }
            v = next;
        }
        Ok(v[0])
    }

    /// Disjunction over an iterator (balanced fold).
    pub fn or_all<I: IntoIterator<Item = BddRef>>(&mut self, items: I) -> BddRef {
        Self::infallible(self.try_or_all(items))
    }

    /// Budget-checked [`Bdd::or_all`].
    pub fn try_or_all<I: IntoIterator<Item = BddRef>>(
        &mut self,
        items: I,
    ) -> Result<BddRef, Exhausted> {
        let mut v: Vec<BddRef> = items.into_iter().collect();
        if v.is_empty() {
            return Ok(self.zero());
        }
        while v.len() > 1 {
            let mut next = Vec::with_capacity(v.len().div_ceil(2));
            for pair in v.chunks(2) {
                next.push(if pair.len() == 2 { self.try_or(pair[0], pair[1])? } else { pair[0] });
            }
            v = next;
        }
        Ok(v[0])
    }

    /// Whether `f ⊆ g` as sets of satisfying assignments.
    pub fn is_subset(&mut self, f: BddRef, g: BddRef) -> bool {
        Self::infallible(self.try_is_subset(f, g))
    }

    /// Budget-checked [`Bdd::is_subset`].
    pub fn try_is_subset(&mut self, f: BddRef, g: BddRef) -> Result<bool, Exhausted> {
        Ok(self.try_diff(f, g)? == self.zero())
    }

    /// Evaluates the function on an explicit assignment (`assignment[i]` =
    /// value of variable `i`).
    ///
    /// # Panics
    ///
    /// Panics if the assignment is shorter than the deepest variable
    /// consulted.
    pub fn eval(&self, f: BddRef, assignment: &[bool]) -> bool {
        let mut idx = f.0;
        loop {
            match idx {
                FALSE_IDX => return false,
                TRUE_IDX => return true,
                _ => {
                    let n = self.nodes[idx as usize];
                    idx = if assignment[n.var as usize] { n.hi } else { n.lo };
                }
            }
        }
    }

    /// Number of satisfying assignments over the full `num_vars` space.
    ///
    /// Exact up to `f64` precision; valid for up to ~1000 variables
    /// (2¹⁰⁰⁰ < `f64::MAX`).
    pub fn sat_count(&self, f: BddRef) -> f64 {
        let mut memo: HashMap<u32, f64> = HashMap::new();
        self.sat_count_rec(f.0, &mut memo) * (self.var_gap(f.0) as f64).exp2()
    }

    /// Satisfying-assignment *fraction* of the full space — numerically
    /// robust beyond 1000 variables.
    pub fn sat_fraction(&self, f: BddRef) -> f64 {
        self.sat_count(f) / (self.num_vars as f64).exp2()
    }

    fn var_gap(&self, f: u32) -> u32 {
        // Variables above the root are unconstrained.
        if f == FALSE_IDX {
            0
        } else if f == TRUE_IDX {
            self.num_vars
        } else {
            self.top_var(f)
        }
    }

    fn sat_count_rec(&self, f: u32, memo: &mut HashMap<u32, f64>) -> f64 {
        if f == FALSE_IDX {
            return 0.0;
        }
        if f == TRUE_IDX {
            return 1.0;
        }
        if let Some(&c) = memo.get(&f) {
            return c;
        }
        let n = self.nodes[f as usize];
        let lo_gap = self.level_gap(n.var, n.lo);
        let hi_gap = self.level_gap(n.var, n.hi);
        let c = self.sat_count_rec(n.lo, memo) * (lo_gap as f64).exp2()
            + self.sat_count_rec(n.hi, memo) * (hi_gap as f64).exp2();
        memo.insert(f, c);
        c
    }

    fn level_gap(&self, parent_var: u32, child: u32) -> u32 {
        let child_var = if child <= TRUE_IDX { self.num_vars } else { self.top_var(child) };
        child_var - parent_var - 1
    }

    /// One satisfying assignment, or `None` for the zero function. Free
    /// variables are returned as `false`.
    pub fn pick_sat(&self, f: BddRef) -> Option<Vec<bool>> {
        if f.0 == FALSE_IDX {
            return None;
        }
        let mut assignment = vec![false; self.num_vars as usize];
        let mut idx = f.0;
        while idx > TRUE_IDX {
            let n = self.nodes[idx as usize];
            if n.lo != FALSE_IDX {
                idx = n.lo;
            } else {
                assignment[n.var as usize] = true;
                idx = n.hi;
            }
        }
        Some(assignment)
    }

    /// Samples a satisfying assignment approximately uniformly.
    ///
    /// `unit_random` must return values in `[0, 1)`; each call consumes
    /// a few of them. Returns `None` for the zero function. Sampling is
    /// weighted by exact satisfy-counts, so it is uniform up to `f64`
    /// rounding.
    ///
    /// # Examples
    ///
    /// ```
    /// use tm_logic::bdd::Bdd;
    ///
    /// let mut b = Bdd::new(4);
    /// let x0 = b.var(0);
    /// let x3 = b.var(3);
    /// let f = b.and(x0, x3);
    /// let mut state = 0.7_f64;
    /// let sample = b
    ///     .sample_sat(f, || {
    ///         state = (state * 9301.0 + 49297.0) % 233280.0 / 233280.0;
    ///         state
    ///     })
    ///     .expect("satisfiable");
    /// assert!(b.eval(f, &sample));
    /// ```
    pub fn sample_sat(&self, f: BddRef, mut unit_random: impl FnMut() -> f64) -> Option<Vec<bool>> {
        if f.0 == FALSE_IDX {
            return None;
        }
        let mut memo: HashMap<u32, f64> = HashMap::new();
        let mut assignment = vec![false; self.num_vars as usize];
        // Free variables above the root.
        let mut next_var = 0u32;
        let mut idx = f.0;
        loop {
            let node_var = if idx <= TRUE_IDX { self.num_vars } else { self.top_var(idx) };
            while next_var < node_var {
                assignment[next_var as usize] = unit_random() < 0.5;
                next_var += 1;
            }
            if idx <= TRUE_IDX {
                break;
            }
            let n = self.nodes[idx as usize];
            let lo_weight =
                self.sat_count_rec(n.lo, &mut memo) * (self.level_gap(n.var, n.lo) as f64).exp2();
            let hi_weight =
                self.sat_count_rec(n.hi, &mut memo) * (self.level_gap(n.var, n.hi) as f64).exp2();
            let take_hi = unit_random() * (lo_weight + hi_weight) >= lo_weight;
            assignment[n.var as usize] = take_hi;
            idx = if take_hi { n.hi } else { n.lo };
            next_var = n.var + 1;
        }
        Some(assignment)
    }

    /// Restricts variable `var` to a constant.
    pub fn restrict(&mut self, f: BddRef, var: usize, value: bool) -> BddRef {
        Self::infallible(self.try_restrict(f, var, value))
    }

    /// Budget-checked [`Bdd::restrict`].
    pub fn try_restrict(
        &mut self,
        f: BddRef,
        var: usize,
        value: bool,
    ) -> Result<BddRef, Exhausted> {
        let lit = self.try_literal(var, value)?;
        // restrict(f, v=c) = ∃v. (f ∧ (v=c))
        let g = self.try_and(f, lit)?;
        self.try_exists(g, &[var])
    }

    /// Existential quantification over a set of variables.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 distinct variables are quantified at once or
    /// any index is out of range.
    pub fn exists(&mut self, f: BddRef, vars: &[usize]) -> BddRef {
        Self::infallible(self.try_exists(f, vars))
    }

    /// Budget-checked [`Bdd::exists`].
    pub fn try_exists(&mut self, f: BddRef, vars: &[usize]) -> Result<BddRef, Exhausted> {
        assert!(vars.len() <= 64, "quantify at most 64 variables per call");
        let mut sorted: Vec<usize> = vars.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        for &v in &sorted {
            assert!((v as u32) < self.num_vars, "variable {v} out of range");
        }
        self.quant_cache.clear();
        Ok(BddRef(self.exists_rec(f.0, &sorted)?))
    }

    fn exists_rec(&mut self, f: u32, vars: &[usize]) -> Result<u32, Exhausted> {
        if f <= TRUE_IDX || vars.is_empty() {
            return Ok(f);
        }
        let key = (f, vars.iter().fold(0u64, |acc, &v| acc.rotate_left(7) ^ v as u64));
        if let Some(&r) = self.quant_cache.get(&key) {
            return Ok(r);
        }
        self.charge_step()?;
        let n = self.nodes[f as usize];
        // Skip quantified variables above the root.
        let remaining: Vec<usize> =
            vars.iter().copied().filter(|&v| v as u32 >= n.var).collect();
        let r = if remaining.first() == Some(&(n.var as usize)) {
            let rest = &remaining[1..];
            let lo = self.exists_rec(n.lo, rest)?;
            let hi = self.exists_rec(n.hi, rest)?;
            self.ite_rec(lo, TRUE_IDX, hi)?
        } else {
            let lo = self.exists_rec(n.lo, &remaining)?;
            let hi = self.exists_rec(n.hi, &remaining)?;
            self.mk(n.var, lo, hi)?
        };
        self.quant_cache.insert(key, r);
        Ok(r)
    }

    /// The support of `f`: variables it structurally depends on.
    pub fn support(&self, f: BddRef) -> Vec<usize> {
        let mut seen = std::collections::HashSet::new();
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![f.0];
        while let Some(idx) = stack.pop() {
            if idx <= TRUE_IDX || !seen.insert(idx) {
                continue;
            }
            let n = self.nodes[idx as usize];
            vars.insert(n.var as usize);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        vars.into_iter().collect()
    }

    /// Number of BDD nodes reachable from `f` (its size).
    pub fn size(&self, f: BddRef) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f.0];
        let mut count = 0;
        while let Some(idx) = stack.pop() {
            if idx <= TRUE_IDX || !seen.insert(idx) {
                continue;
            }
            count += 1;
            let n = self.nodes[idx as usize];
            stack.push(n.lo);
            stack.push(n.hi);
        }
        count
    }

    /// Builds the BDD of a cube over manager variables given `(var,
    /// polarity)` literals.
    pub fn cube(&mut self, literals: &[(usize, bool)]) -> BddRef {
        Self::infallible(self.try_cube(literals))
    }

    /// Budget-checked [`Bdd::cube`].
    pub fn try_cube(&mut self, literals: &[(usize, bool)]) -> Result<BddRef, Exhausted> {
        let mut lits = Vec::with_capacity(literals.len());
        for &(v, p) in literals {
            lits.push(self.try_literal(v, p)?);
        }
        self.try_and_all(lits)
    }

    /// Clears the operation caches (the unique table is preserved, so all
    /// existing [`BddRef`]s stay valid). Useful between independent
    /// workloads to bound memory.
    pub fn clear_op_caches(&mut self) {
        self.stats.op_cache_clears += 1;
        self.ite_cache.clear();
        self.quant_cache.clear();
    }

    /// This manager's lifetime operation counts.
    pub fn stats(&self) -> BddStats {
        self.stats
    }

    /// Occupancy of the unique table (reduced, non-terminal nodes).
    pub fn unique_entries(&self) -> usize {
        self.unique.len()
    }

    /// Publishes this manager's counts to `tm-telemetry` under the
    /// `logic.bdd.*` names: counters get the delta since the previous
    /// publish (safe to call repeatedly from nested instrumentation),
    /// gauges get the current node and unique-table occupancy.
    pub fn publish_metrics(&mut self) {
        if !tm_telemetry::enabled() {
            return;
        }
        let d = BddStats {
            unique_hits: self.stats.unique_hits - self.published.unique_hits,
            unique_misses: self.stats.unique_misses - self.published.unique_misses,
            ite_cache_hits: self.stats.ite_cache_hits - self.published.ite_cache_hits,
            ite_cache_misses: self.stats.ite_cache_misses - self.published.ite_cache_misses,
            op_cache_clears: self.stats.op_cache_clears - self.published.op_cache_clears,
        };
        self.published = self.stats;
        tm_telemetry::counter_add("logic.bdd.unique_hit", d.unique_hits);
        tm_telemetry::counter_add("logic.bdd.unique_miss", d.unique_misses);
        tm_telemetry::counter_add("logic.bdd.ite_cache_hit", d.ite_cache_hits);
        tm_telemetry::counter_add("logic.bdd.ite_cache_miss", d.ite_cache_misses);
        tm_telemetry::counter_add("logic.bdd.op_cache_clears", d.op_cache_clears);
        tm_telemetry::gauge_set("logic.bdd.nodes", self.nodes.len() as f64);
        tm_telemetry::gauge_set("logic.bdd.unique_entries", self.unique.len() as f64);
    }

    /// Exports `f` as a manager-independent [`PortableBdd`].
    ///
    /// The node list is in deterministic *structural* order: a
    /// depth-first walk from the root that finishes the `lo` subgraph
    /// before the `hi` subgraph and emits each node once, children
    /// first. The order depends only on the function's reduced graph —
    /// never on this manager's node indices or allocation history — so
    /// two managers holding equal functions export byte-identical
    /// `PortableBdd`s. That is the property the parallel SPCF driver's
    /// determinism rests on: importing the same exports in the same
    /// order replays the same `mk` sequence in the target manager
    /// regardless of which worker produced them.
    pub fn export(&self, f: BddRef) -> PortableBdd {
        let mut ids: HashMap<u32, u32> = HashMap::new();
        ids.insert(FALSE_IDX, 0);
        ids.insert(TRUE_IDX, 1);
        let mut entries: Vec<(u32, u32, u32)> = Vec::new();
        let mut stack = vec![(f.0, false)];
        while let Some((idx, expanded)) = stack.pop() {
            if ids.contains_key(&idx) {
                continue;
            }
            let n = self.nodes[idx as usize];
            if expanded {
                let (lo, hi) = (ids[&n.lo], ids[&n.hi]);
                entries.push((n.var, lo, hi));
                ids.insert(idx, entries.len() as u32 + 1);
            } else {
                stack.push((idx, true));
                stack.push((n.hi, false));
                stack.push((n.lo, false)); // popped first: lo finishes first
            }
        }
        PortableBdd { num_vars: self.num_vars, entries, root: ids[&f.0] }
    }

    /// Rebuilds an exported function in this manager.
    ///
    /// # Panics
    ///
    /// Panics if the export came from a manager with a different
    /// variable count, or (like every plain operation) if a finite
    /// budget runs out — budgeted callers use [`Bdd::try_import`].
    pub fn import(&mut self, portable: &PortableBdd) -> BddRef {
        Self::infallible(self.try_import(portable))
    }

    /// Budget-checked [`Bdd::import`]: every node materialized in this
    /// manager goes through the same budgeted `mk` as native
    /// operations, so an import cannot overrun an installed [`Budget`].
    pub fn try_import(&mut self, portable: &PortableBdd) -> Result<BddRef, Exhausted> {
        assert_eq!(
            portable.num_vars, self.num_vars,
            "import requires matching variable spaces"
        );
        let mut ids: Vec<u32> = Vec::with_capacity(portable.entries.len() + 2);
        ids.push(FALSE_IDX);
        ids.push(TRUE_IDX);
        for &(var, lo, hi) in &portable.entries {
            let node = self.mk(var, ids[lo as usize], ids[hi as usize])?;
            ids.push(node);
        }
        Ok(BddRef(ids[portable.root as usize]))
    }
}

/// A manager-independent encoding of one BDD function, produced by
/// [`Bdd::export`] and consumed by [`Bdd::import`].
///
/// Entry `i` holds `(var, lo, hi)` where `lo`/`hi` are `0` (false),
/// `1` (true), or `j + 2` referring to entry `j < i` — children always
/// precede parents. Equal functions export equal values (see
/// [`Bdd::export`] for the ordering guarantee), which makes this the
/// unit of cross-thread BDD transfer in the parallel SPCF driver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PortableBdd {
    num_vars: u32,
    entries: Vec<(u32, u32, u32)>,
    root: u32,
}

impl PortableBdd {
    /// Variable-space size of the exporting manager.
    pub fn num_vars(&self) -> usize {
        self.num_vars as usize
    }

    /// Number of internal nodes in the encoding (the function's size).
    pub fn node_count(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_and_vars() {
        let mut b = Bdd::new(4);
        assert_ne!(b.zero(), b.one());
        let x = b.var(2);
        assert_eq!(b.sat_count(x), 8.0);
        let nx = b.not(x);
        assert_eq!(b.sat_count(nx), 8.0);
        let both = b.and(x, nx);
        assert_eq!(both, b.zero());
        let either = b.or(x, nx);
        assert_eq!(either, b.one());
    }

    #[test]
    fn canonicity_detects_equivalence() {
        let mut b = Bdd::new(3);
        let x = b.var(0);
        let y = b.var(1);
        // x ∨ (x ∧ y) == x (absorption)
        let xy = b.and(x, y);
        let f = b.or(x, xy);
        assert_eq!(f, x);
        // De Morgan
        let nx = b.not(x);
        let ny = b.not(y);
        let and_xy = b.and(x, y);
        let lhs = b.not(and_xy);
        let rhs = b.or(nx, ny);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn sat_count_various() {
        let mut b = Bdd::new(10);
        let x0 = b.var(0);
        let x9 = b.var(9);
        let f = b.and(x0, x9);
        assert_eq!(b.sat_count(f), 256.0);
        let g = b.or(x0, x9);
        assert_eq!(b.sat_count(g), 768.0);
        let h = b.xor(x0, x9);
        assert_eq!(b.sat_count(h), 512.0);
        assert_eq!(b.sat_count(b.zero()), 0.0);
        assert_eq!(b.sat_count(b.one()), 1024.0);
        assert!((b.sat_fraction(h) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sat_count_wide_space() {
        // Hundreds of variables: counts stay finite in f64.
        let mut b = Bdd::new(900);
        let x = b.var(0);
        let count = b.sat_count(x);
        assert!(count.is_finite());
        assert_eq!(count, (899f64).exp2());
    }

    #[test]
    fn eval_walks_the_graph() {
        let mut b = Bdd::new(3);
        let x0 = b.var(0);
        let x1 = b.var(1);
        let x2 = b.var(2);
        let t = b.and(x0, x1);
        let f = b.or(t, x2);
        for m in 0..8u64 {
            let a: Vec<bool> = (0..3).map(|i| (m >> i) & 1 == 1).collect();
            let expect = (a[0] && a[1]) || a[2];
            assert_eq!(b.eval(f, &a), expect, "m={m}");
        }
    }

    #[test]
    fn pick_sat_finds_model() {
        let mut b = Bdd::new(4);
        let x1 = b.var(1);
        let nx3 = b.nvar(3);
        let f = b.and(x1, nx3);
        let m = b.pick_sat(f).expect("satisfiable");
        assert!(b.eval(f, &m));
        assert!(b.pick_sat(b.zero()).is_none());
        assert!(b.pick_sat(b.one()).is_some());
    }

    #[test]
    fn restrict_and_exists() {
        let mut b = Bdd::new(3);
        let x0 = b.var(0);
        let x1 = b.var(1);
        let f = b.xor(x0, x1);
        let r1 = b.restrict(f, 0, true);
        let nx1 = b.not(x1);
        assert_eq!(r1, nx1);
        let e = b.exists(f, &[0]);
        assert_eq!(e, b.one());
        let g = b.and(x0, x1);
        let eg = b.exists(g, &[0]);
        assert_eq!(eg, x1);
        let eg2 = b.exists(g, &[0, 1]);
        assert_eq!(eg2, b.one());
    }

    #[test]
    fn support_and_size() {
        let mut b = Bdd::new(5);
        let x1 = b.var(1);
        let x4 = b.var(4);
        let f = b.xor(x1, x4);
        assert_eq!(b.support(f), vec![1, 4]);
        assert_eq!(b.size(f), 3); // xor of 2 vars: 3 internal nodes
        assert_eq!(b.support(b.one()), Vec::<usize>::new());
    }

    #[test]
    fn cube_builder() {
        let mut b = Bdd::new(4);
        let c = b.cube(&[(0, true), (3, false)]);
        assert_eq!(b.sat_count(c), 4.0);
        assert!(b.eval(c, &[true, false, false, false]));
        assert!(!b.eval(c, &[true, false, false, true]));
        assert_eq!(b.cube(&[]), b.one());
    }

    #[test]
    fn subset_relation() {
        let mut b = Bdd::new(3);
        let x0 = b.var(0);
        let x1 = b.var(1);
        let f = b.and(x0, x1);
        assert!(b.is_subset(f, x0));
        assert!(!b.is_subset(x0, f));
        let z = b.zero();
        assert!(b.is_subset(z, f));
    }

    #[test]
    fn implies_and_diff() {
        let mut b = Bdd::new(2);
        let x = b.var(0);
        let y = b.var(1);
        let imp = b.implies(x, y);
        // x ⇒ y false only on x=1,y=0
        assert_eq!(b.sat_count(imp), 3.0);
        let d = b.diff(x, y);
        assert_eq!(b.sat_count(d), 1.0);
    }

    #[test]
    fn balanced_folds() {
        let mut b = Bdd::new(8);
        let lits: Vec<BddRef> = (0..8).map(|i| b.var(i)).collect();
        let all = b.and_all(lits.clone());
        assert_eq!(b.sat_count(all), 1.0);
        let any = b.or_all(lits);
        assert_eq!(b.sat_count(any), 255.0);
        assert_eq!(b.and_all(Vec::new()), b.one());
        assert_eq!(b.or_all(Vec::new()), b.zero());
    }

    #[test]
    fn xnor_is_negated_xor() {
        let mut b = Bdd::new(2);
        let x = b.var(0);
        let y = b.var(1);
        let a = b.xnor(x, y);
        let x2 = b.xor(x, y);
        let n = b.not(x2);
        assert_eq!(a, n);
    }

    #[test]
    fn stats_count_cache_traffic_and_publish_deltas() {
        let _scope = tm_telemetry::Scope::enter();
        let mut b = Bdd::new(6);
        let x0 = b.var(0);
        let x1 = b.var(1);
        let f = b.and(x0, x1);
        let _g = b.and(x0, x1); // identical op: pure cache hits
        let _h = b.or(f, x0);
        let s = b.stats();
        assert!(s.ite_cache_hits >= 1, "repeated op must hit the cache: {s:?}");
        assert!(s.unique_misses >= 3, "x0, x1, and f each allocate: {s:?}");
        assert_eq!(s.unique_misses as usize + 2, b.node_count(), "misses + terminals = nodes");

        b.publish_metrics();
        let snap = tm_telemetry::snapshot();
        assert_eq!(snap.counter("logic.bdd.ite_cache_hit"), Some(s.ite_cache_hits));
        assert_eq!(snap.gauge("logic.bdd.nodes"), Some(b.node_count() as f64));

        // A second publish with no new work must add nothing.
        b.publish_metrics();
        let snap = tm_telemetry::snapshot();
        assert_eq!(snap.counter("logic.bdd.ite_cache_hit"), Some(s.ite_cache_hits));
    }

    #[test]
    fn node_budget_trips_with_typed_error() {
        use tm_resilience::Resource;
        let mut b = Bdd::new(16);
        b.set_budget(Budget::unlimited().with_max_bdd_nodes(6));
        let mut f = b.one();
        let mut err = None;
        for i in 0..16 {
            let x = match b.try_var(i) {
                Ok(x) => x,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            };
            match b.try_and(f, x) {
                Ok(g) => f = g,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        let e = err.expect("a 6-node cap cannot fit a 16-literal cube");
        assert_eq!(e.resource, Resource::BddNodes);
        assert_eq!(e.limit, 6);
        assert!(b.node_count() as u64 <= 6, "cap holds: {} nodes", b.node_count());
    }

    #[test]
    fn step_budget_trips_and_clearing_recovers() {
        let mut b = Bdd::new(10);
        let lits: Vec<BddRef> = (0..10).map(|i| b.var(i)).collect();
        b.set_budget(Budget::unlimited().with_max_steps(3));
        let r = b.try_or_all(lits.clone());
        assert!(r.is_err(), "3 steps cannot disjoin 10 fresh literals");
        assert!(b.steps_taken() >= 3);
        b.clear_budget();
        assert!(b.budget().is_unlimited());
        let f = b.try_or_all(lits).expect("unlimited again");
        assert_eq!(b.sat_count(f), 1023.0);
    }

    #[test]
    fn unlimited_budget_try_ops_never_fail() {
        let mut b = Bdd::new(6);
        let x = b.try_var(0).unwrap();
        let y = b.try_nvar(5).unwrap();
        let f = b.try_xor(x, y).unwrap();
        let g = b.try_exists(f, &[0]).unwrap();
        assert_eq!(g, b.one());
        let c = b.try_cube(&[(1, true), (2, false)]).unwrap();
        assert!(b.try_is_subset(b.zero(), c).unwrap());
        // f = x0 ⊕ ¬x5, so pinning x5=0 leaves ¬x0.
        let r = b.try_restrict(f, 5, false).unwrap();
        let nx = b.try_not(x).unwrap();
        assert_eq!(r, nx);
    }

    #[test]
    fn export_import_roundtrip() {
        let mut a = Bdd::new(5);
        let x0 = a.var(0);
        let x2 = a.var(2);
        let x4 = a.var(4);
        let t = a.xor(x0, x2);
        let f = a.or(t, x4);
        let p = a.export(f);
        assert_eq!(p.num_vars(), 5);
        assert_eq!(p.node_count(), a.size(f));

        let mut b = Bdd::new(5);
        let g = b.import(&p);
        for m in 0..32u64 {
            let asn: Vec<bool> = (0..5).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(a.eval(f, &asn), b.eval(g, &asn), "m={m}");
        }
        // Terminals survive the trip too.
        assert_eq!(b.import(&a.export(a.one())), b.one());
        assert_eq!(b.import(&a.export(a.zero())), b.zero());
    }

    #[test]
    fn export_is_structural_not_historical() {
        // Build the same function with different operation orders (and
        // different junk allocated in between): the exports must be
        // byte-identical, because the encoding depends only on the
        // reduced graph.
        let mut a = Bdd::new(6);
        let f = {
            let x1 = a.var(1);
            let x3 = a.var(3);
            let x5 = a.var(5);
            let t = a.and(x1, x3);
            a.or(t, x5)
        };
        let mut b = Bdd::new(6);
        let g = {
            let x5 = b.var(5);
            let junk1 = b.var(0);
            let junk2 = b.var(2);
            let _ = b.xor(junk1, junk2);
            let x3 = b.var(3);
            let x1 = b.var(1);
            let t = b.or(x5, x3); // different intermediate
            let _ = t;
            let u = b.and(x3, x1);
            b.or(x5, u)
        };
        assert_eq!(a.export(f), b.export(g));
    }

    #[test]
    fn import_is_canonical_in_the_target() {
        let mut a = Bdd::new(4);
        let x0 = a.var(0);
        let x1 = a.var(1);
        let f = a.and(x0, x1);
        let p = a.export(f);
        let mut b = Bdd::new(4);
        let y0 = b.var(0);
        let y1 = b.var(1);
        let native = b.and(y0, y1);
        // The function already exists in b: import finds it, allocating
        // nothing new.
        let before = b.node_count();
        assert_eq!(b.import(&p), native);
        assert_eq!(b.node_count(), before);
    }

    #[test]
    fn import_respects_the_budget() {
        use tm_resilience::Resource;
        let mut a = Bdd::new(16);
        let lits: Vec<BddRef> = (0..16).map(|i| a.var(i)).collect();
        let f = a.and_all(lits);
        let p = a.export(f);
        let mut b = Bdd::new(16);
        b.set_budget(Budget::unlimited().with_max_bdd_nodes(6));
        let e = b.try_import(&p).expect_err("16-node cube cannot fit in 6 nodes");
        assert_eq!(e.resource, Resource::BddNodes);
        assert!(b.node_count() as u64 <= 6);
    }

    #[test]
    fn cache_clearing_preserves_refs() {
        let mut b = Bdd::new(3);
        let x = b.var(0);
        let y = b.var(1);
        let f = b.and(x, y);
        b.clear_op_caches();
        let g = b.and(x, y);
        assert_eq!(f, g);
    }
}
