//! Boolean function infrastructure for the `timemask` workspace.
//!
//! This crate provides the exact Boolean machinery that the speed-path
//! analysis and error-masking synthesis of Choudhury & Mohanram (DATE
//! 2009) are built on:
//!
//! - [`cube`]: product terms over ≤ 64 variables — the unit of the
//!   paper's essential-weight cover selection.
//! - [`sop`]: ordered sum-of-products covers.
//! - [`tt`]: dense truth tables for node-local functions (≤ 20 inputs).
//! - [`qm`]: Quine–McCluskey prime implicant generation and two-level
//!   cover minimization (exact primes, greedy covering).
//! - [`bdd`]: an ROBDD manager for global functions over all primary
//!   inputs — speed-path characteristic functions routinely have 10¹⁰⁰⁺
//!   satisfying patterns, which BDDs represent and count exactly.
//!
//! # Example: from truth table to minimized cover to BDD
//!
//! ```
//! use tm_logic::{bdd::Bdd, qm, tt::TruthTable};
//!
//! // Majority-of-3, minimized to its three 2-literal primes.
//! let f = TruthTable::from_fn(3, |m| m.count_ones() >= 2);
//! let sop = qm::minimize(&f, &TruthTable::zero(3));
//! assert_eq!(sop.len(), 3);
//!
//! // Lift the cover into a BDD over a wider space.
//! let mut bdd = Bdd::new(8);
//! let lifted = sop
//!     .cubes()
//!     .iter()
//!     .map(|c| {
//!         let lits: Vec<_> = c.literals().collect();
//!         bdd.cube(&lits)
//!     })
//!     .collect::<Vec<_>>();
//! let g = bdd.or_all(lifted);
//! assert_eq!(bdd.sat_count(g), 4.0 * 32.0); // 4 of 8 minterms × 2^5 free vars
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bdd;
pub mod cube;
pub mod qm;
pub mod sop;
pub mod tt;

pub use bdd::{Bdd, BddRef, BddStats, PortableBdd};
pub use cube::Cube;
pub use sop::Sop;
pub use tt::TruthTable;
