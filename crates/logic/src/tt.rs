//! Dense truth tables for Boolean functions of a small number of inputs.
//!
//! Technology-independent nodes in the paper have 10–15 inputs (§4.1) and
//! mapped library cells have at most a handful, so an explicit truth table
//! (one bit per minterm, packed into `u64` words) is an exact and fast
//! function representation for everything that happens *locally* at a
//! node. Global functions over all primary inputs use BDDs instead
//! ([`crate::bdd`]).

use crate::cube::Cube;
use crate::sop::Sop;
use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// Maximum supported input count for a dense truth table.
///
/// 2^20 bits = 128 KiB per table; enough for the 10–15-input nodes the
/// synthesis flow manipulates, with headroom.
pub const MAX_TT_VARS: usize = 20;

/// A dense truth table over `num_vars` inputs.
///
/// Bit `m` of the table is the function value on the minterm whose
/// assignment bits are `m` (variable `i` = bit `i` of `m`).
///
/// # Examples
///
/// ```
/// use tm_logic::tt::TruthTable;
///
/// let a = TruthTable::var(2, 0);
/// let b = TruthTable::var(2, 1);
/// let and = &a & &b;
/// assert!(and.eval(0b11));
/// assert!(!and.eval(0b01));
/// assert_eq!(and.count_ones(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TruthTable {
    num_vars: usize,
    words: Vec<u64>,
}

fn word_count(num_vars: usize) -> usize {
    if num_vars >= 6 {
        1 << (num_vars - 6)
    } else {
        1
    }
}

/// Mask of valid bits in the (single) word of a table with fewer than six
/// variables.
fn tail_mask(num_vars: usize) -> u64 {
    if num_vars >= 6 {
        u64::MAX
    } else {
        (1u64 << (1 << num_vars)) - 1
    }
}

impl TruthTable {
    /// The constant-false function of `num_vars` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > MAX_TT_VARS`.
    pub fn zero(num_vars: usize) -> Self {
        assert!(num_vars <= MAX_TT_VARS, "truth table limited to {MAX_TT_VARS} vars");
        TruthTable { num_vars, words: vec![0; word_count(num_vars)] }
    }

    /// The constant-true function of `num_vars` inputs.
    pub fn one(num_vars: usize) -> Self {
        let mut t = Self::zero(num_vars);
        for w in &mut t.words {
            *w = u64::MAX;
        }
        t.canonicalize();
        t
    }

    /// The projection function of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn var(num_vars: usize, var: usize) -> Self {
        assert!(var < num_vars, "variable {var} out of range {num_vars}");
        let mut t = Self::zero(num_vars);
        if var < 6 {
            // Pattern within each word.
            let stride = 1u32 << var;
            let mut pattern = 0u64;
            let mut bit = 0u32;
            while bit < 64 {
                if (bit / stride) & 1 == 1 {
                    pattern |= 1u64 << bit;
                }
                bit += 1;
            }
            for w in &mut t.words {
                *w = pattern;
            }
        } else {
            // Whole words alternate.
            let stride = 1usize << (var - 6);
            for (i, w) in t.words.iter_mut().enumerate() {
                if (i / stride) & 1 == 1 {
                    *w = u64::MAX;
                }
            }
        }
        t.canonicalize();
        t
    }

    /// Builds a table from a predicate over minterm assignments.
    pub fn from_fn(num_vars: usize, mut f: impl FnMut(u64) -> bool) -> Self {
        let mut t = Self::zero(num_vars);
        for m in 0..(1u64 << num_vars) {
            if f(m) {
                t.set(m, true);
            }
        }
        t
    }

    /// Builds a table as the union of an SOP's cubes.
    ///
    /// # Panics
    ///
    /// Panics if the SOP's variable count differs from `num_vars`.
    pub fn from_sop(num_vars: usize, sop: &Sop) -> Self {
        assert_eq!(sop.num_vars(), num_vars, "SOP arity mismatch");
        let mut t = Self::zero(num_vars);
        for cube in sop.cubes() {
            t.or_cube(cube);
        }
        t
    }

    /// Number of input variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of minterms (2^num_vars).
    pub fn num_minterms(&self) -> u64 {
        1u64 << self.num_vars
    }

    /// Evaluates the function on a minterm.
    pub fn eval(&self, minterm: u64) -> bool {
        let word = (minterm >> 6) as usize;
        let bit = minterm & 63;
        (self.words.get(word).copied().unwrap_or(0) >> bit) & 1 == 1
    }

    /// Sets the function value on one minterm.
    ///
    /// # Panics
    ///
    /// Panics if the minterm is out of range.
    pub fn set(&mut self, minterm: u64, value: bool) {
        assert!(minterm < self.num_minterms(), "minterm out of range");
        let word = (minterm >> 6) as usize;
        let bit = minterm & 63;
        if value {
            self.words[word] |= 1u64 << bit;
        } else {
            self.words[word] &= !(1u64 << bit);
        }
    }

    /// ORs all minterms of a cube into the table.
    pub fn or_cube(&mut self, cube: &Cube) {
        // Enumerate the cube's minterms by iterating assignments of free
        // variables. Fast path for small tables.
        let n = self.num_vars;
        let free_mask = !cube.mask() & ((1u64 << n) - 1);
        let base = cube.value() & ((1u64 << n) - 1);
        // Iterate subsets of free_mask via the standard subset-walk trick.
        let mut sub = 0u64;
        loop {
            self.set(base | sub, true);
            if sub == free_mask {
                break;
            }
            sub = (sub.wrapping_sub(free_mask)) & free_mask;
        }
    }

    /// Number of satisfying minterms.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Whether the function is constant false.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether the function is constant true.
    pub fn is_one(&self) -> bool {
        self.count_ones() == self.num_minterms()
    }

    /// Whether the cube lies entirely inside the on-set.
    pub fn covers_cube(&self, cube: &Cube) -> bool {
        let n = self.num_vars;
        let free_mask = !cube.mask() & ((1u64 << n) - 1);
        let base = cube.value() & ((1u64 << n) - 1);
        let mut sub = 0u64;
        loop {
            if !self.eval(base | sub) {
                return false;
            }
            if sub == free_mask {
                return true;
            }
            sub = (sub.wrapping_sub(free_mask)) & free_mask;
        }
    }

    /// Iterates the on-set minterms in ascending order.
    pub fn minterms(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.num_minterms()).filter(move |&m| self.eval(m))
    }

    /// The positive cofactor with respect to `var` (a function of the same
    /// arity; `var` becomes irrelevant).
    pub fn cofactor(&self, var: usize, value: bool) -> Self {
        let mut out = Self::zero(self.num_vars);
        let bit = 1u64 << var;
        for m in 0..self.num_minterms() {
            let src = if value { m | bit } else { m & !bit };
            if self.eval(src) {
                out.set(m, true);
            }
        }
        out
    }

    /// Whether the function actually depends on `var`.
    pub fn depends_on(&self, var: usize) -> bool {
        self.cofactor(var, false) != self.cofactor(var, true)
    }

    /// The support: variables the function depends on.
    pub fn support(&self) -> Vec<usize> {
        (0..self.num_vars).filter(|&v| self.depends_on(v)).collect()
    }

    fn canonicalize(&mut self) {
        let m = tail_mask(self.num_vars);
        if let Some(last) = self.words.last_mut() {
            if self.num_vars < 6 {
                *last &= m;
            }
        }
    }
}

impl Not for &TruthTable {
    type Output = TruthTable;
    fn not(self) -> TruthTable {
        let mut out = TruthTable {
            num_vars: self.num_vars,
            words: self.words.iter().map(|w| !w).collect(),
        };
        out.canonicalize();
        out
    }
}

impl BitAnd for &TruthTable {
    type Output = TruthTable;
    fn bitand(self, rhs: &TruthTable) -> TruthTable {
        assert_eq!(self.num_vars, rhs.num_vars, "truth table arity mismatch");
        TruthTable {
            num_vars: self.num_vars,
            words: self.words.iter().zip(&rhs.words).map(|(a, b)| a & b).collect(),
        }
    }
}

impl BitOr for &TruthTable {
    type Output = TruthTable;
    fn bitor(self, rhs: &TruthTable) -> TruthTable {
        assert_eq!(self.num_vars, rhs.num_vars, "truth table arity mismatch");
        TruthTable {
            num_vars: self.num_vars,
            words: self.words.iter().zip(&rhs.words).map(|(a, b)| a | b).collect(),
        }
    }
}

impl BitXor for &TruthTable {
    type Output = TruthTable;
    fn bitxor(self, rhs: &TruthTable) -> TruthTable {
        assert_eq!(self.num_vars, rhs.num_vars, "truth table arity mismatch");
        TruthTable {
            num_vars: self.num_vars,
            words: self.words.iter().zip(&rhs.words).map(|(a, b)| a ^ b).collect(),
        }
    }
}

impl fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TruthTable({} vars, {} ones)", self.num_vars, self.count_ones())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        let z = TruthTable::zero(3);
        let o = TruthTable::one(3);
        assert!(z.is_zero());
        assert!(o.is_one());
        assert_eq!(o.count_ones(), 8);
        assert_eq!((!&o).count_ones(), 0);
    }

    #[test]
    fn variable_projection_small_and_large() {
        for n in [1usize, 3, 6, 7, 9] {
            for v in 0..n {
                let t = TruthTable::var(n, v);
                for m in 0..(1u64 << n) {
                    assert_eq!(t.eval(m), (m >> v) & 1 == 1, "n={n} v={v} m={m}");
                }
            }
        }
    }

    #[test]
    fn boolean_ops_match_bitwise_semantics() {
        let a = TruthTable::var(4, 0);
        let b = TruthTable::var(4, 3);
        let and = &a & &b;
        let or = &a | &b;
        let xor = &a ^ &b;
        for m in 0..16u64 {
            let av = m & 1 == 1;
            let bv = (m >> 3) & 1 == 1;
            assert_eq!(and.eval(m), av && bv);
            assert_eq!(or.eval(m), av || bv);
            assert_eq!(xor.eval(m), av ^ bv);
        }
    }

    #[test]
    fn cube_union() {
        let mut t = TruthTable::zero(3);
        t.or_cube(&Cube::from_literals(3, &[(0, true)]));
        assert_eq!(t.count_ones(), 4);
        t.or_cube(&Cube::from_literals(3, &[(2, false)]));
        // x0 | !x2 has 4 + 4 - 2 = 6 minterms
        assert_eq!(t.count_ones(), 6);
        assert!(t.covers_cube(&Cube::from_literals(3, &[(0, true), (2, true)])));
        assert!(!t.covers_cube(&Cube::universe()));
    }

    #[test]
    fn cofactor_and_support() {
        // f = x0 & x2 over 3 vars
        let f = &TruthTable::var(3, 0) & &TruthTable::var(3, 2);
        assert_eq!(f.support(), vec![0, 2]);
        let f_x2 = f.cofactor(2, true);
        // cofactor is x0 (independent of x2)
        for m in 0..8u64 {
            assert_eq!(f_x2.eval(m), m & 1 == 1);
        }
        assert!(f.cofactor(2, false).is_zero());
        assert!(!f.depends_on(1));
    }

    #[test]
    fn from_fn_roundtrip() {
        let maj = TruthTable::from_fn(3, |m| m.count_ones() >= 2);
        assert_eq!(maj.count_ones(), 4);
        assert!(maj.eval(0b110));
        assert!(!maj.eval(0b100));
        assert_eq!(maj.minterms().collect::<Vec<_>>(), vec![0b011, 0b101, 0b110, 0b111]);
    }
}
