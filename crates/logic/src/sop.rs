//! Sum-of-products (two-level) covers.
//!
//! An [`Sop`] is an ordered list of [`Cube`]s interpreted as a disjunction.
//! The *order* matters for the paper's essential-weight selection (§4.1):
//! cubes are sorted by ascending literal count and a cube's essential
//! weight is the fraction of SPCF patterns it covers that no earlier cube
//! covered.

use crate::cube::Cube;
use std::fmt;

/// A sum-of-products cover: an ordered disjunction of cubes over
/// `num_vars` variables.
///
/// # Examples
///
/// ```
/// use tm_logic::{cube::Cube, sop::Sop};
///
/// // f = x0·x1 + x2'
/// let f = Sop::from_cubes(3, vec![
///     Cube::from_literals(3, &[(0, true), (1, true)]),
///     Cube::from_literals(3, &[(2, false)]),
/// ]);
/// assert!(f.eval(0b011));
/// assert!(!f.eval(0b100));
/// assert_eq!(f.literal_count(), 3);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Sop {
    num_vars: usize,
    cubes: Vec<Cube>,
}

impl Sop {
    /// The empty cover (constant false).
    pub fn zero(num_vars: usize) -> Self {
        Sop { num_vars, cubes: Vec::new() }
    }

    /// The tautology cover (a single universal cube).
    pub fn one(num_vars: usize) -> Self {
        Sop { num_vars, cubes: vec![Cube::universe()] }
    }

    /// Builds a cover from cubes.
    pub fn from_cubes(num_vars: usize, cubes: Vec<Cube>) -> Self {
        Sop { num_vars, cubes }
    }

    /// Single-cube cover.
    pub fn from_cube(num_vars: usize, cube: Cube) -> Self {
        Sop { num_vars, cubes: vec![cube] }
    }

    /// Number of variables in the cover's space.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of cubes.
    pub fn len(&self) -> usize {
        self.cubes.len()
    }

    /// Whether the cover has no cubes (constant false).
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// The cubes in order.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Appends a cube.
    pub fn push(&mut self, cube: Cube) {
        self.cubes.push(cube);
    }

    /// Total literal count over all cubes (the classic two-level cost).
    pub fn literal_count(&self) -> usize {
        self.cubes.iter().map(|c| c.literal_count() as usize).sum()
    }

    /// Evaluates the cover on a minterm.
    pub fn eval(&self, assignment: u64) -> bool {
        self.cubes.iter().any(|c| c.eval(assignment))
    }

    /// Sorts cubes by ascending literal count (stable), the order required
    /// by the paper's essential-weight cover selection.
    pub fn sort_by_literal_count(&mut self) {
        self.cubes.sort_by_key(|c| (c.literal_count(), c.mask(), c.value()));
    }

    /// Returns a copy sorted by ascending literal count.
    pub fn sorted_by_literal_count(&self) -> Self {
        let mut out = self.clone();
        out.sort_by_literal_count();
        out
    }

    /// Removes cubes contained in another cube of the cover (single-cube
    /// containment); keeps first occurrences.
    pub fn remove_contained(&mut self) {
        let mut kept: Vec<Cube> = Vec::with_capacity(self.cubes.len());
        // Larger cubes (fewer literals) absorb smaller ones, so scan in
        // ascending literal order but preserve original order in output.
        for (i, c) in self.cubes.iter().enumerate() {
            let absorbed = self
                .cubes
                .iter()
                .enumerate()
                .any(|(j, d)| j != i && d.contains(c) && (d != c || j < i));
            if !absorbed {
                kept.push(*c);
            }
        }
        self.cubes = kept;
    }

    /// Disjunction of two covers (concatenation; no minimization).
    pub fn or(&self, other: &Sop) -> Sop {
        assert_eq!(self.num_vars, other.num_vars, "SOP arity mismatch");
        let mut cubes = self.cubes.clone();
        cubes.extend_from_slice(&other.cubes);
        Sop { num_vars: self.num_vars, cubes }
    }

    /// Conjunction of two covers (pairwise cube intersection).
    pub fn and(&self, other: &Sop) -> Sop {
        assert_eq!(self.num_vars, other.num_vars, "SOP arity mismatch");
        let mut cubes = Vec::new();
        for a in &self.cubes {
            for b in &other.cubes {
                if let Some(c) = a.intersect(b) {
                    cubes.push(c);
                }
            }
        }
        let mut out = Sop { num_vars: self.num_vars, cubes };
        out.remove_contained();
        out
    }

    /// Renames variables through `map` (old index → new index) into a
    /// space of `new_num_vars` variables.
    pub fn permute(&self, new_num_vars: usize, map: &[usize]) -> Sop {
        Sop {
            num_vars: new_num_vars,
            cubes: self.cubes.iter().map(|c| c.permute(map)).collect(),
        }
    }
}

impl FromIterator<Cube> for Sop {
    /// Collects cubes into a cover; the variable count is the maximum
    /// bound variable index + 1 (use [`Sop::from_cubes`] to fix the arity
    /// explicitly).
    fn from_iter<T: IntoIterator<Item = Cube>>(iter: T) -> Self {
        let cubes: Vec<Cube> = iter.into_iter().collect();
        let num_vars = cubes
            .iter()
            .map(|c| 64 - c.mask().leading_zeros() as usize)
            .max()
            .unwrap_or(0);
        Sop { num_vars, cubes }
    }
}

impl Extend<Cube> for Sop {
    fn extend<T: IntoIterator<Item = Cube>>(&mut self, iter: T) {
        self.cubes.extend(iter);
    }
}

impl fmt::Debug for Sop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cubes.is_empty() {
            return write!(f, "0");
        }
        for (i, c) in self.cubes.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{c:?}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Sop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tt::TruthTable;

    fn xor2() -> Sop {
        Sop::from_cubes(2, vec![
            Cube::from_literals(2, &[(0, true), (1, false)]),
            Cube::from_literals(2, &[(0, false), (1, true)]),
        ])
    }

    #[test]
    fn eval_matches_cubes() {
        let f = xor2();
        assert!(f.eval(0b01));
        assert!(f.eval(0b10));
        assert!(!f.eval(0b00));
        assert!(!f.eval(0b11));
    }

    #[test]
    fn constants() {
        assert!(!Sop::zero(3).eval(5));
        assert!(Sop::one(3).eval(5));
        assert!(Sop::zero(3).is_empty());
    }

    #[test]
    fn sort_order_is_ascending_literals() {
        let mut f = Sop::from_cubes(3, vec![
            Cube::from_literals(3, &[(0, true), (1, true), (2, true)]),
            Cube::from_literals(3, &[(0, false)]),
            Cube::from_literals(3, &[(1, true), (2, false)]),
        ]);
        f.sort_by_literal_count();
        let counts: Vec<u32> = f.cubes().iter().map(|c| c.literal_count()).collect();
        assert_eq!(counts, vec![1, 2, 3]);
    }

    #[test]
    fn containment_removal() {
        let mut f = Sop::from_cubes(3, vec![
            Cube::from_literals(3, &[(0, true)]),
            Cube::from_literals(3, &[(0, true), (1, false)]), // contained
            Cube::from_literals(3, &[(2, true)]),
        ]);
        f.remove_contained();
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn and_or_match_truth_tables() {
        let f = xor2().permute(3, &[0, 1]);
        let g = Sop::from_cube(3, Cube::from_literals(3, &[(2, true)]));
        let and = f.and(&g);
        let or = f.or(&g);
        let ft = TruthTable::from_sop(3, &f);
        let gt = TruthTable::from_sop(3, &g);
        assert_eq!(TruthTable::from_sop(3, &and), &ft & &gt);
        assert_eq!(TruthTable::from_sop(3, &or), &ft | &gt);
    }

    #[test]
    fn collect_from_cubes() {
        let f: Sop = vec![Cube::from_literals(4, &[(3, true)])].into_iter().collect();
        assert_eq!(f.num_vars(), 4);
        assert_eq!(f.len(), 1);
    }
}
