//! Quine–McCluskey prime implicant generation and two-level cover
//! selection.
//!
//! The short-path SPCF recursion (paper Eqn. 1) needs *all prime
//! implicants* of the on-set and off-set of every gate function, and the
//! masking synthesis (§4.1) needs minimized SOP covers of
//! technology-independent nodes. Functions here are exact for tables up to
//! [`crate::tt::MAX_TT_VARS`] inputs; the synthesis flow keeps node
//! arities at 10–15 inputs, well inside that bound.

use crate::cube::Cube;
use crate::sop::Sop;
use crate::tt::TruthTable;
use std::collections::{HashMap, HashSet};

/// Computes all prime implicants of the incompletely specified function
/// with the given on-set and don't-care set.
///
/// A prime implicant is a cube contained in `on ∪ dc` that is not
/// contained in any larger such cube. The result is sorted by ascending
/// literal count (the order the essential-weight selection expects).
///
/// # Panics
///
/// Panics if the two tables have different arities.
///
/// # Examples
///
/// ```
/// use tm_logic::{qm::prime_implicants, tt::TruthTable};
///
/// // f = majority of 3 inputs: primes are the three 2-literal cubes.
/// let f = TruthTable::from_fn(3, |m| m.count_ones() >= 2);
/// let primes = prime_implicants(&f, &TruthTable::zero(3));
/// assert_eq!(primes.len(), 3);
/// assert!(primes.iter().all(|p| p.literal_count() == 2));
/// ```
pub fn prime_implicants(on: &TruthTable, dc: &TruthTable) -> Vec<Cube> {
    assert_eq!(on.num_vars(), dc.num_vars(), "on/dc arity mismatch");
    let n = on.num_vars();
    let care_or_dc = on | dc;

    if care_or_dc.is_zero() {
        return Vec::new();
    }
    if care_or_dc.is_one() {
        return vec![Cube::universe()];
    }

    // Level 0: all minterms of on ∪ dc.
    let mut current: HashSet<Cube> = care_or_dc.minterms().map(|m| Cube::minterm(n, m)).collect();
    let mut primes: Vec<Cube> = Vec::new();

    while !current.is_empty() {
        let mut merged_away: HashSet<Cube> = HashSet::new();
        let mut next: HashSet<Cube> = HashSet::new();

        // Group cubes by their bound-variable mask; only same-mask cubes
        // can merge, and a merge partner differs in exactly one value bit.
        let mut by_mask: HashMap<u64, HashSet<u64>> = HashMap::new();
        for c in &current {
            by_mask.entry(c.mask()).or_default().insert(c.value());
        }
        for c in &current {
            let values = &by_mask[&c.mask()];
            let mut bit_iter = c.mask();
            while bit_iter != 0 {
                let bit = bit_iter & bit_iter.wrapping_neg();
                bit_iter &= bit_iter - 1;
                let partner = c.value() ^ bit;
                if values.contains(&partner) {
                    merged_away.insert(*c);
                    merged_away.insert(Cube::from_masks(c.mask(), partner));
                    next.insert(Cube::from_masks(c.mask() & !bit, c.value() & !bit));
                }
            }
        }

        for c in &current {
            if !merged_away.contains(c) {
                primes.push(*c);
            }
        }
        current = next;
    }

    primes.sort_by_key(|c| (c.literal_count(), c.mask(), c.value()));
    primes.dedup();
    primes
}

/// Prime implicants of both the on-set and off-set of a completely
/// specified function.
///
/// This is the set `P` of Eqn. 1: "the set of all prime implicants in the
/// on-set and off-set of f". Returned as `(on_primes, off_primes)`.
pub fn on_off_primes(f: &TruthTable) -> (Vec<Cube>, Vec<Cube>) {
    let dc = TruthTable::zero(f.num_vars());
    (prime_implicants(f, &dc), prime_implicants(&!f, &dc))
}

/// Selects an irredundant cover of the on-set from a set of prime
/// implicants using essential primes plus greedy set covering.
///
/// Every on-set minterm ends up covered; don't-care minterms may or may
/// not be. The selection is heuristic (greedy), as in classical two-level
/// minimizers; the result is irredundant with respect to single-cube
/// removal.
///
/// # Panics
///
/// Panics if the primes do not jointly cover the on-set (they always do
/// when produced by [`prime_implicants`] of the same function).
pub fn select_cover(on: &TruthTable, primes: &[Cube]) -> Sop {
    let n = on.num_vars();
    let minterms: Vec<u64> = on.minterms().collect();
    if minterms.is_empty() {
        return Sop::zero(n);
    }

    // Coverage matrix: for each on-set minterm, which primes cover it.
    let mut covering: Vec<Vec<usize>> = vec![Vec::new(); minterms.len()];
    for (pi, p) in primes.iter().enumerate() {
        for (mi, &m) in minterms.iter().enumerate() {
            if p.eval(m) {
                covering[mi].push(pi);
            }
        }
    }
    for (mi, cov) in covering.iter().enumerate() {
        assert!(
            !cov.is_empty(),
            "prime set does not cover on-set minterm {}",
            minterms[mi]
        );
    }

    let mut selected: HashSet<usize> = HashSet::new();
    let mut uncovered: HashSet<usize> = (0..minterms.len()).collect();

    // Essential primes first: minterms covered by exactly one prime.
    for cov in &covering {
        if cov.len() == 1 {
            selected.insert(cov[0]);
        }
    }
    uncovered.retain(|&mi| !covering[mi].iter().any(|pi| selected.contains(pi)));

    // Greedy set cover for the rest.
    while !uncovered.is_empty() {
        let mut best = usize::MAX;
        let mut best_gain = 0usize;
        let mut gains: HashMap<usize, usize> = HashMap::new();
        for &mi in &uncovered {
            for &pi in &covering[mi] {
                *gains.entry(pi).or_insert(0) += 1;
            }
        }
        for (&pi, &gain) in &gains {
            // Tie-break toward fewer literals, then stable by index.
            if gain > best_gain
                || (gain == best_gain
                    && best != usize::MAX
                    && (primes[pi].literal_count(), pi)
                        < (primes[best].literal_count(), best))
            {
                best = pi;
                best_gain = gain;
            }
        }
        selected.insert(best);
        uncovered.retain(|&mi| !covering[mi].contains(&best));
    }

    // Irredundancy pass: drop any selected prime whose on-set minterms are
    // all covered by the others.
    let mut chosen: Vec<usize> = selected.into_iter().collect();
    chosen.sort_unstable();
    let mut i = 0;
    while i < chosen.len() {
        let pi = chosen[i];
        let redundant = minterms.iter().enumerate().all(|(mi, _)| {
            !covering[mi].contains(&pi)
                || covering[mi].iter().any(|&qj| qj != pi && chosen.contains(&qj))
        });
        if redundant {
            chosen.remove(i);
        } else {
            i += 1;
        }
    }

    let mut sop = Sop::from_cubes(n, chosen.into_iter().map(|pi| primes[pi]).collect());
    sop.sort_by_literal_count();
    sop
}

/// Exact-prime, greedy-cover two-level minimization of an incompletely
/// specified function.
///
/// Returns a sum-of-products whose on-set contains `on` and is contained
/// in `on ∪ dc`.
///
/// # Examples
///
/// ```
/// use tm_logic::{qm::minimize, tt::TruthTable};
///
/// let f = TruthTable::from_fn(3, |m| m.count_ones() >= 2);
/// let sop = minimize(&f, &TruthTable::zero(3));
/// assert_eq!(sop.len(), 3); // the three majority cubes
/// ```
pub fn minimize(on: &TruthTable, dc: &TruthTable) -> Sop {
    let primes = prime_implicants(on, dc);
    select_cover(on, &primes)
}

/// Minimized covers of the on-set and off-set of a completely specified
/// function: `(on_cover, off_cover)`.
pub fn minimize_both_phases(f: &TruthTable) -> (Sop, Sop) {
    let dc = TruthTable::zero(f.num_vars());
    (minimize(f, &dc), minimize(&!f, &dc))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_cover_correct(on: &TruthTable, dc: &TruthTable, sop: &Sop) {
        for m in 0..on.num_minterms() {
            let v = sop.eval(m);
            if on.eval(m) {
                assert!(v, "on-set minterm {m} not covered");
            } else if !dc.eval(m) {
                assert!(!v, "off-set minterm {m} wrongly covered");
            }
        }
    }

    #[test]
    fn primes_of_constants() {
        assert!(prime_implicants(&TruthTable::zero(3), &TruthTable::zero(3)).is_empty());
        let p = prime_implicants(&TruthTable::one(3), &TruthTable::zero(3));
        assert_eq!(p, vec![Cube::universe()]);
    }

    #[test]
    fn primes_of_single_variable() {
        let f = TruthTable::var(3, 1);
        let p = prime_implicants(&f, &TruthTable::zero(3));
        assert_eq!(p, vec![Cube::from_literals(3, &[(1, true)])]);
    }

    #[test]
    fn xor_has_only_minterm_primes() {
        let f = &TruthTable::var(2, 0) ^ &TruthTable::var(2, 1);
        let p = prime_implicants(&f, &TruthTable::zero(2));
        assert_eq!(p.len(), 2);
        assert!(p.iter().all(|c| c.literal_count() == 2));
    }

    #[test]
    fn dont_cares_enlarge_primes() {
        // on = {3}, dc = {1, 2}: the single prime would be x0&x1 without
        // dc, but with dc the function can expand.
        let mut on = TruthTable::zero(2);
        on.set(0b11, true);
        let mut dc = TruthTable::zero(2);
        dc.set(0b01, true);
        dc.set(0b10, true);
        let p = prime_implicants(&on, &dc);
        // Primes: x0 (covers {1,3}) and x1 (covers {2,3}).
        assert_eq!(p.len(), 2);
        assert!(p.iter().all(|c| c.literal_count() == 1));
    }

    #[test]
    fn minimize_majority() {
        let f = TruthTable::from_fn(3, |m| m.count_ones() >= 2);
        let sop = minimize(&f, &TruthTable::zero(3));
        check_cover_correct(&f, &TruthTable::zero(3), &sop);
        assert_eq!(sop.len(), 3);
    }

    #[test]
    fn minimize_with_dc_uses_dc() {
        let mut on = TruthTable::zero(3);
        on.set(0b111, true);
        let dc = TruthTable::from_fn(3, |m| m != 0b111 && m != 0b000);
        let sop = minimize(&on, &dc);
        check_cover_correct(&on, &dc, &sop);
        // With everything but 000 allowed, a single 1-literal cube suffices.
        assert_eq!(sop.len(), 1);
        assert_eq!(sop.cubes()[0].literal_count(), 1);
    }

    #[test]
    fn both_phases_partition() {
        let f = TruthTable::from_fn(4, |m| (m * 7 + 3) % 5 < 2);
        let (on, off) = minimize_both_phases(&f);
        for m in 0..16u64 {
            assert_eq!(on.eval(m), f.eval(m));
            assert_eq!(off.eval(m), !f.eval(m));
        }
    }

    #[test]
    fn random_functions_minimize_correctly() {
        // Deterministic pseudo-random functions over 5 vars.
        let mut seed = 0x9e3779b97f4a7c15u64;
        for _ in 0..25 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let s = seed;
            let f = TruthTable::from_fn(5, |m| (s >> (m % 64)) & 1 == 1);
            let sop = minimize(&f, &TruthTable::zero(5));
            check_cover_correct(&f, &TruthTable::zero(5), &sop);
        }
    }

    #[test]
    fn primes_are_maximal() {
        let f = TruthTable::from_fn(4, |m| m % 3 == 0);
        let primes = prime_implicants(&f, &TruthTable::zero(4));
        for p in &primes {
            assert!(f.covers_cube(p), "prime not an implicant");
            // Freeing any bound variable must leave the on-set.
            for (var, _) in p.literals() {
                let bigger = Cube::from_masks(p.mask() & !(1 << var), p.value() & !(1 << var));
                assert!(!f.covers_cube(&bigger), "prime {p:?} not maximal at var {var}");
            }
        }
    }
}
