//! Property tests cross-checking the three Boolean representations
//! (truth tables, SOPs/cubes, BDDs) against each other: each serves as
//! an oracle for the others.
//!
//! Runs on the in-repo `tm-testkit` property runner; a failing case
//! prints its seed (reproduce with `TM_PROP_SEED=<seed>`).

use tm_logic::bdd::{Bdd, BddRef};
use tm_logic::{qm, Cube, TruthTable};
use tm_testkit::prop::{check, Config, Gen};
use tm_testkit::{prop_assert, prop_assert_eq};

fn cfg(cases: u32) -> Config {
    Config::with_cases(cases)
}

/// A random truth table over `n ≤ 6` variables, shrinkable word by
/// word toward the zero function.
fn gen_tt(g: &mut Gen, n: usize) -> TruthTable {
    let bits = 1u32 << n;
    let words = g.bitvec(1usize << n.saturating_sub(6), bits.min(64));
    TruthTable::from_fn(n, |m| (words[(m >> 6) as usize] >> (m & 63)) & 1 == 1)
}

/// Builds the BDD of a truth table by Shannon expansion over minterms.
fn bdd_of_tt(bdd: &mut Bdd, tt: &TruthTable) -> BddRef {
    let mut terms = Vec::new();
    for m in tt.minterms() {
        let lits: Vec<BddRef> = (0..tt.num_vars())
            .map(|v| bdd.literal(v, (m >> v) & 1 == 1))
            .collect();
        terms.push(bdd.and_all(lits));
    }
    bdd.or_all(terms)
}

/// BDD operations agree with truth-table operations pointwise.
#[test]
fn bdd_ops_match_tt_ops() {
    check("bdd_ops_match_tt_ops", &cfg(48), |g| (gen_tt(g, 5), gen_tt(g, 5)), |(a, b)| {
        let mut bdd = Bdd::new(5);
        let fa = bdd_of_tt(&mut bdd, a);
        let fb = bdd_of_tt(&mut bdd, b);
        let and = bdd.and(fa, fb);
        let or = bdd.or(fa, fb);
        let xor = bdd.xor(fa, fb);
        let na = bdd.not(fa);
        let imp = bdd.implies(fa, fb);
        for m in 0..32u64 {
            let assignment: Vec<bool> = (0..5).map(|i| (m >> i) & 1 == 1).collect();
            let (va, vb) = (a.eval(m), b.eval(m));
            prop_assert_eq!(bdd.eval(and, &assignment), va && vb);
            prop_assert_eq!(bdd.eval(or, &assignment), va || vb);
            prop_assert_eq!(bdd.eval(xor, &assignment), va ^ vb);
            prop_assert_eq!(bdd.eval(na, &assignment), !va);
            prop_assert_eq!(bdd.eval(imp, &assignment), !va || vb);
        }
        Ok(())
    });
}

/// Satisfy counts computed on the BDD equal the truth table's ones
/// count.
#[test]
fn sat_count_matches_tt() {
    check("sat_count_matches_tt", &cfg(48), |g| gen_tt(g, 6), |a| {
        let mut bdd = Bdd::new(6);
        let f = bdd_of_tt(&mut bdd, a);
        prop_assert_eq!(bdd.sat_count(f), a.count_ones() as f64);
        Ok(())
    });
}

/// Canonicity: equal functions get equal refs regardless of the
/// construction route (minterm order reversed).
#[test]
fn bdd_canonical() {
    check("bdd_canonical", &cfg(48), |g| gen_tt(g, 5), |a| {
        let mut bdd = Bdd::new(5);
        let forward = bdd_of_tt(&mut bdd, a);
        let mut terms = Vec::new();
        let minterms: Vec<u64> = a.minterms().collect();
        for &m in minterms.iter().rev() {
            let lits: Vec<BddRef> = (0..5).map(|v| bdd.literal(v, (m >> v) & 1 == 1)).collect();
            terms.push(bdd.and_all(lits));
        }
        let backward = bdd.or_all(terms);
        prop_assert_eq!(forward, backward);
        Ok(())
    });
}

/// Exists-quantification matches the truth-table cofactor OR.
#[test]
fn exists_matches_cofactors() {
    check(
        "exists_matches_cofactors",
        &cfg(48),
        |g| (gen_tt(g, 5), g.gen_range(0usize..5)),
        |(a, var)| {
            let mut bdd = Bdd::new(5);
            let f = bdd_of_tt(&mut bdd, a);
            let e = bdd.exists(f, &[*var]);
            let expect = &a.cofactor(*var, false) | &a.cofactor(*var, true);
            for m in 0..32u64 {
                let assignment: Vec<bool> = (0..5).map(|i| (m >> i) & 1 == 1).collect();
                prop_assert_eq!(bdd.eval(e, &assignment), expect.eval(m));
            }
            Ok(())
        },
    );
}

/// Quine–McCluskey minimization is exact: the cover equals the
/// function, every cube is a maximal implicant.
#[test]
fn qm_minimize_is_exact() {
    check("qm_minimize_is_exact", &cfg(48), |g| gen_tt(g, 5), |a| {
        let dc = TruthTable::zero(5);
        let sop = qm::minimize(a, &dc);
        for m in 0..32u64 {
            prop_assert_eq!(sop.eval(m), a.eval(m), "cover differs at {}", m);
        }
        let primes = qm::prime_implicants(a, &dc);
        for p in &primes {
            prop_assert!(a.covers_cube(p));
            for (var, _) in p.literals() {
                let bigger = Cube::from_masks(p.mask() & !(1 << var), p.value() & !(1 << var));
                prop_assert!(!a.covers_cube(&bigger), "non-maximal prime");
            }
        }
        // Every selected cube is one of the primes.
        for c in sop.cubes() {
            prop_assert!(primes.contains(c));
        }
        Ok(())
    });
}

/// With don't-cares, the minimized cover stays inside on ∪ dc and
/// covers all of on.
#[test]
fn qm_respects_dont_cares() {
    check(
        "qm_respects_dont_cares",
        &cfg(48),
        |g| (gen_tt(g, 5), gen_tt(g, 5)),
        |(on_raw, dc_raw)| {
            let dc = dc_raw & &!on_raw; // disjoint dc
            let sop = qm::minimize(on_raw, &dc);
            for m in 0..32u64 {
                if on_raw.eval(m) {
                    prop_assert!(sop.eval(m));
                } else if !dc.eval(m) {
                    prop_assert!(!sop.eval(m));
                }
            }
            Ok(())
        },
    );
}

/// SOP and/or agree with truth-table and/or.
#[test]
fn sop_algebra() {
    check("sop_algebra", &cfg(48), |g| (gen_tt(g, 4), gen_tt(g, 4)), |(a, b)| {
        let z = TruthTable::zero(4);
        let sa = qm::minimize(a, &z);
        let sb = qm::minimize(b, &z);
        let and = sa.and(&sb);
        let or = sa.or(&sb);
        for m in 0..16u64 {
            prop_assert_eq!(and.eval(m), a.eval(m) && b.eval(m));
            prop_assert_eq!(or.eval(m), a.eval(m) || b.eval(m));
        }
        Ok(())
    });
}

/// Sampling satisfying assignments always yields models.
#[test]
fn sample_sat_yields_models() {
    check(
        "sample_sat_yields_models",
        &cfg(48),
        |g| (gen_tt(g, 5), g.gen_range(0u64..1000)),
        |(a, seed)| {
            let mut bdd = Bdd::new(5);
            let f = bdd_of_tt(&mut bdd, a);
            let mut state = *seed as f64 / 1000.0 + 0.123;
            let sample = bdd.sample_sat(f, || {
                state = (state * 9301.0 + 49297.0) % 233280.0 / 233280.0;
                state
            });
            match sample {
                Some(s) => prop_assert!(bdd.eval(f, &s)),
                None => prop_assert!(a.is_zero()),
            }
            Ok(())
        },
    );
}

/// Cube containment and intersection agree with minterm semantics.
#[test]
fn cube_set_semantics() {
    check(
        "cube_set_semantics",
        &cfg(64),
        |g| {
            (
                g.gen_range(0u64..16),
                g.gen_range(0u64..16),
                g.gen_range(0u64..16),
                g.gen_range(0u64..16),
            )
        },
        |&(mask_a, val_a, mask_b, val_b)| {
            let a = Cube::from_masks(mask_a, val_a);
            let b = Cube::from_masks(mask_b, val_b);
            let a_set: Vec<u64> = (0..16).filter(|&m| a.eval(m)).collect();
            let b_set: Vec<u64> = (0..16).filter(|&m| b.eval(m)).collect();
            prop_assert_eq!(a.contains(&b), b_set.iter().all(|m| a_set.contains(m)));
            prop_assert_eq!(a.intersects(&b), a_set.iter().any(|m| b_set.contains(m)));
            if let Some(i) = a.intersect(&b) {
                for m in 0..16u64 {
                    prop_assert_eq!(i.eval(m), a.eval(m) && b.eval(m));
                }
            }
            Ok(())
        },
    );
}

/// Sop::from_cubes/TruthTable::from_sop round-trip through
/// minimization.
#[test]
fn sop_tt_roundtrip() {
    check("sop_tt_roundtrip", &cfg(48), |g| gen_tt(g, 5), |a| {
        let sop = qm::minimize(a, &TruthTable::zero(5));
        let back = TruthTable::from_sop(5, &sop);
        prop_assert_eq!(&back, a);
        Ok(())
    });
}

/// Deterministic regression: sorted-by-literal-count ordering is what
/// the essential-weight selection expects (stable, ascending).
#[test]
fn sorted_cover_is_ascending() {
    let f = TruthTable::from_fn(5, |m| m % 7 == 0 || m == 31);
    let mut sop = qm::minimize(&f, &TruthTable::zero(5));
    sop.sort_by_literal_count();
    let counts: Vec<u32> = sop.cubes().iter().map(Cube::literal_count).collect();
    let mut sorted = counts.clone();
    sorted.sort_unstable();
    assert_eq!(counts, sorted);
}
