//! Differential check of the [`PortableBdd`] export against an
//! independent plain-ROBDD reference.
//!
//! The manager stores complement-edge BDDs, but its export boundary
//! promises the *plain* ROBDD of the function (one node per distinct
//! subfunction, no complemented edges). This suite verifies that
//! promise without touching the manager's own code paths: a reference
//! node count is derived directly from the truth table by enumerating
//! distinct variable-dependent subfunctions (the textbook ROBDD
//! characterization), and the export must match it node for node —
//! along with evaluation, round-trip canonicity, and cross-manager
//! byte-identity.

use std::collections::HashSet;
use tm_logic::bdd::{Bdd, BddRef};

const NUM_VARS: u32 = 6;

/// Splits a truth table over `width`-var subspace into the two
/// cofactors of its lowest-indexed variable (bit 0 of the row index).
fn cofactors(table: u64, width: u32) -> (u64, u64) {
    let (mut lo, mut hi) = (0u64, 0u64);
    for j in 0..(1u64 << (width - 1)) {
        lo |= ((table >> (2 * j)) & 1) << j;
        hi |= ((table >> (2 * j + 1)) & 1) << j;
    }
    (lo, hi)
}

fn full_mask(width: u32) -> u64 {
    if width == 6 {
        u64::MAX
    } else {
        (1u64 << (1u64 << width)) - 1
    }
}

/// Internal-node count of the plain ROBDD (variable order 0..n from
/// the root), computed purely on truth tables: one node per distinct
/// subfunction that actually depends on its top variable.
fn reference_node_count(tt: u64) -> usize {
    fn walk(level: u32, table: u64, seen: &mut HashSet<(u32, u64)>) {
        let width = NUM_VARS - level;
        let table = table & full_mask(width);
        if table == 0 || table == full_mask(width) {
            return;
        }
        let (lo, hi) = cofactors(table, width);
        if lo == hi {
            // Independent of this variable: the node lives deeper.
            walk(level + 1, lo, seen);
            return;
        }
        if !seen.insert((level, table)) {
            return;
        }
        walk(level + 1, lo, seen);
        walk(level + 1, hi, seen);
    }
    let mut seen = HashSet::new();
    walk(0, tt, &mut seen);
    seen.len()
}

/// Builds the function with truth table `tt` by Shannon expansion,
/// bottom-up over the same variable order the reference uses.
fn build_from_tt(bdd: &mut Bdd, level: u32, tt: u64) -> BddRef {
    let width = NUM_VARS - level;
    let tt = tt & full_mask(width);
    if tt == 0 {
        return bdd.zero();
    }
    if tt == full_mask(width) {
        return bdd.one();
    }
    let (lo, hi) = cofactors(tt, width);
    let f0 = build_from_tt(bdd, level + 1, lo);
    let f1 = build_from_tt(bdd, level + 1, hi);
    let v = bdd.var(level as usize);
    bdd.ite(v, f1, f0)
}

/// Seeded truth tables covering degenerate and dense cases.
fn workload() -> Vec<u64> {
    let mut tables = vec![0, u64::MAX, 0xAAAA_AAAA_AAAA_AAAA, 0x6996_9669_9669_6996];
    let mut state = 0x1234_5678_9ABC_DEF0u64;
    for _ in 0..60 {
        // xorshift64* — deterministic, no external randomness.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        tables.push(state.wrapping_mul(0x2545_F491_4F6C_DD1D));
    }
    tables
}

#[test]
fn export_matches_the_plain_robdd_reference() {
    for tt in workload() {
        let mut a = Bdd::new(NUM_VARS as usize);
        let f = build_from_tt(&mut a, 0, tt);

        // The built function evaluates to its truth table.
        for m in 0..64u64 {
            let assignment: Vec<bool> = (0..NUM_VARS).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(a.eval(f, &assignment), (tt >> m) & 1 == 1, "tt={tt:#x} m={m}");
        }

        // The export is exactly the plain ROBDD: its node count equals
        // the truth-table-derived reference (and the manager's own
        // `size`, which counts distinct edges with parity).
        let p = a.export(f);
        let reference = reference_node_count(tt);
        assert_eq!(p.node_count(), reference, "tt={tt:#x}: export is not the plain ROBDD");
        assert_eq!(a.size(f), reference, "tt={tt:#x}: size disagrees with the reference");

        // Round trip into a fresh manager lands on the same canonical
        // node the direct construction reaches, and re-exports
        // byte-identically.
        let mut b = Bdd::new(NUM_VARS as usize);
        let imported = b.import(&p);
        let direct = build_from_tt(&mut b, 0, tt);
        assert_eq!(imported, direct, "tt={tt:#x}: import is not canonical");
        assert_eq!(b.export(imported), p, "tt={tt:#x}: export depends on manager history");
    }
}
