//! Benchmark harness regenerating every table and figure of the paper.
//!
//! | experiment | regenerator |
//! |---|---|
//! | Table 1 (SPCF accuracy vs runtime) | `cargo run -p tm-bench --release --bin table1` |
//! | Table 2 (area/power overhead of 100 % masking) | `cargo run -p tm-bench --release --bin table2` |
//! | Fig. 1 / Fig. 2 | `examples/quickstart.rs`, `examples/comparator.rs` |
//! | §4 design-choice ablations | `cargo run -p tm-bench --release --bin ablations` |
//! | §6 future work + §2 baselines | `cargo run -p tm-bench --release --bin extensions` |
//! | protection-band sweep | `cargo run -p tm-bench --release --bin sweep` |
//! | §2.1 wearout & debug | `examples/wearout.rs`, `examples/silicon_debug.rs`, `cargo bench` group `monitor` |
//!
//! Micro-benchmarks (`cargo bench -p tm-bench`, tm-testkit harness) time the same
//! kernels statistically. Every workload is deterministic: the suite
//! circuits are seeded stand-ins for the paper's benchmarks (see
//! `DESIGN.md` §3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;
use std::time::Duration;
use tm_logic::Bdd;
use tm_masking::{synthesize, verify, MaskingOptions, MaskingResult};
use tm_netlist::library::{lsi10k_like, Library};
use tm_netlist::suites::SuiteEntry;
use tm_resilience::Budget;
use tm_spcf::{spcf_with, Algorithm, SpcfOptions, WarmSession};
use tm_sta::Sta;

/// One algorithm's measurement in a Table 1 row.
#[derive(Clone, Copy, Debug)]
pub struct SpcfMeasurement {
    /// Critical-pattern count (summed over critical outputs).
    pub critical_patterns: f64,
    /// Wall-clock runtime of the engine.
    pub runtime: Duration,
}

/// One row of Table 1.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Circuit name.
    pub circuit: String,
    /// Primary input / output counts.
    pub io: (usize, usize),
    /// Gate count of the stand-in (the paper's column is area).
    pub gates: usize,
    /// Node-based over-approximation \[22\].
    pub node_based: SpcfMeasurement,
    /// Exact path-based extension of \[22\].
    pub path_based: SpcfMeasurement,
    /// The proposed short-path-based exact algorithm.
    pub short_path: SpcfMeasurement,
}

/// Runs the three SPCF engines on one suite circuit at `Δ_y = 0.9Δ`,
/// sharding critical outputs across `jobs` workers (1 = serial; the
/// pattern counts are identical for every value).
pub fn run_table1_row(entry: &SuiteEntry, library: Arc<Library>, jobs: usize) -> Table1Row {
    let nl = entry.build(library);
    let sta = Sta::new(&nl);
    let target = sta.critical_path_delay() * 0.9;

    if jobs > 1 {
        // Parallel path: shard critical outputs across workers; each
        // worker owns a manager, so warm sharing does not apply.
        let options = SpcfOptions::default().with_jobs(jobs);
        let measure = |algorithm: Algorithm| -> SpcfMeasurement {
            let mut bdd = Bdd::new(nl.inputs().len());
            let set = spcf_with(algorithm, &nl, &sta, &mut bdd, target, &options);
            SpcfMeasurement {
                critical_patterns: set.critical_pattern_count(&bdd),
                runtime: set.runtime,
            }
        };
        return Table1Row {
            circuit: entry.name.to_string(),
            io: (nl.inputs().len(), nl.outputs().len()),
            gates: nl.num_gates(),
            node_based: measure(Algorithm::NodeBased),
            path_based: measure(Algorithm::PathBased),
            short_path: measure(Algorithm::ShortPath),
        };
    }

    // Serial path: the three engines run as warm sessions over one
    // shared manager, so unique-table nodes (global BDDs, literal
    // cubes) built by one engine are cache hits for the next. Pattern
    // counts are identical to the parallel path (the determinism suite
    // checks the exports bit-for-bit).
    let mut bdd = Bdd::new(nl.inputs().len());
    let mut measure = |algorithm: Algorithm| -> SpcfMeasurement {
        let mut session = WarmSession::new(algorithm, &nl, &sta, &mut bdd, Budget::unlimited());
        let set = session.retarget(target);
        SpcfMeasurement {
            critical_patterns: set.critical_pattern_count(session.bdd()),
            runtime: set.runtime,
        }
    };
    Table1Row {
        circuit: entry.name.to_string(),
        io: (nl.inputs().len(), nl.outputs().len()),
        gates: nl.num_gates(),
        node_based: measure(Algorithm::NodeBased),
        path_based: measure(Algorithm::PathBased),
        short_path: measure(Algorithm::ShortPath),
    }
}

/// One row of Table 2 (plus the verification columns the paper asserts
/// in prose: 100 % masking coverage).
#[derive(Debug)]
pub struct Table2Row {
    /// The synthesis result (report carries the printed columns).
    pub result: MaskingResult,
    /// Exact masking coverage (1.0 = the paper's 100 %).
    pub coverage: f64,
    /// All exact verification checks passed.
    pub verified: bool,
}

/// Synthesizes and verifies masking for one suite circuit, with `jobs`
/// SPCF workers.
pub fn run_table2_row(entry: &SuiteEntry, library: Arc<Library>, jobs: usize) -> Table2Row {
    let nl = entry.build(library);
    let mut result = synthesize(&nl, MaskingOptions { jobs, ..Default::default() });
    let verdict = verify(&mut result);
    Table2Row {
        coverage: verdict.coverage(),
        verified: verdict.all_ok(),
        result,
    }
}

/// The shared library instance for harness binaries.
pub fn harness_library() -> Arc<Library> {
    Arc::new(lsi10k_like())
}

/// Command-line options shared by every bench binary.
///
/// `cargo bench -p tm-bench --bench <name> -- [FLAGS]` accepts:
///
/// - `--samples N` — override the timed sample count (1 = smoke run);
/// - `--metrics-out PATH` — collect telemetry during the run and write
///   the JSON snapshot to PATH on [`BenchArgs::write_metrics`]
///   (`TM_METRICS_OUT` is the env equivalent);
/// - `--smoke` — benches that offer it substitute a small fast circuit
///   suite (CI uses this to validate the metrics pipeline cheaply);
/// - `--jobs N` — SPCF worker threads ([`tm_spcf::JOBS_ENV`] is the env
///   equivalent; the flag wins). Results are identical for every value.
///
/// Unrecognized flags (e.g. cargo's own `--bench`) are ignored.
#[derive(Clone, Debug, Default)]
pub struct BenchArgs {
    /// Sample-count override.
    pub samples: Option<usize>,
    /// Telemetry snapshot destination; collection is enabled when set.
    pub metrics_out: Option<String>,
    /// Prefer the small smoke suite over the full workload.
    pub smoke: bool,
    /// SPCF worker-count override (`--jobs`).
    pub jobs: Option<usize>,
}

impl BenchArgs {
    /// Parses the process arguments (leniently) and `TM_METRICS_OUT`,
    /// enabling telemetry collection if a metrics destination is set.
    pub fn parse() -> Self {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut out = BenchArgs::default();
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                "--samples" => {
                    out.samples = argv.get(i + 1).and_then(|v| v.parse().ok());
                    i += 1;
                }
                "--metrics-out" => {
                    out.metrics_out = argv.get(i + 1).cloned();
                    i += 1;
                }
                "--jobs" => {
                    out.jobs = argv.get(i + 1).and_then(|v| v.parse().ok()).filter(|&j| j >= 1);
                    i += 1;
                }
                "--smoke" => out.smoke = true,
                _ => {}
            }
            i += 1;
        }
        if out.metrics_out.is_none() {
            out.metrics_out = tm_telemetry::metrics_out_env();
        }
        if out.metrics_out.is_some() {
            tm_telemetry::set_thread_enabled(Some(true));
        }
        out
    }

    /// Applies the sample override to a group; a 1–2 sample smoke run
    /// also cuts the warmup, since nothing statistical is at stake.
    /// Records the effective worker count as group metadata so every
    /// bench JSON row names the configuration that produced it.
    pub fn apply(&self, group: &mut tm_testkit::bench::BenchGroup) {
        if let Some(n) = self.samples {
            group.sample_size(n);
            if n <= 2 {
                group.warmup(Duration::from_millis(5));
            }
        }
        group.meta("jobs", self.jobs() as f64);
    }

    /// The effective SPCF worker count: the `--jobs` flag, else
    /// `TM_SPCF_JOBS`, else 1.
    pub fn jobs(&self) -> usize {
        self.jobs.unwrap_or_else(SpcfOptions::jobs_from_env)
    }

    /// Writes the telemetry snapshot to the configured path, if any.
    /// Call once, after every group has finished. A relative path is
    /// resolved against the workspace root (cargo runs bench binaries
    /// with the package directory as CWD).
    pub fn write_metrics(&self) {
        let Some(path) = &self.metrics_out else { return };
        let resolved = if std::path::Path::new(path).is_relative() {
            match tm_testkit::bench::workspace_root() {
                Some(root) => root.join(path).to_string_lossy().into_owned(),
                None => path.clone(),
            }
        } else {
            path.clone()
        };
        match tm_telemetry::write_snapshot(&resolved) {
            Ok(()) => println!("wrote {resolved}"),
            Err(e) => eprintln!("tm-bench: could not write {resolved}: {e}"),
        }
    }
}

/// Formats a duration in seconds like the paper's runtime columns.
pub fn seconds(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_netlist::suites::smoke_suite;

    #[test]
    fn table1_row_invariants() {
        let lib = harness_library();
        let row = run_table1_row(&smoke_suite()[0], lib, 2);
        // Exact engines agree; node-based is a superset count.
        let rel = (row.path_based.critical_patterns - row.short_path.critical_patterns).abs()
            / row.short_path.critical_patterns.max(1.0);
        assert!(rel < 1e-9, "exact engines disagree: {row:?}");
        assert!(row.node_based.critical_patterns >= row.short_path.critical_patterns - 1e-6);
    }

    #[test]
    fn table2_row_is_verified() {
        let lib = harness_library();
        let row = run_table2_row(&smoke_suite()[1], lib, 1);
        assert!(row.verified);
        assert_eq!(row.coverage, 1.0);
        assert!(row.result.report.slack_met);
    }
}
