//! Regenerates Table 2: area and power overhead for 100 % masking of
//! timing errors on speed-paths.
//!
//! Run with: `cargo run -p tm-bench --release --bin table2`

use tm_bench::{harness_library, run_table2_row};
use tm_netlist::suites::table2_suite;
use tm_spcf::SpcfOptions;

fn main() {
    let lib = harness_library();
    let jobs = SpcfOptions::jobs_from_env();
    println!("Table 2: area and power overhead for 100% masking of timing errors (Δ_y = 0.9Δ)");
    println!("(stand-in circuits with the paper's interfaces; see DESIGN.md §3)");
    println!();
    println!(
        "{:<18} {:>9} {:>6} {:>9} {:>13} {:>8} {:>8} {:>8} {:>9} {:>9}",
        "circuit",
        "I/O",
        "gates",
        "crit POs",
        "crit minterms",
        "slack%",
        "area%",
        "power%",
        "coverage",
        "verified"
    );
    println!("{}", "-".repeat(110));

    let mut slack_sum = 0.0;
    let mut area_sum = 0.0;
    let mut power_sum = 0.0;
    let mut protected_rows = 0usize;
    let mut all_verified = true;
    for entry in table2_suite() {
        let row = run_table2_row(&entry, lib.clone(), jobs);
        let r = &row.result.report;
        println!(
            "{:<18} {:>4}/{:<4} {:>6} {:>9} {:>13.3e} {:>8.1} {:>8.1} {:>8.1} {:>8.0}% {:>9}",
            r.circuit,
            r.num_inputs,
            r.num_outputs,
            r.num_gates,
            r.critical_outputs,
            r.critical_patterns,
            r.slack_percent,
            r.area_overhead_percent,
            r.power_overhead_percent,
            row.coverage * 100.0,
            if row.verified { "yes" } else { "NO" },
        );
        all_verified &= row.verified;
        if r.critical_outputs > 0 {
            slack_sum += r.slack_percent;
            area_sum += r.area_overhead_percent;
            power_sum += r.power_overhead_percent;
            protected_rows += 1;
        }
    }

    let n = protected_rows.max(1) as f64;
    println!("{}", "-".repeat(110));
    println!(
        "{:<18} {:>9} {:>6} {:>9} {:>13} {:>8.1} {:>8.1} {:>8.1}",
        "Average", "", "", "", "", slack_sum / n, area_sum / n, power_sum / n
    );
    println!();
    println!("paper averages: slack 57%, area 18%, power 16%");
    println!(
        "100% masking coverage on every circuit: {}",
        if all_verified { "achieved ✓" } else { "FAILED" }
    );
}
