//! The paper's §6 future-work directions and §2 baseline comparison,
//! measured:
//!
//! 1. **Aggressive DVS under masking** — how much supply (and quadratic
//!    energy) masking buys.
//! 2. **Masking vs Razor-style detect-and-rollback** — throughput and
//!    silent-error behaviour under an aging sweep.
//! 3. **Adaptive body bias** — the closed loop driven by the wearout
//!    log.
//!
//! Run with: `cargo run -p tm-bench --release --bin extensions`

use tm_bench::harness_library;
use tm_masking::{inject_and_measure, speedpath_patterns, synthesize, MaskingOptions};
use tm_monitor::bias::{unadapted_run, AdaptiveBiasController};
use tm_monitor::dvs::DvsExplorer;
use tm_monitor::razor::RazorModel;
use tm_netlist::generate::{generate, GeneratorSpec};
use tm_sim::aging::AgingModel;
use tm_sim::patterns::random_vectors;
use tm_spcf::SpcfOptions;
use tm_sta::Sta;

fn main() {
    let lib = harness_library();
    let spec = GeneratorSpec::sized("ext_ctrl", 32, 12, 200);
    let circuit = generate(&spec, lib);
    let options = MaskingOptions { jobs: SpcfOptions::jobs_from_env(), ..Default::default() };
    let result = synthesize(&circuit, options);
    let clock = Sta::new(&circuit).critical_path_delay();
    println!(
        "circuit: {} ({} gates), masking slack {:.1}%, area overhead {:.1}%",
        circuit.name(),
        circuit.num_gates(),
        result.report.slack_percent,
        result.report.area_overhead_percent
    );

    // Workload: random vectors salted with SPCF-drawn speed-path
    // patterns, so the speed-paths are actually exercised.
    let mut workload = random_vectors(circuit.inputs().len(), 1200, 0xD5);
    for (k, s) in speedpath_patterns(&result, 300, 0x5A).into_iter().enumerate() {
        let pos = (k * 4 + 1) % workload.len();
        workload.insert(pos, s);
    }

    // ---------------------------------------------------------------
    println!("\n== Extension 1: aggressive DVS by masking timing errors (paper §6) ==");
    let explorer = DvsExplorer { v_min: 0.82, v_step: 0.01, ..Default::default() };
    let sweep = explorer.sweep(&result.design, &workload).expect("valid sweep");
    println!("  vdd    delay×   energy×   raw errs   escapes");
    for p in sweep.points.iter().step_by(2) {
        println!(
            "  {:.2}   {:>5.3}   {:>6.3}   {:>8}   {:>7}",
            p.vdd, p.delay_factor, p.energy_factor, p.raw_errors, p.escapes
        );
    }
    match (sweep.min_safe_unmasked, sweep.min_safe_masked) {
        (Some(u), Some(m)) => {
            println!("  min safe vdd without masking: {u:.2}");
            println!("  min safe vdd with masking   : {m:.2}");
            println!(
                "  dynamic-energy saving enabled by masking: {:.1}%",
                sweep.energy_saving(&explorer.model) * 100.0
            );
        }
        _ => println!("  (sweep range did not bracket the failure points)"),
    }

    // ---------------------------------------------------------------
    println!("\n== Extension 2: masking vs Razor-style detect-and-rollback (paper §2) ==");
    let razor = RazorModel { margin: clock * 0.05, rollback_penalty: 5 };
    println!("  (shadow margin = 5% of the clock, rollback penalty = 5 cycles)");
    println!("  aging   razor detected  razor SILENT  razor throughput | masked escapes  masking throughput");
    for pct in [0u32, 4, 8, 12, 20, 30] {
        let factor = 1.0 + pct as f64 / 100.0;
        let r = razor.evaluate(&circuit, &vec![factor; circuit.num_gates()], clock, &workload);
        let scale = vec![factor; result.design.combined.num_gates()];
        let m = inject_and_measure(&result.design, &scale, clock, &workload)
            .expect("valid run");
        println!(
            "  {:>4}%   {:>14} {:>13} {:>17.3} | {:>14}  {:>17.3}",
            pct,
            r.detected,
            r.undetected,
            r.throughput(),
            m.masked_errors,
            1.0 // masking never stalls
        );
    }
    println!("  (masking guarantees zero escapes up to the 10% protection band; beyond it");
    println!("   escapes depend on how many sub-band paths the workload excites — here none —");
    println!("   while Razor's silent errors grow as transitions slip past its shadow margin)");

    // ---------------------------------------------------------------
    println!("\n== Extension 3: adaptive body-bias speed-up of critical gates (paper §6) ==");
    let model = AgingModel { jitter: 0.0, ..AgingModel::default() };
    let controller = AdaptiveBiasController::default();
    let epoch_workload: Vec<Vec<bool>> = workload.iter().take(500).cloned().collect();
    let adapted = controller.run(&result.design, &model, 8, 0.9, &epoch_workload);
    let frozen = unadapted_run(&result.design, &model, 8, 0.9, &epoch_workload);
    println!("  epoch  stress  adapted: bias/errors    frozen: errors");
    for (a, f) in adapted.epochs.iter().zip(&frozen.epochs) {
        println!(
            "  {:>5}  {:>6.2}  {:>13}/{:<6} {:>14}",
            a.epoch, a.stress, a.bias_steps, a.detected_errors, f.detected_errors
        );
    }
    let total = |r: &tm_monitor::bias::BiasRun| {
        r.epochs.iter().map(|e| e.detected_errors).sum::<usize>()
    };
    println!(
        "  total masked errors: adapted {} vs frozen {}; bias steps {}, leakage cost {:.0}%",
        total(&adapted),
        total(&frozen),
        adapted.final_bias_steps,
        adapted.leakage_cost * 100.0
    );
}
