//! Protection-band sweep: how the SPCF population, critical-output
//! count, and masking overhead evolve as the target arrival time Δ_y
//! moves through the path-delay distribution.
//!
//! This is the "pattern delay distribution" view behind the paper's
//! choice of Δ_y = 0.9Δ: close to Δ the SPCF is a thin, cheap-to-mask
//! slice; deeper targets sweep in ever more logic.
//!
//! Run with: `cargo run -p tm-bench --release --bin sweep`

use tm_bench::harness_library;
use tm_logic::Bdd;
use tm_masking::{synthesize, MaskingOptions};
use tm_netlist::suites::table1_suite;
use tm_spcf::{spcf_with, Algorithm, SpcfOptions};
use tm_sta::Sta;

fn main() {
    let lib = harness_library();
    let jobs = SpcfOptions::jobs_from_env();
    let spcf_options = SpcfOptions::default().with_jobs(jobs);
    println!("Protection-band sweep (short-path SPCF; stand-in circuits)");
    for entry in table1_suite().iter().take(3) {
        let nl = entry.build(lib.clone());
        let sta = Sta::new(&nl);
        let delta = sta.critical_path_delay();
        println!(
            "\n{} ({} gates, Δ = {}):",
            entry.name,
            nl.num_gates(),
            delta
        );
        println!("  Δy/Δ   crit POs   SPCF fraction   masking area%   masking slack%");
        for pct in [50u32, 60, 70, 80, 85, 90, 95, 99] {
            let frac = pct as f64 / 100.0;
            let target = delta * frac;
            let mut bdd = Bdd::new(nl.inputs().len());
            let spcf = spcf_with(Algorithm::ShortPath, &nl, &sta, &mut bdd, target, &spcf_options);
            // Mean per-output SPCF fraction of the input space.
            let fractions: Vec<f64> = spcf
                .outputs
                .iter()
                .map(|o| bdd.sat_fraction(o.spcf))
                .collect();
            let mean_fraction = if fractions.is_empty() {
                0.0
            } else {
                fractions.iter().sum::<f64>() / fractions.len() as f64
            };
            let opts = MaskingOptions { target_fraction: frac, jobs, ..Default::default() };
            let r = synthesize(&nl, opts);
            println!(
                "  {:.2}   {:>8}   {:>13.3e}   {:>13.1}   {:>14.1}",
                frac,
                spcf.outputs.len(),
                mean_fraction,
                r.report.area_overhead_percent,
                r.report.slack_percent,
            );
        }
    }
    println!("\n(the SPCF fraction and the masking cost fall as the band narrows —");
    println!(" Δy = 0.9Δ protects the wearout-exposed tail at a small fixed cost)");
}
