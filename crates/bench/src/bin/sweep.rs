//! Protection-band sweep: how the SPCF population, critical-output
//! count, and masking overhead evolve as the target arrival time Δ_y
//! moves through the path-delay distribution.
//!
//! This is the "pattern delay distribution" view behind the paper's
//! choice of Δ_y = 0.9Δ: close to Δ the SPCF is a thin, cheap-to-mask
//! slice; deeper targets sweep in ever more logic.
//!
//! The whole ladder runs against **one warm SPCF session** per circuit
//! ([`tm_masking::synthesize_sweep`]): one BDD manager, one prime
//! cache, one global-BDD cache, and one short-path memo serve all
//! eight thresholds, evaluated in descending-Δ_y order so every point
//! extends the previous one's memoized stabilization queries.
//!
//! Run with: `cargo run -p tm-bench --release --bin sweep`

use tm_bench::harness_library;
use tm_masking::{synthesize_sweep, MaskingOptions};
use tm_netlist::suites::table1_suite;
use tm_spcf::SpcfOptions;
use tm_sta::Sta;

fn main() {
    let lib = harness_library();
    let jobs = SpcfOptions::jobs_from_env();
    let fractions = [0.99, 0.95, 0.90, 0.85, 0.80, 0.70, 0.60, 0.50];
    println!("Protection-band sweep (warm short-path SPCF; stand-in circuits)");
    for entry in table1_suite().iter().take(3) {
        let nl = entry.build(lib.clone());
        let delta = Sta::new(&nl).critical_path_delay();
        println!(
            "\n{} ({} gates, Δ = {}):",
            entry.name,
            nl.num_gates(),
            delta
        );
        println!("  Δy/Δ   crit POs   SPCF fraction   masking area%   masking slack%   compute");
        let options = MaskingOptions { jobs, ..Default::default() };
        for p in synthesize_sweep(&nl, &fractions, &options) {
            println!(
                "  {:.2}   {:>8}   {:>13.3e}   {:>13.1}   {:>14.1}   {:>7.1?}",
                p.fraction,
                p.report.critical_outputs,
                p.mean_spcf_fraction,
                p.report.area_overhead_percent,
                p.report.slack_percent,
                p.report.synthesis_time,
            );
        }
    }
    println!("\n(the SPCF fraction and the masking cost fall as the band narrows —");
    println!(" Δy = 0.9Δ protects the wearout-exposed tail at a small fixed cost)");
}
