//! Open-loop load generator for the `tm-server` daemon.
//!
//! ```text
//! loadgen --addr HOST:PORT [--smoke] [--expect-shed]
//!         [--out BENCH_serve.json] [--stats-out metrics.json]
//!         [--duration-ms N] [--senders N]
//! ```
//!
//! The full run sweeps arrival rates (calibrated from a serial warm-up
//! pass) with scheduled request start times — open loop, so a slow
//! server faces a growing backlog instead of a politely backing-off
//! client — and writes p50/p95/p99 latency plus achieved req/s per
//! rate to `BENCH_serve.json`. `--smoke` is the CI entry point: a
//! short serial pass, a connection burst that must trip admission
//! control when the server runs with a tiny `--admit`, and a `STATS`
//! check.

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tm_server::gen::synthetic_blif;
use tm_server::protocol::{read_frame, write_frame, DEFAULT_MAX_FRAME};
use tm_testkit::json::Json;

/// Circuits in the request mix (distinct seeds → distinct pool keys).
const CORPUS_SEEDS: [u64; 4] = [11, 22, 33, 44];

fn corpus() -> Vec<String> {
    CORPUS_SEEDS
        .iter()
        .map(|&seed| {
            let payload = Json::obj([
                ("verb", Json::str("spcf")),
                ("blif", Json::str(synthetic_blif(seed, 10, 28))),
                ("algorithm", Json::str("short-path")),
                ("targets", Json::Arr(vec![Json::Num(0.95), Json::Num(0.9)])),
                ("relative", Json::Bool(true)),
            ]);
            payload.render()
        })
        .collect()
}

/// One request over a fresh connection: returns (latency, frames), or
/// the terminal error frame's code.
fn one_request(addr: &str, payload: &str) -> Result<(Duration, Vec<Json>), String> {
    let start = Instant::now();
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| format!("timeout: {e}"))?;
    write_frame(&mut stream, payload.as_bytes()).map_err(|e| format!("write: {e}"))?;
    let mut frames = Vec::new();
    loop {
        let raw = match read_frame(&mut stream, DEFAULT_MAX_FRAME) {
            Ok(Some(raw)) => raw,
            Ok(None) => break,
            Err(e) => return Err(format!("read: {e}")),
        };
        let text = String::from_utf8(raw).map_err(|_| "non-utf8 frame".to_string())?;
        let json = Json::parse(&text).map_err(|e| format!("bad frame json: {e}"))?;
        let kind = json.get("type").and_then(Json::as_str).unwrap_or("").to_string();
        frames.push(json);
        match kind.as_str() {
            "done" | "stats" | "mask_report" => break,
            "error" => {
                let code = frames
                    .last()
                    .and_then(|j| j.get("code"))
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_string();
                return Err(format!("error:{code}"));
            }
            _ => {}
        }
    }
    Ok((start.elapsed(), frames))
}

/// Like [`one_request`], but retries the typed `overloaded` rejection
/// with a short backoff — the admission gate covers the whole
/// connection lifetime, so a serial client reconnecting immediately
/// can race the server's EOF processing under a tiny `--admit`.
fn request_with_retry(addr: &str, payload: &str) -> Result<(Duration, Vec<Json>), String> {
    let mut last = String::new();
    for _ in 0..50 {
        match one_request(addr, payload) {
            // Transport failures on a fresh connection are the same
            // race at a lower level: a shedding server's close can RST
            // the rejection frame away before we read it, surfacing as
            // a connect/write/read error instead of the typed code.
            Err(e)
                if e == "error:overloaded"
                    || e.starts_with("connect:")
                    || e.starts_with("write:")
                    || e.starts_with("read:") =>
            {
                last = e;
                std::thread::sleep(Duration::from_millis(20));
            }
            other => return other,
        }
    }
    Err(last)
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let k = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[k.min(sorted.len() - 1)]
}

struct RatePoint {
    target_rps: f64,
    achieved_rps: f64,
    completed: usize,
    errors: usize,
    /// Error counts keyed by kind: typed server codes (`overloaded`,
    /// `exhausted`, ...) and client-side failure classes (`connect`,
    /// `read`, ...), name-sorted.
    error_kinds: Vec<(String, usize)>,
    p50: Duration,
    p95: Duration,
    p99: Duration,
    max: Duration,
}

/// Classifies a request failure: typed `error:` frames keep their wire
/// code, transport failures keep their stage (`connect`, `read`, ...).
fn error_kind(e: &str) -> String {
    match e.strip_prefix("error:") {
        Some(code) => code.to_string(),
        None => e.split(':').next().unwrap_or("unknown").to_string(),
    }
}

/// Open-loop pass at `rate` req/s for `duration`: request `k` starts at
/// `k/rate` regardless of how request `k-1` is doing.
fn run_rate(addr: &str, payloads: &[String], rate: f64, duration: Duration, senders: usize) -> RatePoint {
    let total = ((rate * duration.as_secs_f64()).floor() as usize).max(1);
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for s in 0..senders {
        let addr = addr.to_string();
        let payloads = payloads.to_vec();
        handles.push(std::thread::spawn(move || {
            let mut latencies = Vec::new();
            let mut errors: Vec<String> = Vec::new();
            let mut k = s;
            while k < total {
                let scheduled = t0 + Duration::from_secs_f64(k as f64 / rate);
                if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
                match one_request(&addr, &payloads[k % payloads.len()]) {
                    Ok((latency, _)) => latencies.push(latency),
                    Err(e) => errors.push(error_kind(&e)),
                }
                k += senders;
            }
            (latencies, errors)
        }));
    }
    let mut latencies: Vec<Duration> = Vec::new();
    let mut error_kinds: Vec<(String, usize)> = Vec::new();
    for h in handles {
        let (lat, errs) = h.join().expect("sender thread");
        latencies.extend(lat);
        for kind in errs {
            match error_kinds.iter_mut().find(|(k, _)| *k == kind) {
                Some((_, n)) => *n += 1,
                None => error_kinds.push((kind, 1)),
            }
        }
    }
    error_kinds.sort_by(|a, b| a.0.cmp(&b.0));
    let elapsed = t0.elapsed();
    latencies.sort();
    RatePoint {
        target_rps: rate,
        achieved_rps: latencies.len() as f64 / elapsed.as_secs_f64(),
        completed: latencies.len(),
        errors: error_kinds.iter().map(|(_, n)| n).sum(),
        error_kinds,
        p50: percentile(&latencies, 0.50),
        p95: percentile(&latencies, 0.95),
        p99: percentile(&latencies, 0.99),
        max: latencies.last().copied().unwrap_or(Duration::ZERO),
    }
}

/// A near-simultaneous connection burst. Returns how many requests were
/// answered with the typed `overloaded` rejection.
fn shed_burst(addr: &str, payload: &str, burst: usize) -> usize {
    let shed = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for _ in 0..burst {
        let addr = addr.to_string();
        let payload = payload.to_string();
        let shed = Arc::clone(&shed);
        handles.push(std::thread::spawn(move || {
            if let Err(e) = one_request(&addr, &payload) {
                if e == "error:overloaded" {
                    shed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }
    for h in handles {
        let _ = h.join();
    }
    shed.load(Ordering::Relaxed)
}

/// Fetches the server's STATS frame.
fn fetch_stats(addr: &str) -> Result<Json, String> {
    let (_, frames) = request_with_retry(addr, r#"{"verb":"stats"}"#)?;
    frames.into_iter().next().ok_or_else(|| "empty stats response".to_string())
}

fn stats_counter(stats: &Json, name: &str) -> f64 {
    stats
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .and_then(Json::as_arr)
        .and_then(|cs| {
            cs.iter()
                .find(|c| c.get("name").and_then(Json::as_str) == Some(name))
                .and_then(|c| c.get("value").and_then(Json::as_num))
        })
        .unwrap_or(0.0)
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen --addr HOST:PORT [--smoke] [--expect-shed] [--out FILE] \
         [--stats-out FILE] [--duration-ms N] [--senders N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut addr: Option<String> = None;
    let mut smoke = false;
    let mut expect_shed = false;
    let mut out: Option<String> = None;
    let mut stats_out: Option<String> = None;
    let mut duration = Duration::from_millis(2000);
    let mut senders = 8usize;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next(),
            "--smoke" => smoke = true,
            "--expect-shed" => expect_shed = true,
            "--out" => out = args.next(),
            "--stats-out" => stats_out = args.next(),
            "--duration-ms" => {
                duration = Duration::from_millis(
                    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()),
                )
            }
            "--senders" => {
                senders = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }
    let addr = addr.unwrap_or_else(|| usage());
    let payloads = corpus();
    let mut failed = false;

    // Warm-up / calibration: serial requests measure the per-request
    // cost with a warm pool and give the rate sweep its scale.
    let warmup = if smoke { 8 } else { 24 };
    let mut serial = Vec::new();
    for k in 0..warmup {
        match request_with_retry(&addr, &payloads[k % payloads.len()]) {
            Ok((latency, _)) => serial.push(latency),
            Err(e) => {
                eprintln!("loadgen: warm-up request {k} failed: {e}");
                failed = true;
            }
        }
    }
    serial.sort();
    let serial_p50 = percentile(&serial, 0.5);
    eprintln!(
        "loadgen: warm-up {}/{warmup} ok, serial p50 {:.2} ms",
        serial.len(),
        serial_p50.as_secs_f64() * 1e3
    );

    let mut rate_points = Vec::new();
    if !smoke && !serial.is_empty() {
        // Sweep multiples of the serial throughput; the top rung is
        // far past what one connection can sustain, so the best
        // achieved rate is the saturation throughput.
        let base = 1.0 / serial_p50.as_secs_f64().max(1e-6);
        for mult in [0.5, 1.0, 2.0, 4.0, 8.0] {
            let rate = base * mult;
            let point = run_rate(&addr, &payloads, rate, duration, senders);
            eprintln!(
                "loadgen: target {:.1} rps -> achieved {:.1} rps, p50 {:.2} ms, p99 {:.2} ms, {} errors",
                point.target_rps,
                point.achieved_rps,
                point.p50.as_secs_f64() * 1e3,
                point.p99.as_secs_f64() * 1e3,
                point.errors
            );
            rate_points.push(point);
        }
    }

    let mut shed_seen = 0usize;
    if expect_shed {
        shed_seen = shed_burst(&addr, &payloads[0], 16);
        eprintln!("loadgen: shed burst -> {shed_seen} overloaded rejections");
    }

    match fetch_stats(&addr) {
        Ok(stats) => {
            let requests = stats_counter(&stats, "serve.requests");
            let shed_total = stats_counter(&stats, "serve.shed");
            eprintln!("loadgen: server counted {requests} requests, {shed_total} shed");
            if expect_shed && shed_seen == 0 && shed_total == 0.0 {
                eprintln!("loadgen: FAIL expected at least one shed request");
                failed = true;
            }
            if let Some(path) = stats_out {
                let metrics =
                    stats.get("metrics").cloned().unwrap_or(Json::obj([]));
                if let Err(e) = std::fs::write(&path, metrics.render() + "\n") {
                    eprintln!("loadgen: cannot write {path}: {e}");
                    failed = true;
                }
            }
        }
        Err(e) => {
            eprintln!("loadgen: STATS failed: {e}");
            failed = true;
        }
    }

    if let Some(path) = out {
        let saturation = rate_points
            .iter()
            .map(|p| p.achieved_rps)
            .fold(0.0f64, f64::max);
        let points: Vec<Json> = rate_points
            .iter()
            .map(|p| {
                let kinds: Vec<Json> = p
                    .error_kinds
                    .iter()
                    .map(|(kind, n)| {
                        Json::obj([
                            ("kind", Json::str(kind.clone())),
                            ("count", Json::Num(*n as f64)),
                        ])
                    })
                    .collect();
                Json::obj([
                    ("target_rps", Json::Num(p.target_rps)),
                    ("achieved_rps", Json::Num(p.achieved_rps)),
                    ("completed", Json::Num(p.completed as f64)),
                    ("errors", Json::Num(p.errors as f64)),
                    ("error_kinds", Json::Arr(kinds)),
                    ("p50_ns", Json::Num(p.p50.as_nanos() as f64)),
                    ("p95_ns", Json::Num(p.p95.as_nanos() as f64)),
                    ("p99_ns", Json::Num(p.p99.as_nanos() as f64)),
                    ("max_ns", Json::Num(p.max.as_nanos() as f64)),
                ])
            })
            .collect();
        let doc = Json::obj([
            ("group", Json::str("serve")),
            ("senders", Json::Num(senders as f64)),
            ("duration_ms", Json::Num(duration.as_millis() as f64)),
            ("serial_p50_ns", Json::Num(serial_p50.as_nanos() as f64)),
            ("rates", Json::Arr(points)),
            ("saturation_rps", Json::Num(saturation)),
        ]);
        match std::fs::File::create(&path)
            .and_then(|mut f| writeln!(f, "{}", doc.render()))
        {
            Ok(()) => eprintln!("loadgen: wrote {path}"),
            Err(e) => {
                eprintln!("loadgen: cannot write {path}: {e}");
                failed = true;
            }
        }
    }

    if failed {
        std::process::exit(1);
    }
}
