//! Ablations of the design choices §4 calls out:
//!
//! 1. **Essential-weight cube selection vs full covers** — how much of
//!    the overhead saving comes from exploiting the SPCF don't-care
//!    space.
//! 2. **Technology-independent node size (extraction bound K)** — the
//!    paper argues for 10–15-input nodes.
//! 3. **Protection-band sweep (Δ_y/Δ)** — cost of protecting deeper
//!    slices of the path distribution.
//! 4. **Top-down duplication baseline** — functionally sound, but with
//!    (near) zero slack it dies of the same wearout as the original.
//!
//! Run with: `cargo run -p tm-bench --release --bin ablations`

use tm_bench::harness_library;
use tm_masking::{
    duplication_masking, inject_and_measure, synthesize, uniform_aging, CubeSelection,
    MaskingOptions,
};
use tm_netlist::extract::ExtractOptions;
use tm_netlist::suites::smoke_suite;
use tm_spcf::SpcfOptions;
use tm_sim::patterns::random_vectors;
use tm_sta::Sta;

fn main() {
    let lib = harness_library();
    let base = MaskingOptions { jobs: SpcfOptions::jobs_from_env(), ..Default::default() };
    let circuits: Vec<_> = smoke_suite().iter().map(|e| e.build(lib.clone())).collect();

    println!("Ablation 1: essential-weight cube selection vs full covers");
    println!("{:<12} {:>16} {:>16} {:>12}", "circuit", "essential area%", "full-cover area%", "saving");
    for nl in &circuits {
        let essential = synthesize(nl, base);
        let full = synthesize(
            nl,
            MaskingOptions { cube_selection: CubeSelection::FullCover, ..base },
        );
        let ea = essential.report.area_overhead_percent;
        let fa = full.report.area_overhead_percent;
        println!("{:<12} {:>15.1}% {:>15.1}% {:>11.1}%", nl.name(), ea, fa, fa - ea);
    }

    println!("\nAblation 2: technology-independent node size (extraction bound K)");
    println!("{:<12} {:>10} {:>10} {:>10} {:>10}", "circuit", "K=4", "K=8", "K=12", "K=16");
    for nl in &circuits {
        let mut cols = Vec::new();
        for k in [4usize, 8, 12, 16] {
            let opts = MaskingOptions {
                extract: ExtractOptions { max_support: k },
                ..base
            };
            let r = synthesize(nl, opts);
            cols.push(format!("{:>9.1}%", r.report.area_overhead_percent));
        }
        println!("{:<12} {} {} {} {}", nl.name(), cols[0], cols[1], cols[2], cols[3]);
    }

    println!("\nAblation 3: protection band sweep (area% at Δ_y/Δ)");
    println!("{:<12} {:>10} {:>10} {:>10} {:>10}", "circuit", "0.80", "0.85", "0.90", "0.95");
    for nl in &circuits {
        let mut cols = Vec::new();
        for frac in [0.80, 0.85, 0.90, 0.95] {
            let opts = MaskingOptions { target_fraction: frac, ..base };
            let r = synthesize(nl, opts);
            cols.push(format!("{:>9.1}%", r.report.area_overhead_percent));
        }
        println!("{:<12} {} {} {} {}", nl.name(), cols[0], cols[1], cols[2], cols[3]);
    }

    println!("\nAblation 4: top-down duplication baseline vs proposed synthesis");
    println!(
        "{:<12} {:>14} {:>14} {:>18} {:>18}",
        "circuit", "dup slack%", "proposed slack%", "dup escapes(aged)", "proposed escapes"
    );
    for nl in &circuits {
        let dup = duplication_masking(nl, base);
        let proposed = synthesize(nl, base);
        let clock = Sta::new(nl).critical_path_delay();
        let vectors = random_vectors(nl.inputs().len(), 400, 7);
        let dup_scale = uniform_aging(&dup.design, 1.08).expect("valid factor");
        let dup_out = inject_and_measure(&dup.design, &dup_scale, clock, &vectors)
            .expect("valid run");
        let prop_scale = uniform_aging(&proposed.design, 1.08).expect("valid factor");
        let prop_out = inject_and_measure(&proposed.design, &prop_scale, clock, &vectors)
            .expect("valid run");
        println!(
            "{:<12} {:>13.1}% {:>14.1}% {:>12}/{:<5} {:>12}/{:<5}",
            nl.name(),
            dup.report.slack_percent,
            proposed.report.slack_percent,
            dup_out.masked_errors,
            dup_out.raw_errors,
            prop_out.masked_errors,
            prop_out.raw_errors,
        );
    }
    println!("\n(duplication masks in the functional domain but shares the original's");
    println!(" timing: under 8% common-mode aging its errors escape; the proposed");
    println!(" masking circuit, with ≥20% slack, lets none escape — paper §4, §2)");
}
