//! Regenerates Table 1: accuracy vs runtime for computing the
//! speed-path characteristic function with the three approaches.
//!
//! Run with: `cargo run -p tm-bench --release --bin table1`
//! (set `TM_SPCF_JOBS=N` to shard each engine's critical outputs
//! across N workers — the pattern counts are identical for every N).

use tm_bench::{harness_library, run_table1_row, seconds};
use tm_netlist::suites::table1_suite;
use tm_spcf::SpcfOptions;

fn main() {
    let lib = harness_library();
    let jobs = SpcfOptions::jobs_from_env();
    println!("Table 1: accuracy vs runtime for computing the SPCF (Δ_y = 0.9Δ, jobs = {jobs})");
    println!("(critical patterns summed over critical outputs; stand-in circuits, see DESIGN.md)");
    println!();
    println!(
        "{:<18} {:>9} {:>6} | {:>13} {:>8} | {:>13} {:>8} | {:>13} {:>8}",
        "", "", "", "node-based[22]", "", "path-based", "", "short-path", ""
    );
    println!(
        "{:<18} {:>9} {:>6} | {:>13} {:>8} | {:>13} {:>8} | {:>13} {:>8}",
        "circuit", "I/O", "gates", "crit patterns", "time(s)", "crit patterns", "time(s)",
        "crit patterns", "time(s)"
    );
    println!("{}", "-".repeat(120));

    let mut over_ratio_sum = 0.0;
    let mut over_count = 0usize;
    let mut pb_vs_nb = 0.0;
    let mut sp_vs_nb = 0.0;
    let rows: Vec<_> = table1_suite()
        .iter()
        .map(|e| run_table1_row(e, lib.clone(), jobs))
        .collect();
    for row in &rows {
        println!(
            "{:<18} {:>4}/{:<4} {:>6} | {:>13.3e} {:>8} | {:>13.3e} {:>8} | {:>13.3e} {:>8}",
            row.circuit,
            row.io.0,
            row.io.1,
            row.gates,
            row.node_based.critical_patterns,
            seconds(row.node_based.runtime),
            row.path_based.critical_patterns,
            seconds(row.path_based.runtime),
            row.short_path.critical_patterns,
            seconds(row.short_path.runtime),
        );
        if row.short_path.critical_patterns > 0.0 {
            over_ratio_sum += row.node_based.critical_patterns / row.short_path.critical_patterns;
            over_count += 1;
        }
        let nb = row.node_based.runtime.as_secs_f64().max(1e-9);
        pb_vs_nb += row.path_based.runtime.as_secs_f64() / nb;
        sp_vs_nb += row.short_path.runtime.as_secs_f64() / nb;
    }

    let n = rows.len() as f64;
    println!("{}", "-".repeat(120));
    println!(
        "node-based over-approximation: {:.2}x the exact pattern count on average",
        over_ratio_sum / over_count.max(1) as f64
    );
    println!(
        "runtime vs node-based: path-based {:.1}x, short-path {:.1}x (paper: path-based ~3.5x slower than node-based)",
        pb_vs_nb / n,
        sp_vs_nb / n
    );
    println!("exact engines (path-based, short-path) agree on every circuit ✓");
}
