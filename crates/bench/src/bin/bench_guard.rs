//! Regression guard comparing a fresh micro-bench report against the
//! committed perf-trajectory baseline.
//!
//! ```text
//! bench_guard --fresh target/tm-bench/bdd_ops.json \
//!             --baseline BENCH_bdd.json [--tolerance-pct 2]
//! ```
//!
//! The baseline file holds the perf trajectory: `{"group": ...,
//! "entries": [<report>, ...]}`. The guard picks the **last** baseline
//! entry whose `meta` matches the fresh report's (same `variant`, same
//! `smoke` shape) and asserts every shared bench id's fresh median is
//! within `--tolerance-pct` of the baseline median. CI uses this as
//! the flight-recorder overhead gate: the dormant recorder's
//! `recording()` checks ride every BDD hot-core kernel, so a fresh
//! `bdd_ops` smoke run drifting more than 2 % above the committed
//! medians means the instrumentation stopped being free.
//!
//! Exit status: 0 within tolerance, 1 regression or malformed input,
//! 2 usage. Wall-clock medians are noisy; callers are expected to
//! retry a failing comparison a couple of times before believing it,
//! and a committed baseline should be a noise *envelope* — the max
//! steady-state median observed per bench id across machine-load
//! regimes (mark such entries `meta.envelope: 1`) — because run-to-run
//! drift on shared hardware routinely exceeds a tight tolerance.

use tm_testkit::json::Json;

fn usage() -> ! {
    eprintln!("usage: bench_guard --fresh FILE --baseline FILE [--tolerance-pct N]");
    std::process::exit(2);
}

fn read_json(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_guard: cannot read {path}: {e}");
        std::process::exit(1);
    });
    Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("bench_guard: {path} is not JSON: {e}");
        std::process::exit(1);
    })
}

/// The `(id, median_ns)` rows of one report object.
fn medians(report: &Json) -> Vec<(String, f64)> {
    report
        .get("results")
        .and_then(Json::as_arr)
        .map(|rs| {
            rs.iter()
                .filter_map(|r| {
                    Some((
                        r.get("id")?.as_str()?.to_string(),
                        r.get("median_ns")?.as_num()?,
                    ))
                })
                .collect()
        })
        .unwrap_or_default()
}

fn meta_num(report: &Json, key: &str) -> f64 {
    report
        .get("meta")
        .and_then(|m| m.get(key))
        .and_then(Json::as_num)
        .unwrap_or(0.0)
}

fn main() {
    let mut fresh_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut tolerance_pct = 2.0f64;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fresh" => fresh_path = args.next(),
            "--baseline" => baseline_path = args.next(),
            "--tolerance-pct" => {
                tolerance_pct =
                    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    let fresh_path = fresh_path.unwrap_or_else(|| usage());
    let baseline_path = baseline_path.unwrap_or_else(|| usage());

    let fresh = read_json(&fresh_path);
    let baseline = read_json(&baseline_path);
    let fresh_variant = meta_num(&fresh, "variant");
    let fresh_smoke = meta_num(&fresh, "smoke");

    let entries = baseline.get("entries").and_then(Json::as_arr).unwrap_or_else(|| {
        eprintln!("bench_guard: {baseline_path} has no `entries` array");
        std::process::exit(1);
    });
    let Some(base) = entries
        .iter()
        .filter(|e| {
            meta_num(e, "variant") == fresh_variant && meta_num(e, "smoke") == fresh_smoke
        })
        .next_back()
    else {
        eprintln!(
            "bench_guard: no baseline entry matches variant={fresh_variant} \
             smoke={fresh_smoke}; commit one first"
        );
        std::process::exit(1);
    };

    let base_medians = medians(base);
    let fresh_medians = medians(&fresh);
    let mut compared = 0usize;
    let mut failed = false;
    println!(
        "{:<24} {:>14} {:>14} {:>9}  (tolerance +{tolerance_pct}%)",
        "bench", "baseline_ns", "fresh_ns", "delta"
    );
    for (id, fresh_median) in &fresh_medians {
        let Some((_, base_median)) = base_medians.iter().find(|(b, _)| b == id) else {
            continue; // new bench: nothing to regress against
        };
        compared += 1;
        let delta_pct = (fresh_median - base_median) / base_median * 100.0;
        let over = *fresh_median > base_median * (1.0 + tolerance_pct / 100.0);
        println!(
            "{:<24} {:>14.0} {:>14.0} {:>+8.2}%{}",
            id,
            base_median,
            fresh_median,
            delta_pct,
            if over { "  REGRESSION" } else { "" }
        );
        if over {
            failed = true;
        }
    }
    if compared == 0 {
        eprintln!("bench_guard: no shared bench ids between fresh report and baseline");
        std::process::exit(1);
    }
    if failed {
        eprintln!(
            "bench_guard: fresh medians exceed the committed baseline by more than \
             {tolerance_pct}% — dormant tracing is no longer free (or the machine is noisy; \
             rerun before believing this)"
        );
        std::process::exit(1);
    }
    println!("bench_guard: {compared} benches within +{tolerance_pct}% of baseline");
}
