//! Benchmarks for the §2.1 runtime applications — wearout epoch
//! simulation and trace-buffer debug sessions — on the in-repo
//! `tm-testkit` harness (JSON report in `target/tm-bench/`).

use std::hint::black_box;
use tm_bench::{harness_library, BenchArgs};
use tm_masking::{synthesize, uniform_aging, MaskingOptions};
use tm_monitor::trace::{CapturePolicy, DebugSession};
use tm_monitor::wearout::{run_lifetime, LifetimeConfig};
use tm_netlist::suites::smoke_suite;
use tm_sim::patterns::random_vectors;
use tm_testkit::bench::BenchGroup;

fn main() {
    let args = BenchArgs::parse();
    let lib = harness_library();
    let nl = smoke_suite()[0].build(lib);
    let design = synthesize(&nl, MaskingOptions { jobs: args.jobs(), ..Default::default() }).design;

    let mut group = BenchGroup::new("monitor");
    group.sample_size(10);
    args.apply(&mut group);

    let config = LifetimeConfig {
        epochs: 4,
        max_stress: 0.9,
        vectors_per_epoch: 100,
        ..Default::default()
    };
    group.bench("wearout_lifetime_4_epochs", || {
        black_box(run_lifetime(&design, &config).expect("valid config").len())
    });

    let session = DebugSession::new(&design);
    let scale = uniform_aging(&design, 1.0).expect("valid factor");
    let vectors = random_vectors(nl.inputs().len(), 500, 3);
    group.bench("trace_session_selective", || {
        black_box(
            session
                .run(&scale, &vectors, 32, CapturePolicy::OnSpeedPath)
                .expect("valid session")
                .window,
        )
    });

    group.finish();
    args.write_metrics();
}
