//! Criterion benchmarks for the end-to-end masking synthesis flow
//! (Table 2 kernel) and its exact verification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tm_bench::harness_library;
use tm_masking::{synthesize, verify, MaskingOptions};
use tm_netlist::suites::smoke_suite;

fn bench_synthesis(c: &mut Criterion) {
    let lib = harness_library();
    let mut group = c.benchmark_group("masking_synthesis");
    group.sample_size(10);
    for entry in smoke_suite() {
        let nl = entry.build(lib.clone());
        group.bench_with_input(BenchmarkId::new("synthesize", entry.name), &nl, |b, nl| {
            b.iter(|| black_box(synthesize(nl, MaskingOptions::default()).report.critical_outputs))
        });
    }
    group.finish();
}

fn bench_verification(c: &mut Criterion) {
    let lib = harness_library();
    let mut group = c.benchmark_group("masking_verification");
    group.sample_size(10);
    let nl = smoke_suite()[0].build(lib);
    group.bench_function("verify_i1", |b| {
        b.iter(|| {
            let mut result = synthesize(&nl, MaskingOptions::default());
            black_box(verify(&mut result).all_ok())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_synthesis, bench_verification);
criterion_main!(benches);
