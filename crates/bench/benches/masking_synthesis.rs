//! Benchmarks for the end-to-end masking synthesis flow (Table 2
//! kernel) and its exact verification, on the in-repo `tm-testkit`
//! harness (JSON report in `target/tm-bench/`).

use std::hint::black_box;
use tm_bench::{harness_library, BenchArgs};
use tm_masking::{synthesize, verify, MaskingOptions};
use tm_netlist::suites::smoke_suite;
use tm_testkit::bench::BenchGroup;

fn main() {
    let args = BenchArgs::parse();
    let lib = harness_library();
    let options = MaskingOptions { jobs: args.jobs(), ..Default::default() };

    let mut group = BenchGroup::new("masking_synthesis");
    group.sample_size(10);
    args.apply(&mut group);
    for entry in smoke_suite() {
        let nl = entry.build(lib.clone());
        group.bench(&format!("synthesize/{}", entry.name), || {
            black_box(synthesize(&nl, options).report.critical_outputs)
        });
    }
    group.finish();

    let mut group = BenchGroup::new("masking_verification");
    group.sample_size(10);
    args.apply(&mut group);
    let nl = smoke_suite()[0].build(lib);
    group.bench("verify_i1", || {
        let mut result = synthesize(&nl, options);
        black_box(verify(&mut result).all_ok())
    });
    group.finish();
    args.write_metrics();
}
