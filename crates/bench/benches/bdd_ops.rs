//! Micro-benchmarks for the `tm_logic::Bdd` hot core: node creation
//! (`mk` via and/or trees), `ite` traffic (global BDDs of generated
//! cones), negation, and `PortableBdd` export.
//!
//! The JSON report (`target/tm-bench/bdd_ops.json`) records the
//! node-store variant in `meta.variant` so before/after entries of the
//! perf trajectory (`BENCH_bdd.json`) are comparable:
//! 0 = HashMap-keyed plain ROBDD (seed), 1 = complement-edge SoA store
//! with open-addressed unique table.
//!
//! Flags (see [`BenchArgs`]): `--samples N`, `--metrics-out PATH`,
//! `--smoke` (smaller cones).

use std::hint::black_box;
use tm_bench::{harness_library, BenchArgs};
use tm_logic::Bdd;
use tm_netlist::generate::{generate, GeneratorSpec};
use tm_netlist::Netlist;
use tm_spcf::net_global_bdds;
use tm_testkit::bench::BenchGroup;

/// The node-store variant recorded in `meta.variant` (see module docs).
const NODE_STORE_VARIANT: f64 = 1.0;

fn cone(inputs: usize, outputs: usize, gates: usize, seed: u64) -> Netlist {
    let mut spec =
        GeneratorSpec::sized(format!("bdd_cone_{inputs}x{gates}"), inputs, outputs, gates);
    spec.seed = seed;
    generate(&spec, harness_library())
}

/// Builds an and/or tree over alternating-polarity literals: pure
/// `mk`/unique-table churn with small recursion depth.
fn literal_tree(bdd: &mut Bdd, width: usize) -> tm_logic::BddRef {
    let mut layer: Vec<_> = (0..width)
        .map(|v| {
            let f = bdd.var(v % bdd.num_vars());
            if v % 3 == 0 {
                bdd.not(f)
            } else {
                f
            }
        })
        .collect();
    let mut and_layer = true;
    while layer.len() > 1 {
        layer = layer
            .chunks(2)
            .map(|c| {
                if c.len() == 1 {
                    c[0]
                } else if and_layer {
                    bdd.and(c[0], c[1])
                } else {
                    bdd.or(c[0], c[1])
                }
            })
            .collect();
        and_layer = !and_layer;
    }
    layer[0]
}

fn main() {
    let args = BenchArgs::parse();
    let mut group = BenchGroup::new("bdd_ops");
    group.sample_size(20);
    args.apply(&mut group);
    group.meta("variant", NODE_STORE_VARIANT);
    // Workload shape, so the overhead guard compares like with like:
    // smoke entries in BENCH_bdd.json only ever match smoke runs.
    group.meta("smoke", args.smoke as u8 as f64);

    let (gates, width) = if args.smoke { (60, 32) } else { (220, 96) };
    let nl = cone(14, 4, gates, 0xBDD);

    group.bench("mk/literal_tree", || {
        let mut bdd = Bdd::new(16);
        black_box(literal_tree(&mut bdd, width))
    });

    group.bench("ite/cone_globals", || {
        let mut bdd = Bdd::new(nl.inputs().len());
        black_box(net_global_bdds(&nl, &mut bdd).len())
    });

    group.bench("negation/demorgan", || {
        let mut bdd = Bdd::new(16);
        let f = literal_tree(&mut bdd, width);
        // ¬(f ∧ x_i) folded through De Morgan: negation-heavy churn.
        let mut acc = bdd.not(f);
        for v in 0..16 {
            let x = bdd.var(v);
            let nx = bdd.not(x);
            let t = bdd.and(acc, nx);
            acc = bdd.not(t);
        }
        black_box(acc)
    });

    // Export benches a prebuilt manager: structural DFS only.
    let mut bdd = Bdd::new(nl.inputs().len());
    let globals = net_global_bdds(&nl, &mut bdd);
    let roots: Vec<_> = nl.outputs().iter().map(|&o| globals[o.index()]).collect();
    group.bench("export/cone_globals", || {
        let total: usize = roots.iter().map(|&r| bdd.export(r).node_count()).sum();
        black_box(total)
    });

    // Publish the prebuilt manager's lifetime stats so a
    // `--metrics-out` snapshot carries the `bdd.*` counters (CI's
    // cache-stats sanity gate requires nonzero cache hits here).
    bdd.publish_metrics();

    group.finish();
    args.write_metrics();
}
