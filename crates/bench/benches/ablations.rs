//! Criterion benchmarks for the design-choice ablations (cube
//! selection, extraction bound, duplication baseline).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tm_bench::harness_library;
use tm_masking::{duplication_masking, synthesize, CubeSelection, MaskingOptions};
use tm_netlist::extract::ExtractOptions;
use tm_netlist::suites::smoke_suite;

fn bench_cube_selection(c: &mut Criterion) {
    let lib = harness_library();
    let nl = smoke_suite()[0].build(lib);
    let mut group = c.benchmark_group("ablation_cube_selection");
    group.sample_size(10);
    group.bench_function("essential_weight", |b| {
        b.iter(|| black_box(synthesize(&nl, MaskingOptions::default()).design.masking.area()))
    });
    group.bench_function("full_cover", |b| {
        b.iter(|| {
            let opts =
                MaskingOptions { cube_selection: CubeSelection::FullCover, ..Default::default() };
            black_box(synthesize(&nl, opts).design.masking.area())
        })
    });
    group.bench_function("duplication_baseline", |b| {
        b.iter(|| {
            black_box(duplication_masking(&nl, MaskingOptions::default()).design.masking.area())
        })
    });
    group.finish();
}

fn bench_extraction_bound(c: &mut Criterion) {
    let lib = harness_library();
    let nl = smoke_suite()[3].build(lib);
    let mut group = c.benchmark_group("ablation_extraction_bound");
    group.sample_size(10);
    for k in [4usize, 8, 12, 16] {
        group.bench_with_input(BenchmarkId::new("max_support", k), &k, |b, &k| {
            b.iter(|| {
                let opts = MaskingOptions {
                    extract: ExtractOptions { max_support: k },
                    ..Default::default()
                };
                black_box(synthesize(&nl, opts).design.masking.area())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cube_selection, bench_extraction_bound);
criterion_main!(benches);
