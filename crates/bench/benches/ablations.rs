//! Benchmarks for the design-choice ablations (cube selection,
//! extraction bound, duplication baseline), on the in-repo
//! `tm-testkit` harness (JSON report in `target/tm-bench/`).

use std::hint::black_box;
use tm_bench::{harness_library, BenchArgs};
use tm_masking::{duplication_masking, synthesize, CubeSelection, MaskingOptions};
use tm_netlist::extract::ExtractOptions;
use tm_netlist::suites::smoke_suite;
use tm_testkit::bench::BenchGroup;

fn main() {
    let args = BenchArgs::parse();
    let base = MaskingOptions { jobs: args.jobs(), ..Default::default() };
    let lib = harness_library();

    let nl = smoke_suite()[0].build(lib.clone());
    let mut group = BenchGroup::new("ablation_cube_selection");
    group.sample_size(10);
    args.apply(&mut group);
    group.bench("essential_weight", || {
        black_box(synthesize(&nl, base).design.masking.area())
    });
    group.bench("full_cover", || {
        let opts = MaskingOptions { cube_selection: CubeSelection::FullCover, ..base };
        black_box(synthesize(&nl, opts).design.masking.area())
    });
    group.bench("duplication_baseline", || {
        black_box(duplication_masking(&nl, base).design.masking.area())
    });
    group.finish();

    let nl = smoke_suite()[3].build(lib);
    let mut group = BenchGroup::new("ablation_extraction_bound");
    group.sample_size(10);
    args.apply(&mut group);
    for k in [4usize, 8, 12, 16] {
        group.bench(&format!("max_support/{k}"), || {
            let opts = MaskingOptions {
                extract: ExtractOptions { max_support: k },
                ..base
            };
            black_box(synthesize(&nl, opts).design.masking.area())
        });
    }
    group.finish();
    args.write_metrics();
}
