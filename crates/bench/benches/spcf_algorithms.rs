//! Benchmarks for the three SPCF engines (Table 1 kernels), on the
//! in-repo `tm-testkit` harness (JSON report in `target/tm-bench/`).
//!
//! Flags (see [`BenchArgs`]): `--samples N`, `--metrics-out PATH`,
//! `--smoke` to run the small smoke suite instead of the three largest
//! Table 1 circuits, and `--jobs N` to shard critical outputs across N
//! workers (recorded in the report's `meta.jobs`).

use std::hint::black_box;
use tm_bench::{harness_library, BenchArgs};
use tm_logic::Bdd;
use tm_netlist::suites::{smoke_suite, table1_suite};
use tm_resilience::Budget;
use tm_spcf::{spcf_with, Algorithm, SpcfOptions, WarmSession};
use tm_sta::Sta;
use tm_testkit::bench::BenchGroup;

fn main() {
    let args = BenchArgs::parse();
    let lib = harness_library();
    let mut group = BenchGroup::new("spcf_algorithms");
    group.sample_size(10);
    args.apply(&mut group);
    // Node-store variant for the BENCH_spcf.json perf trajectory:
    // 0 = HashMap plain ROBDD (seed), 1 = complement-edge SoA store.
    group.meta("variant", 1.0);
    let options = SpcfOptions::default().with_jobs(args.jobs());
    let suite = if args.smoke { smoke_suite() } else { table1_suite() };
    for entry in suite.iter().take(3) {
        let nl = entry.build(lib.clone());
        let sta = Sta::new(&nl);
        let target = sta.critical_path_delay() * 0.9;
        for (id, algorithm) in [
            ("node_based", Algorithm::NodeBased),
            ("path_based", Algorithm::PathBased),
            ("short_path", Algorithm::ShortPath),
        ] {
            group.bench(&format!("{id}/{}", entry.name), || {
                let mut bdd = Bdd::new(nl.inputs().len());
                black_box(spcf_with(algorithm, &nl, &sta, &mut bdd, target, &options).outputs.len())
            });
        }
        // The 8-point protection-band sweep kernel (sweep.rs inner
        // loop): short-path SPCF across a descending Δ_y ladder, one
        // warm session per sweep — the manager, prime cache, global
        // BDDs, and short-path memo carry across all eight targets.
        let delta = sta.critical_path_delay();
        group.bench(&format!("sweep8_short_path/{}", entry.name), || {
            let mut crit = 0usize;
            let mut bdd = Bdd::new(nl.inputs().len());
            let mut session =
                WarmSession::new(Algorithm::ShortPath, &nl, &sta, &mut bdd, Budget::unlimited());
            for pct in [99u32, 95, 90, 85, 80, 70, 60, 50] {
                let set = session.retarget(delta * (pct as f64 / 100.0));
                crit += set.outputs.len();
            }
            black_box(crit)
        });
    }
    group.finish();
    args.write_metrics();
}
