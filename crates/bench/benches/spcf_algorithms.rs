//! Benchmarks for the three SPCF engines (Table 1 kernels), on the
//! in-repo `tm-testkit` harness (JSON report in `target/tm-bench/`).
//!
//! Flags (see [`BenchArgs`]): `--samples N`, `--metrics-out PATH`,
//! `--smoke` to run the small smoke suite instead of the three largest
//! Table 1 circuits, and `--jobs N` to shard critical outputs across N
//! workers (recorded in the report's `meta.jobs`).

use std::hint::black_box;
use tm_bench::{harness_library, BenchArgs};
use tm_logic::Bdd;
use tm_netlist::suites::{smoke_suite, table1_suite};
use tm_spcf::{spcf_with, Algorithm, SpcfOptions};
use tm_sta::Sta;
use tm_testkit::bench::BenchGroup;

fn main() {
    let args = BenchArgs::parse();
    let lib = harness_library();
    let mut group = BenchGroup::new("spcf_algorithms");
    group.sample_size(10);
    args.apply(&mut group);
    let options = SpcfOptions::default().with_jobs(args.jobs());
    let suite = if args.smoke { smoke_suite() } else { table1_suite() };
    for entry in suite.iter().take(3) {
        let nl = entry.build(lib.clone());
        let sta = Sta::new(&nl);
        let target = sta.critical_path_delay() * 0.9;
        for (id, algorithm) in [
            ("node_based", Algorithm::NodeBased),
            ("path_based", Algorithm::PathBased),
            ("short_path", Algorithm::ShortPath),
        ] {
            group.bench(&format!("{id}/{}", entry.name), || {
                let mut bdd = Bdd::new(nl.inputs().len());
                black_box(spcf_with(algorithm, &nl, &sta, &mut bdd, target, &options).outputs.len())
            });
        }
    }
    group.finish();
    args.write_metrics();
}
