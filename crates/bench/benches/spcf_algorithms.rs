//! Benchmarks for the three SPCF engines (Table 1 kernels), on the
//! in-repo `tm-testkit` harness (JSON report in `target/tm-bench/`).
//!
//! Flags (see [`BenchArgs`]): `--samples N`, `--metrics-out PATH`, and
//! `--smoke` to run the small smoke suite instead of the three largest
//! Table 1 circuits.

use std::hint::black_box;
use tm_bench::{harness_library, BenchArgs};
use tm_logic::Bdd;
use tm_netlist::suites::{smoke_suite, table1_suite};
use tm_spcf::{node_based_spcf, path_based_spcf, short_path_spcf};
use tm_sta::Sta;
use tm_testkit::bench::BenchGroup;

fn main() {
    let args = BenchArgs::parse();
    let lib = harness_library();
    let mut group = BenchGroup::new("spcf_algorithms");
    group.sample_size(10);
    args.apply(&mut group);
    let suite = if args.smoke { smoke_suite() } else { table1_suite() };
    for entry in suite.iter().take(3) {
        let nl = entry.build(lib.clone());
        let sta = Sta::new(&nl);
        let target = sta.critical_path_delay() * 0.9;
        group.bench(&format!("node_based/{}", entry.name), || {
            let mut bdd = Bdd::new(nl.inputs().len());
            black_box(node_based_spcf(&nl, &sta, &mut bdd, target).outputs.len())
        });
        group.bench(&format!("path_based/{}", entry.name), || {
            let mut bdd = Bdd::new(nl.inputs().len());
            black_box(path_based_spcf(&nl, &sta, &mut bdd, target).outputs.len())
        });
        group.bench(&format!("short_path/{}", entry.name), || {
            let mut bdd = Bdd::new(nl.inputs().len());
            black_box(short_path_spcf(&nl, &sta, &mut bdd, target).outputs.len())
        });
    }
    group.finish();
    args.write_metrics();
}
