//! Criterion benchmarks for the three SPCF engines (Table 1 kernels).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tm_bench::harness_library;
use tm_logic::Bdd;
use tm_netlist::suites::table1_suite;
use tm_spcf::{node_based_spcf, path_based_spcf, short_path_spcf};
use tm_sta::Sta;

fn bench_spcf(c: &mut Criterion) {
    let lib = harness_library();
    let mut group = c.benchmark_group("spcf_algorithms");
    group.sample_size(10);
    for entry in table1_suite().iter().take(3) {
        let nl = entry.build(lib.clone());
        let sta = Sta::new(&nl);
        let target = sta.critical_path_delay() * 0.9;
        group.bench_with_input(BenchmarkId::new("node_based", entry.name), &nl, |b, nl| {
            b.iter(|| {
                let mut bdd = Bdd::new(nl.inputs().len());
                black_box(node_based_spcf(nl, &sta, &mut bdd, target).outputs.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("path_based", entry.name), &nl, |b, nl| {
            b.iter(|| {
                let mut bdd = Bdd::new(nl.inputs().len());
                black_box(path_based_spcf(nl, &sta, &mut bdd, target).outputs.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("short_path", entry.name), &nl, |b, nl| {
            b.iter(|| {
                let mut bdd = Bdd::new(nl.inputs().len());
                black_box(short_path_spcf(nl, &sta, &mut bdd, target).outputs.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spcf);
criterion_main!(benches);
