//! The request engine behind the daemon: verb dispatch, the session
//! pool, request coalescing, the load/budget degradation ladder, and
//! the shared telemetry aggregate (DESIGN.md §10).
//!
//! [`ServeCore`] is transport-free — [`ServeCore::handle_payload`]
//! maps one request payload to the ordered list of response frames.
//! The TCP layer in [`crate::net`] wraps it with framing, admission
//! control, and the worker pool; the serving test battery drives it
//! both ways (over real sockets, and in-process for the soak test).
//!
//! # The degradation ladder as load-shedding
//!
//! A request's engine rung is the *cheaper* of what the client asked
//! for and what the current load allows: moderate occupancy forces
//! node-based, heavy occupancy forces conservative, and a full
//! admission gate rejects at accept time (`crate::net`). Within a
//! request, a budget-exhausted rung falls to the next cheaper one; a
//! request that exhausts even the conservative rung is rejected with a
//! typed `exhausted` error and counted as shed. Nothing in the ladder
//! blocks or panics.
//!
//! # Determinism
//!
//! Report frames carry no wall-clock fields (latency goes to the
//! `serve.request_ns` digest instead), so a request's frames are a
//! pure function of (circuit, algorithm, ladder) — the
//! concurrent-determinism suite compares them byte-for-byte against a
//! serial [`tm_spcf::EngineSession`] run. Coalescing hands a waiting
//! follower the leader's frames, which are the same bytes by the same
//! argument.

use crate::pool::{canonical_blif, fnv1a64, lock_recover, PoolStats, PooledSession, SessionPool};
use crate::protocol::{error_frame, error_frame_for, Request};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use tm_logic::Bdd;
use tm_netlist::blif::parse_blif;
use tm_netlist::library::{lsi10k_like, Library};
use tm_netlist::{Delay, Netlist};
use tm_resilience::{Budget, Gate, TmError};
use tm_spcf::{Algorithm, SpcfSet};
use tm_telemetry::flight;
use tm_telemetry::Snapshot;
use tm_testkit::json::Json;

/// Serving configuration. `ServeConfig::default()` is sized for tests;
/// the daemon derives load thresholds from `--workers` (see
/// `ServeConfig::for_workers`).
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker threads serving connections.
    pub workers: usize,
    /// Session-pool capacity (distinct circuits kept warm).
    pub pool_capacity: usize,
    /// Admission-gate capacity: connections in flight (queued or
    /// served) before the acceptor sheds.
    pub admit: usize,
    /// Per-request computation budget.
    pub budget: Budget,
    /// Per-connection read timeout (a half-sent frame never wedges a
    /// worker).
    pub read_timeout: Duration,
    /// Frame-length cap.
    pub max_frame: u32,
    /// In-flight count above which requests degrade to node-based.
    pub degrade_node_based_at: usize,
    /// In-flight count above which requests degrade to conservative.
    pub degrade_conservative_at: usize,
    /// Requests whose wall time reaches this threshold have their full
    /// span tree copied into the flight recorder's slow log.
    pub slow_threshold: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig::for_workers(4)
    }
}

impl ServeConfig {
    /// A configuration scaled to `workers` threads: the gate admits
    /// 4× workers, and the load ladder degrades at 2× (node-based) and
    /// 3× (conservative) workers in flight.
    pub fn for_workers(workers: usize) -> ServeConfig {
        let workers = workers.max(1);
        ServeConfig {
            workers,
            pool_capacity: 8,
            admit: 4 * workers,
            budget: Budget::unlimited(),
            read_timeout: Duration::from_secs(5),
            max_frame: crate::protocol::DEFAULT_MAX_FRAME,
            degrade_node_based_at: 2 * workers,
            degrade_conservative_at: 3 * workers,
            slow_threshold: Duration::from_millis(25),
        }
    }
}

/// Default cap on events in a `trace` export — keeps the rendered
/// Chrome JSON safely under the 4 MiB frame cap.
pub const DEFAULT_TRACE_EXPORT_LIMIT: usize = 10_000;

/// A coalescing slot: the leader fills `frames` and notifies; followers
/// wait (bounded) and reuse the bytes.
struct Flight {
    frames: Mutex<Option<Arc<Vec<String>>>>,
    ready: Condvar,
}

/// How long a coalesced follower waits for its leader before computing
/// independently — a liveness backstop, not an expected path.
const COALESCE_WAIT: Duration = Duration::from_secs(30);

/// The transport-free serving engine (see module docs).
pub struct ServeCore {
    config: ServeConfig,
    library: Arc<Library>,
    pool: SessionPool,
    gate: Arc<Gate>,
    aggregate: Mutex<Snapshot>,
    inflight: Mutex<HashMap<u64, Arc<Flight>>>,
}

impl ServeCore {
    /// Builds a core for `config`, mapping submissions onto the
    /// paper's LSI-10K-like library.
    pub fn new(config: ServeConfig) -> ServeCore {
        ServeCore {
            config,
            library: Arc::new(lsi10k_like()),
            pool: SessionPool::new(config.pool_capacity),
            gate: Arc::new(Gate::new(config.admit.max(1))),
            aggregate: Mutex::new(Snapshot::default()),
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// The configuration this core runs.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The admission gate (shared with the acceptor).
    pub fn gate(&self) -> &Arc<Gate> {
        &self.gate
    }

    /// The session pool (the soak test reads its stats directly).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Drains the calling thread's telemetry registry into the shared
    /// aggregate. Workers call this after every connection; anything
    /// recorded on a thread that never folds is invisible to `stats`.
    pub fn fold_local_telemetry(&self) {
        let local = tm_telemetry::drain();
        if !local.is_empty() {
            lock_recover(&self.aggregate).merge(&local);
        }
    }

    /// Handles one request payload, returning response frames in
    /// stream order. Never panics on adversarial input; internal
    /// errors become typed `error` frames.
    pub fn handle_payload(&self, payload: &[u8]) -> Vec<String> {
        self.handle_payload_queued(payload, 0)
    }

    /// [`ServeCore::handle_payload`] with queue-wait attribution:
    /// `queue_ns` is how long the request sat in the accept queue
    /// before a worker picked it up. The flight-recorder root span is
    /// back-dated by that amount, so queue wait shows up in the phase
    /// breakdown instead of silently vanishing.
    pub fn handle_payload_queued(&self, payload: &[u8], queue_ns: u64) -> Vec<String> {
        let _span = tm_telemetry::span!("serve.request");
        let trace = flight::request_begin("serve.request", queue_ns);
        if queue_ns > 0 {
            tm_telemetry::digest_record("serve.queue_ns", queue_ns);
            // End-anchored: if the back-dated start saturates at the
            // trace epoch, the duration shrinks with it so the span
            // can never extend past now (and into later phases).
            let end = flight::now_ns();
            let ts = end.saturating_sub(queue_ns);
            flight::complete("serve.queue", ts, end - ts, &[]);
        }
        let start = Instant::now();
        let parsed = {
            let _phase = flight::phase("serve.parse");
            Request::parse(payload)
        };
        let frames = match parsed {
            Err(e) => {
                tm_telemetry::counter_add("serve.errors", 1);
                vec![error_frame_for(&e)]
            }
            Ok(request) => {
                tm_telemetry::counter_add("serve.requests", 1);
                match request {
                    Request::Stats => vec![self.stats_frame()],
                    Request::Trace { limit } => {
                        vec![self.trace_frame(limit.unwrap_or(DEFAULT_TRACE_EXPORT_LIMIT))]
                    }
                    Request::Mask { blif } => self.handle_mask(&blif),
                    Request::Spcf { blif, algorithm, targets, relative } => {
                        self.handle_spcf(&blif, algorithm, &targets, relative)
                    }
                }
            }
        };
        tm_telemetry::digest_record("serve.request_ns", start.elapsed().as_nanos() as u64);
        if let Some(summary) = trace.finish(self.config.slow_threshold.as_nanos() as u64) {
            tm_telemetry::counter_add("serve.trace.events", summary.events);
            if summary.slow {
                tm_telemetry::counter_add("serve.slow.captured", 1);
            }
        }
        frames
    }

    fn handle_spcf(
        &self,
        blif: &str,
        algorithm: Algorithm,
        targets: &[f64],
        relative: bool,
    ) -> Vec<String> {
        let parse_phase = flight::phase("serve.parse");
        let sop = match parse_blif(blif) {
            Ok(sop) => sop,
            Err(e) => {
                tm_telemetry::counter_add("serve.errors", 1);
                return vec![error_frame_for(&TmError::parse(e.line(), e.to_string()))];
            }
        };
        let canonical = canonical_blif(&sop);
        let circuit_key = fnv1a64(canonical.as_bytes());
        drop(parse_phase);
        // Identical concurrent requests ride one computation: key the
        // flight by everything that shapes the response bytes.
        let mut flight_bytes = canonical.into_bytes();
        flight_bytes.extend_from_slice(algorithm.to_string().as_bytes());
        flight_bytes.push(relative as u8);
        for t in targets {
            flight_bytes.extend_from_slice(&t.to_bits().to_be_bytes());
        }
        let flight_key = fnv1a64(&flight_bytes);

        let (flight, leader) = {
            let mut map = lock_recover(&self.inflight);
            match map.get(&flight_key) {
                Some(f) => (Arc::clone(f), false),
                None => {
                    let f = Arc::new(Flight {
                        frames: Mutex::new(None),
                        ready: Condvar::new(),
                    });
                    map.insert(flight_key, Arc::clone(&f));
                    (f, true)
                }
            }
        };
        if leader {
            let frames =
                Arc::new(self.compute_spcf_frames(&sop, circuit_key, algorithm, targets, relative));
            *lock_recover(&flight.frames) = Some(Arc::clone(&frames));
            flight.ready.notify_all();
            lock_recover(&self.inflight).remove(&flight_key);
            return frames.as_ref().clone();
        }
        tm_telemetry::counter_add("serve.coalesced", 1);
        let deadline = Instant::now() + COALESCE_WAIT;
        let mut guard = lock_recover(&flight.frames);
        loop {
            if let Some(frames) = guard.as_ref() {
                return frames.as_ref().clone();
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (g, _timeout) = flight
                .ready
                .wait_timeout(guard, deadline - now)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            guard = g;
        }
        drop(guard);
        // Leader vanished (wedged or killed): compute independently.
        self.compute_spcf_frames(&sop, circuit_key, algorithm, targets, relative)
    }

    fn compute_spcf_frames(
        &self,
        sop: &tm_netlist::SopNetwork,
        circuit_key: u64,
        requested: Algorithm,
        targets: &[f64],
        relative: bool,
    ) -> Vec<String> {
        let mut built = false;
        let checkout = {
            let mut pool_phase = flight::phase("serve.pool");
            let r = self.pool.checkout(circuit_key, || {
                built = true;
                PooledSession::build(sop, Arc::clone(&self.library))
            });
            pool_phase.arg("built", built as u8 as f64);
            r
        };
        let entry = match checkout {
            Ok(entry) => entry,
            Err(e) => {
                tm_telemetry::counter_add("serve.errors", 1);
                return vec![error_frame_for(&e)];
            }
        };
        let mut session = lock_recover(&entry);

        // Load rung: the cheaper of the request and what occupancy
        // allows right now.
        let inflight = self.gate.in_flight();
        let algorithm = if inflight > self.config.degrade_conservative_at {
            degrade_to(requested, Algorithm::Conservative, true)
        } else if inflight > self.config.degrade_node_based_at {
            degrade_to(requested, Algorithm::NodeBased, true)
        } else {
            requested
        };

        let delta = session.delta();
        let mut frames = Vec::with_capacity(targets.len() + 1);
        for (seq, &raw) in targets.iter().enumerate() {
            let target = if relative { delta * raw } else { Delay::new(raw) };
            let mut rung = algorithm;
            let outcome = {
                let _phase = flight::phase_with("serve.compute", &[("seq", seq as f64)]);
                loop {
                    match session.compute(rung, target, self.config.budget) {
                        Ok(set) => break Ok(set),
                        Err(e) => match next_rung(rung) {
                            Some(next) => {
                                rung = degrade_to(rung, next, true);
                            }
                            None => break Err(e),
                        },
                    }
                }
            };
            match outcome {
                Ok(set) => {
                    let _phase = flight::phase_with("serve.serialize", &[("seq", seq as f64)]);
                    frames.push(spcf_report_frame(session.netlist(), session.bdd(), &set, seq))
                }
                Err(e) => {
                    // Even the guard-everything rung exhausted: typed
                    // reject, counted as shed load.
                    tm_telemetry::counter_add("serve.shed", 1);
                    tm_telemetry::counter_add("serve.errors", 1);
                    frames.push(error_frame("exhausted", e.to_string()));
                    return frames;
                }
            }
        }
        frames.push(done_frame(targets.len()));
        frames
    }

    /// Renders the `trace` frame: the flight recorder's current
    /// contents as Chrome trace-event JSON (loadable in Perfetto /
    /// `chrome://tracing`), capped to the `limit` most recent events.
    pub fn trace_frame(&self, limit: usize) -> String {
        let export = flight::export(limit);
        Json::obj([
            ("type", Json::str("trace")),
            ("events", Json::Num(export.events.len() as f64)),
            ("dropped", Json::Num(export.dropped as f64)),
            ("slow", Json::Num(export.slow.len() as f64)),
            ("trace", flight::chrome_trace(&export)),
        ])
        .render()
    }

    fn handle_mask(&self, blif: &str) -> Vec<String> {
        let parse_phase = flight::phase("serve.parse");
        let sop = match parse_blif(blif) {
            Ok(sop) => sop,
            Err(e) => {
                tm_telemetry::counter_add("serve.errors", 1);
                return vec![error_frame_for(&TmError::parse(e.line(), e.to_string()))];
            }
        };
        if sop.outputs().is_empty() || sop.inputs().is_empty() {
            tm_telemetry::counter_add("serve.errors", 1);
            return vec![error_frame("invalid", "circuit has no primary inputs or outputs")];
        }
        drop(parse_phase);
        let compute_phase = flight::phase("serve.compute");
        let netlist = tm_netlist::map::tech_map(
            &sop,
            Arc::clone(&self.library),
            tm_netlist::map::MapOptions::default(),
        );
        let options = tm_masking::MaskingOptions {
            budget: self.config.budget,
            ..tm_masking::MaskingOptions::default()
        };
        let mut result = tm_masking::synthesize(&netlist, options);
        let verification = tm_masking::verify(&mut result);
        drop(compute_phase);
        let _serialize = flight::phase("serve.serialize");
        let r = &result.report;
        vec![Json::obj([
            ("type", Json::str("mask_report")),
            ("circuit", Json::str(r.circuit.clone())),
            ("critical_outputs", Json::Num(r.critical_outputs as f64)),
            ("num_outputs", Json::Num(r.num_outputs as f64)),
            ("critical_patterns", Json::Num(r.critical_patterns)),
            ("slack_percent", Json::Num(r.slack_percent)),
            ("area_overhead_percent", Json::Num(r.area_overhead_percent)),
            ("power_overhead_percent", Json::Num(r.power_overhead_percent)),
            ("degradation", Json::str(r.degradation.to_string())),
            ("coverage", Json::Num(verification.coverage())),
            ("verified", Json::Bool(verification.all_ok())),
        ])
        .render()]
    }

    /// Renders the `stats` frame: the folded telemetry aggregate (plus
    /// this thread's not-yet-folded registry) and pool statistics.
    pub fn stats_frame(&self) -> String {
        let pool = self.pool.stats();
        let recorder = flight::stats();
        let mut snap = {
            let mut agg = lock_recover(&self.aggregate);
            let local = tm_telemetry::drain();
            agg.merge(&local);
            agg.clone()
        };
        // Live values go in as gauges (last-write-wins), so repeated
        // stats calls don't double-count them through the merge.
        let mut live = Snapshot::default();
        live.gauges.push(("serve.pool.sessions".to_string(), pool.sessions as f64));
        live.gauges.push(("serve.trace.buffered".to_string(), recorder.buffered as f64));
        live.gauges.push(("serve.trace.dropped".to_string(), recorder.dropped as f64));
        live.gauges.push(("serve.trace.threads".to_string(), recorder.threads as f64));
        snap.merge(&live);
        Json::obj([
            ("type", Json::str("stats")),
            ("metrics", snap.to_json()),
            (
                "pool",
                Json::obj([
                    ("sessions", Json::Num(pool.sessions as f64)),
                    ("hits", Json::Num(pool.hits as f64)),
                    ("misses", Json::Num(pool.misses as f64)),
                    ("evictions", Json::Num(pool.evictions as f64)),
                    ("bdd_nodes", Json::Num(pool.bdd_nodes as f64)),
                    ("memo_entries", Json::Num(pool.memo_entries as f64)),
                ]),
            ),
            (
                "trace",
                Json::obj([
                    ("threads", Json::Num(recorder.threads as f64)),
                    ("buffered", Json::Num(recorder.buffered as f64)),
                    ("recorded", Json::Num(recorder.recorded as f64)),
                    ("dropped", Json::Num(recorder.dropped as f64)),
                    ("slow_captured", Json::Num(recorder.slow_captured as f64)),
                    ("slow_evicted", Json::Num(recorder.slow_evicted as f64)),
                ]),
            ),
            ("inflight", Json::Num(self.gate.in_flight() as f64)),
        ])
        .render()
    }
}

/// The degradation rank of an algorithm: exact engines (0) degrade to
/// node-based (1) and then conservative (2).
fn rank(algorithm: Algorithm) -> u8 {
    match algorithm {
        Algorithm::ShortPath | Algorithm::PathBased => 0,
        Algorithm::NodeBased => 1,
        Algorithm::Conservative => 2,
    }
}

/// The next cheaper rung, or `None` from the guard-everything floor.
fn next_rung(algorithm: Algorithm) -> Option<Algorithm> {
    match rank(algorithm) {
        0 => Some(Algorithm::NodeBased),
        1 => Some(Algorithm::Conservative),
        _ => None,
    }
}

/// Degrades `from` to at least `floor`, counting the step when it is a
/// real downgrade and `count` is set.
fn degrade_to(from: Algorithm, floor: Algorithm, count: bool) -> Algorithm {
    if rank(from) >= rank(floor) {
        return from;
    }
    if count {
        match floor {
            Algorithm::NodeBased => tm_telemetry::counter_add("serve.degrade.node_based", 1),
            Algorithm::Conservative => tm_telemetry::counter_add("serve.degrade.conservative", 1),
            _ => {}
        }
    }
    floor
}

/// Renders one ladder point's `report` frame. Deliberately excludes
/// wall-clock fields: these bytes must be identical for identical
/// (circuit, algorithm, target) regardless of worker count, pool size,
/// or manager warmth — the property the concurrent-determinism suite
/// pins against a serial [`tm_spcf::EngineSession`] run.
pub fn spcf_report_frame(netlist: &Netlist, bdd: &Bdd, set: &SpcfSet, seq: usize) -> String {
    let outputs = set
        .outputs
        .iter()
        .map(|o| {
            Json::obj([
                ("name", Json::str(netlist.net_name(o.output))),
                ("patterns", Json::Num(bdd.sat_count(o.spcf))),
                ("fraction", Json::Num(bdd.sat_fraction(o.spcf))),
            ])
        })
        .collect();
    Json::obj([
        ("type", Json::str("report")),
        ("seq", Json::Num(seq as f64)),
        ("algorithm", Json::str(set.algorithm.to_string())),
        ("target", Json::Num(set.target.units())),
        ("critical_outputs", Json::Num(set.outputs.len() as f64)),
        ("critical_patterns", Json::Num(set.critical_pattern_count(bdd))),
        ("outputs", Json::Arr(outputs)),
    ])
    .render()
}

/// Renders the `done` frame terminating a successful `spcf` ladder.
pub fn done_frame(points: usize) -> String {
    Json::obj([("type", Json::str("done")), ("points", Json::Num(points as f64))]).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_blif() -> String {
        ".model tiny\n.inputs a b c\n.outputs y\n.names a b n1\n11 1\n.names n1 c y\n10 1\n01 1\n.end\n".to_string()
    }

    fn spcf_request(blif: &str, algorithm: &str, targets: &str) -> String {
        format!(
            r#"{{"verb":"spcf","blif":{},"algorithm":"{algorithm}","targets":{targets},"relative":true}}"#,
            Json::str(blif).render()
        )
    }

    #[test]
    fn spcf_request_streams_reports_then_done() {
        let _scope = tm_telemetry::Scope::enter();
        let core = ServeCore::new(ServeConfig::default());
        let frames =
            core.handle_payload(spcf_request(&tiny_blif(), "short-path", "[0.95,0.5]").as_bytes());
        assert_eq!(frames.len(), 3, "{frames:?}");
        for (i, f) in frames[..2].iter().enumerate() {
            let j = Json::parse(f).expect("report parses");
            assert_eq!(j.get("type").and_then(Json::as_str), Some("report"));
            assert_eq!(j.get("seq").and_then(Json::as_num), Some(i as f64));
        }
        let done = Json::parse(&frames[2]).expect("done parses");
        assert_eq!(done.get("type").and_then(Json::as_str), Some("done"));
        assert_eq!(done.get("points").and_then(Json::as_num), Some(2.0));
    }

    #[test]
    fn repeated_circuit_hits_the_pool() {
        let _scope = tm_telemetry::Scope::enter();
        let core = ServeCore::new(ServeConfig::default());
        let req = spcf_request(&tiny_blif(), "short-path", "[0.9]");
        core.handle_payload(req.as_bytes());
        core.handle_payload(req.as_bytes());
        // Same circuit with cosmetic differences still shares a session.
        let cosmetic = tiny_blif().replace(".model tiny", ".model tiny \\\n");
        core.handle_payload(spcf_request(&cosmetic, "node-based", "[0.9]").as_bytes());
        let stats = core.pool_stats();
        assert_eq!((stats.misses, stats.hits), (1, 2));
    }

    #[test]
    fn budget_exhaustion_walks_the_ladder_down() {
        let _scope = tm_telemetry::Scope::enter();
        let mut config = ServeConfig::default();
        // One recursion step is too tight for the exact and node-based
        // engines on a circuit whose SPCF ops miss the caches warmed
        // at session build; the conservative rung does no budgeted
        // work at all and always lands.
        config.budget = Budget::unlimited().with_max_steps(1);
        let core = ServeCore::new(config);
        let blif = crate::gen::synthetic_blif(7, 12, 40);
        let frames =
            core.handle_payload(spcf_request(&blif, "short-path", "[0.5]").as_bytes());
        let report = Json::parse(&frames[0]).expect("report");
        assert_eq!(report.get("type").and_then(Json::as_str), Some("report"));
        assert_eq!(
            report.get("algorithm").and_then(Json::as_str),
            Some("conservative"),
            "tight budget must degrade to the guard-everything rung: {frames:?}"
        );
        let snap = tm_telemetry::snapshot();
        assert!(snap.counter("serve.degrade.node_based").unwrap_or(0) >= 1);
        assert!(snap.counter("serve.degrade.conservative").unwrap_or(0) >= 1);
        assert_eq!(snap.counter("serve.shed"), None, "degraded, not rejected");
    }

    #[test]
    fn stats_frame_reports_schema_valid_metrics() {
        let _scope = tm_telemetry::Scope::enter();
        let core = ServeCore::new(ServeConfig::default());
        core.handle_payload(spcf_request(&tiny_blif(), "short-path", "[0.9]").as_bytes());
        let stats = core.handle_payload(br#"{"verb":"stats"}"#);
        assert_eq!(stats.len(), 1);
        let j = Json::parse(&stats[0]).expect("stats parses");
        assert_eq!(j.get("type").and_then(Json::as_str), Some("stats"));
        let metrics = j.get("metrics").expect("metrics");
        tm_telemetry::schema::validate(metrics).expect("schema-valid");
        let counters = metrics.get("counters").and_then(Json::as_arr).expect("counters");
        let requests = counters
            .iter()
            .find(|c| c.get("name").and_then(Json::as_str) == Some("serve.requests"))
            .and_then(|c| c.get("value").and_then(Json::as_num));
        assert_eq!(requests, Some(2.0), "spcf + stats both counted");
        assert!(j.get("pool").and_then(|p| p.get("sessions")).is_some());
    }

    #[test]
    fn mask_verb_returns_a_verified_report() {
        let _scope = tm_telemetry::Scope::enter();
        let core = ServeCore::new(ServeConfig::default());
        let req = format!(r#"{{"verb":"mask","blif":{}}}"#, Json::str(tiny_blif()).render());
        let frames = core.handle_payload(req.as_bytes());
        assert_eq!(frames.len(), 1);
        let j = Json::parse(&frames[0]).expect("mask report parses");
        assert_eq!(j.get("type").and_then(Json::as_str), Some("mask_report"));
        assert_eq!(j.get("verified"), Some(&Json::Bool(true)));
        assert_eq!(j.get("coverage").and_then(Json::as_num), Some(1.0));
    }

    #[test]
    fn unsorted_ladder_matches_pointwise_cold_runs() {
        // The server-path half of the ascending-ladder fix: a warm
        // pooled session fed an unsorted ladder must produce the same
        // frames as a cold core seeing each target in isolation.
        let _scope = tm_telemetry::Scope::enter();
        let warm = ServeCore::new(ServeConfig::default());
        let ladder = [0.9, 0.95, 0.5, 0.85, 0.45];
        for algorithm in ["short-path", "path-based", "node-based"] {
            let ladder_json = format!(
                "[{}]",
                ladder.iter().map(f64::to_string).collect::<Vec<_>>().join(",")
            );
            let frames = warm
                .handle_payload(spcf_request(&tiny_blif(), algorithm, &ladder_json).as_bytes());
            for (i, &point) in ladder.iter().enumerate() {
                let cold = ServeCore::new(ServeConfig::default());
                let cold_frames = cold.handle_payload(
                    spcf_request(&tiny_blif(), algorithm, &format!("[{point}]")).as_bytes(),
                );
                let mut warm_j = Json::parse(&frames[i]).expect("warm frame");
                let cold_j = Json::parse(&cold_frames[0]).expect("cold frame");
                // Only `seq` may differ (position in the ladder).
                if let Json::Obj(members) = &mut warm_j {
                    for (k, v) in members.iter_mut() {
                        if k == "seq" {
                            *v = Json::Num(0.0);
                        }
                    }
                }
                assert_eq!(
                    warm_j.render(),
                    cold_j.render(),
                    "{algorithm}@{point}: warm frame diverged from cold"
                );
            }
        }
        let snap = tm_telemetry::snapshot();
        assert!(
            snap.counter("spcf.session.rebuilds").unwrap_or(0) >= 1,
            "the ascending steps must have rebuilt engines"
        );
    }
}
