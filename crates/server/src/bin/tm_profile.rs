//! `tm-profile`: render and validate flight-recorder exports.
//!
//! ```text
//! tm-profile --addr HOST:PORT [--limit N] [--out FILE] [--check]
//! tm-profile FILE [--out FILE] [--check]
//! ```
//!
//! Pull mode connects to a running `tm-server`, sends a `trace` verb,
//! and reads back the Chrome trace-event export; file mode reads a
//! previously saved export (either the raw Chrome JSON or a whole
//! `trace` frame). Either way the tool prints a text phase/flame
//! report: per-phase latency totals across the recorder, plus a span
//! tree for each slow-request capture.
//!
//! `--check` validates the export instead of merely rendering it:
//! every event well-formed, spans properly nested per `(pid, tid)`,
//! event names drawn from the telemetry schema's known-event list, and
//! per-request phase durations summing to no more than the request's
//! wall time. The CI trace stage runs exactly this against a live
//! daemon. Exit status: 0 clean, 1 validation failure, 2 usage.

use std::net::TcpStream;
use tm_server::protocol::{read_frame, write_frame, DEFAULT_MAX_FRAME};
use tm_telemetry::flight::{PID_FLIGHT, PID_SLOW};
use tm_testkit::json::Json;

fn usage() -> ! {
    eprintln!(
        "usage: tm-profile (--addr HOST:PORT | FILE) [--limit N] [--out FILE] [--check]"
    );
    std::process::exit(2);
}

/// One parsed Chrome trace event (metadata rows excluded).
#[derive(Clone, Debug)]
struct Ev {
    name: String,
    ph: String,
    pid: u64,
    tid: u64,
    /// Microseconds, as exported.
    ts: f64,
    /// Microseconds; 0 for instants.
    dur: f64,
    trace_id: u64,
}

impl Ev {
    fn end(&self) -> f64 {
        self.ts + self.dur
    }
}

fn main() {
    let mut addr: Option<String> = None;
    let mut file: Option<String> = None;
    let mut limit: Option<usize> = None;
    let mut out: Option<String> = None;
    let mut check = false;

    let mut args = std::env::args();
    let _argv0 = args.next();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = Some(args.next().unwrap_or_else(|| usage())),
            "--limit" => {
                limit = Some(
                    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()),
                )
            }
            "--out" => out = Some(args.next().unwrap_or_else(|| usage())),
            "--check" => check = true,
            "--help" | "-h" => usage(),
            other if !other.starts_with('-') && file.is_none() => {
                file = Some(other.to_string())
            }
            other => {
                eprintln!("tm-profile: unknown flag {other}");
                usage();
            }
        }
    }
    if addr.is_some() == file.is_some() {
        eprintln!("tm-profile: need exactly one of --addr or FILE");
        usage();
    }

    let chrome = match &addr {
        Some(addr) => match pull_trace(addr, limit) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("tm-profile: {e}");
                std::process::exit(1);
            }
        },
        None => {
            let path = file.as_deref().unwrap_or_else(|| usage());
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("tm-profile: cannot read {path}: {e}");
                    std::process::exit(1);
                }
            };
            match Json::parse(&text) {
                Ok(j) => unwrap_frame(j),
                Err(e) => {
                    eprintln!("tm-profile: {path} is not JSON: {e}");
                    std::process::exit(1);
                }
            }
        }
    };

    if let Some(path) = &out {
        if let Err(e) = std::fs::write(path, chrome.render()) {
            eprintln!("tm-profile: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("tm-profile: wrote {path}");
    }

    let events = match collect_events(&chrome) {
        Ok(evs) => evs,
        Err(e) => {
            eprintln!("tm-profile: malformed export: {e}");
            std::process::exit(1);
        }
    };

    if check {
        match validate(&events) {
            Ok(summary) => println!("trace ok: {summary}"),
            Err(e) => {
                eprintln!("tm-profile: INVALID trace: {e}");
                std::process::exit(1);
            }
        }
    }
    print_report(&events);
}

/// Sends a `trace` verb to a live daemon and returns the Chrome JSON.
fn pull_trace(addr: &str, limit: Option<usize>) -> Result<Json, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let request = match limit {
        Some(n) => {
            Json::obj([("verb", Json::str("trace")), ("limit", Json::Num(n as f64))])
        }
        None => Json::obj([("verb", Json::str("trace"))]),
    };
    write_frame(&mut stream, request.render().as_bytes())
        .map_err(|e| format!("send trace request: {e}"))?;
    let payload = read_frame(&mut stream, DEFAULT_MAX_FRAME)
        .map_err(|e| format!("read trace frame: {e}"))?
        .ok_or("server closed before answering")?;
    let frame = Json::parse(
        std::str::from_utf8(&payload).map_err(|e| format!("frame is not UTF-8: {e}"))?,
    )
    .map_err(|e| format!("frame is not JSON: {e}"))?;
    match frame.get("type").and_then(Json::as_str) {
        Some("trace") => Ok(unwrap_frame(frame)),
        Some("error") => Err(format!(
            "server error: {}",
            frame.get("message").and_then(Json::as_str).unwrap_or("?")
        )),
        other => Err(format!("unexpected frame type {other:?}")),
    }
}

/// Accepts either a whole `trace` frame or the bare Chrome JSON.
fn unwrap_frame(j: Json) -> Json {
    if j.get("traceEvents").is_some() {
        return j;
    }
    match j.get("trace") {
        Some(inner) => inner.clone(),
        None => j,
    }
}

fn collect_events(chrome: &Json) -> Result<Vec<Ev>, String> {
    let raw = chrome
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut events = Vec::with_capacity(raw.len());
    for (i, e) in raw.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        if ph == "M" {
            continue; // process_name metadata
        }
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        let num = |field: &str| {
            e.get(field)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("event {i} ({name}): missing number `{field}`"))
        };
        let dur = if ph == "X" { num("dur")? } else { 0.0 };
        events.push(Ev {
            name: name.to_string(),
            ph: ph.to_string(),
            pid: num("pid")? as u64,
            tid: num("tid")? as u64,
            ts: num("ts")?,
            dur,
            trace_id: e
                .get("args")
                .and_then(|a| a.get("trace"))
                .and_then(Json::as_num)
                .unwrap_or(0.0) as u64,
        });
    }
    Ok(events)
}

/// Slack allowed when comparing microsecond floats: one nanosecond.
const EPS_US: f64 = 0.001;

fn validate(events: &[Ev]) -> Result<String, String> {
    // 1. Every event well-formed: known phase kind, finite non-negative
    //    timestamps, names from the telemetry schema.
    for ev in events {
        if ev.ph != "X" && ev.ph != "i" {
            return Err(format!("{}: unexpected ph `{}`", ev.name, ev.ph));
        }
        if !ev.ts.is_finite() || ev.ts < 0.0 || !ev.dur.is_finite() || ev.dur < 0.0 {
            return Err(format!("{}: non-finite or negative ts/dur", ev.name));
        }
        if !tm_telemetry::schema::is_known_event(&ev.name) {
            return Err(format!("{}: not a schema-known event name", ev.name));
        }
        if ev.pid != PID_FLIGHT && ev.pid != PID_SLOW {
            return Err(format!("{}: unknown pid {}", ev.name, ev.pid));
        }
    }

    // 2. Spans nest per (pid, tid): sorted by start (ties: longer
    //    first), each span either starts after the enclosing one ends
    //    or lies entirely inside it.
    let mut lanes: Vec<(u64, u64)> = events.iter().map(|e| (e.pid, e.tid)).collect();
    lanes.sort_unstable();
    lanes.dedup();
    for (pid, tid) in lanes {
        let mut lane: Vec<&Ev> = events
            .iter()
            .filter(|e| e.pid == pid && e.tid == tid && e.ph == "X")
            .collect();
        lane.sort_by(|a, b| {
            a.ts.partial_cmp(&b.ts)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.dur.partial_cmp(&a.dur).unwrap_or(std::cmp::Ordering::Equal))
        });
        let mut stack: Vec<&Ev> = Vec::new();
        for ev in lane {
            while let Some(top) = stack.last() {
                if ev.ts >= top.end() - EPS_US {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(top) = stack.last() {
                if ev.end() > top.end() + EPS_US {
                    return Err(format!(
                        "pid {pid} tid {tid}: `{}` [{:.3}..{:.3}] straddles `{}` \
                         [{:.3}..{:.3}] instead of nesting",
                        ev.name,
                        ev.ts,
                        ev.end(),
                        top.name,
                        top.ts,
                        top.end()
                    ));
                }
            }
            stack.push(ev);
        }
    }

    // 3. Per request: the serve.* phase durations sum to no more than
    //    the root span's wall time. (Phases are disjoint siblings of
    //    one root, so the sum bound is implied by nesting — checking it
    //    directly catches double-counted or mis-parented phases.)
    let mut roots = 0usize;
    let mut ids: Vec<(u64, u64)> = events
        .iter()
        .filter(|e| e.trace_id != 0)
        .map(|e| (e.pid, e.trace_id))
        .collect();
    ids.sort_unstable();
    ids.dedup();
    for (pid, id) in ids {
        let in_trace = |e: &&Ev| e.pid == pid && e.trace_id == id;
        let Some(root) = events
            .iter()
            .filter(in_trace)
            .find(|e| e.name == "serve.request" && e.ph == "X")
        else {
            continue; // request still open (or root rotated out of the ring)
        };
        roots += 1;
        let phase_sum: f64 = events
            .iter()
            .filter(in_trace)
            .filter(|e| e.ph == "X" && e.name.starts_with("serve.") && e.name != "serve.request")
            .map(|e| e.dur)
            .sum();
        if phase_sum > root.dur + EPS_US {
            return Err(format!(
                "trace {id}: phase durations sum to {phase_sum:.3}us, \
                 above the request wall time {:.3}us",
                root.dur
            ));
        }
    }

    Ok(format!("{} events, {} complete requests, spans nest, sums bounded", events.len(), roots))
}

fn print_report(events: &[Ev]) {
    // Phase totals across the live recorder (pid 1): the flat profile.
    let mut totals: Vec<(String, u64, f64, f64)> = Vec::new(); // name, count, total, max
    for ev in events.iter().filter(|e| e.pid == PID_FLIGHT && e.ph == "X") {
        match totals.iter_mut().find(|t| t.0 == ev.name) {
            Some(t) => {
                t.1 += 1;
                t.2 += ev.dur;
                t.3 = t.3.max(ev.dur);
            }
            None => totals.push((ev.name.clone(), 1, ev.dur, ev.dur)),
        }
    }
    totals.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
    println!("== phase totals (live rings) ==");
    println!("{:<24} {:>8} {:>12} {:>12} {:>12}", "phase", "count", "total_us", "mean_us", "max_us");
    for (name, count, total, max) in &totals {
        println!(
            "{:<24} {:>8} {:>12.1} {:>12.1} {:>12.1}",
            name,
            count,
            total,
            total / *count as f64,
            max
        );
    }
    let instants = events.iter().filter(|e| e.ph == "i").count();
    if instants > 0 {
        println!("({instants} instant events not shown in totals)");
    }

    // Slow captures (pid 2): one span tree per captured request.
    let mut slow_ids: Vec<u64> = events
        .iter()
        .filter(|e| e.pid == PID_SLOW && e.trace_id != 0)
        .map(|e| e.trace_id)
        .collect();
    slow_ids.sort_unstable();
    slow_ids.dedup();
    if slow_ids.is_empty() {
        return;
    }
    println!("\n== slow requests ({}) ==", slow_ids.len());
    for id in slow_ids {
        let mut spans: Vec<&Ev> = events
            .iter()
            .filter(|e| e.pid == PID_SLOW && e.trace_id == id && e.ph == "X")
            .collect();
        spans.sort_by(|a, b| {
            a.ts.partial_cmp(&b.ts)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.dur.partial_cmp(&a.dur).unwrap_or(std::cmp::Ordering::Equal))
        });
        let wall = spans
            .iter()
            .find(|e| e.name == "serve.request")
            .map(|e| e.dur)
            .unwrap_or(0.0);
        println!("-- trace {id}: {wall:.1}us wall --");
        // Indent by nesting depth within the capture's own timeline.
        let mut stack: Vec<f64> = Vec::new(); // end times
        for ev in spans {
            while let Some(&end) = stack.last() {
                if ev.ts >= end - EPS_US {
                    stack.pop();
                } else {
                    break;
                }
            }
            println!(
                "{:indent$}{:<24} {:>12.1}us",
                "",
                ev.name,
                ev.dur,
                indent = 2 * stack.len()
            );
            stack.push(ev.end());
        }
    }
}
