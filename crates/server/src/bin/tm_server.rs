//! The `tm-server` daemon: masking-as-a-service over TCP.
//!
//! ```text
//! tm-server [--addr HOST:PORT] [--workers N] [--pool N] [--admit N]
//!           [--max-steps N] [--read-timeout-ms N] [--slow-ms N]
//! ```
//!
//! Binds the address (port 0 picks an ephemeral port), prints the
//! bound address as `listening ADDR` on stdout, and serves until
//! killed. The flight recorder is always on in the daemon (`--slow-ms`
//! sets the slow-request capture threshold; pull an export with the
//! `trace` verb or `tm-profile`). See DESIGN.md §10 for the protocol
//! and the README for a quickstart with the `loadgen` client.

use std::io::Write;
use std::sync::Arc;
use std::time::Duration;
use tm_resilience::Budget;
use tm_server::serve::{ServeConfig, ServeCore};

fn usage() -> ! {
    eprintln!(
        "usage: tm-server [--addr HOST:PORT] [--workers N] [--pool N] [--admit N] \
         [--max-steps N] [--read-timeout-ms N] [--slow-ms N]"
    );
    std::process::exit(2);
}

fn parse_flag<T: std::str::FromStr>(args: &mut std::env::Args, flag: &str) -> T {
    match args.next().and_then(|v| v.parse().ok()) {
        Some(v) => v,
        None => {
            eprintln!("tm-server: {flag} needs a value");
            usage();
        }
    }
}

fn main() {
    let mut addr = "127.0.0.1:7177".to_string();
    let mut workers: Option<usize> = None;
    let mut pool: Option<usize> = None;
    let mut admit: Option<usize> = None;
    let mut max_steps: Option<u64> = None;
    let mut read_timeout_ms: Option<u64> = None;
    let mut slow_ms: Option<u64> = None;

    let mut args = std::env::args();
    let _argv0 = args.next();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = parse_flag(&mut args, "--addr"),
            "--workers" => workers = Some(parse_flag(&mut args, "--workers")),
            "--pool" => pool = Some(parse_flag(&mut args, "--pool")),
            "--admit" => admit = Some(parse_flag(&mut args, "--admit")),
            "--max-steps" => max_steps = Some(parse_flag(&mut args, "--max-steps")),
            "--read-timeout-ms" => {
                read_timeout_ms = Some(parse_flag(&mut args, "--read-timeout-ms"))
            }
            "--slow-ms" => slow_ms = Some(parse_flag(&mut args, "--slow-ms")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("tm-server: unknown flag {other}");
                usage();
            }
        }
    }

    let mut config = ServeConfig::for_workers(workers.unwrap_or(4));
    if let Some(n) = pool {
        config.pool_capacity = n;
    }
    if let Some(n) = admit {
        config.admit = n;
    }
    if let Some(n) = max_steps {
        config.budget = Budget::unlimited().with_max_steps(n);
    }
    if let Some(ms) = read_timeout_ms {
        config.read_timeout = Duration::from_millis(ms);
    }
    if let Some(ms) = slow_ms {
        config.slow_threshold = Duration::from_millis(ms);
    }

    // The daemon always records: the flight recorder's rings are
    // fixed-size and overwrite-oldest, so "always on" costs bounded
    // memory and the `trace` verb always has something to export.
    tm_telemetry::flight::force_recording(true);
    let core = Arc::new(ServeCore::new(config));
    let handle = match tm_server::net::serve(core, addr.as_str()) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("tm-server: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("listening {}", handle.addr());
    let _ = std::io::stdout().flush();
    eprintln!(
        "tm-server: {} workers, pool {}, admitting {} (send a STATS frame for metrics)",
        config.workers, config.pool_capacity, config.admit
    );
    loop {
        std::thread::park();
    }
}
