//! Deterministic synthetic-BLIF generation for serving workloads.
//!
//! The load generator, the soak test, and the protocol fuzzer all need
//! a stream of *distinct but valid* circuits: same seed, same bytes,
//! so runs are reproducible and the fuzz corpus is stable. Circuits
//! are acyclic by construction — every `.names` node reads only
//! signals declared earlier in the file.

use tm_testkit::rng::Rng;

/// Renders a deterministic synthetic BLIF netlist.
///
/// `inputs` primary inputs feed `nodes` internal `.names` nodes (2–3
/// fan-ins each, drawn from earlier signals), and the last up-to-four
/// nodes become primary outputs. Both knobs are floored at sane
/// minimums, so every seed yields a parseable, mappable circuit.
pub fn synthetic_blif(seed: u64, inputs: usize, nodes: usize) -> String {
    let inputs = inputs.clamp(2, 26);
    let nodes = nodes.max(2);
    let mut rng = Rng::seed_from_u64(seed ^ 0x5e17_b11f);

    let mut signals: Vec<String> = (0..inputs).map(|i| format!("i{i}")).collect();
    let mut body = String::new();
    for n in 0..nodes {
        let fanin = 2 + usize::from(rng.gen_bool(0.4));
        // Bias toward recent signals so depth actually grows.
        let mut picks = Vec::with_capacity(fanin);
        while picks.len() < fanin {
            let hi = signals.len();
            let lo = hi.saturating_sub(1 + rng.gen_range(0..inputs.max(4)));
            let k = rng.gen_range(lo..hi);
            if !picks.contains(&k) {
                picks.push(k);
            }
        }
        let name = format!("n{n}");
        body.push_str(".names");
        for &k in &picks {
            body.push(' ');
            body.push_str(&signals[k]);
        }
        body.push(' ');
        body.push_str(&name);
        body.push('\n');
        // A random non-trivial cover: each row sets each literal to
        // 0/1/- and outputs 1. At least one row, no duplicate rows
        // needed for validity.
        let rows = 1 + rng.gen_range(0..fanin);
        for _ in 0..rows {
            for _ in 0..fanin {
                body.push(match rng.gen_range(0..3u32) {
                    0 => '0',
                    1 => '1',
                    _ => '-',
                });
            }
            body.push_str(" 1\n");
        }
        signals.push(name);
    }

    let num_outputs = nodes.min(4).max(1);
    let outputs: Vec<&str> = signals[signals.len() - num_outputs..]
        .iter()
        .map(String::as_str)
        .collect();

    let mut text = format!(".model synth_{seed:016x}\n.inputs");
    for i in 0..inputs {
        text.push_str(&format!(" i{i}"));
    }
    text.push_str("\n.outputs");
    for o in &outputs {
        text.push(' ');
        text.push_str(o);
    }
    text.push('\n');
    text.push_str(&body);
    text.push_str(".end\n");
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_netlist::blif::parse_blif;

    #[test]
    fn generated_blif_is_deterministic_and_parseable() {
        for seed in 0..24u64 {
            let a = synthetic_blif(seed, 8, 20);
            let b = synthetic_blif(seed, 8, 20);
            assert_eq!(a, b, "seed {seed} must be reproducible");
            let sop = parse_blif(&a).expect("generated BLIF parses");
            assert_eq!(sop.inputs().len(), 8);
            assert!(!sop.outputs().is_empty());
        }
    }

    #[test]
    fn distinct_seeds_give_distinct_circuits() {
        let a = synthetic_blif(1, 8, 20);
        let b = synthetic_blif(2, 8, 20);
        assert_ne!(a, b);
    }
}
