//! The TCP front of the daemon: acceptor, admission gate, hand-rolled
//! worker pool, per-connection framing loop, and clean shutdown.
//!
//! The acceptor owns admission control: each connection must win a
//! [`tm_resilience::Permit`] from the core's gate *before* it is
//! queued, so a saturated server sheds at accept time with a typed
//! `overloaded` frame instead of queueing unboundedly. The permit
//! travels with the connection and releases on drop — including on
//! worker panic paths — so the gate can never leak capacity.
//!
//! Error discipline inside a connection (satellite #1's fuzz battery
//! pins all of this):
//!
//! - payload-level failures (bad JSON, bad BLIF, unknown verb,
//!   budget exhaustion) answer with a typed error frame and keep the
//!   connection open;
//! - framing-level failures (oversized declared length, empty frame,
//!   read timeout) answer where possible and close;
//! - a truncated frame or dropped socket just closes;
//! - a panic anywhere in request handling is caught, answered as a
//!   typed `internal` frame, and the worker lives on. The fuzzer
//!   asserts the `internal` code never actually appears — the catch
//!   is a containment boundary, not an expected path.

use crate::pool::lock_recover;
use crate::protocol::{error_frame, read_frame, write_frame, FrameError};
use crate::serve::ServeCore;
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;
use tm_resilience::Permit;

/// Pending accepted connections, each carrying its admission permit
/// and the instant it was queued (so the first request can attribute
/// its queue wait in the flight recorder).
struct ConnQueue {
    queue: Mutex<VecDeque<(TcpStream, Permit, Instant)>>,
    available: Condvar,
}

impl ConnQueue {
    fn push(&self, conn: (TcpStream, Permit, Instant)) {
        lock_recover(&self.queue).push_back(conn);
        self.available.notify_one();
    }

    fn pop(&self, shutdown: &AtomicBool) -> Option<(TcpStream, Permit, Instant)> {
        let mut q = lock_recover(&self.queue);
        loop {
            if let Some(conn) = q.pop_front() {
                return Some(conn);
            }
            if shutdown.load(Ordering::SeqCst) {
                return None;
            }
            q = self.available.wait(q).unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

/// A running daemon: its bound address and the threads behind it.
/// Dropping the handle leaves the daemon running (the binary relies on
/// that); call [`ServerHandle::shutdown`] for an orderly stop.
pub struct ServerHandle {
    addr: SocketAddr,
    core: Arc<ServeCore>,
    shutdown: Arc<AtomicBool>,
    queue: Arc<ConnQueue>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The serving core (tests read pool stats through it).
    pub fn core(&self) -> &Arc<ServeCore> {
        &self.core
    }

    /// Stops accepting, drains queued connections, and joins every
    /// thread. In-flight connections finish their current frame loop.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the acceptor out of its blocking accept.
        let _ = TcpStream::connect(self.addr);
        self.queue.available.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Binds `addr` and starts the acceptor plus `config.workers` worker
/// threads. Returns once the listener is bound; serving continues in
/// the background until [`ServerHandle::shutdown`].
pub fn serve(core: Arc<ServeCore>, addr: impl ToSocketAddrs) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let queue = Arc::new(ConnQueue { queue: Mutex::new(VecDeque::new()), available: Condvar::new() });

    let mut threads = Vec::with_capacity(core.config().workers + 1);
    for k in 0..core.config().workers {
        let core = Arc::clone(&core);
        let queue = Arc::clone(&queue);
        let shutdown = Arc::clone(&shutdown);
        threads.push(
            std::thread::Builder::new()
                .name(format!("tm-serve-{k}"))
                .spawn(move || worker_loop(&core, &queue, &shutdown))?,
        );
    }
    {
        let core = Arc::clone(&core);
        let queue = Arc::clone(&queue);
        let shutdown = Arc::clone(&shutdown);
        threads.push(
            std::thread::Builder::new()
                .name("tm-accept".to_string())
                .spawn(move || accept_loop(&core, &listener, &queue, &shutdown))?,
        );
    }
    Ok(ServerHandle { addr: bound, core, shutdown, queue, threads })
}

fn accept_loop(
    core: &ServeCore,
    listener: &TcpListener,
    queue: &ConnQueue,
    shutdown: &AtomicBool,
) {
    tm_telemetry::set_thread_enabled(Some(true));
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match core.gate().try_enter() {
            Some(permit) => queue.push((stream, permit, Instant::now())),
            None => {
                // Full house: typed rejection at accept time, then
                // close. Best-effort — a client that already left
                // doesn't need the frame.
                tm_telemetry::counter_add("serve.shed", 1);
                let mut stream = stream;
                let _ = stream.set_write_timeout(Some(std::time::Duration::from_millis(200)));
                let _ = write_frame(
                    &mut stream,
                    error_frame("overloaded", "admission gate full; retry later").as_bytes(),
                );
                core.fold_local_telemetry();
            }
        }
    }
}

fn worker_loop(core: &ServeCore, queue: &ConnQueue, shutdown: &AtomicBool) {
    tm_telemetry::set_thread_enabled(Some(true));
    while let Some((stream, permit, queued_at)) = queue.pop(shutdown) {
        let queue_ns = queued_at.elapsed().as_nanos() as u64;
        serve_connection(core, stream, queue_ns);
        drop(permit);
        core.fold_local_telemetry();
    }
}

fn serve_connection(core: &ServeCore, mut stream: TcpStream, queue_ns: u64) {
    let config = *core.config();
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_nodelay(true);
    // Only the first request on a connection waited in the accept
    // queue; later frames arrive on an already-claimed worker.
    let mut pending_queue_ns = queue_ns;
    loop {
        match read_frame(&mut stream, config.max_frame) {
            Ok(None) => return, // clean EOF between frames
            Ok(Some(payload)) => {
                let queue_ns = std::mem::take(&mut pending_queue_ns);
                let frames = match catch_unwind(AssertUnwindSafe(|| {
                    core.handle_payload_queued(&payload, queue_ns)
                })) {
                    Ok(frames) => frames,
                    Err(_) => {
                        tm_telemetry::counter_add("serve.errors", 1);
                        vec![error_frame("internal", "request handling panicked")]
                    }
                };
                for frame in &frames {
                    if write_frame(&mut stream, frame.as_bytes()).is_err() {
                        return; // client went away mid-stream
                    }
                }
            }
            Err(FrameError::Empty) => {
                // Zero-length frames are a protocol violation but the
                // stream is still in sync: answer and keep going.
                if write_frame(
                    &mut stream,
                    error_frame("protocol", "empty frame").as_bytes(),
                )
                .is_err()
                {
                    return;
                }
            }
            Err(e @ FrameError::TooLarge { .. }) => {
                // The declared length is unreadable garbage or an
                // attack; we cannot resynchronize, so answer and close.
                let _ = write_frame(&mut stream, error_frame("protocol", e.to_string()).as_bytes());
                return;
            }
            Err(e @ FrameError::Io(_)) if e.is_timeout() => {
                let _ = write_frame(
                    &mut stream,
                    error_frame("timeout", "read timed out mid-frame").as_bytes(),
                );
                return;
            }
            Err(_) => return, // truncated frame or dropped socket
        }
    }
}
