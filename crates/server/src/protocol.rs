//! The wire protocol of the masking service (DESIGN.md §10).
//!
//! Every message — request and response — is one *frame*: a 4-byte
//! big-endian payload length followed by that many bytes of UTF-8 JSON.
//! The length prefix makes message boundaries explicit on a byte
//! stream, so a reader always knows whether it is mid-frame (and can
//! classify a dropped connection as [`FrameError::Truncated`]) or at a
//! boundary (clean EOF). A declared length above the reader's cap is
//! rejected *before* any allocation — an adversarial 4 GiB prefix costs
//! the server four bytes of reading, not an allocation.
//!
//! Requests are JSON objects dispatched on a `verb` field:
//!
//! ```json
//! {"verb": "spcf", "blif": "...", "algorithm": "short-path",
//!  "targets": [0.95, 0.85], "relative": true}
//! {"verb": "mask", "blif": "..."}
//! {"verb": "stats"}
//! {"verb": "trace", "limit": 2000}
//! ```
//!
//! Responses are one or more frames typed by a `type` field:
//! `report` (one per ladder point, streamed in request order), `done`
//! (terminates a successful `spcf` ladder), `mask_report`, `stats`,
//! `trace` (a Chrome-trace-event export of the flight recorder), and
//! `error` with a typed `code` (`parse`, `invalid`, `unsupported`,
//! `exhausted`, `overloaded`, `protocol`, `timeout`, `internal`).
//! Malformed *payloads* keep the connection open (the frame boundary is
//! still known); malformed *framing* closes it.

use std::io::{Read, Write};
use tm_resilience::{TmError, TmErrorKind};
use tm_spcf::Algorithm;
use tm_testkit::json::Json;

/// Default cap on a frame's declared payload length (4 MiB — a BLIF
/// netlist far larger than anything the engines can analyze online).
pub const DEFAULT_MAX_FRAME: u32 = 4 << 20;

/// Longest Δ_y ladder accepted in one request.
pub const MAX_LADDER: usize = 64;

/// Why a frame could not be read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The peer disconnected mid-frame (inside the length prefix or the
    /// payload).
    Truncated,
    /// The declared payload length exceeds the reader's cap.
    TooLarge {
        /// Length the prefix declared.
        declared: u32,
        /// The reader's cap.
        max: u32,
    },
    /// A zero-length frame (carries no request; the stream is suspect).
    Empty,
    /// Any other I/O failure; read timeouts surface as
    /// `WouldBlock`/`TimedOut` here.
    Io(std::io::ErrorKind),
}

impl FrameError {
    /// Whether this error is a read timeout rather than a broken peer.
    pub fn is_timeout(self) -> bool {
        matches!(
            self,
            FrameError::Io(std::io::ErrorKind::WouldBlock)
                | FrameError::Io(std::io::ErrorKind::TimedOut)
        )
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "connection dropped mid-frame"),
            FrameError::TooLarge { declared, max } => {
                write!(f, "declared frame length {declared} exceeds cap {max}")
            }
            FrameError::Empty => write!(f, "empty frame"),
            FrameError::Io(kind) => write!(f, "i/o failure reading frame: {kind}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Reads one frame. `Ok(None)` is a clean EOF at a frame boundary;
/// `Ok(Some(payload))` is a complete frame. Never allocates more than
/// `max` bytes.
pub fn read_frame(r: &mut impl Read, max: u32) -> Result<Option<Vec<u8>>, FrameError> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < prefix.len() {
        match r.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e.kind())),
        }
    }
    let declared = u32::from_be_bytes(prefix);
    if declared == 0 {
        return Err(FrameError::Empty);
    }
    if declared > max {
        return Err(FrameError::TooLarge { declared, max });
    }
    let mut payload = vec![0u8; declared as usize];
    let mut got = 0;
    while got < payload.len() {
        match r.read(&mut payload[got..]) {
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e.kind())),
        }
    }
    Ok(Some(payload))
}

/// Writes one frame (length prefix + payload) and flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame payload exceeds u32")
    })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// A parsed request, dispatched on the JSON `verb`.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Evaluate the SPCF of every critical output across a Δ_y ladder.
    Spcf {
        /// BLIF source of the circuit.
        blif: String,
        /// Requested engine (the load ladder may degrade it).
        algorithm: Algorithm,
        /// Target ladder, in request order.
        targets: Vec<f64>,
        /// When true, each target is a fraction of the circuit's Δ.
        relative: bool,
    },
    /// Run the full masking synthesis + verification flow.
    Mask {
        /// BLIF source of the circuit.
        blif: String,
    },
    /// Return the server's telemetry snapshot and pool statistics.
    Stats,
    /// Export the flight recorder as Chrome trace-event JSON.
    Trace {
        /// Cap on exported events (newest kept); `None` uses the
        /// server default.
        limit: Option<usize>,
    },
}

/// Parses an algorithm name as accepted on the wire (the `Display`
/// forms plus common short spellings).
pub fn parse_algorithm(name: &str) -> Option<Algorithm> {
    match name {
        "short-path" | "short_path" | "short-path-based" | "exact" => Some(Algorithm::ShortPath),
        "path-based" | "path_based" => Some(Algorithm::PathBased),
        "node-based" | "node_based" => Some(Algorithm::NodeBased),
        "conservative" => Some(Algorithm::Conservative),
        _ => None,
    }
}

impl Request {
    /// Parses a frame payload into a request. Every failure is a typed
    /// [`TmError`] the server renders as an `error` frame — adversarial
    /// payloads must never panic or hang.
    pub fn parse(payload: &[u8]) -> Result<Request, TmError> {
        let text = std::str::from_utf8(payload)
            .map_err(|e| TmError::parse(0, format!("payload is not UTF-8: {e}")))?;
        let json = Json::parse(text)
            .map_err(|e| TmError::parse(0, format!("payload is not JSON: {e}")))?;
        let verb = json
            .get("verb")
            .and_then(Json::as_str)
            .ok_or_else(|| TmError::invalid_input("request is missing a string `verb`"))?;
        match verb {
            "stats" => Ok(Request::Stats),
            "trace" => {
                let limit = match json.get("limit") {
                    None | Some(Json::Null) => None,
                    Some(j) => {
                        let v = j.as_num().ok_or_else(|| {
                            TmError::invalid_input("`limit` must be a number")
                        })?;
                        if !v.is_finite() || v < 1.0 || v.fract() != 0.0 {
                            return Err(TmError::invalid_input(format!(
                                "`limit` must be a positive integer, got {v}"
                            )));
                        }
                        Some(v as usize)
                    }
                };
                Ok(Request::Trace { limit })
            }
            "mask" => Ok(Request::Mask { blif: required_blif(&json)? }),
            "spcf" => {
                let blif = required_blif(&json)?;
                let algorithm = match json.get("algorithm") {
                    None => Algorithm::ShortPath,
                    Some(j) => {
                        let name = j.as_str().ok_or_else(|| {
                            TmError::invalid_input("`algorithm` must be a string")
                        })?;
                        parse_algorithm(name).ok_or_else(|| {
                            TmError::unsupported(format!("unknown algorithm `{name}`"))
                        })?
                    }
                };
                let relative = match json.get("relative") {
                    None => false,
                    Some(Json::Bool(b)) => *b,
                    Some(_) => {
                        return Err(TmError::invalid_input("`relative` must be a boolean"))
                    }
                };
                let raw = json
                    .get("targets")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| TmError::invalid_input("`targets` must be an array"))?;
                if raw.is_empty() {
                    return Err(TmError::invalid_input("`targets` must not be empty"));
                }
                if raw.len() > MAX_LADDER {
                    return Err(TmError::invalid_input(format!(
                        "`targets` has {} points; the ladder cap is {MAX_LADDER}",
                        raw.len()
                    )));
                }
                let mut targets = Vec::with_capacity(raw.len());
                for t in raw {
                    let v = t.as_num().ok_or_else(|| {
                        TmError::invalid_input("`targets` entries must be numbers")
                    })?;
                    if !v.is_finite() || v <= 0.0 {
                        return Err(TmError::invalid_input(format!(
                            "target {v} is not a finite positive delay"
                        )));
                    }
                    if relative && v > 1.0 {
                        return Err(TmError::invalid_input(format!(
                            "relative target {v} exceeds 1.0 (the critical path)"
                        )));
                    }
                    targets.push(v);
                }
                Ok(Request::Spcf { blif, algorithm, targets, relative })
            }
            other => Err(TmError::unsupported(format!("unknown verb `{other}`"))),
        }
    }
}

fn required_blif(json: &Json) -> Result<String, TmError> {
    json.get("blif")
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| TmError::invalid_input("request is missing a string `blif`"))
}

/// The wire code of a typed error.
pub fn error_code(err: &TmError) -> &'static str {
    match err.kind() {
        TmErrorKind::Exhausted(_) => "exhausted",
        TmErrorKind::Parse { .. } => "parse",
        TmErrorKind::InvalidInput(_) => "invalid",
        TmErrorKind::Unsupported(_) => "unsupported",
    }
}

/// Renders an `error` frame payload from a code and message.
pub fn error_frame(code: &str, message: impl Into<String>) -> String {
    Json::obj([
        ("type", Json::str("error")),
        ("code", Json::str(code)),
        ("message", Json::str(message)),
    ])
    .render()
}

/// Renders an `error` frame payload from a typed error.
pub fn error_frame_for(err: &TmError) -> String {
    error_frame(error_code(err), err.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"verb\":\"stats\"}").expect("write");
        write_frame(&mut buf, b"x").expect("write");
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r, DEFAULT_MAX_FRAME).expect("frame 1"),
            Some(b"{\"verb\":\"stats\"}".to_vec())
        );
        assert_eq!(read_frame(&mut r, DEFAULT_MAX_FRAME).expect("frame 2"), Some(b"x".to_vec()));
        assert_eq!(read_frame(&mut r, DEFAULT_MAX_FRAME).expect("eof"), None, "clean EOF");
    }

    #[test]
    fn truncation_oversize_and_empty_are_typed() {
        // EOF inside the length prefix.
        let mut r: &[u8] = &[0, 0];
        assert_eq!(read_frame(&mut r, 64), Err(FrameError::Truncated));
        // EOF inside the payload.
        let mut r: &[u8] = &[0, 0, 0, 5, b'a', b'b'];
        assert_eq!(read_frame(&mut r, 64), Err(FrameError::Truncated));
        // Declared length above the cap: rejected before allocating.
        let mut r: &[u8] = &[0xFF, 0xFF, 0xFF, 0xFF];
        assert_eq!(
            read_frame(&mut r, 64),
            Err(FrameError::TooLarge { declared: u32::MAX, max: 64 })
        );
        // Zero-length frame.
        let mut r: &[u8] = &[0, 0, 0, 0];
        assert_eq!(read_frame(&mut r, 64), Err(FrameError::Empty));
    }

    #[test]
    fn parses_the_three_verbs() {
        let req = Request::parse(
            br#"{"verb":"spcf","blif":".model m\n.end\n","algorithm":"node-based",
                "targets":[0.95,0.85],"relative":true}"#,
        )
        .expect("spcf parses");
        assert_eq!(
            req,
            Request::Spcf {
                blif: ".model m\n.end\n".to_string(),
                algorithm: Algorithm::NodeBased,
                targets: vec![0.95, 0.85],
                relative: true,
            }
        );
        assert_eq!(Request::parse(br#"{"verb":"stats"}"#).expect("stats"), Request::Stats);
        assert!(matches!(
            Request::parse(br#"{"verb":"mask","blif":"x"}"#).expect("mask"),
            Request::Mask { .. }
        ));
    }

    #[test]
    fn parses_the_trace_verb() {
        assert_eq!(
            Request::parse(br#"{"verb":"trace"}"#).expect("bare trace"),
            Request::Trace { limit: None }
        );
        assert_eq!(
            Request::parse(br#"{"verb":"trace","limit":500}"#).expect("with limit"),
            Request::Trace { limit: Some(500) }
        );
        for bad in [
            &br#"{"verb":"trace","limit":"many"}"#[..],
            br#"{"verb":"trace","limit":0}"#,
            br#"{"verb":"trace","limit":-3}"#,
            br#"{"verb":"trace","limit":1.5}"#,
        ] {
            let err = Request::parse(bad).expect_err("bad limit must fail");
            assert_eq!(error_code(&err), "invalid", "{}", String::from_utf8_lossy(bad));
        }
    }

    #[test]
    fn rejects_malformed_requests_with_typed_errors() {
        let cases: &[(&[u8], &str)] = &[
            (b"\xFF\xFE", "parse"),                                   // not UTF-8
            (b"{nope", "parse"),                                      // not JSON
            (br#"{"no":"verb"}"#, "invalid"),                         // missing verb
            (br#"{"verb":"dance"}"#, "unsupported"),                  // unknown verb
            (br#"{"verb":"spcf","blif":"x","targets":[]}"#, "invalid"), // empty ladder
            (br#"{"verb":"spcf","blif":"x","targets":[-1]}"#, "invalid"), // negative target
            (
                br#"{"verb":"spcf","blif":"x","targets":[1],"algorithm":"magic"}"#,
                "unsupported",
            ),
            (
                br#"{"verb":"spcf","blif":"x","targets":[2.0],"relative":true}"#,
                "invalid", // relative target > 1
            ),
        ];
        for (payload, want) in cases {
            let err = Request::parse(payload).expect_err("must fail");
            assert_eq!(error_code(&err), *want, "payload {:?}", String::from_utf8_lossy(payload));
        }
        let huge = format!(
            r#"{{"verb":"spcf","blif":"x","targets":[{}]}}"#,
            vec!["1.0"; MAX_LADDER + 1].join(",")
        );
        let err = Request::parse(huge.as_bytes()).expect_err("ladder cap");
        assert_eq!(error_code(&err), "invalid");
    }
}
