//! `tm-server` — masking-as-a-service for the `timemask` workspace.
//!
//! A long-running TCP daemon that accepts BLIF netlists plus `Δ_y`
//! target ladders and streams back SPCF / masking reports, keeping a
//! pool of warm per-circuit sessions so repeated analyses of the same
//! design reuse BDD managers and memo tables instead of rebuilding
//! them (DESIGN.md §10). Std-only, like the rest of the workspace:
//! the server is a hand-rolled thread pool over `std::net`, the wire
//! format is length-prefixed JSON rendered by `tm_testkit::json`.
//!
//! Layering, bottom up:
//!
//! - [`protocol`]: the frame codec (u32 big-endian length prefix +
//!   UTF-8 JSON payload) and typed request parsing. Malformed input of
//!   every kind maps to a typed error frame, never a panic.
//! - [`pool`]: [`pool::PooledSession`] (a circuit's BDD manager, STA,
//!   and per-algorithm engine slots) and [`pool::SessionPool`] (strict
//!   LRU keyed by an FNV-1a hash of the canonicalized BLIF).
//! - [`serve`]: [`serve::ServeCore`], the transport-free request
//!   engine — verb dispatch, request coalescing, the degradation
//!   ladder as graceful load-shedding, and the `STATS` aggregate.
//! - [`net`]: the TCP front — acceptor, admission gate, worker pool,
//!   per-connection framing loop, and clean shutdown.
//! - [`gen`]: a deterministic synthetic-BLIF generator shared by the
//!   load generator and the serving test battery.
//!
//! Start a daemon in-process with [`net::serve`]; the `tm-server`
//! binary wraps it with flag parsing for the CLI (see the README
//! quickstart).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod net;
pub mod pool;
pub mod protocol;
pub mod serve;

pub use net::{serve, ServerHandle};
pub use pool::{PoolStats, PooledSession, SessionPool};
pub use protocol::{read_frame, write_frame, FrameError, Request, DEFAULT_MAX_FRAME};
pub use serve::{ServeConfig, ServeCore};
