//! The warm-session pool: reusable per-circuit engine state keyed by
//! netlist hash, with LRU eviction (DESIGN.md §10).
//!
//! A [`PooledSession`] is the owning counterpart of
//! [`tm_spcf::WarmSession`]: where the borrow-based session lives
//! inside one call frame, the pooled session owns its netlist, BDD
//! manager, gate primes, global functions, and one engine per
//! algorithm, so it can sit in a long-lived pool and serve request
//! after request. Reuse preserves the warm-session contract:
//!
//! - the manager, primes, and globals are target-independent and are
//!   always reused;
//! - each algorithm's engine is reused across *descending* Δ_y steps
//!   (the monotonic-memo fast path) and **rebuilt** on an ascending
//!   step — the server-path half of the unsorted-ladder fix, mirroring
//!   `WarmSession`;
//! - a budget-exhausted or panicked computation discards the engine
//!   (its prepared state may be partial), never the session.
//!
//! [`SessionPool`] keys sessions by FNV-1a over the *canonicalized*
//! BLIF (parse → [`tm_netlist::blif::write_blif`]), so textually
//! different but structurally identical submissions share one session.
//! Eviction is strict LRU over completed checkouts; an evicted session
//! still being used by an in-flight request stays alive through its
//! `Arc` and dies when that request finishes.

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;
use tm_logic::Bdd;
use tm_netlist::blif::write_blif;
use tm_netlist::library::Library;
use tm_netlist::map::{tech_map, MapOptions};
use tm_netlist::sop_network::SopNetwork;
use tm_netlist::{Delay, Netlist};
use tm_resilience::{Budget, Exhausted, TmError};
use tm_spcf::engine::{critical_outputs, engine_for, EngineCx, SpcfEngine};
use tm_spcf::{Algorithm, GatePrimes, LazyGlobals, OutputSpcf, SpcfSet};
use tm_sta::Sta;

/// FNV-1a 64-bit hash — the pool key over canonicalized BLIF.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Canonicalizes a parsed BLIF network back to text. Hashing this —
/// not the submitted bytes — makes the pool key insensitive to
/// whitespace, comments, and line-continuation differences.
pub fn canonical_blif(sop: &SopNetwork) -> String {
    write_blif(sop)
}

/// Locks a mutex, recovering the guard if a previous holder panicked —
/// a long-running server must not let one poisoned request wedge every
/// later one. Session state is re-validated by the engine-discard
/// policy in [`PooledSession::compute`].
pub fn lock_recover<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn algo_index(algorithm: Algorithm) -> usize {
    match algorithm {
        Algorithm::ShortPath => 0,
        Algorithm::PathBased => 1,
        Algorithm::NodeBased => 2,
        Algorithm::Conservative => 3,
    }
}

struct EngineSlot {
    engine: Box<dyn SpcfEngine + Send>,
    last_target: Option<Delay>,
}

/// One circuit's warm serving state: netlist, BDD manager, and one
/// engine per algorithm, reusable across requests (see module docs).
pub struct PooledSession {
    netlist: Arc<Netlist>,
    bdd: Bdd,
    primes: GatePrimes,
    globals: LazyGlobals,
    slots: [Option<EngineSlot>; 4],
    computes: u64,
}

impl PooledSession {
    /// Builds a session by technology-mapping a parsed BLIF network
    /// onto `library`.
    pub fn build(sop: &SopNetwork, library: Arc<Library>) -> Result<PooledSession, TmError> {
        if sop.outputs().is_empty() {
            return Err(TmError::invalid_input("circuit has no primary outputs"));
        }
        if sop.inputs().is_empty() {
            return Err(TmError::invalid_input("circuit has no primary inputs"));
        }
        let netlist = Arc::new(tech_map(sop, library, MapOptions::default()));
        Ok(PooledSession::from_netlist(netlist))
    }

    /// Wraps an already-mapped netlist (test entry point).
    pub fn from_netlist(netlist: Arc<Netlist>) -> PooledSession {
        let num_inputs = netlist.inputs().len();
        let globals = LazyGlobals::new(&netlist);
        PooledSession {
            netlist,
            bdd: Bdd::new(num_inputs),
            primes: GatePrimes::new(),
            globals,
            slots: [None, None, None, None],
            computes: 0,
        }
    }

    /// The mapped circuit this session serves.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The session's BDD manager (for pattern counts in reports).
    pub fn bdd(&self) -> &Bdd {
        &self.bdd
    }

    /// The circuit's critical path delay Δ (recomputed per call; STA is
    /// linear in the netlist and borrow-tied to it, so it cannot be
    /// stored here).
    pub fn delta(&self) -> Delay {
        Sta::new(&self.netlist).critical_path_delay()
    }

    /// Live node count of the session's manager.
    pub fn node_count(&self) -> u64 {
        self.bdd.node_count() as u64
    }

    /// Total memo entries across the session's warm engines.
    pub fn memo_entries(&self) -> u64 {
        self.slots
            .iter()
            .flatten()
            .map(|s| s.engine.memo_entries())
            .fold(0, u64::saturating_add)
    }

    /// Requests served by this session.
    pub fn computes(&self) -> u64 {
        self.computes
    }

    /// Evaluates the SPCF of every output critical at `target` under
    /// `budget`, reusing warm state where the ladder contract allows:
    /// an ascending Δ_y step rebuilds the algorithm's engine instead of
    /// trusting its retarget fast path (the server-side unsorted-ladder
    /// fix), and an exhausted or panicked run discards the engine so
    /// partial prepared state can never leak into the next request.
    pub fn compute(
        &mut self,
        algorithm: Algorithm,
        target: Delay,
        budget: Budget,
    ) -> Result<SpcfSet, Exhausted> {
        let start = Instant::now();
        self.computes += 1;
        let idx = algo_index(algorithm);
        // Take the engine out for the duration of the run: a panic
        // unwinding through `compute` leaves the slot empty, so the
        // next request starts from a fresh engine, not a half-prepared
        // one.
        let slot = match self.slots[idx].take() {
            Some(slot) if slot.last_target.is_some_and(|prev| target > prev) => {
                // Ascending step: outside the monotonic-reuse contract.
                tm_telemetry::counter_add("spcf.session.rebuilds", 1);
                None
            }
            other => other,
        };
        let mut slot = slot.unwrap_or_else(|| EngineSlot {
            engine: engine_for(algorithm),
            last_target: None,
        });
        slot.last_target = Some(target);

        let sta = Sta::new(&self.netlist);
        let targets = critical_outputs(&self.netlist, &sta, target);
        let prev_budget = self.bdd.budget();
        self.bdd.set_budget(budget);
        tm_telemetry::counter_add("spcf.session.retargets", 1);
        let result = {
            let mut cx = EngineCx {
                netlist: &self.netlist,
                sta: &sta,
                target,
                budget,
                bdd: &mut self.bdd,
                primes: &mut self.primes,
                globals: &mut self.globals,
            };
            let retargeted = {
                let _phase = tm_telemetry::flight::phase_with(
                    "spcf.prepare",
                    &[("targets", targets.len() as f64)],
                );
                slot.engine.retarget(&mut cx, &targets)
            };
            retargeted.and_then(|()| {
                let mut outputs = Vec::with_capacity(targets.len());
                for &o in &targets {
                    let spcf = {
                        let _phase = tm_telemetry::flight::phase_with(
                            "spcf.output",
                            &[("net", o.index() as f64)],
                        );
                        slot.engine.compute_output(&mut cx, o)?
                    };
                    outputs.push(OutputSpcf { output: o, spcf });
                }
                Ok(outputs)
            })
        };
        self.bdd.set_budget(prev_budget);
        match result {
            Ok(outputs) => {
                self.slots[idx] = Some(slot);
                Ok(SpcfSet::new(algorithm, target, outputs, start.elapsed(), 1))
            }
            Err(e) => Err(e), // slot stays empty: rebuild on next use
        }
    }
}

/// Aggregate pool statistics (the `pool` object of a `stats` frame and
/// the soak test's flat-memory oracle).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Sessions currently resident.
    pub sessions: usize,
    /// Checkouts that found a resident session.
    pub hits: u64,
    /// Checkouts that had to build a session.
    pub misses: u64,
    /// Sessions evicted to make room (strict LRU).
    pub evictions: u64,
    /// Total BDD nodes across resident sessions.
    pub bdd_nodes: u64,
    /// Total engine memo entries across resident sessions.
    pub memo_entries: u64,
}

struct PoolInner {
    /// Most-recently-used first.
    entries: Vec<(u64, Arc<Mutex<PooledSession>>)>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// An LRU pool of [`PooledSession`]s keyed by canonical-BLIF hash.
pub struct SessionPool {
    capacity: usize,
    inner: Mutex<PoolInner>,
}

impl SessionPool {
    /// A pool holding at most `capacity` sessions (floored at 1).
    pub fn new(capacity: usize) -> SessionPool {
        SessionPool {
            capacity: capacity.max(1),
            inner: Mutex::new(PoolInner { entries: Vec::new(), hits: 0, misses: 0, evictions: 0 }),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns the session for `key`, building it with `build` on a
    /// miss (under the pool lock, so concurrent misses for the same
    /// circuit build exactly once). On a miss at capacity the
    /// least-recently-used session is evicted first.
    pub fn checkout(
        &self,
        key: u64,
        build: impl FnOnce() -> Result<PooledSession, TmError>,
    ) -> Result<Arc<Mutex<PooledSession>>, TmError> {
        let mut inner = lock_recover(&self.inner);
        if let Some(pos) = inner.entries.iter().position(|(k, _)| *k == key) {
            inner.hits += 1;
            tm_telemetry::counter_add("serve.pool.hits", 1);
            let entry = inner.entries.remove(pos);
            let session = Arc::clone(&entry.1);
            inner.entries.insert(0, entry);
            return Ok(session);
        }
        inner.misses += 1;
        tm_telemetry::counter_add("serve.pool.misses", 1);
        let session = Arc::new(Mutex::new(build()?));
        if inner.entries.len() >= self.capacity {
            inner.entries.pop();
            inner.evictions += 1;
            tm_telemetry::counter_add("serve.pool.evictions", 1);
        }
        inner.entries.insert(0, (key, Arc::clone(&session)));
        Ok(session)
    }

    /// Point-in-time statistics. Sessions are sized outside the pool
    /// lock, so a busy session delays only this reader, not checkouts.
    pub fn stats(&self) -> PoolStats {
        let (sessions, counters) = {
            let inner = lock_recover(&self.inner);
            let sessions: Vec<Arc<Mutex<PooledSession>>> =
                inner.entries.iter().map(|(_, s)| Arc::clone(s)).collect();
            (sessions, (inner.hits, inner.misses, inner.evictions))
        };
        let mut stats = PoolStats {
            sessions: sessions.len(),
            hits: counters.0,
            misses: counters.1,
            evictions: counters.2,
            ..PoolStats::default()
        };
        for session in &sessions {
            let s = lock_recover(session);
            stats.bdd_nodes = stats.bdd_nodes.saturating_add(s.node_count());
            stats.memo_entries = stats.memo_entries.saturating_add(s.memo_entries());
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_netlist::generate::{generate, GeneratorSpec};
    use tm_netlist::library::lsi10k_like;

    fn session(i: u64) -> PooledSession {
        let lib = Arc::new(lsi10k_like());
        let spec = GeneratorSpec::sized(format!("pool_{i}"), 6, 2, 12);
        PooledSession::from_netlist(Arc::new(generate(&spec, lib)))
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn lru_evicts_the_coldest_session() {
        let pool = SessionPool::new(2);
        let build = |i: u64| move || Ok(session(i));
        pool.checkout(1, build(1)).expect("miss 1");
        pool.checkout(2, build(2)).expect("miss 2");
        pool.checkout(1, build(1)).expect("hit 1"); // 1 is now MRU
        pool.checkout(3, build(3)).expect("miss 3: evicts 2");
        let stats = pool.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 3, 1));
        assert_eq!(stats.sessions, 2);
        // 2 was the LRU victim; 1 must still be resident.
        let mut built_again = false;
        pool.checkout(1, || {
            built_again = true;
            Ok(session(1))
        })
        .expect("hit 1");
        assert!(!built_again, "session 1 must have survived the eviction");
    }

    #[test]
    fn cyclic_access_beyond_capacity_always_misses() {
        // The classic LRU-thrash pattern the soak test pins exactly:
        // rotating M > capacity circuits misses on every checkout and
        // evicts on every checkout after the pool fills.
        let pool = SessionPool::new(2);
        let rounds = 5;
        for r in 0..rounds {
            for key in [10u64, 11, 12] {
                pool.checkout(key, || Ok(session(key))).expect("checkout");
                let _ = r;
            }
        }
        let stats = pool.stats();
        let requests = 3 * rounds as u64;
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, requests);
        assert_eq!(stats.evictions, requests - 2, "all but the resident two were evicted");
    }

    #[test]
    fn build_failure_counts_a_miss_but_inserts_nothing() {
        let pool = SessionPool::new(2);
        let err = pool.checkout(9, || Err(TmError::invalid_input("no outputs")));
        assert!(err.is_err());
        let stats = pool.stats();
        assert_eq!((stats.sessions, stats.misses, stats.evictions), (0, 1, 0));
    }
}
