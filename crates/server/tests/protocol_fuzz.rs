//! Seeded mutation fuzzing of the wire protocol over real TCP.
//!
//! 640 rounds of adversarial framing and payloads — truncated length
//! prefixes, oversized declared lengths, zero-length frames, garbage
//! bytes, byte-flipped valid requests, garbage BLIF inside valid JSON,
//! mid-frame disconnects, and silent stalls — against a live server.
//! The contract under attack:
//!
//! - every response frame is valid UTF-8 JSON;
//! - every error response carries a typed code, and the code is never
//!   `internal` — `internal` is the panic-containment frame, so its
//!   absence across the whole run is the no-panic proof;
//! - the server survives all of it: a final well-formed request on a
//!   fresh connection still gets a correct answer.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use tm_server::gen::synthetic_blif;
use tm_server::protocol::{read_frame, write_frame, DEFAULT_MAX_FRAME};
use tm_server::serve::{ServeConfig, ServeCore};
use tm_testkit::json::Json;
use tm_testkit::rng::Rng;

const ROUNDS: usize = 640;

fn valid_corpus() -> Vec<String> {
    let blif = synthetic_blif(0xF22, 6, 10);
    vec![
        Json::obj([
            ("verb", Json::str("spcf")),
            ("blif", Json::str(blif.clone())),
            ("algorithm", Json::str("short-path")),
            ("targets", Json::Arr(vec![Json::Num(0.9)])),
            ("relative", Json::Bool(true)),
        ])
        .render(),
        Json::obj([("verb", Json::str("mask")), ("blif", Json::str(blif))]).render(),
        r#"{"verb":"stats"}"#.to_string(),
    ]
}

fn connect(addr: std::net::SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(20))).expect("timeout");
    stream
}

/// Reads whatever responses the server sends until it closes or a
/// terminal frame arrives; panics on any contract violation.
fn drain_responses(stream: &mut TcpStream, context: &str) -> usize {
    let mut count = 0;
    loop {
        let raw = match read_frame(stream, DEFAULT_MAX_FRAME) {
            Ok(Some(raw)) => raw,
            Ok(None) => return count,
            Err(_) => return count, // server closed on us — allowed
        };
        let text = String::from_utf8(raw)
            .unwrap_or_else(|_| panic!("{context}: response frame is not UTF-8"));
        let json = Json::parse(&text)
            .unwrap_or_else(|e| panic!("{context}: response is not JSON ({e}): {text}"));
        count += 1;
        match json.get("type").and_then(Json::as_str) {
            Some("error") => {
                let code = json.get("code").and_then(Json::as_str).unwrap_or("");
                assert!(
                    !code.is_empty(),
                    "{context}: error frame without a typed code: {text}"
                );
                assert_ne!(
                    code, "internal",
                    "{context}: request handling panicked server-side: {text}"
                );
                return count;
            }
            Some("done") | Some("stats") | Some("mask_report") => return count,
            Some("report") => {}
            other => panic!("{context}: unknown frame type {other:?}: {text}"),
        }
    }
}

#[test]
fn mutated_frames_never_panic_the_server() {
    let mut config = ServeConfig::for_workers(2);
    config.admit = 64;
    // A stalled round must cost milliseconds, not the default seconds.
    config.read_timeout = Duration::from_millis(50);
    let core = Arc::new(ServeCore::new(config));
    let handle = tm_server::net::serve(Arc::clone(&core), "127.0.0.1:0").expect("bind");
    let addr = handle.addr();

    let corpus = valid_corpus();
    let mut rng = Rng::seed_from_u64(0xF0_22_51);
    for round in 0..ROUNDS {
        let context = format!("round {round}");
        match rng.gen_range(0..10u32) {
            // Well-formed request (control group — must answer).
            0 => {
                let payload = rng.choose(&corpus).expect("corpus");
                let mut s = connect(addr);
                write_frame(&mut s, payload.as_bytes()).expect("write");
                assert!(drain_responses(&mut s, &context) > 0, "{context}: no answer");
            }
            // Truncated length prefix, then disconnect.
            1 => {
                let mut s = connect(addr);
                let n = rng.gen_range(1..4usize);
                let _ = s.write_all(&[0u8, 0, 1][..n]);
            }
            // Oversized declared length.
            2 => {
                let declared = DEFAULT_MAX_FRAME + 1 + (rng.next_u64() as u32 % 1_000_000);
                let mut s = connect(addr);
                s.write_all(&declared.to_be_bytes()).expect("write prefix");
                drain_responses(&mut s, &context);
            }
            // Zero-length frame: typed protocol error, connection
            // stays usable for a follow-up request.
            3 => {
                let mut s = connect(addr);
                s.write_all(&0u32.to_be_bytes()).expect("write prefix");
                assert!(drain_responses(&mut s, &context) > 0, "{context}: no typed reject");
                let payload = &corpus[2]; // stats
                write_frame(&mut s, payload.as_bytes()).expect("write follow-up");
                assert!(drain_responses(&mut s, &context) > 0, "{context}: connection died");
            }
            // Garbage bytes in a well-framed payload.
            4 => {
                let len = rng.gen_range(1..200usize);
                let garbage: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
                let mut s = connect(addr);
                write_frame(&mut s, &garbage).expect("write");
                assert!(drain_responses(&mut s, &context) > 0, "{context}: no typed reject");
            }
            // Byte-flipped valid payload (may parse, may not — but
            // must answer something typed).
            5 => {
                let mut payload = rng.choose(&corpus).expect("corpus").clone().into_bytes();
                for _ in 0..rng.gen_range(1..8usize) {
                    let k = rng.gen_range(0..payload.len());
                    payload[k] ^= 1 << rng.gen_range(0..8u32);
                }
                let mut s = connect(addr);
                write_frame(&mut s, &payload).expect("write");
                drain_responses(&mut s, &context);
            }
            // Valid JSON, garbage BLIF.
            6 => {
                let len = rng.gen_range(0..120usize);
                let junk: String =
                    (0..len).map(|_| (b' ' + (rng.next_u64() % 90) as u8) as char).collect();
                let payload = Json::obj([
                    ("verb", Json::str("spcf")),
                    ("blif", Json::str(junk)),
                    ("targets", Json::Arr(vec![Json::Num(0.9)])),
                ])
                .render();
                let mut s = connect(addr);
                write_frame(&mut s, payload.as_bytes()).expect("write");
                assert!(drain_responses(&mut s, &context) > 0, "{context}: no typed reject");
            }
            // Valid JSON, hostile request fields.
            7 => {
                let payload = match rng.gen_range(0..5u32) {
                    0 => r#"{"verb":"warp"}"#.to_string(),
                    1 => r#"{"blif":".model x\n.end\n"}"#.to_string(),
                    2 => r#"{"verb":"spcf","blif":".model x\n.end\n","targets":[]}"#.to_string(),
                    3 => format!(
                        r#"{{"verb":"spcf","blif":".model x\n.end\n","targets":[{}]}}"#,
                        vec!["0.5"; 65].join(",")
                    ),
                    _ => r#"{"verb":"spcf","blif":".model x\n.end\n","targets":[-1.0]}"#
                        .to_string(),
                };
                let mut s = connect(addr);
                write_frame(&mut s, payload.as_bytes()).expect("write");
                assert!(drain_responses(&mut s, &context) > 0, "{context}: no typed reject");
            }
            // Mid-frame disconnect: declare N bytes, send fewer, drop.
            8 => {
                let payload = rng.choose(&corpus).expect("corpus").as_bytes();
                let keep = rng.gen_range(0..payload.len());
                let mut s = connect(addr);
                let _ = s.write_all(&(payload.len() as u32).to_be_bytes());
                let _ = s.write_all(&payload[..keep]);
            }
            // Silent stall mid-frame: the read timeout must fire and
            // answer with a typed timeout frame.
            _ => {
                let mut s = connect(addr);
                let _ = s.write_all(&64u32.to_be_bytes());
                let _ = s.write_all(b"{\"verb\":");
                let mut buf = Vec::new();
                let _ = s.read_to_end(&mut buf); // until server closes
                if !buf.is_empty() {
                    // Strip the length prefix and check the typed code.
                    assert!(buf.len() > 4, "{context}: partial frame in timeout reply");
                    let text = String::from_utf8(buf[4..].to_vec())
                        .unwrap_or_else(|_| panic!("{context}: non-UTF-8 timeout reply"));
                    let json = Json::parse(&text)
                        .unwrap_or_else(|e| panic!("{context}: bad timeout reply ({e})"));
                    assert_eq!(json.get("code").and_then(Json::as_str), Some("timeout"));
                }
            }
        }
    }

    // The server must have survived the entire barrage.
    let mut s = connect(addr);
    write_frame(&mut s, corpus[0].as_bytes()).expect("write final request");
    assert!(drain_responses(&mut s, "final request") >= 2, "server wedged after fuzzing");
    let stats = core.stats_frame();
    let json = Json::parse(&stats).expect("stats parses");
    tm_telemetry::schema::validate(json.get("metrics").expect("metrics"))
        .expect("post-fuzz metrics are schema-valid");
    handle.shutdown();
}
