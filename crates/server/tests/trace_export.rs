//! End-to-end battery for flight-recorder tracing in the serving
//! stack: the `trace` verb, slow-request capture, phase attribution,
//! and — the property everything else defers to — bit-identity of
//! response frames with recording on and off.
//!
//! The tests share one process, and the recorder's force switch and
//! slow log are process-global, so every test that flips recording
//! state funnels through [`force_on`] and asserts on trace ids it
//! observed itself rather than on global counts.

use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use tm_server::gen::synthetic_blif;
use tm_server::protocol::{read_frame, write_frame, DEFAULT_MAX_FRAME};
use tm_server::serve::{ServeConfig, ServeCore};
use tm_telemetry::flight;
use tm_testkit::json::Json;

fn spcf_payload(blif: &str) -> String {
    Json::obj([
        ("verb", Json::str("spcf")),
        ("blif", Json::str(blif)),
        ("algorithm", Json::str("short-path")),
        ("targets", Json::Arr(vec![Json::Num(0.95), Json::Num(0.6)])),
        ("relative", Json::Bool(true)),
    ])
    .render()
}

/// One request over TCP; returns the parsed response frames.
fn roundtrip(addr: std::net::SocketAddr, payload: &str) -> Vec<Json> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    write_frame(&mut stream, payload.as_bytes()).expect("write");
    let mut frames = Vec::new();
    loop {
        let raw = match read_frame(&mut stream, DEFAULT_MAX_FRAME).expect("read") {
            Some(raw) => raw,
            None => break,
        };
        let json = Json::parse(std::str::from_utf8(&raw).expect("utf8")).expect("frame json");
        let kind = json.get("type").and_then(Json::as_str).unwrap_or("").to_string();
        frames.push(json);
        if matches!(kind.as_str(), "done" | "stats" | "trace" | "mask_report" | "error") {
            break;
        }
    }
    frames
}

/// A Chrome trace event's numeric field.
fn num(ev: &Json, field: &str) -> f64 {
    ev.get(field).and_then(Json::as_num).unwrap_or(f64::NAN)
}

fn name_of<'j>(ev: &'j Json) -> &'j str {
    ev.get("name").and_then(Json::as_str).unwrap_or("")
}

fn trace_id_of(ev: &Json) -> u64 {
    ev.get("args").and_then(|a| a.get("trace")).and_then(Json::as_num).unwrap_or(0.0) as u64
}

/// Boots a full server (net + serve) with a zero slow threshold so
/// every request slow-captures, drives an `spcf` request through it,
/// pulls a `trace` export, and checks the acceptance criteria: the
/// request's capture is present, its phases nest inside the root span,
/// and the phase durations sum to within the root's wall time.
#[test]
fn slow_request_yields_nested_phase_tree_via_trace_verb() {
    flight::force_recording(true);
    let mut config = ServeConfig::for_workers(2);
    config.slow_threshold = Duration::ZERO;
    let core = Arc::new(ServeCore::new(config));
    let server = tm_server::net::serve(core, "127.0.0.1:0").expect("bind");
    let addr = server.addr();

    let blif = synthetic_blif(7, 10, 30);
    let frames = roundtrip(addr, &spcf_payload(&blif));
    assert_eq!(
        frames.last().and_then(|f| f.get("type")).and_then(Json::as_str),
        Some("done"),
        "spcf must succeed: {frames:?}"
    );

    let trace = roundtrip(addr, r#"{"verb":"trace"}"#);
    server.shutdown();
    assert_eq!(trace.len(), 1);
    let frame = &trace[0];
    assert_eq!(frame.get("type").and_then(Json::as_str), Some("trace"));
    assert!(num(frame, "events") >= 1.0, "recorder saw events");
    assert!(num(frame, "slow") >= 1.0, "zero threshold must slow-capture");
    let events = frame
        .get("trace")
        .and_then(|t| t.get("traceEvents"))
        .and_then(Json::as_arr)
        .expect("Chrome trace JSON with traceEvents");

    // Find a slow capture (pid 2) of an spcf request: a root
    // serve.request span with a serve.compute phase in its trace.
    let slow_roots: Vec<&Json> = events
        .iter()
        .filter(|e| {
            name_of(e) == "serve.request"
                && e.get("ph").and_then(Json::as_str) == Some("X")
                && num(e, "pid") == 2.0
        })
        .collect();
    assert!(!slow_roots.is_empty(), "no slow-captured serve.request root");
    let root = slow_roots
        .iter()
        .find(|r| {
            let id = trace_id_of(r);
            events.iter().any(|e| {
                trace_id_of(e) == id && num(e, "pid") == 2.0 && name_of(e) == "serve.compute"
            })
        })
        .expect("an spcf capture (root with a serve.compute phase)");
    let id = trace_id_of(root);
    assert!(id > 0, "slow capture carries its trace id");
    let (root_ts, root_end) = (num(root, "ts"), num(root, "ts") + num(root, "dur"));

    // Phase spans of that request: known names, nested in the root,
    // and summing to within the root's wall time.
    let phases: Vec<&Json> = events
        .iter()
        .filter(|e| {
            trace_id_of(e) == id
                && num(e, "pid") == 2.0
                && e.get("ph").and_then(Json::as_str) == Some("X")
                && name_of(e) != "serve.request"
                && name_of(e).starts_with("serve.")
        })
        .collect();
    assert!(
        phases.iter().any(|p| name_of(p) == "serve.parse"),
        "parse phase attributed: {phases:?}"
    );
    assert!(
        phases.iter().any(|p| name_of(p) == "serve.pool"),
        "pool phase attributed: {phases:?}"
    );
    assert!(
        phases.iter().any(|p| name_of(p) == "serve.serialize"),
        "serialize phase attributed: {phases:?}"
    );
    const EPS_US: f64 = 0.002; // ns-scale float slack
    let mut phase_sum = 0.0;
    for p in &phases {
        let (ts, dur) = (num(p, "ts"), num(p, "dur"));
        assert!(
            ts >= root_ts - EPS_US && ts + dur <= root_end + EPS_US,
            "phase {} [{ts}..{}] outside root [{root_ts}..{root_end}]",
            name_of(p),
            ts + dur
        );
        phase_sum += dur;
    }
    assert!(
        phase_sum <= num(root, "dur") + EPS_US,
        "phase sum {phase_sum}us exceeds request wall {dur}us",
        dur = num(root, "dur")
    );

    // Engine-level attribution rides the same ids: the capture's
    // spcf.* phases nest inside serve.compute.
    assert!(
        events.iter().any(|e| trace_id_of(e) == id
            && num(e, "pid") == 2.0
            && name_of(e) == "spcf.output"),
        "per-output engine phases carry the request's trace id"
    );
}

/// The determinism half of the acceptance criteria, in-process: the
/// exact same request must produce byte-identical frames with the
/// recorder dormant and active.
#[test]
fn response_frames_are_bit_identical_with_recording_on_and_off() {
    let blif = synthetic_blif(11, 9, 28);
    let payload = spcf_payload(&blif);
    let run = |record: bool| -> Vec<String> {
        let _scope = tm_telemetry::Scope::enter();
        flight::set_thread_recording(Some(record));
        let core = ServeCore::new(ServeConfig::default());
        let frames = core.handle_payload(payload.as_bytes());
        // Also exercise the mask verb under both modes.
        let mask = core.handle_payload(
            format!(r#"{{"verb":"mask","blif":{}}}"#, Json::str(blif.clone()).render())
                .as_bytes(),
        );
        flight::set_thread_recording(None);
        flight::drain_thread();
        frames.into_iter().chain(mask).collect()
    };
    let dormant = run(false);
    let active = run(true);
    assert_eq!(dormant, active, "recording must be invisible in the bytes");
    assert!(
        dormant.iter().any(|f| f.contains("\"done\"")),
        "spcf request succeeded: {dormant:?}"
    );
}

/// `stats` surfaces the recorder itself: drop counts, buffered depth,
/// and the per-request counters, so ring overflow is visible to a
/// client instead of silent.
#[test]
fn stats_frame_surfaces_recorder_depth_and_drop_counts() {
    let _scope = tm_telemetry::Scope::enter();
    flight::set_thread_recording(Some(true));
    let core = ServeCore::new(ServeConfig::default());
    let blif = synthetic_blif(3, 8, 20);
    core.handle_payload(spcf_payload(&blif).as_bytes());
    let stats = core.handle_payload(br#"{"verb":"stats"}"#);
    flight::set_thread_recording(None);
    flight::drain_thread();
    let j = Json::parse(&stats[0]).expect("stats parses");
    let trace = j.get("trace").expect("stats carries a trace object");
    for field in ["threads", "buffered", "recorded", "dropped", "slow_captured", "slow_evicted"] {
        assert!(
            trace.get(field).and_then(Json::as_num).is_some(),
            "trace.{field} missing: {trace:?}"
        );
    }
    assert!(
        trace.get("recorded").and_then(Json::as_num).unwrap_or(0.0) >= 1.0,
        "request events were recorded: {trace:?}"
    );
    // The merged metrics carry the live recorder gauges and the
    // schema still validates end to end (digests included).
    let metrics = j.get("metrics").expect("metrics");
    tm_telemetry::schema::validate(metrics).expect("schema-valid with digests");
    let gauges = metrics.get("gauges").and_then(Json::as_arr).expect("gauges");
    assert!(
        gauges
            .iter()
            .any(|g| g.get("name").and_then(Json::as_str) == Some("serve.trace.dropped")),
        "recorder drop gauge exported: {gauges:?}"
    );
    let digests = metrics.get("digests").and_then(Json::as_arr).expect("digests");
    assert!(
        digests
            .iter()
            .any(|d| d.get("name").and_then(Json::as_str) == Some("serve.request_ns")),
        "request latency is a digest now: {digests:?}"
    );
}

/// The `trace` verb honors its `limit`, dropping oldest events with
/// exact accounting, and rejects malformed limits with a typed error.
#[test]
fn trace_verb_limit_truncates_and_bad_limits_are_typed() {
    flight::force_recording(true);
    let core = Arc::new(ServeCore::new(ServeConfig::for_workers(1)));
    let server = tm_server::net::serve(core, "127.0.0.1:0").expect("bind");
    let addr = server.addr();
    let blif = synthetic_blif(23, 9, 26);
    let frames = roundtrip(addr, &spcf_payload(&blif));
    assert_eq!(
        frames.last().and_then(|f| f.get("type")).and_then(Json::as_str),
        Some("done")
    );

    let full = roundtrip(addr, r#"{"verb":"trace"}"#);
    let total = num(&full[0], "events");
    assert!(total >= 3.0, "need a few events to truncate: {total}");
    let capped = roundtrip(addr, r#"{"verb":"trace","limit":2}"#);
    assert_eq!(num(&capped[0], "events"), 2.0);
    assert!(num(&capped[0], "dropped") >= total - 2.0, "truncation is counted");

    let bad = roundtrip(addr, r#"{"verb":"trace","limit":0}"#);
    assert_eq!(bad[0].get("type").and_then(Json::as_str), Some("error"));
    assert_eq!(bad[0].get("code").and_then(Json::as_str), Some("invalid"));
    server.shutdown();
}
