//! Concurrency must be invisible in the bytes: every client of a busy
//! server receives exactly the frames a serial warm-session run would
//! have produced — for every worker count, pool size, and interleaving.
//!
//! The reference is computed with [`tm_spcf::WarmSession`] (the
//! borrow-based session the engines were proven against) and rendered
//! through the same [`tm_server::serve::spcf_report_frame`] the server
//! uses, so any divergence is a real serving bug, not a formatting
//! difference.

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use tm_logic::Bdd;
use tm_netlist::blif::parse_blif;
use tm_netlist::library::lsi10k_like;
use tm_netlist::map::{tech_map, MapOptions};
use tm_resilience::Budget;
use tm_server::gen::synthetic_blif;
use tm_server::protocol::{read_frame, write_frame, DEFAULT_MAX_FRAME};
use tm_server::serve::{done_frame, spcf_report_frame, ServeConfig, ServeCore};
use tm_spcf::{Algorithm, WarmSession};
use tm_sta::Sta;
use tm_testkit::json::Json;

const FRACTIONS: [f64; 3] = [0.95, 0.6, 0.4];

fn request_payload(blif: &str, algorithm: &str) -> String {
    Json::obj([
        ("verb", Json::str("spcf")),
        ("blif", Json::str(blif)),
        ("algorithm", Json::str(algorithm)),
        ("targets", Json::Arr(FRACTIONS.iter().map(|&f| Json::Num(f)).collect())),
        ("relative", Json::Bool(true)),
    ])
    .render()
}

/// The serial ground truth: one warm session, the ladder in request
/// order, frames rendered exactly as the server renders them.
fn reference_frames(blif: &str, algorithm: Algorithm) -> Vec<String> {
    let sop = parse_blif(blif).expect("corpus BLIF parses");
    let netlist = tech_map(&sop, Arc::new(lsi10k_like()), MapOptions::default());
    let sta = Sta::new(&netlist);
    let delta = sta.critical_path_delay();
    let mut bdd = Bdd::new(netlist.inputs().len());
    let mut session =
        WarmSession::new(algorithm, &netlist, &sta, &mut bdd, Budget::unlimited());
    let mut frames = Vec::new();
    for (seq, &fraction) in FRACTIONS.iter().enumerate() {
        let set = session.try_retarget(delta * fraction).expect("unlimited budget");
        frames.push(spcf_report_frame(&netlist, session.bdd(), &set, seq));
    }
    frames.push(done_frame(FRACTIONS.len()));
    frames
}

/// One client request over TCP; returns the raw frames.
fn client_frames(addr: std::net::SocketAddr, payload: &str) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(60))).expect("timeout");
    write_frame(&mut stream, payload.as_bytes()).expect("write request");
    let mut frames = Vec::new();
    loop {
        let raw = read_frame(&mut stream, DEFAULT_MAX_FRAME)
            .expect("read frame")
            .expect("server closed mid-response");
        let text = String::from_utf8(raw).expect("utf-8 frame");
        let done = text.contains("\"type\":\"done\"") || text.contains("\"type\":\"error\"");
        frames.push(text);
        if done {
            break;
        }
    }
    let _ = stream.flush();
    frames
}

#[test]
fn concurrent_clients_see_bit_identical_serial_frames() {
    let circuits: Vec<String> =
        [0xD17u64, 0x33].iter().map(|&s| synthetic_blif(s, 9, 24)).collect();
    let cases = [("short-path", Algorithm::ShortPath), ("node-based", Algorithm::NodeBased)];
    // Ground truth once per (circuit, algorithm).
    let mut references = Vec::new();
    for blif in &circuits {
        for &(_, algorithm) in &cases {
            references.push(reference_frames(blif, algorithm));
        }
    }
    assert!(
        references.iter().flatten().any(|f| f.contains("\"critical_patterns\":") && !f.contains("\"critical_patterns\":0,")),
        "corpus too trivial: every reference SPCF is empty"
    );

    for workers in [1usize, 4] {
        for pool in [1usize, 4] {
            let mut config = ServeConfig::for_workers(workers);
            config.pool_capacity = pool;
            config.admit = 64; // determinism under load, not shedding
            // Load-based degradation deliberately trades exactness for
            // liveness; disable it here — this battery pins the serving
            // machinery itself (pooling, coalescing, locking).
            config.degrade_node_based_at = usize::MAX;
            config.degrade_conservative_at = usize::MAX;
            let handle = tm_server::net::serve(Arc::new(ServeCore::new(config)), "127.0.0.1:0")
                .expect("bind");
            let addr = handle.addr();

            let mut clients = Vec::new();
            for client in 0..8usize {
                let circuits = circuits.clone();
                clients.push(std::thread::spawn(move || {
                    // Each client walks every (circuit, algorithm) pair,
                    // phase-shifted so the pool sees contention and
                    // (for pool=1) eviction churn mid-flight.
                    let mut got = Vec::new();
                    for k in 0..circuits.len() * cases.len() {
                        let k = (k + client) % (circuits.len() * cases.len());
                        let blif = &circuits[k / cases.len()];
                        let (name, _) = cases[k % cases.len()];
                        got.push((k, client_frames(addr, &request_payload(blif, name))));
                    }
                    got
                }));
            }
            for client in clients {
                for (k, frames) in client.join().expect("client thread") {
                    assert_eq!(
                        frames, references[k],
                        "workers={workers} pool={pool} case={k}: \
                         concurrent frames diverged from the serial reference"
                    );
                }
            }
            handle.shutdown();
        }
    }
}
