//! Long-haul serving soak (`TM_SOAK=1 cargo test -p tm-server --test
//! soak -- --ignored --nocapture` equivalent; the gate is the env var).
//!
//! Two phases against the in-process [`ServeCore`] (no sockets — the
//! TCP layer has its own battery; here the resource under test is the
//! pool's memory discipline over ~10k requests):
//!
//! 1. **Flat-memory**: rotating a circuit set that *fits* the pool,
//!    total BDD node count and engine memo entries must be exactly flat
//!    after warm-up — any drift is a leak the LRU cannot save us from,
//!    because it compounds per request, not per circuit. Evictions must
//!    be exactly zero.
//! 2. **Eviction-exactness**: rotating more circuits than capacity in
//!    cyclic order is the LRU worst case — every checkout must miss,
//!    and evictions must equal `requests - capacity` exactly.

use tm_server::gen::synthetic_blif;
use tm_server::serve::{ServeConfig, ServeCore};
use tm_testkit::json::Json;

fn spcf_payload(blif: &str, algorithm: &str) -> String {
    Json::obj([
        ("verb", Json::str("spcf")),
        ("blif", Json::str(blif)),
        ("algorithm", Json::str(algorithm)),
        ("targets", Json::Arr(vec![Json::Num(0.95), Json::Num(0.9)])),
        ("relative", Json::Bool(true)),
    ])
    .render()
}

fn soak_enabled() -> bool {
    std::env::var("TM_SOAK").map(|v| v == "1").unwrap_or(false)
}

#[test]
fn pool_memory_stays_flat_and_evictions_are_exact() {
    if !soak_enabled() {
        eprintln!("soak: skipped (set TM_SOAK=1 to run)");
        return;
    }
    let _scope = tm_telemetry::Scope::enter();

    // Phase 1: working set fits the pool -> memory must be flat.
    let mut config = ServeConfig::default();
    config.pool_capacity = 4;
    let core = ServeCore::new(config);
    let circuits: Vec<String> =
        (0..4u64).map(|i| synthetic_blif(0x50AC + i, 7, 14)).collect();
    let algorithms = ["short-path", "node-based"];

    let warmup = 64usize;
    let total = 9_700usize;
    for k in 0..warmup {
        let payload = spcf_payload(&circuits[k % circuits.len()], algorithms[k % 2]);
        let frames = core.handle_payload(payload.as_bytes());
        assert!(frames.last().is_some_and(|f| f.contains("\"type\":\"done\"")), "{frames:?}");
    }
    let warm = core.pool_stats();
    assert_eq!(warm.sessions, 4, "working set must be fully resident");

    for k in warmup..total {
        let payload = spcf_payload(&circuits[k % circuits.len()], algorithms[k % 2]);
        let frames = core.handle_payload(payload.as_bytes());
        assert!(frames.last().is_some_and(|f| f.contains("\"type\":\"done\"")), "{frames:?}");
        if k % 1000 == 0 {
            let now = core.pool_stats();
            assert_eq!(
                (now.bdd_nodes, now.memo_entries),
                (warm.bdd_nodes, warm.memo_entries),
                "request {k}: pool memory drifted after warm-up"
            );
        }
    }
    let end = core.pool_stats();
    assert_eq!(end.bdd_nodes, warm.bdd_nodes, "BDD nodes grew across {total} requests");
    assert_eq!(end.memo_entries, warm.memo_entries, "memo entries grew across {total} requests");
    assert_eq!(end.evictions, 0, "a resident working set must never evict");
    assert_eq!(end.misses, 4, "each circuit builds exactly once");
    assert_eq!(end.hits, total as u64 - 4);

    let snap = tm_telemetry::snapshot();
    assert_eq!(snap.counter("serve.requests"), Some(total as u64));
    assert_eq!(snap.counter("serve.pool.evictions"), None, "no evictions may be counted");
    tm_telemetry::reset();

    // Phase 2: cyclic rotation beyond capacity -> the LRU worst case,
    // pinned exactly.
    let mut config = ServeConfig::default();
    config.pool_capacity = 2;
    let core = ServeCore::new(config);
    let rotating: Vec<String> =
        (0..3u64).map(|i| synthetic_blif(0xEE7 + i, 7, 14)).collect();
    let requests = 300usize;
    for k in 0..requests {
        let payload = spcf_payload(&rotating[k % rotating.len()], "short-path");
        let frames = core.handle_payload(payload.as_bytes());
        assert!(frames.last().is_some_and(|f| f.contains("\"type\":\"done\"")), "{frames:?}");
    }
    let stats = core.pool_stats();
    assert_eq!(stats.hits, 0, "cyclic rotation beyond capacity can never hit");
    assert_eq!(stats.misses, requests as u64);
    assert_eq!(
        stats.evictions,
        requests as u64 - 2,
        "every miss after the pool fills must evict exactly once"
    );
    let snap = tm_telemetry::snapshot();
    assert_eq!(snap.counter("serve.pool.evictions"), Some(requests as u64 - 2));
    assert_eq!(snap.counter("serve.pool.misses"), Some(requests as u64));
}
