//! Determinism suite for the parallel per-output SPCF driver
//! (DESIGN.md §8).
//!
//! The driver's contract is that `jobs` is a *performance* knob, never
//! a semantic one:
//!
//! 1. **Bit-identity**: on 20 generated multi-output netlists, every
//!    engine produces the same critical-output list, the same per-output
//!    satisfying-pattern counts, and byte-identical [`Bdd::export`]
//!    encodings under `jobs = 1` and `jobs = 4`.
//! 2. **Exactly-once exhaustion**: when a finite shared budget trips
//!    under parallelism, the `resilience.budget.exhausted` counter
//!    records the trip exactly once (the tripping worker's local check),
//!    the caller's manager gets its previous budget back, and the same
//!    call with an unlimited budget still succeeds afterwards.

use std::sync::Arc;
use tm_logic::Bdd;
use tm_netlist::generate::{generate, GeneratorSpec};
use tm_netlist::library::lsi10k_like;
use tm_netlist::{Delay, NetId, Netlist};
use tm_resilience::{Budget, Resource};
use tm_spcf::{short_path_spcf_of_net, spcf_with, try_spcf_with, Algorithm, SpcfOptions};
use tm_sta::Sta;

/// 20 seeded multi-output netlists spanning 5–10 inputs, 2–5 outputs.
fn determinism_suite() -> Vec<Netlist> {
    let lib = Arc::new(lsi10k_like());
    (0..20u64)
        .map(|i| {
            let mut spec = GeneratorSpec::sized(
                format!("det_{i}"),
                5 + (i as usize % 6),
                2 + (i as usize % 4),
                18 + 3 * i as usize,
            );
            spec.seed = 0xC0FFEE + 7919 * i;
            generate(&spec, lib.clone())
        })
        .collect()
}

#[test]
fn jobs_do_not_change_any_engine_result() {
    for nl in determinism_suite() {
        let sta = Sta::new(&nl);
        let target = sta.critical_path_delay() * 0.8;
        for algorithm in
            [Algorithm::ShortPath, Algorithm::PathBased, Algorithm::NodeBased]
        {
            let mut serial_bdd = Bdd::new(nl.inputs().len());
            let serial =
                spcf_with(algorithm, &nl, &sta, &mut serial_bdd, target, &SpcfOptions::default());
            let mut par_bdd = Bdd::new(nl.inputs().len());
            let parallel = spcf_with(
                algorithm,
                &nl,
                &sta,
                &mut par_bdd,
                target,
                &SpcfOptions::default().with_jobs(4),
            );

            assert_eq!(serial.jobs, 1);
            assert_eq!(serial.algorithm, parallel.algorithm);
            assert_eq!(
                serial.outputs.len(),
                parallel.outputs.len(),
                "{} {algorithm:?}: critical-output lists differ",
                nl.name()
            );
            for (s, p) in serial.outputs.iter().zip(&parallel.outputs) {
                assert_eq!(s.output, p.output, "{} {algorithm:?}", nl.name());
                assert_eq!(
                    serial_bdd.sat_count(s.spcf),
                    par_bdd.sat_count(p.spcf),
                    "{} {algorithm:?}: sat count differs for {}",
                    nl.name(),
                    nl.net_name(s.output)
                );
                assert_eq!(
                    serial_bdd.export(s.spcf),
                    par_bdd.export(p.spcf),
                    "{} {algorithm:?}: exported structure differs for {}",
                    nl.name(),
                    nl.net_name(s.output)
                );
            }
        }
    }
}

/// Two critical outputs with wildly asymmetric SPCF cost: a generated
/// 10-input block whose SPCF takes real stabilization work, and an
/// inverter chain off one input, long enough to be critical but — as a
/// single path that can never settle by the target — costing zero BDD
/// steps (its SPCF is constant one via the min-arrival fast path). With
/// `jobs = 2` each worker owns exactly one output, so a step budget
/// between the two costs trips exactly one worker deterministically.
/// Returns the netlist and the target.
fn asymmetric_netlist(lib: Arc<tm_netlist::library::Library>) -> (Netlist, Delay) {
    let mut spec = GeneratorSpec::sized("asymmetric", 10, 1, 60);
    spec.seed = 0xBADCAB;
    let mut nl = generate(&spec, lib.clone());
    let target = Sta::new(&nl).critical_path_delay() * 0.8;
    let inv = lib.expect("INV");
    let mut cur = nl.inputs()[0];
    for j in 0..(target.units().ceil() as usize + 4) {
        cur = nl.add_gate(inv, &[cur], format!("c{j}"));
    }
    nl.mark_output(cur);
    (nl, target)
}

#[test]
fn shared_budget_trips_exactly_once_and_session_restores() {
    let _scope = tm_telemetry::Scope::enter();
    let (nl, target) = asymmetric_netlist(Arc::new(lsi10k_like()));
    let sta = Sta::new(&nl);
    assert!(
        nl.outputs().iter().all(|&o| sta.arrival(o) > target),
        "both outputs must be critical"
    );

    // Deterministic per-output step costs, measured serially.
    let steps_of = |output: NetId| -> u64 {
        let mut bdd = Bdd::new(nl.inputs().len());
        let _ = short_path_spcf_of_net(&nl, &sta, &mut bdd, output, target);
        bdd.steps_taken()
    };
    let cheap = steps_of(nl.outputs()[1]);
    let expensive = steps_of(nl.outputs()[0]);
    assert!(
        expensive > cheap + 8,
        "the XOR tree ({expensive} steps) must dominate the chain ({cheap} steps)"
    );
    let mid = cheap + (expensive - cheap) / 2;

    // The caller's manager carries a sentinel budget the failed run must
    // hand back untouched.
    let sentinel = Budget::unlimited().with_max_steps(777_777);
    let mut bdd = Bdd::new(nl.inputs().len());
    bdd.set_budget(sentinel);
    let options =
        SpcfOptions::default().with_jobs(2).with_budget(Budget::unlimited().with_max_steps(mid));
    let err = try_spcf_with(Algorithm::ShortPath, &nl, &sta, &mut bdd, target, &options)
        .expect_err("a mid-cost step budget must exhaust the XOR worker");
    assert_eq!(err.resource, Resource::Steps);
    assert_eq!(bdd.budget(), sentinel, "session must restore the caller's budget");

    let snap = tm_telemetry::snapshot();
    assert_eq!(
        snap.counter("resilience.budget.exhausted"),
        Some(1),
        "a shared-budget trip must be counted exactly once"
    );

    // The same computation with the budget lifted succeeds and matches
    // a serial run bit-for-bit.
    let parallel = spcf_with(
        Algorithm::ShortPath,
        &nl,
        &sta,
        &mut bdd,
        target,
        &SpcfOptions::default().with_jobs(2),
    );
    let mut serial_bdd = Bdd::new(nl.inputs().len());
    let serial = spcf_with(
        Algorithm::ShortPath,
        &nl,
        &sta,
        &mut serial_bdd,
        target,
        &SpcfOptions::default(),
    );
    assert_eq!(parallel.jobs, 2);
    assert_eq!(serial.outputs.len(), parallel.outputs.len());
    for (s, p) in serial.outputs.iter().zip(&parallel.outputs) {
        assert_eq!(s.output, p.output);
        assert_eq!(serial_bdd.export(s.spcf), bdd.export(p.spcf));
    }
}
