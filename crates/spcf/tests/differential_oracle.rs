//! Differential oracle suite for the three SPCF engines.
//!
//! Randomized netlists are pushed through `node_based_spcf`,
//! `path_based_spcf`, and `short_path_spcf`, and the results are
//! cross-checked three ways:
//!
//! 1. **Engine agreement**: the two exact engines produce identical
//!    BDDs per critical output, and both are contained in the
//!    node-based over-approximation (`short_path == path_based ⊆
//!    node_based`).
//! 2. **Brute-force exhaustive oracle**: for every input pattern of a
//!    small circuit (≤14 inputs), the floating-mode settle time of
//!    each output is computed by a direct pointwise recursion over
//!    satisfied prime implicants — an independent, non-symbolic code
//!    path — and pattern-by-pattern membership must match the exact
//!    SPCFs.
//! 3. **Event-driven containment**: any output that samples wrong at
//!    the target time in the two-vector event simulation must be a
//!    pattern the exact SPCF contains (a specific previous state can
//!    never be slower than the floating-mode worst case).
//!
//! Runs on the in-repo `tm-testkit` property runner; a failing case
//! prints its seed (reproduce with `TM_PROP_SEED=<seed>`).

use std::sync::Arc;
use tm_logic::{qm, Bdd, Cube};
use tm_netlist::generate::{generate, GeneratorSpec};
use tm_netlist::library::lsi10k_like;
use tm_netlist::{Delay, Netlist};
use tm_sim::patterns::random_vectors;
use tm_sim::timing::TimingSim;
use tm_spcf::common::distinct_fanins;
use tm_spcf::{short_path_spcf, spcf_with, Algorithm, SpcfOptions, SpcfSet};
use tm_sta::Sta;
use tm_testkit::prop::{check, Config, Gen};
use tm_testkit::{prop_assert, prop_assert_eq};

/// Per-gate data for the brute-force oracle, precomputed once per
/// netlist: distinct fanin nets, their quantized pin delays, and the
/// on-/off-set prime implicants of the remapped cell function.
struct OracleGate {
    out: usize,
    fanins: Vec<usize>,
    delays_q: Vec<i64>,
    on: Vec<Cube>,
    off: Vec<Cube>,
}

fn oracle_gates(nl: &Netlist, sta: &Sta<'_>) -> Vec<OracleGate> {
    nl.topo_order()
        .into_iter()
        .map(|gid| {
            let (nets, delays, tt) = distinct_fanins(nl, sta, gid);
            let (on, off) = qm::on_off_primes(&tt);
            OracleGate {
                out: nl.gate(gid).output().index(),
                fanins: nets.iter().map(|n| n.index()).collect(),
                delays_q: delays.iter().map(|d| d.quantize()).collect(),
                on,
                off,
            }
        })
        .collect()
}

/// Floating-mode settle time of every net for one input pattern, in
/// quantized femto-units. Inputs settle at 0; a gate output settles at
/// the earliest time some prime implicant of its final value's cover
/// has every literal settled (Eqn. 1 evaluated pointwise: min over
/// satisfied primes of max over literals of fanin settle + pin delay).
fn brute_settle_times(
    nl: &Netlist,
    gates: &[OracleGate],
    pattern: &[bool],
) -> Vec<i64> {
    let values = nl.eval_all_nets(pattern);
    let mut settle = vec![0i64; nl.num_nets()];
    for g in gates {
        let mut minterm = 0u64;
        for (pos, &f) in g.fanins.iter().enumerate() {
            if values[f] {
                minterm |= 1 << pos;
            }
        }
        let primes = if values[g.out] { &g.on } else { &g.off };
        let mut best: Option<i64> = None;
        for p in primes {
            if !p.eval(minterm) {
                continue;
            }
            let mut t = 0i64;
            for (var, _) in p.literals() {
                t = t.max(settle[g.fanins[var]] + g.delays_q[var]);
            }
            best = Some(best.map_or(t, |b: i64| b.min(t)));
        }
        settle[g.out] = best.expect("a gate's final value is covered by its prime cover");
    }
    settle
}

fn gen_case(g: &mut Gen, inputs: std::ops::Range<usize>) -> (Netlist, f64) {
    let inputs = g.gen_range(inputs);
    let outputs = g.gen_range(2usize..5);
    let gates = g.gen_range(15usize..45);
    let seed = g.gen_range(0u64..1_000_000);
    let frac = g.gen_range(0.55f64..0.95);
    let mut spec = GeneratorSpec::sized(format!("oracle_{seed}"), inputs, outputs, gates);
    spec.seed = seed;
    (generate(&spec, Arc::new(lsi10k_like())), frac)
}

/// Runs all three engines and checks the structural invariants:
/// identical critical-output lists, `short_path == path_based` per
/// output, both contained in `node_based`, and every unlisted output
/// genuinely non-critical. Returns the three sets for further checks.
///
/// Every engine goes through the session driver; `TM_SPCF_JOBS` shards
/// the critical outputs across workers (CI reruns this suite with
/// `TM_SPCF_JOBS=4`), which must not change any result below.
fn engines_agree(
    nl: &Netlist,
    sta: &Sta<'_>,
    bdd: &mut Bdd,
    target: Delay,
) -> Result<(SpcfSet, SpcfSet, SpcfSet), String> {
    let options = SpcfOptions::default().with_jobs(SpcfOptions::jobs_from_env());
    let sp = spcf_with(Algorithm::ShortPath, nl, sta, bdd, target, &options);
    let pb = spcf_with(Algorithm::PathBased, nl, sta, bdd, target, &options);
    let nb = spcf_with(Algorithm::NodeBased, nl, sta, bdd, target, &options);

    let outs = |s: &SpcfSet| s.outputs.iter().map(|o| o.output).collect::<Vec<_>>();
    prop_assert_eq!(outs(&sp), outs(&pb), "critical-output lists differ (sp vs pb)");
    prop_assert_eq!(outs(&sp), outs(&nb), "critical-output lists differ (sp vs nb)");

    for &o in nl.outputs() {
        if sp.spcf_of(o).is_none() {
            prop_assert!(
                sta.arrival(o) <= target,
                "output {} unlisted but arrives after the target",
                nl.net_name(o)
            );
        }
    }

    for (i, o) in sp.outputs.iter().enumerate() {
        prop_assert!(
            o.spcf == pb.outputs[i].spcf,
            "short-path SPCF != path-based SPCF for output {}",
            nl.net_name(o.output)
        );
        prop_assert!(
            bdd.is_subset(o.spcf, nb.outputs[i].spcf),
            "exact SPCF not contained in node-based SPCF for output {}",
            nl.net_name(o.output)
        );
    }

    // Export differential: the same SPCF exported from an independently
    // grown manager must encode byte-identically — the [`PortableBdd`]
    // encoding is structural (the plain ROBDD of the function), never
    // historical (allocation order, complement parity, cache state).
    let mut fresh = Bdd::new(nl.inputs().len());
    let sp2 =
        spcf_with(Algorithm::ShortPath, nl, sta, &mut fresh, target, &SpcfOptions::default());
    for (a, b) in sp.outputs.iter().zip(&sp2.outputs) {
        prop_assert!(
            bdd.export(a.spcf) == fresh.export(b.spcf),
            "PortableBdd export differs between managers for output {}",
            nl.net_name(a.output)
        );
    }
    Ok((sp, pb, nb))
}

/// Exhaustive check of one circuit against the brute-force oracle:
/// every pattern's exact-SPCF membership equals `settle > target`, and
/// the node-based set contains every genuinely slow pattern.
fn exhaustive_matches_oracle(
    nl: &Netlist,
    sta: &Sta<'_>,
    bdd: &Bdd,
    target: Delay,
    sp: &SpcfSet,
    nb: &SpcfSet,
) -> Result<(), String> {
    let qt = target.quantize();
    let gates = oracle_gates(nl, sta);
    let n = nl.inputs().len();
    let mut assignment = vec![false; n];
    for m in 0..(1u64 << n) {
        for (i, a) in assignment.iter_mut().enumerate() {
            *a = (m >> i) & 1 == 1;
        }
        let settle = brute_settle_times(nl, &gates, &assignment);
        for o in &sp.outputs {
            let slow = settle[o.output.index()] > qt;
            prop_assert_eq!(
                bdd.eval(o.spcf, &assignment),
                slow,
                "exact SPCF disagrees with brute-force oracle: output {} pattern {m:#b} \
                 (settle {} vs target {qt})",
                nl.net_name(o.output),
                settle[o.output.index()]
            );
        }
        for o in &nb.outputs {
            if settle[o.output.index()] > qt {
                prop_assert!(
                    bdd.eval(o.spcf, &assignment),
                    "node-based SPCF misses a slow pattern: output {} pattern {m:#b}",
                    nl.net_name(o.output)
                );
            }
        }
    }
    Ok(())
}

/// ≥50 randomized small netlists: engine agreement plus exhaustive
/// brute-force agreement over the full input space.
#[test]
fn differential_oracle_small_exhaustive() {
    check(
        "differential_oracle_small_exhaustive",
        &Config::with_cases(50),
        |g| gen_case(g, 5..9),
        |(nl, frac)| {
            let sta = Sta::new(nl);
            let target = sta.critical_path_delay() * *frac;
            let mut bdd = Bdd::new(nl.inputs().len());
            let (sp, _pb, nb) = engines_agree(nl, &sta, &mut bdd, target)?;
            exhaustive_matches_oracle(nl, &sta, &bdd, target, &sp, &nb)
        },
    );
}

/// A handful of wider circuits (up to 14 inputs — the exhaustive
/// ceiling named in the roadmap): same engine-agreement and
/// brute-force-agreement invariants over all 2^n patterns.
#[test]
fn differential_oracle_larger_circuits() {
    check(
        "differential_oracle_larger_circuits",
        &Config::with_cases(6),
        |g| gen_case(g, 10..15),
        |(nl, frac)| {
            let sta = Sta::new(nl);
            let target = sta.critical_path_delay() * *frac;
            let mut bdd = Bdd::new(nl.inputs().len());
            let (sp, _pb, nb) = engines_agree(nl, &sta, &mut bdd, target)?;
            exhaustive_matches_oracle(nl, &sta, &bdd, target, &sp, &nb)
        },
    );
}

/// Event-driven simulation is a lower bound on the floating-mode
/// oracle, and any output that samples wrong at the target is a
/// pattern the exact SPCF contains.
#[test]
fn event_sim_contained_in_spcf() {
    check(
        "event_sim_contained_in_spcf",
        &Config::with_cases(25),
        |g| {
            let case = gen_case(g, 5..9);
            let vec_seed = g.gen_range(0u64..100_000);
            (case.0, case.1, vec_seed)
        },
        |(nl, frac, vec_seed)| {
            let sta = Sta::new(nl);
            let target = sta.critical_path_delay() * *frac;
            let qt = target.quantize();
            let mut bdd = Bdd::new(nl.inputs().len());
            let sp = short_path_spcf(nl, &sta, &mut bdd, target);

            let gates = oracle_gates(nl, &sta);
            let sim = TimingSim::new(nl);
            let vectors = random_vectors(nl.inputs().len(), 16, *vec_seed);
            for pair in vectors.windows(2) {
                let r = sim.transition(&pair[0], &pair[1], target);
                let settle = brute_settle_times(nl, &gates, &pair[1]);
                for (pos, &o) in nl.outputs().iter().enumerate() {
                    prop_assert!(
                        r.output_settle[pos].quantize() <= settle[o.index()],
                        "event sim settled output {} after the floating-mode bound",
                        nl.net_name(o)
                    );
                    if r.sampled[pos] != r.settled[pos] {
                        let spcf = sp
                            .spcf_of(o)
                            .ok_or_else(|| format!("erring output {} has no SPCF", nl.net_name(o)))?;
                        prop_assert!(
                            bdd.eval(spcf, &pair[1]),
                            "output {} sampled wrong at the target but its pattern is \
                             outside the exact SPCF (settle {} vs target {qt})",
                            nl.net_name(o),
                            settle[o.index()]
                        );
                    }
                }
            }
            Ok(())
        },
    );
}
