//! Telemetry-backed regression tests for the SPCF engines' cost model:
//! the short-path algorithm's memoization must actually pay off against
//! the path-based engine's full waveform materialization (the Table 1
//! runtime claim, asserted on counters instead of wall clock).

use std::sync::Arc;
use tm_logic::Bdd;
use tm_netlist::circuits::comparator2;
use tm_netlist::generate::{generate, GeneratorSpec};
use tm_netlist::library::lsi10k_like;
use tm_netlist::Delay;
use tm_spcf::{path_based_spcf, short_path_spcf};
use tm_sta::Sta;

#[test]
fn short_path_memoizes_and_beats_waveform_node_count() {
    let lib = Arc::new(lsi10k_like());
    // Six speed chains put several same-length tails on one shared NAND
    // trunk, so multiple critical outputs query the trunk at identical
    // quantized offsets — the (signal, time, phase) collisions the memo
    // exists to catch. (With the default single chain only one output is
    // ever critical and every memo key is unique.)
    let mut spec = GeneratorSpec::sized("telem12", 12, 6, 90);
    spec.speed_chains = 6;
    spec.chain_extra_depth = 6;
    let nl = generate(&spec, lib);
    let sta = Sta::new(&nl);
    let target = sta.critical_path_delay() * 0.9;

    let _scope = tm_telemetry::Scope::enter();
    let mut bdd = Bdd::new(nl.inputs().len());
    let sp = short_path_spcf(&nl, &sta, &mut bdd, target);
    let pb = path_based_spcf(&nl, &sta, &mut bdd, target);
    assert!(!sp.outputs.is_empty(), "need critical outputs for a meaningful test");
    for (a, b) in sp.outputs.iter().zip(&pb.outputs) {
        assert_eq!(a.spcf, b.spcf, "exact engines must agree");
    }

    let snap = tm_telemetry::snapshot();
    let hits = snap.counter("spcf.short_path.memo_hit").unwrap_or(0);
    let misses = snap.counter("spcf.short_path.memo_miss").expect("misses recorded");
    let waveform_nodes = snap
        .counter("spcf.path_based.waveform_nodes")
        .expect("waveform nodes recorded");

    // Reconvergent fanout means the recursion revisits (signal, time,
    // phase) triples: the memo must be earning hits.
    assert!(hits > 0, "memo hit-rate is zero on a reconvergent netlist");

    // The core §3 cost claim: short-path evaluates only the (signal,
    // time, phase) points its target query reaches, strictly fewer than
    // the breakpoints the path-based engine materializes for ALL times.
    assert!(
        misses < waveform_nodes,
        "short-path evaluated {misses} stab points, \
         path-based materialized only {waveform_nodes} waveform nodes"
    );

    // Sanity on the remaining engine counters.
    let stab_calls = snap.counter("spcf.short_path.stab_calls").unwrap_or(0);
    assert!(stab_calls >= hits + misses, "every memo probe is a stab call");
    let entries = snap.gauge("spcf.short_path.memo_entries").expect("memo entries gauge");
    assert_eq!(entries, misses as f64, "each miss inserts exactly one memo entry");
}

/// Golden metrics snapshot for the paper's Fig. 2 worked example
/// (2-bit comparator, `Δ = 7`, `Δ_y = 6.3`). The engine's work on this
/// tiny fixed circuit is fully deterministic, so the counters are pinned
/// exactly: any drift means the recursion explores a different set of
/// `(signal, time, phase)` points or the BDD manager allocates
/// differently — both worth a deliberate review, not a silent pass.
#[test]
fn comparator2_golden_metrics() {
    let lib = Arc::new(lsi10k_like());
    let nl = comparator2(lib);
    let sta = Sta::new(&nl);

    let _scope = tm_telemetry::Scope::enter();
    let mut bdd = Bdd::new(nl.inputs().len());
    let set = short_path_spcf(&nl, &sta, &mut bdd, Delay::new(6.3));
    assert_eq!(set.critical_pattern_count(&bdd), 10.0, "paper: 10 of 16 patterns");

    let snap = tm_telemetry::snapshot();
    assert_eq!(
        snap.gauge("bdd.nodes"),
        Some(bdd.node_count() as f64),
        "gauge mirrors the live manager"
    );
    // 7 nodes (shared terminal + 6 internal — complement edges roughly
    // halve the plain ROBDD's 13), 8 memoized (signal, time, phase)
    // points, 18 stab() invocations.
    assert_eq!(snap.gauge("bdd.nodes"), Some(7.0));
    assert_eq!(snap.gauge("spcf.short_path.memo_entries"), Some(8.0));
    assert_eq!(snap.counter("spcf.short_path.stab_calls"), Some(18));
}
