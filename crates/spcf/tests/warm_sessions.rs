//! Warm-session suite: retargeting one [`WarmSession`] down a
//! descending Δ_y ladder must be a pure performance optimization.
//!
//! 1. **Warm == cold, bit for bit**: every ladder point of a warm
//!    session produces the same critical-output list, the same
//!    pattern counts, and byte-identical [`Bdd::export`] encodings as
//!    a cold run with a fresh manager at that target — for every
//!    engine, even though the warm manager carries the accumulated
//!    nodes and caches of every previous point.
//! 2. **Monotone containment**: for `Δ' ≥ Δ`, `Σ_y(Δ') ⊆ Σ_y(Δ)` and
//!    the critical-output set only grows as the target descends — the
//!    property the warm memo reuse relies on.
//! 3. **Budget hygiene**: a session restores the manager's previous
//!    budget on drop, and a budget-tripped retarget leaves the session
//!    usable for the cold fallback path.

use std::collections::HashMap;
use std::sync::Arc;
use tm_logic::Bdd;
use tm_netlist::generate::{generate, GeneratorSpec};
use tm_netlist::library::lsi10k_like;
use tm_netlist::{NetId, Netlist};
use tm_resilience::Budget;
use tm_spcf::{spcf_with, Algorithm, SpcfOptions, WarmSession};
use tm_sta::Sta;

/// Seeded 12-input netlists with several outputs each, sized so the
/// short-path memo sees real sharing across targets.
fn ladder_suite() -> Vec<Netlist> {
    let lib = Arc::new(lsi10k_like());
    (0..6u64)
        .map(|i| {
            let mut spec = GeneratorSpec::sized(
                format!("ladder_{i}"),
                12,
                2 + (i as usize % 3),
                40 + 6 * i as usize,
            );
            spec.seed = 0x1ADDE12 + 101 * i;
            generate(&spec, lib.clone())
        })
        .collect()
}

/// The descending protection-band ladder the sweep binaries walk.
const FRACTIONS: [f64; 4] = [0.95, 0.85, 0.70, 0.55];

#[test]
fn warm_retarget_matches_cold_runs_bit_for_bit() {
    for nl in ladder_suite() {
        let sta = Sta::new(&nl);
        let delta = sta.critical_path_delay();
        for algorithm in [Algorithm::ShortPath, Algorithm::PathBased, Algorithm::NodeBased] {
            let mut warm_bdd = Bdd::new(nl.inputs().len());
            let mut session =
                WarmSession::new(algorithm, &nl, &sta, &mut warm_bdd, Budget::unlimited());
            for frac in FRACTIONS {
                let target = delta * frac;
                let warm = session.retarget(target);

                let mut cold_bdd = Bdd::new(nl.inputs().len());
                let cold = spcf_with(
                    algorithm,
                    &nl,
                    &sta,
                    &mut cold_bdd,
                    target,
                    &SpcfOptions::default(),
                );

                let warm_outs: Vec<NetId> = warm.outputs.iter().map(|o| o.output).collect();
                let cold_outs: Vec<NetId> = cold.outputs.iter().map(|o| o.output).collect();
                assert_eq!(
                    warm_outs, cold_outs,
                    "{}/{algorithm:?}@{frac}: critical-output lists differ",
                    nl.name()
                );
                for (w, c) in warm.outputs.iter().zip(&cold.outputs) {
                    assert_eq!(
                        session.bdd().export(w.spcf),
                        cold_bdd.export(c.spcf),
                        "{}/{algorithm:?}@{frac}: exports differ on {:?}",
                        nl.name(),
                        w.output
                    );
                }
            }
            assert_eq!(session.retargets(), FRACTIONS.len() as u64);
        }
    }
}

#[test]
fn descending_ladder_is_monotone() {
    for nl in ladder_suite() {
        let sta = Sta::new(&nl);
        let delta = sta.critical_path_delay();
        let mut bdd = Bdd::new(nl.inputs().len());
        let mut session =
            WarmSession::new(Algorithm::ShortPath, &nl, &sta, &mut bdd, Budget::unlimited());
        let mut prev: HashMap<NetId, tm_logic::bdd::BddRef> = HashMap::new();
        for frac in FRACTIONS {
            let spcf = session.retarget(delta * frac);
            let current: HashMap<_, _> =
                spcf.outputs.iter().map(|o| (o.output, o.spcf)).collect();
            // Σ_y(Δ') ⊆ Σ_y(Δ) for Δ' ≥ Δ: every output critical at the
            // looser target stays critical, with a superset SPCF, at
            // the tighter one.
            for (net, sigma_loose) in &prev {
                let sigma_tight = current
                    .get(net)
                    .unwrap_or_else(|| panic!("{}: output {net:?} lost criticality", nl.name()));
                assert!(
                    session.bdd_mut().is_subset(*sigma_loose, *sigma_tight),
                    "{}@{frac}: SPCF shrank on {net:?}",
                    nl.name()
                );
            }
            assert!(current.len() >= prev.len(), "{}: critical-output set shrank", nl.name());
            prev = current;
        }
    }
}

/// Regression for the ascending-step hazard: the engines' `retarget`
/// fast paths assume a *descending* ladder (memoized answers only gain
/// stabilization queries as the target tightens), and historically the
/// session trusted the caller to sort. An unsorted ladder silently
/// violated that contract. The session now detects an ascending step
/// and rebuilds the engine, so any call order must match cold runs bit
/// for bit — pinned here for every engine on an adversarially shuffled
/// ladder that ascends, descends, and revisits.
#[test]
fn unsorted_ladder_matches_cold_runs_bit_for_bit() {
    let unsorted = [0.70, 0.95, 0.55, 0.85, 0.55, 0.95];
    for nl in ladder_suite() {
        let sta = Sta::new(&nl);
        let delta = sta.critical_path_delay();
        for algorithm in [Algorithm::ShortPath, Algorithm::PathBased, Algorithm::NodeBased] {
            let mut warm_bdd = Bdd::new(nl.inputs().len());
            let mut session =
                WarmSession::new(algorithm, &nl, &sta, &mut warm_bdd, Budget::unlimited());
            for frac in unsorted {
                let target = delta * frac;
                let warm = session.retarget(target);

                let mut cold_bdd = Bdd::new(nl.inputs().len());
                let cold = spcf_with(
                    algorithm,
                    &nl,
                    &sta,
                    &mut cold_bdd,
                    target,
                    &SpcfOptions::default(),
                );

                let warm_outs: Vec<NetId> = warm.outputs.iter().map(|o| o.output).collect();
                let cold_outs: Vec<NetId> = cold.outputs.iter().map(|o| o.output).collect();
                assert_eq!(
                    warm_outs, cold_outs,
                    "{}/{algorithm:?}@{frac}: critical-output lists differ on unsorted ladder",
                    nl.name()
                );
                for (w, c) in warm.outputs.iter().zip(&cold.outputs) {
                    assert_eq!(
                        session.bdd().export(w.spcf),
                        cold_bdd.export(c.spcf),
                        "{}/{algorithm:?}@{frac}: unsorted-ladder exports differ on {:?}",
                        nl.name(),
                        w.output
                    );
                }
            }
        }
    }
}

#[test]
fn warm_session_budget_hygiene() {
    let lib = Arc::new(lsi10k_like());
    let nl = generate(&GeneratorSpec::sized("hygiene", 12, 3, 60), lib);
    let sta = Sta::new(&nl);
    let delta = sta.critical_path_delay();

    let mut bdd = Bdd::new(nl.inputs().len());
    let outer = Budget::unlimited().with_max_steps(1 << 40);
    bdd.set_budget(outer);
    {
        let tight = Budget::unlimited().with_max_bdd_nodes(8);
        let mut session = WarmSession::new(Algorithm::ShortPath, &nl, &sta, &mut bdd, tight);
        let err = session.try_retarget(delta * 0.55);
        assert!(err.is_err(), "an 8-node budget cannot fit a 12-input SPCF");
    }
    // Drop restored the budget the caller had installed.
    assert_eq!(bdd.budget(), outer);

    // The same manager still works cold after the tripped session.
    let spcf = spcf_with(
        Algorithm::ShortPath,
        &nl,
        &sta,
        &mut bdd,
        delta * 0.55,
        &SpcfOptions::default(),
    );
    assert!(!spcf.outputs.is_empty());
}
