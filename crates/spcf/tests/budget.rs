//! Budgeted-engine behavior: typed exhaustion instead of runaway
//! computation, and soundness of what a budget can never change.

use std::sync::Arc;
use tm_logic::Bdd;
use tm_netlist::circuits::ripple_adder;
use tm_netlist::generate::{generate, GeneratorSpec};
use tm_netlist::library::lsi10k_like;
use tm_resilience::{Budget, Resource};
use tm_spcf::{
    try_node_based_spcf, try_path_based_spcf, try_short_path_spcf,
};
use tm_sta::Sta;

#[test]
fn unlimited_budget_matches_infallible_api() {
    let nl = ripple_adder(Arc::new(lsi10k_like()), 3);
    let sta = Sta::new(&nl);
    let target = sta.critical_path_delay() * 0.9;
    let mut bdd = Bdd::new(nl.inputs().len());
    let a = try_short_path_spcf(&nl, &sta, &mut bdd, target, Budget::unlimited()).unwrap();
    let b = tm_spcf::short_path_spcf(&nl, &sta, &mut bdd, target);
    assert_eq!(a.outputs.len(), b.outputs.len());
    for (x, y) in a.outputs.iter().zip(&b.outputs) {
        assert_eq!(x.output, y.output);
        assert_eq!(x.spcf, y.spcf);
    }
}

#[test]
fn tiny_memo_budget_exhausts_short_path() {
    let _scope = tm_telemetry::Scope::enter();
    let lib = Arc::new(lsi10k_like());
    let nl = generate(&GeneratorSpec::sized("budget_sp", 12, 4, 56), lib.clone());
    let sta = Sta::new(&nl);
    let target = sta.critical_path_delay() * 0.9;
    let mut bdd = Bdd::new(nl.inputs().len());
    let budget = Budget::unlimited().with_max_memo_entries(2);
    let err = try_short_path_spcf(&nl, &sta, &mut bdd, target, budget)
        .expect_err("a 2-entry memo cannot cover a 56-gate netlist");
    assert_eq!(err.resource, Resource::MemoEntries);
    assert_eq!(err.limit, 2);
    let snap = tm_telemetry::snapshot();
    assert!(snap.counter("resilience.budget.exhausted").unwrap_or(0) >= 1);
    // The engine restored the manager's own (unlimited) budget.
    assert!(bdd.budget().is_unlimited());
}

#[test]
fn tiny_node_budget_exhausts_all_engines() {
    let lib = Arc::new(lsi10k_like());
    let nl = generate(&GeneratorSpec::sized("budget_all", 12, 4, 56), lib.clone());
    let sta = Sta::new(&nl);
    let target = sta.critical_path_delay() * 0.9;
    let budget = Budget::unlimited().with_max_bdd_nodes(8);

    let mut b1 = Bdd::new(nl.inputs().len());
    assert!(try_short_path_spcf(&nl, &sta, &mut b1, target, budget).is_err());
    let mut b2 = Bdd::new(nl.inputs().len());
    assert!(try_path_based_spcf(&nl, &sta, &mut b2, target, budget).is_err());
    let mut b3 = Bdd::new(nl.inputs().len());
    assert!(try_node_based_spcf(&nl, &sta, &mut b3, target, budget).is_err());
    // The cap really held: no manager grew past the limit.
    for b in [&b1, &b2, &b3] {
        assert!(b.node_count() as u64 <= 8, "{} nodes escaped the cap", b.node_count());
    }
}

#[test]
fn waveform_budget_exhausts_path_based_only() {
    // max_memo_entries caps the short-path memo AND the path-based
    // waveform store; the node-based pass has neither and must succeed
    // under the same budget — the property the degradation ladder
    // relies on.
    let lib = Arc::new(lsi10k_like());
    let nl = generate(&GeneratorSpec::sized("budget_nb", 12, 4, 56), lib.clone());
    let sta = Sta::new(&nl);
    let target = sta.critical_path_delay() * 0.9;
    let budget = Budget::unlimited().with_max_memo_entries(4);

    let mut b1 = Bdd::new(nl.inputs().len());
    assert!(try_path_based_spcf(&nl, &sta, &mut b1, target, budget).is_err());
    let mut b2 = Bdd::new(nl.inputs().len());
    let nb = try_node_based_spcf(&nl, &sta, &mut b2, target, budget)
        .expect("node-based has no memo to exhaust");
    assert!(!nb.outputs.is_empty());
}
