//! The engine session and the parallel per-output SPCF driver
//! (DESIGN.md §8).
//!
//! Every SPCF algorithm computes the same thing — one characteristic
//! function per critical primary output — and used to duplicate the
//! same scaffolding three times: budget install/restore on the shared
//! BDD manager, gate-prime caches, lazily built global net functions,
//! telemetry spans, and the criticality filter. [`EngineSession`] owns
//! that per-run state once; each algorithm shrinks to an [`SpcfEngine`]
//! implementation answering `compute_output` queries against the
//! session's [`EngineCx`].
//!
//! On top of the session sits the parallel driver
//! ([`try_spcf_with`]): per-output SPCFs are independent, so critical
//! outputs are sharded round-robin across `std::thread::scope` workers.
//! Each worker owns a private BDD manager seeded over the
//! cone-of-influence of its shard, charges its consumption into one
//! [`SharedBudget`], and collects telemetry into its thread-local
//! registry; on join the parent absorbs the registries in worker order
//! and re-expresses every worker's results in the caller's manager via
//! [`tm_logic::bdd::PortableBdd`] transfer, iterating critical outputs
//! in netlist order — which is why `jobs = 1` and `jobs = N` produce
//! bit-identical [`SpcfSet`] contents.

use crate::common::{Algorithm, GatePrimes, LazyGlobals, OutputSpcf, SpcfSet};
use std::collections::HashMap;
use std::time::Instant;
use tm_logic::bdd::{Bdd, BddRef, PortableBdd};
use tm_netlist::netlist::Driver;
use tm_netlist::{Delay, NetId, Netlist};
use tm_resilience::{Budget, Exhausted, SharedBudget};
use tm_sta::Sta;
use tm_telemetry::Snapshot;

/// Environment variable the bench binaries and the differential oracle
/// suite read as the default worker count (see
/// [`SpcfOptions::jobs_from_env`]).
pub const JOBS_ENV: &str = "TM_SPCF_JOBS";

/// Driver configuration: how the SPCF of a circuit is computed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpcfOptions {
    /// Worker threads to shard critical outputs across (1 = serial in
    /// the caller's manager). Results are identical for every value.
    pub jobs: usize,
    /// Deterministic computation budget for the whole run, shared
    /// across workers when `jobs > 1`.
    pub budget: Budget,
}

impl Default for SpcfOptions {
    fn default() -> Self {
        SpcfOptions { jobs: 1, budget: Budget::unlimited() }
    }
}

impl SpcfOptions {
    /// The worker count named by the `TM_SPCF_JOBS` environment
    /// variable, defaulting to 1 (serial) when unset or unparsable.
    pub fn jobs_from_env() -> usize {
        std::env::var(JOBS_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&j| j >= 1)
            .unwrap_or(1)
    }

    /// Builder: sets the worker count.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Builder: sets the computation budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }
}

/// The per-query view an [`SpcfEngine`] computes against: the circuit,
/// its timing, the target, and the session-owned caches. Fields are
/// public so engines can split borrows (`cx.globals.try_of(cx.netlist,
/// cx.bdd, net)` borrows three disjoint fields).
pub struct EngineCx<'n, 'c> {
    /// The circuit under analysis.
    pub netlist: &'n Netlist,
    /// Static timing of `netlist`.
    pub sta: &'c Sta<'n>,
    /// Target arrival time `Δ_y`.
    pub target: Delay,
    /// Budget for engine-side tables (the manager enforces node/step
    /// limits itself; see [`Bdd::set_budget`]).
    pub budget: Budget,
    /// The manager every returned [`BddRef`] lives in.
    pub bdd: &'c mut Bdd,
    /// Shared per-cell prime-implicant cache.
    pub primes: &'c mut GatePrimes,
    /// Lazily built global net functions over the primary inputs.
    pub globals: &'c mut LazyGlobals,
}

/// One SPCF algorithm, reduced to its essence: given a prepared
/// context, produce the SPCF of one critical output.
///
/// Lifecycle (driven by [`EngineSession::run`] and the parallel
/// workers): `prepare` once with the full list of target outputs (the
/// cone-of-influence restriction for topological engines), then
/// `compute_output` per output in order, then `publish_metrics` —
/// always, even after an exhaustion, so partial work is visible.
pub trait SpcfEngine {
    /// Which algorithm this engine implements.
    fn algorithm(&self) -> Algorithm;

    /// One-time per-run setup: arrival tables, waveforms, on-time
    /// functions — restricted to the fanin cones of `targets` where the
    /// algorithm allows it.
    fn prepare(
        &mut self,
        cx: &mut EngineCx<'_, '_>,
        targets: &[NetId],
    ) -> Result<(), Exhausted> {
        let _ = (cx, targets);
        Ok(())
    }

    /// Re-aims an already-prepared engine at `cx.target` (the
    /// warm-session path; see [`WarmSession`]). The default is a full
    /// re-preparation — always correct, never fast. Engines whose
    /// prepared state does not depend on the target override this to
    /// skip the redundant rebuild: the short-path engine's arrival
    /// tables, gate primes *and* stabilization memo are all
    /// target-independent, and the path-based engine's waveforms cover
    /// every time at once.
    fn retarget(
        &mut self,
        cx: &mut EngineCx<'_, '_>,
        targets: &[NetId],
    ) -> Result<(), Exhausted> {
        self.prepare(cx, targets)
    }

    /// The SPCF of `output` at `cx.target`, over `cx.bdd`.
    fn compute_output(
        &mut self,
        cx: &mut EngineCx<'_, '_>,
        output: NetId,
    ) -> Result<BddRef, Exhausted>;

    /// Publishes the engine's counters (and the manager's ``bdd.*``
    /// stats) to `tm-telemetry`. Called exactly once per session, after
    /// the last `compute_output` — succeeded or not.
    fn publish_metrics(&mut self, cx: &mut EngineCx<'_, '_>) {
        let _ = cx;
    }

    /// Lifetime count of the engine's memo-table entries (stabilization
    /// memo, waveform breakpoints). The parallel driver charges its
    /// growth against [`SharedBudget`]; engines without a memo report 0.
    fn memo_entries(&self) -> u64 {
        0
    }
}

/// A fresh engine for `algorithm`. The box is `Send` so long-lived
/// holders (the serving layer's session pool) can migrate between
/// worker threads — every engine is plain owned data.
pub fn engine_for(algorithm: Algorithm) -> Box<dyn SpcfEngine + Send> {
    match algorithm {
        Algorithm::ShortPath => Box::new(crate::short_path::ShortPathEngine::default()),
        Algorithm::PathBased => Box::new(crate::path_based::PathBasedEngine::default()),
        Algorithm::NodeBased => Box::new(crate::node_based::NodeBasedEngine::default()),
        Algorithm::Conservative => Box::new(crate::conservative::ConservativeEngine),
    }
}

/// The telemetry span name of an algorithm's session.
fn span_name(algorithm: Algorithm) -> &'static str {
    match algorithm {
        Algorithm::ShortPath => "spcf.short_path",
        Algorithm::PathBased => "spcf.path_based",
        Algorithm::NodeBased => "spcf.node_based",
        Algorithm::Conservative => "spcf.conservative",
    }
}

/// The per-output latency histogram of an algorithm, if it has one
/// (the conservative engine does no per-output work worth timing).
fn output_ns_metric(algorithm: Algorithm) -> Option<&'static str> {
    match algorithm {
        Algorithm::ShortPath => Some("spcf.short_path.output_ns"),
        Algorithm::PathBased => Some("spcf.path_based.output_ns"),
        Algorithm::NodeBased => Some("spcf.node_based.output_ns"),
        Algorithm::Conservative => None,
    }
}

/// The outputs whose structural arrival exceeds `target`, in netlist
/// output order — the criticality filter every engine shares.
pub fn critical_outputs(netlist: &Netlist, sta: &Sta<'_>, target: Delay) -> Vec<NetId> {
    netlist.outputs().iter().copied().filter(|&o| sta.arrival(o) > target).collect()
}

/// Membership mask of the transitive fanin cones of `targets` (indexed
/// by `NetId::index`). Topological engines restrict their sweep to it,
/// which is what makes per-worker managers cheaper than `jobs` copies
/// of the full circuit.
pub fn cone_nets(netlist: &Netlist, targets: &[NetId]) -> Vec<bool> {
    let mut in_cone = vec![false; netlist.num_nets()];
    let mut stack: Vec<NetId> = targets.to_vec();
    while let Some(net) = stack.pop() {
        if std::mem::replace(&mut in_cone[net.index()], true) {
            continue;
        }
        if let Driver::Gate(gid) = netlist.driver(net) {
            stack.extend(netlist.gate(gid).inputs().iter().copied());
        }
    }
    in_cone
}

/// One SPCF run: the state every engine needs, owned in one place.
///
/// Construction installs `budget` on the manager; `Drop` restores the
/// previous budget on every exit path (success, exhaustion, panic) —
/// the install/restore protocol the engines used to hand-roll.
pub struct EngineSession<'n, 'c> {
    netlist: &'n Netlist,
    sta: &'c Sta<'n>,
    bdd: &'c mut Bdd,
    target: Delay,
    budget: Budget,
    prev_budget: Budget,
    primes: GatePrimes,
    globals: LazyGlobals,
    start: Instant,
}

impl<'n, 'c> EngineSession<'n, 'c> {
    /// Opens a session: validates the netlist/STA/manager triple and
    /// installs `budget` on the manager.
    ///
    /// # Panics
    ///
    /// Panics if `sta` analyzes a different netlist or the manager has
    /// fewer variables than the netlist has inputs.
    pub fn new(
        netlist: &'n Netlist,
        sta: &'c Sta<'n>,
        bdd: &'c mut Bdd,
        target: Delay,
        budget: Budget,
    ) -> Self {
        assert!(std::ptr::eq(sta.netlist(), netlist), "STA must analyze the same netlist");
        assert!(bdd.num_vars() >= netlist.inputs().len(), "BDD manager too narrow");
        let prev_budget = bdd.budget();
        bdd.set_budget(budget);
        EngineSession {
            netlist,
            sta,
            bdd,
            target,
            budget,
            prev_budget,
            primes: GatePrimes::new(),
            globals: LazyGlobals::new(netlist),
            start: Instant::now(),
        }
    }

    /// The session's critical outputs, in netlist output order.
    pub fn critical_outputs(&self) -> Vec<NetId> {
        critical_outputs(self.netlist, self.sta, self.target)
    }

    fn cx(&mut self) -> EngineCx<'n, '_> {
        EngineCx {
            netlist: self.netlist,
            sta: self.sta,
            target: self.target,
            budget: self.budget,
            bdd: &mut *self.bdd,
            primes: &mut self.primes,
            globals: &mut self.globals,
        }
    }

    fn compute(
        &mut self,
        engine: &mut dyn SpcfEngine,
        targets: &[NetId],
    ) -> Result<Vec<OutputSpcf>, Exhausted> {
        {
            let _prep = tm_telemetry::flight::phase_with(
                "spcf.prepare",
                &[("targets", targets.len() as f64)],
            );
            engine.prepare(&mut self.cx(), targets)?;
        }
        let metric = output_ns_metric(engine.algorithm());
        let mut outputs = Vec::with_capacity(targets.len());
        for &o in targets {
            let t0 = Instant::now();
            let _ev =
                tm_telemetry::flight::phase_with("spcf.output", &[("net", o.index() as f64)]);
            let spcf = engine.compute_output(&mut self.cx(), o)?;
            if let Some(m) = metric {
                tm_telemetry::histogram_record(m, t0.elapsed().as_nanos() as f64);
            }
            outputs.push(OutputSpcf { output: o, spcf });
        }
        Ok(outputs)
    }

    /// Runs `engine` over every critical output of the session.
    pub fn run(mut self, engine: &mut dyn SpcfEngine) -> Result<SpcfSet, Exhausted> {
        let _span = tm_telemetry::span::enter(span_name(engine.algorithm()));
        let targets = self.critical_outputs();
        let result = self.compute(engine, &targets);
        engine.publish_metrics(&mut self.cx());
        Ok(SpcfSet::new(
            engine.algorithm(),
            self.target,
            result?,
            self.start.elapsed(),
            1,
        ))
    }

    /// Runs `engine` for a single (not necessarily output) net —
    /// diagnostics and tests.
    pub fn run_net(
        mut self,
        engine: &mut dyn SpcfEngine,
        net: NetId,
    ) -> Result<BddRef, Exhausted> {
        let targets = [net];
        let r = (|| {
            engine.prepare(&mut self.cx(), &targets)?;
            engine.compute_output(&mut self.cx(), net)
        })();
        engine.publish_metrics(&mut self.cx());
        r
    }
}

impl Drop for EngineSession<'_, '_> {
    fn drop(&mut self) {
        self.bdd.set_budget(self.prev_budget);
    }
}

/// A reusable SPCF session: one manager, one engine, one prime cache,
/// one global-BDD cache — queried at a *ladder* of Δ_y targets.
///
/// The protection-band sweep, `table1`/`table2`, and the DVS explorer
/// all evaluate the same circuit at many targets. A cold
/// [`EngineSession`] per point rebuilds everything; a warm session
/// keeps it, because almost all of it is target-independent:
///
/// - the manager's unique table and computed caches (every retarget's
///   BDD work lands on warm caches);
/// - gate primes and lazily built global net functions;
/// - the short-path engine's stabilization memo — `stab(s, t, v)` never
///   mentions Δ_y, so a descending ladder re-derives each point from
///   memoized stabilization sets. This is the computational face of the
///   paper's monotonicity `Σ_y(Δ') ⊆ Σ_y(Δ)` for `Δ' ≥ Δ`: tightening
///   the target only *adds* stabilization queries at earlier times; all
///   previously answered ones are reused verbatim.
///
/// Engines opt into reuse via [`SpcfEngine::retarget`]; engines with
/// target-dependent state (node-based required times) re-prepare and
/// still benefit from the warm manager and caches.
///
/// Construction installs `budget` on the manager; `Drop` restores the
/// previous budget and publishes the engine's telemetry once (lifetime
/// engine counters must not be re-added per retarget).
pub struct WarmSession<'n, 'c> {
    netlist: &'n Netlist,
    sta: &'c Sta<'n>,
    bdd: &'c mut Bdd,
    budget: Budget,
    prev_budget: Budget,
    engine: Box<dyn SpcfEngine + Send>,
    primes: GatePrimes,
    globals: LazyGlobals,
    retargets: u64,
    last_target: Option<Delay>,
}

impl<'n, 'c> WarmSession<'n, 'c> {
    /// Opens a warm session for `algorithm`: validates the
    /// netlist/STA/manager triple and installs `budget` on the manager
    /// for the session's lifetime.
    ///
    /// # Panics
    ///
    /// Panics if `sta` analyzes a different netlist or the manager has
    /// fewer variables than the netlist has inputs.
    pub fn new(
        algorithm: Algorithm,
        netlist: &'n Netlist,
        sta: &'c Sta<'n>,
        bdd: &'c mut Bdd,
        budget: Budget,
    ) -> Self {
        assert!(std::ptr::eq(sta.netlist(), netlist), "STA must analyze the same netlist");
        assert!(bdd.num_vars() >= netlist.inputs().len(), "BDD manager too narrow");
        let prev_budget = bdd.budget();
        bdd.set_budget(budget);
        WarmSession {
            netlist,
            sta,
            bdd,
            budget,
            prev_budget,
            engine: engine_for(algorithm),
            primes: GatePrimes::new(),
            globals: LazyGlobals::new(netlist),
            retargets: 0,
            last_target: None,
        }
    }

    /// The algorithm this session runs.
    pub fn algorithm(&self) -> Algorithm {
        self.engine.algorithm()
    }

    /// The session's manager (for pattern counts, subset checks, …).
    /// Returned references stay valid for the whole session.
    pub fn bdd(&self) -> &Bdd {
        self.bdd
    }

    /// Mutable access to the session's manager.
    pub fn bdd_mut(&mut self) -> &mut Bdd {
        self.bdd
    }

    /// Evaluates the SPCF of every output critical at `target`,
    /// reusing all target-independent state from previous calls.
    ///
    /// Any call order is correct; a *descending* ladder is fastest for
    /// the exact engines (each tightening extends, rather than
    /// replaces, the work of the previous point). An *ascending* step
    /// (target above the previous point) is outside the monotonic-reuse
    /// contract the engines' `retarget` fast paths were written for, so
    /// the session rebuilds the engine from scratch rather than trusting
    /// every engine's prepared state to be target-independent — the warm
    /// manager, gate primes and global functions are shared across the
    /// rebuild, so the cost is bounded by one cold `prepare`.
    pub fn try_retarget(&mut self, target: Delay) -> Result<SpcfSet, Exhausted> {
        if self.last_target.is_some_and(|prev| target > prev) {
            self.rebuild_engine();
        }
        self.last_target = Some(target);
        let _span = tm_telemetry::span::enter(span_name(self.engine.algorithm()));
        tm_telemetry::counter_add("spcf.session.retargets", 1);
        self.retargets += 1;
        let start = Instant::now();
        let targets = critical_outputs(self.netlist, self.sta, target);
        let metric = output_ns_metric(self.engine.algorithm());
        let algorithm = self.engine.algorithm();
        let WarmSession { netlist, sta, bdd, budget, engine, primes, globals, .. } = self;
        let mut cx = EngineCx {
            netlist,
            sta,
            target,
            budget: *budget,
            bdd,
            primes,
            globals,
        };
        {
            let _prep = tm_telemetry::flight::phase_with(
                "spcf.prepare",
                &[("targets", targets.len() as f64)],
            );
            engine.retarget(&mut cx, &targets)?;
        }
        let mut outputs = Vec::with_capacity(targets.len());
        for &o in &targets {
            let t0 = Instant::now();
            let _ev =
                tm_telemetry::flight::phase_with("spcf.output", &[("net", o.index() as f64)]);
            let spcf = engine.compute_output(&mut cx, o)?;
            if let Some(m) = metric {
                tm_telemetry::histogram_record(m, t0.elapsed().as_nanos() as f64);
            }
            outputs.push(OutputSpcf { output: o, spcf });
        }
        Ok(SpcfSet::new(algorithm, target, outputs, start.elapsed(), 1))
    }

    /// Infallible [`WarmSession::try_retarget`] for unlimited budgets.
    ///
    /// # Panics
    ///
    /// Panics if the session's budget is finite and exhausts.
    pub fn retarget(&mut self, target: Delay) -> SpcfSet {
        self.try_retarget(target).expect("unlimited budget cannot exhaust")
    }

    /// Number of targets evaluated so far.
    pub fn retargets(&self) -> u64 {
        self.retargets
    }

    /// Replaces the engine with a fresh one of the same algorithm,
    /// publishing the outgoing engine's lifetime counters first (each
    /// engine instance publishes exactly once — here, or at `Drop`).
    fn rebuild_engine(&mut self) {
        tm_telemetry::counter_add("spcf.session.rebuilds", 1);
        let algorithm = self.engine.algorithm();
        let WarmSession { netlist, sta, bdd, budget, engine, primes, globals, .. } = self;
        let mut cx = EngineCx {
            netlist,
            sta,
            target: Delay::ZERO,
            budget: *budget,
            bdd,
            primes,
            globals,
        };
        engine.publish_metrics(&mut cx);
        *engine = engine_for(algorithm);
    }
}

impl Drop for WarmSession<'_, '_> {
    fn drop(&mut self) {
        let WarmSession { netlist, sta, bdd, budget, engine, primes, globals, .. } = self;
        let mut cx = EngineCx {
            netlist,
            sta,
            target: Delay::ZERO,
            budget: *budget,
            bdd,
            primes,
            globals,
        };
        engine.publish_metrics(&mut cx);
        self.bdd.set_budget(self.prev_budget);
    }
}

/// Computes the SPCF of every critical output with `algorithm`,
/// honoring `options.jobs` and `options.budget`.
///
/// The result is independent of `jobs`: the set lists the same outputs
/// with the same characteristic functions (verified bit-identical via
/// [`Bdd::export`] in the determinism suite), differing only in the
/// recorded [`SpcfSet::jobs`] and wall-clock runtime. A finite shared
/// budget *can* exhaust earlier under parallelism (workers duplicate
/// shared subfunctions in their private managers), but never later.
pub fn try_spcf_with(
    algorithm: Algorithm,
    netlist: &Netlist,
    sta: &Sta<'_>,
    bdd: &mut Bdd,
    target: Delay,
    options: &SpcfOptions,
) -> Result<SpcfSet, Exhausted> {
    let criticals = critical_outputs(netlist, sta, target);
    let jobs = options.jobs.max(1).min(criticals.len().max(1));
    if jobs <= 1 {
        let mut engine = engine_for(algorithm);
        return EngineSession::new(netlist, sta, bdd, target, options.budget)
            .run(engine.as_mut());
    }
    parallel_spcf(algorithm, netlist, sta, bdd, target, options.budget, jobs, &criticals)
}

/// Infallible [`try_spcf_with`] for unlimited budgets.
///
/// # Panics
///
/// Panics if `options.budget` is finite and exhausts.
pub fn spcf_with(
    algorithm: Algorithm,
    netlist: &Netlist,
    sta: &Sta<'_>,
    bdd: &mut Bdd,
    target: Delay,
    options: &SpcfOptions,
) -> SpcfSet {
    try_spcf_with(algorithm, netlist, sta, bdd, target, options)
        .expect("unlimited budget cannot exhaust")
}

/// What one worker hands back to the driver.
struct WorkerOut {
    /// `(output, exported SPCF)` for every output of the worker's shard
    /// it completed, in shard order.
    results: Vec<(NetId, PortableBdd)>,
    /// The exhaustion that stopped this worker, if any.
    error: Option<Exhausted>,
    /// The worker thread's drained telemetry registry.
    telemetry: Snapshot,
    /// The worker thread's drained flight-recorder events (empty when
    /// the spawning thread was not recording).
    trace: Vec<tm_telemetry::flight::TraceEvent>,
}

/// The parallel driver: shards `criticals` round-robin across `jobs`
/// scoped workers and merges their results deterministically.
#[allow(clippy::too_many_arguments)]
fn parallel_spcf(
    algorithm: Algorithm,
    netlist: &Netlist,
    sta: &Sta<'_>,
    bdd: &mut Bdd,
    target: Delay,
    budget: Budget,
    jobs: usize,
    criticals: &[NetId],
) -> Result<SpcfSet, Exhausted> {
    assert!(std::ptr::eq(sta.netlist(), netlist), "STA must analyze the same netlist");
    assert!(bdd.num_vars() >= netlist.inputs().len(), "BDD manager too narrow");
    let start = Instant::now();
    let _span = tm_telemetry::span::enter("spcf.parallel");

    // Primes are computed once and cloned into workers (Arc'd entries:
    // the clone shares every cube vector).
    let mut primes = GatePrimes::new();
    primes.prewarm(netlist);
    let shared = SharedBudget::new(budget);
    let telemetry_on = tm_telemetry::enabled();
    // Workers inherit the spawning thread's flight-recording state and
    // trace id, so per-output events in a served request's parallel fan
    // land in that request's trace.
    let flight_on = tm_telemetry::flight::recording();
    let trace_id = tm_telemetry::flight::current_trace_id();
    let num_vars = bdd.num_vars();

    let mut worker_out: Vec<WorkerOut> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|w| {
                let shard: Vec<NetId> =
                    criticals.iter().copied().skip(w).step_by(jobs).collect();
                let primes = primes.clone();
                let shared = &shared;
                scope.spawn(move || {
                    run_worker(
                        algorithm,
                        netlist,
                        sta,
                        target,
                        num_vars,
                        shard,
                        primes,
                        shared,
                        telemetry_on,
                        flight_on.then_some(trace_id),
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("SPCF worker panicked"))
            .collect()
    });

    // Absorb telemetry in worker order — deterministic counter sums, a
    // deterministic last-writer for gauges, and a deterministic flight
    // event sequence (events keep their worker tid and timestamps; only
    // the absorption order is pinned).
    for out in &mut worker_out {
        tm_telemetry::absorb(&out.telemetry);
        tm_telemetry::flight::absorb_events(std::mem::take(&mut out.trace));
    }
    if let Some(e) = worker_out.iter().find_map(|o| o.error) {
        return Err(e);
    }

    // Re-express every worker's SPCFs in the caller's manager, walking
    // the critical outputs in netlist order: allocation order in the
    // caller's manager — and therefore the whole `SpcfSet` — matches a
    // serial run regardless of which worker computed what.
    let mut portable: HashMap<usize, PortableBdd> = worker_out
        .into_iter()
        .flat_map(|o| o.results)
        .map(|(net, p)| (net.index(), p))
        .collect();
    let prev = bdd.budget();
    bdd.set_budget(budget);
    let mut outputs = Vec::with_capacity(criticals.len());
    let imported = (|| {
        for &o in criticals {
            let p = portable
                .remove(&o.index())
                .expect("an error-free worker covers its whole shard");
            outputs.push(OutputSpcf { output: o, spcf: bdd.try_import(&p)? });
        }
        Ok(())
    })();
    bdd.set_budget(prev);
    imported?;
    Ok(SpcfSet::new(algorithm, target, outputs, start.elapsed(), jobs))
}

/// One worker: a private manager, a private engine, and a shard of the
/// critical outputs. Consumption is charged into `shared` at output
/// granularity; results leave the thread as [`PortableBdd`]s.
#[allow(clippy::too_many_arguments)]
fn run_worker(
    algorithm: Algorithm,
    netlist: &Netlist,
    sta: &Sta<'_>,
    target: Delay,
    num_vars: usize,
    shard: Vec<NetId>,
    mut primes: GatePrimes,
    shared: &SharedBudget,
    telemetry_on: bool,
    flight_trace: Option<u64>,
) -> WorkerOut {
    if telemetry_on {
        // Fresh thread, fresh registry: collect here, drain on exit,
        // let the parent absorb.
        tm_telemetry::set_thread_enabled(Some(true));
    }
    if let Some(trace_id) = flight_trace {
        tm_telemetry::flight::set_thread_recording(Some(true));
        tm_telemetry::flight::set_ambient_trace_id(trace_id);
    }
    let mut bdd = Bdd::new(num_vars);
    let mut engine = engine_for(algorithm);
    let mut globals = LazyGlobals::new(netlist);
    let mut results = Vec::with_capacity(shard.len());
    let mut error = None;
    let mut prepared = false;

    for &o in &shard {
        if shared.is_tripped() {
            // Another worker exhausted the run's budget; stop without
            // recording a second telemetry trip (the tripping worker
            // already carries the error).
            break;
        }
        // The worker may locally consume whatever the run has left plus
        // what it already charged for itself (its manager counters are
        // lifetime totals).
        let local = shared.local_view(
            bdd.node_count() as u64,
            bdd.steps_taken(),
            engine.memo_entries(),
        );
        bdd.set_budget(local);
        let nodes0 = bdd.node_count() as u64;
        let steps0 = bdd.steps_taken();
        let memo0 = engine.memo_entries();
        let r = (|| {
            let mut cx = EngineCx {
                netlist,
                sta,
                target,
                budget: local,
                bdd: &mut bdd,
                primes: &mut primes,
                globals: &mut globals,
            };
            if !prepared {
                let _prep = tm_telemetry::flight::phase_with(
                    "spcf.prepare",
                    &[("targets", shard.len() as f64)],
                );
                engine.prepare(&mut cx, &shard)?;
            }
            let _ev =
                tm_telemetry::flight::phase_with("spcf.output", &[("net", o.index() as f64)]);
            engine.compute_output(&mut cx, o)
        })();
        prepared = true;
        let d_nodes = bdd.node_count() as u64 - nodes0;
        let d_steps = bdd.steps_taken() - steps0;
        let d_memo = engine.memo_entries() - memo0;
        match r {
            Ok(f) => {
                results.push((o, bdd.export(f)));
                if let Err(e) = shared.charge(d_nodes, d_steps, d_memo) {
                    error = Some(e);
                    break;
                }
            }
            Err(e) => {
                // The local budget check already counted this trip;
                // mark before charging so the shared layer stays
                // silent, then record what was consumed anyway.
                shared.mark_tripped();
                let _ = shared.charge(d_nodes, d_steps, d_memo);
                error = Some(e);
                break;
            }
        }
    }
    {
        let mut cx = EngineCx {
            netlist,
            sta,
            target,
            budget: shared.limits(),
            bdd: &mut bdd,
            primes: &mut primes,
            globals: &mut globals,
        };
        engine.publish_metrics(&mut cx);
    }
    let telemetry = tm_telemetry::drain();
    let trace = if flight_trace.is_some() {
        tm_telemetry::flight::drain_thread()
    } else {
        Vec::new()
    };
    WorkerOut { results, error, telemetry, trace }
}
