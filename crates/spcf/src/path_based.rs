//! Exact path-based SPCF computation via timed stabilization waveforms.
//!
//! This is the "proposed path-based extension of \[22\]" column of
//! Table 1: instead of querying stabilization at a single target time
//! (as the short-path algorithm does), it computes — in the spirit of
//! the ADD-based timing analysis of ref \[27\] — the *complete* step
//! function `t ↦ (stab¹(t), stab⁰(t))` of every net, with one breakpoint
//! per distinct path-delay value reaching the net. The SPCF is then a
//! single waveform lookup. The result is exactly the same as the
//! short-path algorithm; the cost of materializing every breakpoint is
//! what makes it measurably slower (the paper reports ~3.5× vs the
//! node-based pass).

use crate::common::{distinct_fanins, gate_on_off_primes};
use crate::engine::{cone_nets, EngineCx, EngineSession, SpcfEngine};
use crate::{Algorithm, GatePrimes, SpcfSet};
use tm_logic::bdd::{Bdd, BddRef};
use tm_netlist::{Delay, NetId, Netlist};
use tm_resilience::{Budget, Exhausted};
use tm_sta::Sta;

/// A per-net timed stabilization step function.
///
/// For `t ∈ [times[k], times[k+1])` the set of patterns settled to 1
/// (resp. 0) by `t` is `stab1[k]` (`stab0[k]`); before `times[0]`
/// nothing has settled.
#[derive(Clone, Debug)]
struct Waveform {
    times: Vec<i64>,
    stab1: Vec<BddRef>,
    stab0: Vec<BddRef>,
}

impl Waveform {
    fn lookup(&self, qt: i64, zero: BddRef) -> (BddRef, BddRef) {
        match self.times.partition_point(|&t| t <= qt).checked_sub(1) {
            Some(k) => (self.stab1[k], self.stab0[k]),
            None => (zero, zero),
        }
    }
}

/// The path-based engine: complete timed waveforms over the target
/// cones, one lookup per output.
#[derive(Default)]
pub struct PathBasedEngine {
    waves: Vec<Option<Waveform>>,
    /// The cone mask the waveforms were built over (empty before the
    /// first `prepare`): a retarget whose targets all fall inside it is
    /// a pure no-op — waveforms cover *every* time at once.
    prepared_cone: Vec<bool>,
    prepared_targets: Vec<NetId>,
    waveform_nodes: u64,
}

impl SpcfEngine for PathBasedEngine {
    fn algorithm(&self) -> Algorithm {
        Algorithm::PathBased
    }

    fn prepare(
        &mut self,
        cx: &mut EngineCx<'_, '_>,
        targets: &[NetId],
    ) -> Result<(), Exhausted> {
        let in_cone = cone_nets(cx.netlist, targets);
        let (waves, waveform_nodes) = build_waveforms(
            cx.netlist,
            cx.sta,
            cx.bdd,
            cx.primes,
            cx.budget,
            Some(&in_cone),
        )?;
        self.waves = waves;
        self.prepared_cone = in_cone;
        self.prepared_targets = targets.to_vec();
        self.waveform_nodes = waveform_nodes;
        Ok(())
    }

    /// Waveforms are step functions over *all* times, so retargeting
    /// within the prepared cone costs nothing; a tighter target can
    /// make new outputs critical, in which case the waveforms are
    /// rebuilt over the union cone (in a warm manager, the overlap is
    /// pure cache hits).
    fn retarget(
        &mut self,
        cx: &mut EngineCx<'_, '_>,
        targets: &[NetId],
    ) -> Result<(), Exhausted> {
        let covered = |t: &NetId| {
            self.prepared_cone.get(t.index()).copied().unwrap_or(false)
        };
        if targets.iter().all(covered) && !self.prepared_cone.is_empty() {
            return Ok(());
        }
        let mut merged = self.prepared_targets.clone();
        for &t in targets {
            if !merged.contains(&t) {
                merged.push(t);
            }
        }
        self.prepare(cx, &merged)
    }

    fn compute_output(
        &mut self,
        cx: &mut EngineCx<'_, '_>,
        output: NetId,
    ) -> Result<BddRef, Exhausted> {
        let zero = cx.bdd.zero();
        let qt = cx.target.quantize();
        let (s1, s0) =
            self.waves[output.index()].as_ref().expect("output wave").lookup(qt, zero);
        let settled = cx.bdd.try_or(s1, s0)?;
        cx.bdd.try_not(settled)
    }

    fn publish_metrics(&mut self, cx: &mut EngineCx<'_, '_>) {
        cx.bdd.publish_metrics();
    }

    /// Waveform breakpoints stand in for memo entries: they are the
    /// engine-side state a shared budget has to account for.
    fn memo_entries(&self) -> u64 {
        self.waveform_nodes
    }
}

/// Computes the exact SPCF of every critical output by full timed
/// waveform propagation.
///
/// Produces the same SPCFs as [`crate::short_path_spcf`] (both are
/// exact); used as the accuracy reference and the runtime baseline of
/// Table 1.
///
/// # Panics
///
/// Panics if the BDD manager is too narrow or `sta` analyzes a
/// different netlist.
pub fn path_based_spcf(netlist: &Netlist, sta: &Sta<'_>, bdd: &mut Bdd, target: Delay) -> SpcfSet {
    try_path_based_spcf(netlist, sta, bdd, target, Budget::unlimited())
        .expect("unlimited budget cannot exhaust")
}

/// Budget-checked [`path_based_spcf`]: `budget` caps BDD nodes and
/// recursion steps for the duration of the session (the manager's
/// previous budget is restored afterwards) plus the total number of
/// materialized waveform breakpoints (counted against
/// `max_memo_entries`). On exhaustion the partial analysis is abandoned
/// with a typed [`Exhausted`] error.
pub fn try_path_based_spcf(
    netlist: &Netlist,
    sta: &Sta<'_>,
    bdd: &mut Bdd,
    target: Delay,
    budget: Budget,
) -> Result<SpcfSet, Exhausted> {
    let mut engine = PathBasedEngine::default();
    EngineSession::new(netlist, sta, bdd, target, budget).run(&mut engine)
}

/// Exact (floating-mode) stabilization delay of every primary output:
/// the smallest time by which *every* input pattern has settled.
///
/// Always ≤ the structural STA arrival; strictly smaller when the
/// longest structural paths are **false paths** (never dynamically
/// sensitized) — the reason some of Table 2's deep circuits report
/// critical outputs with near-empty SPCFs.
pub fn exact_output_delays(
    netlist: &Netlist,
    sta: &Sta<'_>,
    bdd: &mut Bdd,
) -> Vec<(tm_netlist::NetId, Delay)> {
    assert!(std::ptr::eq(sta.netlist(), netlist), "STA must analyze the same netlist");
    let mut primes = GatePrimes::new();
    let (waves, _) =
        build_waveforms(netlist, sta, bdd, &mut primes, Budget::unlimited(), None)
            .expect("unlimited budget cannot exhaust");
    let one = bdd.one();
    netlist
        .outputs()
        .iter()
        .map(|&o| {
            let w = waves[o.index()].as_ref().expect("output wave");
            let mut exact = *w.times.last().expect("nonempty waveform");
            for (k, &t) in w.times.iter().enumerate() {
                let settled = bdd.or(w.stab1[k], w.stab0[k]);
                if settled == one {
                    exact = t;
                    break;
                }
            }
            (o, Delay::from_quantized(exact))
        })
        .collect()
}

/// Builds the complete timed stabilization waveform of every net (or,
/// with a cone mask, of every net inside it — workers of the parallel
/// driver only pay for their own shard's cones).
///
/// `budget.max_memo_entries` caps the total number of `(stab¹, stab⁰)`
/// breakpoints materialized across all nets — the quantity that
/// explodes on deep circuits with many distinct path delays. Returns
/// the waveforms and that breakpoint total.
fn build_waveforms(
    netlist: &Netlist,
    sta: &Sta<'_>,
    bdd: &mut Bdd,
    primes: &mut GatePrimes,
    budget: Budget,
    cone: Option<&[bool]>,
) -> Result<(Vec<Option<Waveform>>, u64), Exhausted> {
    assert!(bdd.num_vars() >= netlist.inputs().len(), "BDD manager too narrow");
    let zero = bdd.zero();
    let in_cone = |net: NetId| cone.map(|c| c[net.index()]).unwrap_or(true);

    let mut waves: Vec<Option<Waveform>> = vec![None; netlist.num_nets()];
    let mut waveform_nodes = 0u64;
    for (pos, &net) in netlist.inputs().iter().enumerate() {
        if !in_cone(net) {
            continue;
        }
        let lit = bdd.try_var(pos)?;
        let nlit = bdd.try_not(lit)?;
        waves[net.index()] = Some(Waveform { times: vec![0], stab1: vec![lit], stab0: vec![nlit] });
    }

    for (gid, g) in netlist.gates() {
        if !in_cone(g.output()) {
            continue;
        }
        let (fanins, delays, tt) = distinct_fanins(netlist, sta, gid);
        let gate_primes = gate_on_off_primes(netlist, primes, gid, fanins.len(), &tt);
        let (on_primes, off_primes) = &*gate_primes;
        let delays_q: Vec<i64> = delays.iter().map(|d| d.quantize()).collect();

        // Candidate breakpoints: every fanin breakpoint shifted by its
        // pin delay. Constant gates settle at time 0.
        let mut times: Vec<i64> = Vec::new();
        if fanins.is_empty() {
            times.push(0);
        }
        for (pos, &f) in fanins.iter().enumerate() {
            let w = waves[f.index()].as_ref().expect("topological order");
            for &t in &w.times {
                times.push(t + delays_q[pos]);
            }
        }
        times.sort_unstable();
        times.dedup();
        // One (stab¹, stab⁰) pair is materialized per breakpoint — the
        // unit of work the short-path memoization avoids.
        budget.check_memo_entries(waveform_nodes)?;
        waveform_nodes += times.len() as u64;

        let mut stab1 = Vec::with_capacity(times.len());
        let mut stab0 = Vec::with_capacity(times.len());
        for &t in &times {
            // Look up each fanin's stabilization just in time.
            let fanin_stabs: Vec<(BddRef, BddRef)> = fanins
                .iter()
                .enumerate()
                .map(|(pos, &f)| {
                    waves[f.index()]
                        .as_ref()
                        .expect("topological order")
                        .lookup(t - delays_q[pos], zero)
                })
                .collect();
            let mut on_terms = Vec::with_capacity(on_primes.len());
            for p in on_primes {
                let lits: Vec<BddRef> = p
                    .literals()
                    .map(|(pos, pol)| if pol { fanin_stabs[pos].0 } else { fanin_stabs[pos].1 })
                    .collect();
                on_terms.push(bdd.try_and_all(lits)?);
            }
            let mut off_terms = Vec::with_capacity(off_primes.len());
            for p in off_primes {
                let lits: Vec<BddRef> = p
                    .literals()
                    .map(|(pos, pol)| if pol { fanin_stabs[pos].0 } else { fanin_stabs[pos].1 })
                    .collect();
                off_terms.push(bdd.try_and_all(lits)?);
            }
            stab1.push(bdd.try_or_all(on_terms)?);
            stab0.push(bdd.try_or_all(off_terms)?);
        }

        // Compress runs of identical steps.
        let mut ct = Vec::with_capacity(times.len());
        let mut c1 = Vec::with_capacity(times.len());
        let mut c0 = Vec::with_capacity(times.len());
        for k in 0..times.len() {
            if k == 0 || stab1[k] != c1[ct.len() - 1] || stab0[k] != c0[ct.len() - 1] {
                ct.push(times[k]);
                c1.push(stab1[k]);
                c0.push(stab0[k]);
            }
        }
        waves[g.output().index()] = Some(Waveform { times: ct, stab1: c1, stab0: c0 });
    }
    tm_telemetry::counter_add("spcf.path_based.waveform_nodes", waveform_nodes);
    Ok((waves, waveform_nodes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::short_path::short_path_spcf;
    use std::sync::Arc;
    use tm_netlist::circuits::{comparator2, mini_alu, ripple_adder};
    use tm_netlist::library::lsi10k_like;

    #[test]
    fn comparator_matches_paper_and_short_path() {
        let nl = comparator2(Arc::new(lsi10k_like()));
        let sta = Sta::new(&nl);
        let mut bdd = Bdd::new(4);
        let pb = path_based_spcf(&nl, &sta, &mut bdd, Delay::new(6.3));
        let sp = short_path_spcf(&nl, &sta, &mut bdd, Delay::new(6.3));
        assert_eq!(pb.outputs.len(), 1);
        assert_eq!(pb.outputs[0].spcf, sp.outputs[0].spcf);
        assert_eq!(pb.critical_pattern_count(&bdd), 10.0);
    }

    #[test]
    fn agrees_with_short_path_on_arithmetic() {
        let lib = Arc::new(lsi10k_like());
        for nl in [ripple_adder(lib.clone(), 3), mini_alu(lib.clone(), 2)] {
            let sta = Sta::new(&nl);
            let delta = sta.critical_path_delay();
            for frac in [0.75, 0.9, 0.95] {
                let target = delta * frac;
                let mut bdd = Bdd::new(nl.inputs().len());
                let pb = path_based_spcf(&nl, &sta, &mut bdd, target);
                let sp = short_path_spcf(&nl, &sta, &mut bdd, target);
                assert_eq!(pb.outputs.len(), sp.outputs.len(), "{} {frac}", nl.name());
                for (a, b) in pb.outputs.iter().zip(&sp.outputs) {
                    assert_eq!(a.output, b.output);
                    assert_eq!(a.spcf, b.spcf, "{} output {:?} frac {frac}", nl.name(), a.output);
                }
            }
        }
    }

    #[test]
    fn exact_delay_detects_false_paths() {
        // Classic two-MUX false path: the slow input threads m1's
        // s=1 branch but m2's s=0 branch — no pattern sensitizes the
        // full structural path, so the exact delay is smaller than the
        // structural arrival.
        let lib = Arc::new(lsi10k_like());
        let mut nl = tm_netlist::Netlist::new("falsepath", lib.clone());
        let d = nl.add_input("d");
        let f1 = nl.add_input("f1");
        let f2 = nl.add_input("f2");
        let s = nl.add_input("s");
        let mut slow = d;
        for k in 0..4 {
            slow = nl.add_gate(lib.expect("INV"), &[slow], format!("sl{k}"));
        }
        let m1 = nl.add_gate(lib.expect("MUX2"), &[f1, slow, s], "m1");
        let i1 = nl.add_gate(lib.expect("INV"), &[m1], "i1");
        let i2 = nl.add_gate(lib.expect("INV"), &[i1], "i2");
        let m2 = nl.add_gate(lib.expect("MUX2"), &[i2, f2, s], "m2");
        nl.mark_output(m2);

        let sta = Sta::new(&nl);
        // Structural: d →4×INV→ MUX(2.6) →2×INV→ MUX(2.6) = 11.2.
        assert_eq!(sta.critical_path_delay(), Delay::new(11.2));
        let mut bdd = Bdd::new(4);
        let exact = exact_output_delays(&nl, &sta, &mut bdd);
        assert_eq!(exact.len(), 1);
        // Exact: s=0 path f1 → MUX → 2×INV → MUX = 2.6+2+2.6 = 7.2.
        assert!(
            (exact[0].1.units() - 7.2).abs() < 1e-6,
            "exact delay {:?}, expected 7.2",
            exact[0].1
        );
        // And the SPCF above the exact delay is empty (false paths).
        let set = path_based_spcf(&nl, &sta, &mut bdd, Delay::new(7.2));
        let zero = bdd.zero();
        assert!(set.outputs.iter().all(|o| o.spcf == zero));
    }

    #[test]
    fn exact_delay_equals_structural_when_paths_are_true() {
        let nl = comparator2(Arc::new(lsi10k_like()));
        let sta = Sta::new(&nl);
        let mut bdd = Bdd::new(4);
        let exact = exact_output_delays(&nl, &sta, &mut bdd);
        assert_eq!(exact[0].1, Delay::new(7.0));
    }

    #[test]
    fn waveform_lookup_boundaries() {
        // Degenerate check through the public API: at target == Δ the
        // SPCF must be empty (all patterns settled by Δ).
        let nl = comparator2(Arc::new(lsi10k_like()));
        let sta = Sta::new(&nl);
        let mut bdd = Bdd::new(4);
        let set = path_based_spcf(&nl, &sta, &mut bdd, Delay::new(7.0));
        assert!(set.outputs.is_empty());
        // Just below Δ: the two 7-unit paths give a nonempty SPCF.
        let set = path_based_spcf(&nl, &sta, &mut bdd, Delay::new(6.999));
        assert_eq!(set.outputs.len(), 1);
        assert!(set.critical_pattern_count(&bdd) > 0.0);
    }
}
