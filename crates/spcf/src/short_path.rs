//! The paper's proposed short-path-based SPCF algorithm (Eqn. 1).
//!
//! For a gate `z` with function `f` and target arrival time `Δ_z`, the
//! complement SPCF is
//!
//! ```text
//! Σ̄_z(Δ_z) = ⋁_{p ∈ P} ⋀_{l ∈ L(p)} Σ̄_l(Δ_z − δ_l)
//! ```
//!
//! over the prime implicants `P` of the on-set and off-set of `f`. We
//! carry the phase explicitly: `stab(s, t, v)` is the set of patterns
//! for which signal `s` has settled **to value v** by time `t` (so each
//! literal of a prime is required to settle to the value that makes the
//! prime controlling — the floating-mode exact criterion; see
//! `DESIGN.md`). The recursion is memoized on `(signal, quantized time,
//! phase)` and only ever evaluates the times the target query reaches,
//! which is what makes it cheaper than the full path-based waveform
//! analysis at equal accuracy.

use crate::common::{distinct_fanins, Algorithm, OutputSpcf, SpcfSet};
use std::collections::HashMap;
use std::time::Instant;
use tm_logic::bdd::{Bdd, BddRef};
use tm_logic::{qm, Cube};
use tm_netlist::netlist::Driver;
use tm_netlist::{Delay, NetId, Netlist};
use tm_resilience::{Budget, Exhausted};
use tm_sta::Sta;

struct GateInfo {
    fanins: Vec<NetId>,
    delays_q: Vec<i64>,
    on_primes: Vec<Cube>,
    off_primes: Vec<Cube>,
}

struct Engine<'a, 'b> {
    netlist: &'a Netlist,
    bdd: &'b mut Bdd,
    /// Lazily computed global function per net (only nets inside
    /// queried cones are ever built — a large part of the algorithm's
    /// cost advantage over the full-waveform path-based engine).
    globals: Vec<Option<BddRef>>,
    arrivals_q: Vec<i64>,
    /// Earliest possible stabilization per net (shortest-path arrival,
    /// quantized): queries strictly below it are zero without recursion.
    min_arrivals_q: Vec<i64>,
    gate_info: Vec<GateInfo>,
    memo: HashMap<(u32, i64, bool), BddRef>,
    /// Caps the memo table; BDD-node/step limits are enforced by the
    /// manager itself (see [`Bdd::set_budget`]).
    budget: Budget,
    stab_calls: u64,
    memo_hits: u64,
    memo_misses: u64,
}

impl Engine<'_, '_> {
    /// Global function of a net over the primary inputs, built on
    /// demand.
    fn global(&mut self, net: NetId) -> Result<BddRef, Exhausted> {
        if let Some(f) = self.globals[net.index()] {
            return Ok(f);
        }
        let f = match self.netlist.driver(net) {
            Driver::PrimaryInput => {
                let pos = self
                    .netlist
                    .input_position(net)
                    .expect("input-driven net is a primary input");
                self.bdd.try_var(pos)?
            }
            Driver::Gate(gate) => {
                let info_idx = gate.index();
                let fanin_count = self.gate_info[info_idx].fanins.len();
                let mut fanin_fns = Vec::with_capacity(fanin_count);
                for pos in 0..fanin_count {
                    let fanin = self.gate_info[info_idx].fanins[pos];
                    fanin_fns.push(self.global(fanin)?);
                }
                let prime_count = self.gate_info[info_idx].on_primes.len();
                let mut terms = Vec::with_capacity(prime_count);
                for pi in 0..prime_count {
                    let prime = self.gate_info[info_idx].on_primes[pi];
                    let mut lits = Vec::with_capacity(prime.literal_count() as usize);
                    for (pos, pol) in prime.literals() {
                        let f = fanin_fns[pos];
                        lits.push(if pol { f } else { self.bdd.try_not(f)? });
                    }
                    terms.push(self.bdd.try_and_all(lits)?);
                }
                self.bdd.try_or_all(terms)?
            }
        };
        self.globals[net.index()] = Some(f);
        Ok(f)
    }

    /// Patterns for which `net` has settled to `phase` by time `qt`
    /// (quantized).
    fn stab(&mut self, net: NetId, qt: i64, phase: bool) -> Result<BddRef, Exhausted> {
        self.stab_calls += 1;
        // Settled for sure once the worst-case arrival has passed.
        if qt >= self.arrivals_q[net.index()] {
            let f = self.global(net)?;
            return if phase { Ok(f) } else { self.bdd.try_not(f) };
        }
        // Nothing can settle before the shortest-path arrival.
        if qt < self.min_arrivals_q[net.index()] {
            return Ok(self.bdd.zero());
        }
        let gate = match self.netlist.driver(net) {
            // A primary input queried before time 0 (arrival 0 was
            // handled above).
            Driver::PrimaryInput => return Ok(self.bdd.zero()),
            Driver::Gate(g) => g,
        };
        if qt <= 0 {
            return Ok(self.bdd.zero()); // positive-delay logic cannot settle by 0
        }
        let key = (net.index() as u32, qt, phase);
        if let Some(&r) = self.memo.get(&key) {
            self.memo_hits += 1;
            return Ok(r);
        }
        self.memo_misses += 1;
        let info_idx = gate.index();
        let prime_count = if phase {
            self.gate_info[info_idx].on_primes.len()
        } else {
            self.gate_info[info_idx].off_primes.len()
        };
        let mut terms = Vec::with_capacity(prime_count);
        for pi in 0..prime_count {
            let prime = if phase {
                self.gate_info[info_idx].on_primes[pi]
            } else {
                self.gate_info[info_idx].off_primes[pi]
            };
            let mut lits = Vec::with_capacity(prime.literal_count() as usize);
            for (pos, pol) in prime.literals() {
                let fanin = self.gate_info[info_idx].fanins[pos];
                let dq = self.gate_info[info_idx].delays_q[pos];
                lits.push(self.stab(fanin, qt - dq, pol)?);
            }
            terms.push(self.bdd.try_and_all(lits)?);
        }
        let r = self.bdd.try_or_all(terms)?;
        self.budget.check_memo_entries(self.memo.len() as u64)?;
        self.memo.insert(key, r);
        Ok(r)
    }

    /// Publishes the engine's memoization counters and the manager's
    /// `logic.bdd.*` stats to `tm-telemetry`.
    fn publish_metrics(&mut self) {
        if !tm_telemetry::enabled() {
            return;
        }
        tm_telemetry::counter_add("spcf.short_path.stab_calls", self.stab_calls);
        tm_telemetry::counter_add("spcf.short_path.memo_hit", self.memo_hits);
        tm_telemetry::counter_add("spcf.short_path.memo_miss", self.memo_misses);
        tm_telemetry::gauge_set("spcf.short_path.memo_entries", self.memo.len() as f64);
        self.bdd.publish_metrics();
    }
}

/// Computes the exact SPCF of every critical output with the proposed
/// short-path-based algorithm.
///
/// `target` is the target arrival time `Δ_y` (e.g. `0.9 × Δ`); outputs
/// whose worst arrival is within the target are not critical and are
/// omitted.
///
/// # Panics
///
/// Panics if the BDD manager has fewer variables than the netlist has
/// inputs, or if `sta` analyzes a different netlist.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use tm_logic::Bdd;
/// use tm_netlist::{circuits::comparator2, library::lsi10k_like, Delay};
/// use tm_spcf::short_path_spcf;
/// use tm_sta::Sta;
///
/// let nl = comparator2(Arc::new(lsi10k_like()));
/// let sta = Sta::new(&nl);
/// let mut bdd = Bdd::new(4);
/// let set = short_path_spcf(&nl, &sta, &mut bdd, Delay::new(6.3));
/// // The paper's worked example: Σ_y = ā1 + ā0·b1, 10 of 16 patterns.
/// assert_eq!(set.critical_pattern_count(&bdd), 10.0);
/// ```
pub fn short_path_spcf(netlist: &Netlist, sta: &Sta<'_>, bdd: &mut Bdd, target: Delay) -> SpcfSet {
    try_short_path_spcf(netlist, sta, bdd, target, Budget::unlimited())
        .expect("unlimited budget cannot exhaust")
}

/// Budget-checked [`short_path_spcf`]: the `budget` caps BDD nodes and
/// recursion steps (installed on the manager for the duration of the
/// call, then restored) plus the engine's stabilization memo; on
/// exhaustion the partial computation is abandoned and a typed
/// [`Exhausted`] error is returned.
pub fn try_short_path_spcf(
    netlist: &Netlist,
    sta: &Sta<'_>,
    bdd: &mut Bdd,
    target: Delay,
    budget: Budget,
) -> Result<SpcfSet, Exhausted> {
    assert!(std::ptr::eq(sta.netlist(), netlist), "STA must analyze the same netlist");
    let _span = tm_telemetry::span!("spcf.short_path", target = target);
    let start = Instant::now();
    let prev = bdd.budget();
    bdd.set_budget(budget);
    let mut engine = build_engine(netlist, sta, bdd, budget);

    let qt = target.quantize();
    let mut outputs = Vec::new();
    let mut failed = None;
    'outputs: for &o in netlist.outputs() {
        if sta.arrival(o) <= target {
            continue; // not a critical output
        }
        let t0 = Instant::now();
        let spcf = (|| {
            let s1 = engine.stab(o, qt, true)?;
            let s0 = engine.stab(o, qt, false)?;
            let settled = engine.bdd.try_or(s1, s0)?;
            engine.bdd.try_not(settled)
        })();
        let spcf = match spcf {
            Ok(s) => s,
            Err(e) => {
                failed = Some(e);
                break 'outputs;
            }
        };
        tm_telemetry::histogram_record(
            "spcf.short_path.output_ns",
            t0.elapsed().as_nanos() as f64,
        );
        outputs.push(OutputSpcf { output: o, spcf });
    }
    engine.publish_metrics();
    bdd.set_budget(prev);
    if let Some(e) = failed {
        return Err(e);
    }

    Ok(SpcfSet {
        algorithm: Algorithm::ShortPath,
        target,
        outputs,
        runtime: start.elapsed(),
    })
}

/// Computes the short-path SPCF of a *single* net at an arbitrary target
/// time (not necessarily a primary output) — useful for diagnostics and
/// for tests.
pub fn short_path_spcf_of_net(
    netlist: &Netlist,
    sta: &Sta<'_>,
    bdd: &mut Bdd,
    net: NetId,
    target: Delay,
) -> BddRef {
    let mut engine = build_engine(netlist, sta, bdd, Budget::unlimited());
    let qt = target.quantize();
    let r = (|| {
        let s1 = engine.stab(net, qt, true)?;
        let s0 = engine.stab(net, qt, false)?;
        let settled = engine.bdd.try_or(s1, s0)?;
        engine.bdd.try_not(settled)
    })()
    .expect("unlimited budget cannot exhaust");
    engine.publish_metrics();
    r
}

/// Builds the shared recursion state: cached gate primes, worst- and
/// best-case arrivals, and empty lazy-global / memo tables.
fn build_engine<'a, 'b>(
    netlist: &'a Netlist,
    sta: &Sta<'a>,
    bdd: &'b mut Bdd,
    budget: Budget,
) -> Engine<'a, 'b> {
    assert!(bdd.num_vars() >= netlist.inputs().len(), "BDD manager too narrow");
    let arrivals_q: Vec<i64> = sta.arrivals().iter().map(|d| d.quantize()).collect();

    let gate_info: Vec<GateInfo> = netlist
        .gates()
        .map(|(gid, _)| {
            let (fanins, delays, tt) = distinct_fanins(netlist, sta, gid);
            let (on_primes, off_primes) = qm::on_off_primes(&tt);
            GateInfo {
                fanins,
                delays_q: delays.iter().map(|d| d.quantize()).collect(),
                on_primes,
                off_primes,
            }
        })
        .collect();

    // Shortest-path (earliest possible stabilization) arrivals.
    let mut min_arrivals_q = vec![0i64; netlist.num_nets()];
    for (gid, g) in netlist.gates() {
        let info = &gate_info[gid.index()];
        let min_in = info
            .fanins
            .iter()
            .zip(&info.delays_q)
            .map(|(f, dq)| min_arrivals_q[f.index()] + dq)
            .min()
            .unwrap_or(0);
        min_arrivals_q[g.output().index()] = min_in;
    }

    Engine {
        netlist,
        bdd,
        globals: vec![None; netlist.num_nets()],
        arrivals_q,
        min_arrivals_q,
        gate_info,
        memo: HashMap::new(),
        budget,
        stab_calls: 0,
        memo_hits: 0,
        memo_misses: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tm_netlist::circuits::comparator2;
    use tm_netlist::library::lsi10k_like;

    fn setup() -> Netlist {
        comparator2(Arc::new(lsi10k_like()))
    }

    #[test]
    fn comparator_spcf_matches_paper() {
        let nl = setup();
        let sta = Sta::new(&nl);
        let mut bdd = Bdd::new(4);
        let set = short_path_spcf(&nl, &sta, &mut bdd, Delay::new(6.3));
        assert_eq!(set.outputs.len(), 1);
        // Paper: Σ_y(Δ_y) = ā1 + ā0·b1 (inputs a0,a1,b0,b1 = vars 0..3).
        let a1 = bdd.var(1);
        let na1 = bdd.not(a1);
        let a0 = bdd.var(0);
        let na0 = bdd.not(a0);
        let b1 = bdd.var(3);
        let t = bdd.and(na0, b1);
        let expect = bdd.or(na1, t);
        assert_eq!(set.outputs[0].spcf, expect);
        assert_eq!(set.critical_pattern_count(&bdd), 10.0);
    }

    #[test]
    fn relaxed_target_has_no_critical_outputs() {
        let nl = setup();
        let sta = Sta::new(&nl);
        let mut bdd = Bdd::new(4);
        let set = short_path_spcf(&nl, &sta, &mut bdd, Delay::new(7.0));
        assert!(set.outputs.is_empty());
        assert_eq!(set.critical_pattern_count(&bdd), 0.0);
    }

    #[test]
    fn tight_target_includes_everything_slower() {
        let nl = setup();
        let sta = Sta::new(&nl);
        let mut bdd = Bdd::new(4);
        // Target below every path: every pattern takes > 3.9 to settle?
        // Not necessarily — some patterns settle via 4-unit paths. At
        // target 3.9 the SPCF is the set of patterns settling later than
        // 3.9 (nonempty and bigger than the 6.3 SPCF).
        let tight = short_path_spcf(&nl, &sta, &mut bdd, Delay::new(3.9));
        let loose = short_path_spcf(&nl, &sta, &mut bdd, Delay::new(6.3));
        let tc = tight.critical_pattern_count(&bdd);
        let lc = loose.critical_pattern_count(&bdd);
        assert!(tc >= lc);
        // Monotonicity per output: loose SPCF ⊆ tight SPCF.
        let t = tight.outputs[0].spcf;
        let l = loose.outputs[0].spcf;
        assert!(bdd.is_subset(l, t));
    }

    #[test]
    fn spcf_patterns_really_are_slow() {
        // Dynamic cross-check: every pattern in the SPCF, when applied
        // from at least one predecessor state, produces a transition
        // that settles after the target; patterns outside settle on time
        // from *every* predecessor (floating-mode is a worst-case over
        // previous states).
        let nl = setup();
        let sta = Sta::new(&nl);
        let mut bdd = Bdd::new(4);
        let set = short_path_spcf(&nl, &sta, &mut bdd, Delay::new(6.3));
        let spcf = set.outputs[0].spcf;
        let sim = tm_sim::timing::TimingSim::new(&nl);
        for m in 0..16u64 {
            let next: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
            let mut worst_settle = Delay::ZERO;
            for p in 0..16u64 {
                let prev: Vec<bool> = (0..4).map(|i| (p >> i) & 1 == 1).collect();
                let r = sim.transition(&prev, &next, Delay::new(6.3));
                worst_settle = worst_settle.max(r.output_settle[0]);
            }
            let in_spcf = bdd.eval(spcf, &next);
            if !in_spcf {
                // Not a speed-path pattern: settles by the target from
                // every predecessor state.
                assert!(
                    worst_settle <= Delay::new(6.3),
                    "pattern {m} outside SPCF settled at {worst_settle:?}"
                );
            }
        }
    }

    #[test]
    fn single_net_query_matches_full_run() {
        let nl = setup();
        let sta = Sta::new(&nl);
        let mut bdd = Bdd::new(4);
        let set = short_path_spcf(&nl, &sta, &mut bdd, Delay::new(6.3));
        let y = nl.outputs()[0];
        let single = short_path_spcf_of_net(&nl, &sta, &mut bdd, y, Delay::new(6.3));
        assert_eq!(single, set.outputs[0].spcf);
    }
}
