//! The paper's proposed short-path-based SPCF algorithm (Eqn. 1).
//!
//! For a gate `z` with function `f` and target arrival time `Δ_z`, the
//! complement SPCF is
//!
//! ```text
//! Σ̄_z(Δ_z) = ⋁_{p ∈ P} ⋀_{l ∈ L(p)} Σ̄_l(Δ_z − δ_l)
//! ```
//!
//! over the prime implicants `P` of the on-set and off-set of `f`. We
//! carry the phase explicitly: `stab(s, t, v)` is the set of patterns
//! for which signal `s` has settled **to value v** by time `t` (so each
//! literal of a prime is required to settle to the value that makes the
//! prime controlling — the floating-mode exact criterion; see
//! `DESIGN.md`). The recursion is memoized on `(signal, quantized time,
//! phase)` and only ever evaluates the times the target query reaches,
//! which is what makes it cheaper than the full path-based waveform
//! analysis at equal accuracy.

use crate::common::{distinct_fanins, gate_on_off_primes};
use crate::engine::{EngineCx, EngineSession, SpcfEngine};
use crate::{Algorithm, SpcfSet};
use std::collections::HashMap;
use std::sync::Arc;
use tm_logic::bdd::{Bdd, BddRef};
use tm_logic::Cube;
use tm_netlist::netlist::Driver;
use tm_netlist::{Delay, NetId, Netlist};
use tm_resilience::{Budget, Exhausted};
use tm_sta::Sta;

struct GateInfo {
    fanins: Vec<NetId>,
    delays_q: Vec<i64>,
    /// `(on_primes, off_primes)` over the distinct fanins, shared with
    /// the session's cell-level cache.
    primes: Arc<(Vec<Cube>, Vec<Cube>)>,
}

/// The short-path engine: memoized single-time stabilization queries.
#[derive(Default)]
pub struct ShortPathEngine {
    arrivals_q: Vec<i64>,
    /// Earliest possible stabilization per net (shortest-path arrival,
    /// quantized): queries strictly below it are zero without recursion.
    min_arrivals_q: Vec<i64>,
    gate_info: Vec<GateInfo>,
    /// Stabilization memo, keyed by [`memo_key`]-packed
    /// `(net, quantized time, phase)`. None of the three components
    /// mentions the target Δ_y, so the memo survives warm-session
    /// retargets intact.
    memo: HashMap<u64, BddRef>,
    prepared: bool,
    stab_calls: u64,
    memo_hits: u64,
    memo_misses: u64,
}

/// Packs a stabilization-memo key `(net, quantized time, phase)` into
/// one u64: net in bits 41.., time in bits 1..41, phase in bit 0.
///
/// Injective for net indices below 2²³ and quantized times in
/// `(0, 2⁴⁰)` — memoized queries are always strictly positive (earlier
/// times short-circuit before the memo) and far below the 2⁴⁰ quantized
/// range (≈ 10⁶ delay units at the 10⁻⁶ quantization step).
#[inline]
fn memo_key(net: u32, qt: i64, phase: bool) -> u64 {
    debug_assert!(net < 1 << 23, "net index {net} exceeds the packed key range");
    debug_assert!((1..1 << 40).contains(&qt), "quantized time {qt} exceeds the packed key range");
    ((net as u64) << 41) | ((qt as u64) << 1) | phase as u64
}

impl ShortPathEngine {
    /// Patterns for which `net` has settled to `phase` by time `qt`
    /// (quantized).
    fn stab(
        &mut self,
        cx: &mut EngineCx<'_, '_>,
        net: NetId,
        qt: i64,
        phase: bool,
    ) -> Result<BddRef, Exhausted> {
        self.stab_calls += 1;
        // Settled for sure once the worst-case arrival has passed.
        if qt >= self.arrivals_q[net.index()] {
            let f = cx.globals.try_of(cx.netlist, cx.bdd, net)?;
            return if phase { Ok(f) } else { cx.bdd.try_not(f) };
        }
        // Nothing can settle before the shortest-path arrival.
        if qt < self.min_arrivals_q[net.index()] {
            return Ok(cx.bdd.zero());
        }
        let gate = match cx.netlist.driver(net) {
            // A primary input queried before time 0 (arrival 0 was
            // handled above).
            Driver::PrimaryInput => return Ok(cx.bdd.zero()),
            Driver::Gate(g) => g,
        };
        if qt <= 0 {
            return Ok(cx.bdd.zero()); // positive-delay logic cannot settle by 0
        }
        let key = memo_key(net.index() as u32, qt, phase);
        if let Some(&r) = self.memo.get(&key) {
            self.memo_hits += 1;
            return Ok(r);
        }
        self.memo_misses += 1;
        let info_idx = gate.index();
        let primes = Arc::clone(&self.gate_info[info_idx].primes);
        let plist = if phase { &primes.0 } else { &primes.1 };
        let mut terms = Vec::with_capacity(plist.len());
        for prime in plist {
            let mut lits = Vec::with_capacity(prime.literal_count() as usize);
            for (pos, pol) in prime.literals() {
                let fanin = self.gate_info[info_idx].fanins[pos];
                let dq = self.gate_info[info_idx].delays_q[pos];
                lits.push(self.stab(cx, fanin, qt - dq, pol)?);
            }
            terms.push(cx.bdd.try_and_all(lits)?);
        }
        let r = cx.bdd.try_or_all(terms)?;
        cx.budget.check_memo_entries(self.memo.len() as u64)?;
        self.memo.insert(key, r);
        Ok(r)
    }
}

impl SpcfEngine for ShortPathEngine {
    fn algorithm(&self) -> Algorithm {
        Algorithm::ShortPath
    }

    /// Builds the recursion's static tables: per-gate distinct-fanin
    /// primes (served from the session's cell cache) and worst-/best-
    /// case quantized arrivals. No BDD work happens here; the recursion
    /// itself only ever touches the cones of the queried targets.
    fn prepare(
        &mut self,
        cx: &mut EngineCx<'_, '_>,
        _targets: &[NetId],
    ) -> Result<(), Exhausted> {
        let netlist = cx.netlist;
        self.arrivals_q = cx.sta.arrivals().iter().map(|d| d.quantize()).collect();
        self.gate_info = netlist
            .gates()
            .map(|(gid, _)| {
                let (fanins, delays, tt) = distinct_fanins(netlist, cx.sta, gid);
                let primes =
                    gate_on_off_primes(netlist, cx.primes, gid, fanins.len(), &tt);
                GateInfo {
                    fanins,
                    delays_q: delays.iter().map(|d| d.quantize()).collect(),
                    primes,
                }
            })
            .collect();

        // Shortest-path (earliest possible stabilization) arrivals.
        self.min_arrivals_q = vec![0i64; netlist.num_nets()];
        for (gid, g) in netlist.gates() {
            let info = &self.gate_info[gid.index()];
            let min_in = info
                .fanins
                .iter()
                .zip(&info.delays_q)
                .map(|(f, dq)| self.min_arrivals_q[f.index()] + dq)
                .min()
                .unwrap_or(0);
            self.min_arrivals_q[g.output().index()] = min_in;
        }
        self.prepared = true;
        Ok(())
    }

    /// Everything this engine prepares — arrival tables, gate primes,
    /// and the stabilization memo — is independent of Δ_y, so a warm
    /// retarget skips preparation entirely and the new target's
    /// recursion lands on the memoized stabilization sets of every
    /// previous (looser) target.
    fn retarget(
        &mut self,
        cx: &mut EngineCx<'_, '_>,
        targets: &[NetId],
    ) -> Result<(), Exhausted> {
        if self.prepared {
            return Ok(());
        }
        self.prepare(cx, targets)
    }

    fn compute_output(
        &mut self,
        cx: &mut EngineCx<'_, '_>,
        output: NetId,
    ) -> Result<BddRef, Exhausted> {
        let qt = cx.target.quantize();
        let s1 = self.stab(cx, output, qt, true)?;
        let s0 = self.stab(cx, output, qt, false)?;
        let settled = cx.bdd.try_or(s1, s0)?;
        cx.bdd.try_not(settled)
    }

    fn publish_metrics(&mut self, cx: &mut EngineCx<'_, '_>) {
        if !tm_telemetry::enabled() {
            return;
        }
        tm_telemetry::counter_add("spcf.short_path.stab_calls", self.stab_calls);
        tm_telemetry::counter_add("spcf.short_path.memo_hit", self.memo_hits);
        tm_telemetry::counter_add("spcf.short_path.memo_miss", self.memo_misses);
        tm_telemetry::gauge_set("spcf.short_path.memo_entries", self.memo.len() as f64);
        cx.bdd.publish_metrics();
    }

    fn memo_entries(&self) -> u64 {
        self.memo.len() as u64
    }
}

/// Computes the exact SPCF of every critical output with the proposed
/// short-path-based algorithm.
///
/// `target` is the target arrival time `Δ_y` (e.g. `0.9 × Δ`); outputs
/// whose worst arrival is within the target are not critical and are
/// omitted.
///
/// # Panics
///
/// Panics if the BDD manager has fewer variables than the netlist has
/// inputs, or if `sta` analyzes a different netlist.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use tm_logic::Bdd;
/// use tm_netlist::{circuits::comparator2, library::lsi10k_like, Delay};
/// use tm_spcf::short_path_spcf;
/// use tm_sta::Sta;
///
/// let nl = comparator2(Arc::new(lsi10k_like()));
/// let sta = Sta::new(&nl);
/// let mut bdd = Bdd::new(4);
/// let set = short_path_spcf(&nl, &sta, &mut bdd, Delay::new(6.3));
/// // The paper's worked example: Σ_y = ā1 + ā0·b1, 10 of 16 patterns.
/// assert_eq!(set.critical_pattern_count(&bdd), 10.0);
/// ```
pub fn short_path_spcf(netlist: &Netlist, sta: &Sta<'_>, bdd: &mut Bdd, target: Delay) -> SpcfSet {
    try_short_path_spcf(netlist, sta, bdd, target, Budget::unlimited())
        .expect("unlimited budget cannot exhaust")
}

/// Budget-checked [`short_path_spcf`]: the `budget` caps BDD nodes and
/// recursion steps (installed on the manager for the duration of the
/// session, then restored) plus the engine's stabilization memo; on
/// exhaustion the partial computation is abandoned and a typed
/// [`Exhausted`] error is returned.
pub fn try_short_path_spcf(
    netlist: &Netlist,
    sta: &Sta<'_>,
    bdd: &mut Bdd,
    target: Delay,
    budget: Budget,
) -> Result<SpcfSet, Exhausted> {
    let mut engine = ShortPathEngine::default();
    EngineSession::new(netlist, sta, bdd, target, budget).run(&mut engine)
}

/// Computes the short-path SPCF of a *single* net at an arbitrary target
/// time (not necessarily a primary output) — useful for diagnostics and
/// for tests.
pub fn short_path_spcf_of_net(
    netlist: &Netlist,
    sta: &Sta<'_>,
    bdd: &mut Bdd,
    net: NetId,
    target: Delay,
) -> BddRef {
    let mut engine = ShortPathEngine::default();
    EngineSession::new(netlist, sta, bdd, target, Budget::unlimited())
        .run_net(&mut engine, net)
        .expect("unlimited budget cannot exhaust")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tm_netlist::circuits::comparator2;
    use tm_netlist::library::lsi10k_like;

    fn setup() -> Netlist {
        comparator2(Arc::new(lsi10k_like()))
    }

    #[test]
    fn comparator_spcf_matches_paper() {
        let nl = setup();
        let sta = Sta::new(&nl);
        let mut bdd = Bdd::new(4);
        let set = short_path_spcf(&nl, &sta, &mut bdd, Delay::new(6.3));
        assert_eq!(set.outputs.len(), 1);
        // Paper: Σ_y(Δ_y) = ā1 + ā0·b1 (inputs a0,a1,b0,b1 = vars 0..3).
        let a1 = bdd.var(1);
        let na1 = bdd.not(a1);
        let a0 = bdd.var(0);
        let na0 = bdd.not(a0);
        let b1 = bdd.var(3);
        let t = bdd.and(na0, b1);
        let expect = bdd.or(na1, t);
        assert_eq!(set.outputs[0].spcf, expect);
        assert_eq!(set.critical_pattern_count(&bdd), 10.0);
    }

    #[test]
    fn relaxed_target_has_no_critical_outputs() {
        let nl = setup();
        let sta = Sta::new(&nl);
        let mut bdd = Bdd::new(4);
        let set = short_path_spcf(&nl, &sta, &mut bdd, Delay::new(7.0));
        assert!(set.outputs.is_empty());
        assert_eq!(set.critical_pattern_count(&bdd), 0.0);
    }

    #[test]
    fn tight_target_includes_everything_slower() {
        let nl = setup();
        let sta = Sta::new(&nl);
        let mut bdd = Bdd::new(4);
        // Target below every path: every pattern takes > 3.9 to settle?
        // Not necessarily — some patterns settle via 4-unit paths. At
        // target 3.9 the SPCF is the set of patterns settling later than
        // 3.9 (nonempty and bigger than the 6.3 SPCF).
        let tight = short_path_spcf(&nl, &sta, &mut bdd, Delay::new(3.9));
        let loose = short_path_spcf(&nl, &sta, &mut bdd, Delay::new(6.3));
        let tc = tight.critical_pattern_count(&bdd);
        let lc = loose.critical_pattern_count(&bdd);
        assert!(tc >= lc);
        // Monotonicity per output: loose SPCF ⊆ tight SPCF.
        let t = tight.outputs[0].spcf;
        let l = loose.outputs[0].spcf;
        assert!(bdd.is_subset(l, t));
    }

    #[test]
    fn spcf_patterns_really_are_slow() {
        // Dynamic cross-check: every pattern in the SPCF, when applied
        // from at least one predecessor state, produces a transition
        // that settles after the target; patterns outside settle on time
        // from *every* predecessor (floating-mode is a worst-case over
        // previous states).
        let nl = setup();
        let sta = Sta::new(&nl);
        let mut bdd = Bdd::new(4);
        let set = short_path_spcf(&nl, &sta, &mut bdd, Delay::new(6.3));
        let spcf = set.outputs[0].spcf;
        let sim = tm_sim::timing::TimingSim::new(&nl);
        for m in 0..16u64 {
            let next: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
            let mut worst_settle = Delay::ZERO;
            for p in 0..16u64 {
                let prev: Vec<bool> = (0..4).map(|i| (p >> i) & 1 == 1).collect();
                let r = sim.transition(&prev, &next, Delay::new(6.3));
                worst_settle = worst_settle.max(r.output_settle[0]);
            }
            let in_spcf = bdd.eval(spcf, &next);
            if !in_spcf {
                // Not a speed-path pattern: settles by the target from
                // every predecessor state.
                assert!(
                    worst_settle <= Delay::new(6.3),
                    "pattern {m} outside SPCF settled at {worst_settle:?}"
                );
            }
        }
    }

    #[test]
    fn single_net_query_matches_full_run() {
        let nl = setup();
        let sta = Sta::new(&nl);
        let mut bdd = Bdd::new(4);
        let set = short_path_spcf(&nl, &sta, &mut bdd, Delay::new(6.3));
        let y = nl.outputs()[0];
        let single = short_path_spcf_of_net(&nl, &sta, &mut bdd, y, Delay::new(6.3));
        assert_eq!(single, set.outputs[0].spcf);
    }

    #[test]
    fn session_restores_previous_budget() {
        let nl = setup();
        let sta = Sta::new(&nl);
        let mut bdd = Bdd::new(4);
        let outer = Budget::unlimited().with_max_steps(123_456);
        bdd.set_budget(outer);
        // Success path restores.
        let _ = short_path_spcf(&nl, &sta, &mut bdd, Delay::new(6.3));
        assert_eq!(bdd.budget(), outer);
        // Exhaustion path restores too (fresh manager: the run above
        // left warm caches that would absorb a tiny step budget).
        let mut cold = Bdd::new(4);
        cold.set_budget(outer);
        let tiny = Budget::unlimited().with_max_steps(1);
        assert!(try_short_path_spcf(&nl, &sta, &mut cold, Delay::new(6.3), tiny).is_err());
        assert_eq!(cold.budget(), outer);
    }
}
