//! The guard-everything SPCF: the last rung of the resilience
//! degradation ladder (DESIGN.md §7).
//!
//! When even the node-based over-approximation exhausts its budget, the
//! pipeline falls back to declaring *every* input pattern a speed-path
//! activation pattern for every structurally critical output. This is
//! the coarsest sound over-approximation: the true SPCF is trivially a
//! subset of the full input space, so a mask synthesized against it
//! still satisfies the coverage invariant `Σ_y ⇒ e_y` — it simply fires
//! on every cycle and pays duplication-level area. No BDD work beyond
//! the constant-true node is performed, so this engine cannot exhaust
//! any budget.

use crate::engine::{EngineCx, EngineSession, SpcfEngine};
use crate::{Algorithm, SpcfSet};
use tm_logic::bdd::{Bdd, BddRef};
use tm_netlist::{Delay, NetId, Netlist};
use tm_resilience::{Budget, Exhausted};
use tm_sta::Sta;

/// The guard-everything engine: every critical output's SPCF is the
/// constant-one function.
pub struct ConservativeEngine;

impl SpcfEngine for ConservativeEngine {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Conservative
    }

    fn compute_output(
        &mut self,
        cx: &mut EngineCx<'_, '_>,
        _output: NetId,
    ) -> Result<BddRef, Exhausted> {
        Ok(cx.bdd.one())
    }
}

/// Computes the guard-everything SPCF: constant-true for every output
/// whose structural arrival exceeds `target`, mirroring the criticality
/// filter of the real engines.
///
/// # Panics
///
/// Panics if `sta` analyzes a different netlist or the BDD manager is
/// too narrow.
pub fn conservative_spcf(
    netlist: &Netlist,
    sta: &Sta<'_>,
    bdd: &mut Bdd,
    target: Delay,
) -> SpcfSet {
    let mut engine = ConservativeEngine;
    EngineSession::new(netlist, sta, bdd, target, Budget::unlimited())
        .run(&mut engine)
        .expect("the guard-everything engine performs no budgeted work")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::short_path::short_path_spcf;
    use std::sync::Arc;
    use tm_netlist::circuits::comparator2;
    use tm_netlist::library::lsi10k_like;

    #[test]
    fn guards_exactly_the_critical_outputs() {
        let nl = comparator2(Arc::new(lsi10k_like()));
        let sta = Sta::new(&nl);
        let mut bdd = Bdd::new(4);
        let set = conservative_spcf(&nl, &sta, &mut bdd, Delay::new(6.3));
        assert_eq!(set.algorithm, Algorithm::Conservative);
        assert_eq!(set.outputs.len(), 1);
        assert_eq!(set.outputs[0].spcf, bdd.one());
        assert_eq!(set.critical_pattern_count(&bdd), 16.0);
        // Relaxed target: nothing is critical, nothing is guarded.
        let relaxed = conservative_spcf(&nl, &sta, &mut bdd, Delay::new(7.0));
        assert!(relaxed.outputs.is_empty());
    }

    #[test]
    fn contains_the_exact_spcf() {
        let nl = comparator2(Arc::new(lsi10k_like()));
        let sta = Sta::new(&nl);
        let mut bdd = Bdd::new(4);
        let guard = conservative_spcf(&nl, &sta, &mut bdd, Delay::new(6.3));
        let exact = short_path_spcf(&nl, &sta, &mut bdd, Delay::new(6.3));
        assert_eq!(guard.outputs.len(), exact.outputs.len());
        for (g, e) in guard.outputs.iter().zip(&exact.outputs) {
            assert_eq!(g.output, e.output);
            assert!(bdd.is_subset(e.spcf, g.spcf));
        }
    }
}
