//! Node-based over-approximate SPCF computation (the baseline of ref
//! \[22\]).
//!
//! Gates are *statically* marked critical from arrival/required slack
//! before a single topological pass; the pass then computes, per net, an
//! "on-time" function with no time parameter at all:
//!
//! - primary inputs and non-critical gates are always on time;
//! - a critical gate is on time when some prime implicant of its
//!   function is satisfied with every constituent literal itself on
//!   time.
//!
//! Because a multi-fanout gate that is critical along only one fanout is
//! marked critical for *all* fanouts (its required time is the minimum
//! over fanouts), the complement of the on-time function
//! over-approximates the exact SPCF — precisely the inaccuracy the paper
//! attributes to node-based traversal, and the reason Table 1's
//! node-based pattern counts are supersets of the exact ones. The
//! inclusion `Σ_exact ⊆ Σ_node` is proved in `DESIGN.md` and asserted by
//! property tests.

use crate::common::{distinct_fanins, gate_on_off_primes};
use crate::engine::{cone_nets, EngineCx, EngineSession, SpcfEngine};
use crate::{Algorithm, SpcfSet};
use tm_logic::bdd::{Bdd, BddRef};
use tm_netlist::{Delay, NetId, Netlist};
use tm_resilience::{Budget, Exhausted};
use tm_sta::Sta;

/// The node-based engine: one cone-restricted topological pass
/// computing a per-net static "on-time" function.
#[derive(Default)]
pub struct NodeBasedEngine {
    /// `on_time[net]`: patterns for which the net is guaranteed settled
    /// by its static required time.
    on_time: Vec<BddRef>,
}

impl SpcfEngine for NodeBasedEngine {
    fn algorithm(&self) -> Algorithm {
        Algorithm::NodeBased
    }

    /// The whole algorithm is this one pass; `compute_output` is a
    /// single complement per output. The sweep is restricted to the
    /// fanin cones of `targets`: every statically critical gate lies in
    /// the cone of some critical output (its finite required time comes
    /// from a violating path *to* such an output), so on the full
    /// target list the restriction changes nothing — and on a worker's
    /// shard it skips the rest of the circuit.
    fn prepare(
        &mut self,
        cx: &mut EngineCx<'_, '_>,
        targets: &[NetId],
    ) -> Result<(), Exhausted> {
        let netlist = cx.netlist;
        let in_cone = cone_nets(netlist, targets);
        let mut critical_gates = 0u64;
        let required = cx.sta.required(cx.target);
        let one = cx.bdd.one();
        let zero = cx.bdd.zero();

        // Primary inputs settle at t = 0, so a PI whose required time
        // went negative (it starts a violating path) is never "on time"
        // — this is where lateness originates.
        let mut on_time: Vec<BddRef> = vec![one; netlist.num_nets()];
        for &pi in netlist.inputs() {
            if required[pi.index()].is_finite() && required[pi.index()] < Delay::ZERO {
                on_time[pi.index()] = zero;
            }
        }
        for (gid, g) in netlist.gates() {
            let out = g.output();
            if !in_cone[out.index()] {
                continue;
            }
            let req_out = required[out.index()];
            let slack_ok = !req_out.is_finite() || cx.sta.arrival(out) <= req_out;
            if slack_ok {
                continue; // non-critical gates meet timing on every pattern
            }
            critical_gates += 1;
            let (fanins, delays, tt) = distinct_fanins(netlist, cx.sta, gid);
            let primes = gate_on_off_primes(netlist, cx.primes, gid, fanins.len(), &tt);
            let (on_primes, off_primes) = &*primes;
            let mut terms = Vec::with_capacity(on_primes.len() + off_primes.len());
            for p in on_primes.iter().chain(off_primes) {
                let mut lits = Vec::with_capacity(p.literal_count() as usize);
                for (pos, pol) in p.literals() {
                    let u = fanins[pos];
                    let f = cx.globals.try_of(netlist, cx.bdd, u)?;
                    let value = if pol { f } else { cx.bdd.try_not(f)? };
                    // Static edge check: if the worst arrival through this
                    // edge meets the gate's required time, the literal is
                    // always on time; otherwise fall back to the fanin's own
                    // static on-time set (the node-based approximation).
                    let edge_meets = cx.sta.arrival(u) + delays[pos] <= req_out;
                    let lit = if edge_meets {
                        value
                    } else {
                        cx.bdd.try_and(value, on_time[u.index()])?
                    };
                    lits.push(lit);
                }
                terms.push(cx.bdd.try_and_all(lits)?);
            }
            on_time[out.index()] = cx.bdd.try_or_all(terms)?;
        }
        tm_telemetry::counter_add("spcf.node_based.critical_gates", critical_gates);
        self.on_time = on_time;
        Ok(())
    }

    fn compute_output(
        &mut self,
        cx: &mut EngineCx<'_, '_>,
        output: NetId,
    ) -> Result<BddRef, Exhausted> {
        cx.bdd.try_not(self.on_time[output.index()])
    }

    fn publish_metrics(&mut self, cx: &mut EngineCx<'_, '_>) {
        cx.bdd.publish_metrics();
    }
}

/// Computes the over-approximate SPCF of every critical output with the
/// node-based algorithm of ref \[22\].
///
/// The result is a superset of the exact SPCF per output (equality on
/// circuits without multi-fanout criticality sharing), computed in one
/// topological pass — the fastest of the three engines.
///
/// # Panics
///
/// Panics if the BDD manager is too narrow or `sta` analyzes a
/// different netlist.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use tm_logic::Bdd;
/// use tm_netlist::{circuits::comparator2, library::lsi10k_like, Delay};
/// use tm_spcf::{node_based_spcf, short_path_spcf};
/// use tm_sta::Sta;
///
/// let nl = comparator2(Arc::new(lsi10k_like()));
/// let sta = Sta::new(&nl);
/// let mut bdd = Bdd::new(4);
/// let over = node_based_spcf(&nl, &sta, &mut bdd, Delay::new(6.3));
/// let exact = short_path_spcf(&nl, &sta, &mut bdd, Delay::new(6.3));
/// // Over-approximation contains the exact set.
/// let (o, e) = (over.outputs[0].spcf, exact.outputs[0].spcf);
/// assert!(bdd.is_subset(e, o));
/// ```
pub fn node_based_spcf(netlist: &Netlist, sta: &Sta<'_>, bdd: &mut Bdd, target: Delay) -> SpcfSet {
    try_node_based_spcf(netlist, sta, bdd, target, Budget::unlimited())
        .expect("unlimited budget cannot exhaust")
}

/// Budget-checked [`node_based_spcf`]: `budget` caps BDD nodes and
/// recursion steps for the duration of the session (the manager's
/// previous budget is restored afterwards). On exhaustion the partial
/// pass is abandoned with a typed [`Exhausted`] error.
pub fn try_node_based_spcf(
    netlist: &Netlist,
    sta: &Sta<'_>,
    bdd: &mut Bdd,
    target: Delay,
    budget: Budget,
) -> Result<SpcfSet, Exhausted> {
    let mut engine = NodeBasedEngine::default();
    EngineSession::new(netlist, sta, bdd, target, budget).run(&mut engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::short_path::short_path_spcf;
    use std::sync::Arc;
    use tm_netlist::circuits::{comparator2, mini_alu, priority_encoder, ripple_adder};
    use tm_netlist::library::lsi10k_like;

    #[test]
    fn comparator_node_based_superset() {
        let nl = comparator2(Arc::new(lsi10k_like()));
        let sta = Sta::new(&nl);
        let mut bdd = Bdd::new(4);
        let over = node_based_spcf(&nl, &sta, &mut bdd, Delay::new(6.3));
        let exact = short_path_spcf(&nl, &sta, &mut bdd, Delay::new(6.3));
        assert_eq!(over.outputs.len(), 1);
        let o = over.outputs[0].spcf;
        let e = exact.outputs[0].spcf;
        assert!(bdd.is_subset(e, o));
        assert!(over.critical_pattern_count(&bdd) >= exact.critical_pattern_count(&bdd));
    }

    #[test]
    fn superset_on_many_circuits_and_targets() {
        let lib = Arc::new(lsi10k_like());
        for nl in [
            ripple_adder(lib.clone(), 3),
            mini_alu(lib.clone(), 2),
            priority_encoder(lib.clone(), 5),
        ] {
            let sta = Sta::new(&nl);
            let delta = sta.critical_path_delay();
            for frac in [0.7, 0.85, 0.95] {
                let target = delta * frac;
                let mut bdd = Bdd::new(nl.inputs().len());
                let over = node_based_spcf(&nl, &sta, &mut bdd, target);
                let exact = short_path_spcf(&nl, &sta, &mut bdd, target);
                assert_eq!(over.outputs.len(), exact.outputs.len());
                for (a, b) in over.outputs.iter().zip(&exact.outputs) {
                    assert_eq!(a.output, b.output);
                    assert!(
                        bdd.is_subset(b.spcf, a.spcf),
                        "{} target {frac}: node-based lost exact patterns",
                        nl.name()
                    );
                }
            }
        }
    }

    #[test]
    fn no_critical_outputs_above_delta() {
        let nl = comparator2(Arc::new(lsi10k_like()));
        let sta = Sta::new(&nl);
        let mut bdd = Bdd::new(4);
        let set = node_based_spcf(&nl, &sta, &mut bdd, Delay::new(7.5));
        assert!(set.outputs.is_empty());
    }
}
