//! Node-based over-approximate SPCF computation (the baseline of ref
//! \[22\]).
//!
//! Gates are *statically* marked critical from arrival/required slack
//! before a single topological pass; the pass then computes, per net, an
//! "on-time" function with no time parameter at all:
//!
//! - primary inputs and non-critical gates are always on time;
//! - a critical gate is on time when some prime implicant of its
//!   function is satisfied with every constituent literal itself on
//!   time.
//!
//! Because a multi-fanout gate that is critical along only one fanout is
//! marked critical for *all* fanouts (its required time is the minimum
//! over fanouts), the complement of the on-time function
//! over-approximates the exact SPCF — precisely the inaccuracy the paper
//! attributes to node-based traversal, and the reason Table 1's
//! node-based pattern counts are supersets of the exact ones. The
//! inclusion `Σ_exact ⊆ Σ_node` is proved in `DESIGN.md` and asserted by
//! property tests.

use crate::common::{distinct_fanins, Algorithm, LazyGlobals, OutputSpcf, SpcfSet};
use std::time::Instant;
use tm_logic::bdd::{Bdd, BddRef};
use tm_logic::qm;
use tm_netlist::{Delay, Netlist};
use tm_resilience::{Budget, Exhausted};
use tm_sta::Sta;

/// Computes the over-approximate SPCF of every critical output with the
/// node-based algorithm of ref \[22\].
///
/// The result is a superset of the exact SPCF per output (equality on
/// circuits without multi-fanout criticality sharing), computed in one
/// topological pass — the fastest of the three engines.
///
/// # Panics
///
/// Panics if the BDD manager is too narrow or `sta` analyzes a
/// different netlist.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use tm_logic::Bdd;
/// use tm_netlist::{circuits::comparator2, library::lsi10k_like, Delay};
/// use tm_spcf::{node_based_spcf, short_path_spcf};
/// use tm_sta::Sta;
///
/// let nl = comparator2(Arc::new(lsi10k_like()));
/// let sta = Sta::new(&nl);
/// let mut bdd = Bdd::new(4);
/// let over = node_based_spcf(&nl, &sta, &mut bdd, Delay::new(6.3));
/// let exact = short_path_spcf(&nl, &sta, &mut bdd, Delay::new(6.3));
/// // Over-approximation contains the exact set.
/// let (o, e) = (over.outputs[0].spcf, exact.outputs[0].spcf);
/// assert!(bdd.is_subset(e, o));
/// ```
pub fn node_based_spcf(netlist: &Netlist, sta: &Sta<'_>, bdd: &mut Bdd, target: Delay) -> SpcfSet {
    try_node_based_spcf(netlist, sta, bdd, target, Budget::unlimited())
        .expect("unlimited budget cannot exhaust")
}

/// Budget-checked [`node_based_spcf`]: `budget` caps BDD nodes and
/// recursion steps for the duration of the call (the manager's previous
/// budget is restored afterwards). On exhaustion the partial pass is
/// abandoned with a typed [`Exhausted`] error.
pub fn try_node_based_spcf(
    netlist: &Netlist,
    sta: &Sta<'_>,
    bdd: &mut Bdd,
    target: Delay,
    budget: Budget,
) -> Result<SpcfSet, Exhausted> {
    assert!(std::ptr::eq(sta.netlist(), netlist), "STA must analyze the same netlist");
    let _span = tm_telemetry::span!("spcf.node_based", target = target);
    let prev = bdd.budget();
    bdd.set_budget(budget);
    let r = node_based_rec(netlist, sta, bdd, target);
    bdd.publish_metrics();
    bdd.set_budget(prev);
    r
}

fn node_based_rec(
    netlist: &Netlist,
    sta: &Sta<'_>,
    bdd: &mut Bdd,
    target: Delay,
) -> Result<SpcfSet, Exhausted> {
    let start = Instant::now();
    let mut critical_gates = 0u64;
    let mut globals = LazyGlobals::new(netlist);
    let required = sta.required(target);
    let one = bdd.one();
    let zero = bdd.zero();

    // on_time[net]: patterns for which the net is guaranteed settled by
    // its static required time. Primary inputs settle at t = 0, so a PI
    // whose required time went negative (it starts a violating path) is
    // never "on time" — this is where lateness originates.
    let mut on_time: Vec<BddRef> = vec![one; netlist.num_nets()];
    for &pi in netlist.inputs() {
        if required[pi.index()].is_finite() && required[pi.index()] < Delay::ZERO {
            on_time[pi.index()] = zero;
        }
    }
    for (gid, g) in netlist.gates() {
        let out = g.output();
        let req_out = required[out.index()];
        let slack_ok = !req_out.is_finite() || sta.arrival(out) <= req_out;
        if slack_ok {
            continue; // non-critical gates meet timing on every pattern
        }
        critical_gates += 1;
        let (fanins, delays, tt) = distinct_fanins(netlist, sta, gid);
        let (on_primes, off_primes) = qm::on_off_primes(&tt);
        let mut terms = Vec::with_capacity(on_primes.len() + off_primes.len());
        for p in on_primes.iter().chain(&off_primes) {
            let mut lits = Vec::with_capacity(p.literal_count() as usize);
            for (pos, pol) in p.literals() {
                let u = fanins[pos];
                let f = globals.try_of(netlist, bdd, u)?;
                let value = if pol { f } else { bdd.try_not(f)? };
                // Static edge check: if the worst arrival through this
                // edge meets the gate's required time, the literal is
                // always on time; otherwise fall back to the fanin's own
                // static on-time set (the node-based approximation).
                let edge_meets = sta.arrival(u) + delays[pos] <= req_out;
                let lit = if edge_meets {
                    value
                } else {
                    bdd.try_and(value, on_time[u.index()])?
                };
                lits.push(lit);
            }
            terms.push(bdd.try_and_all(lits)?);
        }
        on_time[out.index()] = bdd.try_or_all(terms)?;
    }

    let mut outputs = Vec::new();
    for &o in netlist.outputs() {
        if sta.arrival(o) <= target {
            continue;
        }
        let t0 = Instant::now();
        let spcf = bdd.try_not(on_time[o.index()])?;
        tm_telemetry::histogram_record(
            "spcf.node_based.output_ns",
            t0.elapsed().as_nanos() as f64,
        );
        outputs.push(OutputSpcf { output: o, spcf });
    }
    tm_telemetry::counter_add("spcf.node_based.critical_gates", critical_gates);

    Ok(SpcfSet {
        algorithm: Algorithm::NodeBased,
        target,
        outputs,
        runtime: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::short_path::short_path_spcf;
    use std::sync::Arc;
    use tm_netlist::circuits::{comparator2, mini_alu, priority_encoder, ripple_adder};
    use tm_netlist::library::lsi10k_like;

    #[test]
    fn comparator_node_based_superset() {
        let nl = comparator2(Arc::new(lsi10k_like()));
        let sta = Sta::new(&nl);
        let mut bdd = Bdd::new(4);
        let over = node_based_spcf(&nl, &sta, &mut bdd, Delay::new(6.3));
        let exact = short_path_spcf(&nl, &sta, &mut bdd, Delay::new(6.3));
        assert_eq!(over.outputs.len(), 1);
        let o = over.outputs[0].spcf;
        let e = exact.outputs[0].spcf;
        assert!(bdd.is_subset(e, o));
        assert!(over.critical_pattern_count(&bdd) >= exact.critical_pattern_count(&bdd));
    }

    #[test]
    fn superset_on_many_circuits_and_targets() {
        let lib = Arc::new(lsi10k_like());
        for nl in [
            ripple_adder(lib.clone(), 3),
            mini_alu(lib.clone(), 2),
            priority_encoder(lib.clone(), 5),
        ] {
            let sta = Sta::new(&nl);
            let delta = sta.critical_path_delay();
            for frac in [0.7, 0.85, 0.95] {
                let target = delta * frac;
                let mut bdd = Bdd::new(nl.inputs().len());
                let over = node_based_spcf(&nl, &sta, &mut bdd, target);
                let exact = short_path_spcf(&nl, &sta, &mut bdd, target);
                assert_eq!(over.outputs.len(), exact.outputs.len());
                for (a, b) in over.outputs.iter().zip(&exact.outputs) {
                    assert_eq!(a.output, b.output);
                    assert!(
                        bdd.is_subset(b.spcf, a.spcf),
                        "{} target {frac}: node-based lost exact patterns",
                        nl.name()
                    );
                }
            }
        }
    }

    #[test]
    fn no_critical_outputs_above_delta() {
        let nl = comparator2(Arc::new(lsi10k_like()));
        let sta = Sta::new(&nl);
        let mut bdd = Bdd::new(4);
        let set = node_based_spcf(&nl, &sta, &mut bdd, Delay::new(7.5));
        assert!(set.outputs.is_empty());
    }
}
