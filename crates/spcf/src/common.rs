//! Shared infrastructure for the SPCF engines: gate prime-implicant
//! caches, global net functions, and the result types.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use tm_logic::bdd::{Bdd, BddRef};
use tm_logic::{qm, Cube, TruthTable};
use tm_netlist::netlist::Driver;
use tm_netlist::{CellId, Delay, GateId, NetId, Netlist};
use tm_resilience::Exhausted;

/// Which SPCF algorithm produced a result.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Static-marking node-based over-approximation (ref \[22\]).
    NodeBased,
    /// Exact path-based timed-waveform analysis (extension of \[22\], in
    /// the spirit of ADD-based timing analysis \[27\]).
    PathBased,
    /// The paper's proposed short-path-based exact recursion (Eqn. 1).
    ShortPath,
    /// Guard-everything over-approximation: the SPCF of every critical
    /// output is the full input space. Trivially sound (a superset of
    /// any exact SPCF), trivially cheap, maximally area-hungry — the
    /// last rung of the resilience degradation ladder (DESIGN.md §7).
    Conservative,
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Algorithm::NodeBased => write!(f, "node-based"),
            Algorithm::PathBased => write!(f, "path-based"),
            Algorithm::ShortPath => write!(f, "short-path-based"),
            Algorithm::Conservative => write!(f, "conservative"),
        }
    }
}

/// The SPCF of one critical primary output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutputSpcf {
    /// The critical primary output.
    pub output: NetId,
    /// Characteristic function of its speed-path activation patterns
    /// (over the primary-input space of the shared BDD manager).
    pub spcf: BddRef,
}

/// The SPCFs of every critical output of a circuit at one target time.
#[derive(Clone, Debug)]
pub struct SpcfSet {
    /// The algorithm that produced this set.
    pub algorithm: Algorithm,
    /// Target arrival time `Δ_y` the set was computed against.
    pub target: Delay,
    /// Per critical output: the SPCF (outputs with empty SPCFs under
    /// exact analysis are still listed if structurally critical).
    pub outputs: Vec<OutputSpcf>,
    /// Wall-clock time of the computation.
    pub runtime: Duration,
    /// Worker threads the computation was asked to use (1 = serial).
    pub jobs: usize,
    /// `NetId::index` → position in `outputs`, so [`SpcfSet::spcf_of`]
    /// stays O(1) on wide circuits.
    index: HashMap<usize, usize>,
}

impl SpcfSet {
    /// Assembles a set and its output index.
    pub fn new(
        algorithm: Algorithm,
        target: Delay,
        outputs: Vec<OutputSpcf>,
        runtime: Duration,
        jobs: usize,
    ) -> Self {
        let index =
            outputs.iter().enumerate().map(|(k, o)| (o.output.index(), k)).collect();
        SpcfSet { algorithm, target, outputs, runtime, jobs, index }
    }

    /// The SPCF of a specific output, if it is in the set.
    pub fn spcf_of(&self, output: NetId) -> Option<BddRef> {
        self.index.get(&output.index()).map(|&k| self.outputs[k].spcf)
    }

    /// Union of all per-output SPCFs: the patterns that sensitize *some*
    /// speed-path.
    ///
    /// **Cost warning**: the disjunction of many SPCFs with scattered
    /// variable supports can blow up under a fixed variable order; for
    /// reporting, prefer [`SpcfSet::critical_pattern_count`], which sums
    /// per-output counts instead.
    pub fn union(&self, bdd: &mut Bdd) -> BddRef {
        bdd.or_all(self.outputs.iter().map(|o| o.spcf))
    }

    /// Number of critical patterns summed over the critical outputs
    /// (the paper's "number of input patterns in the SPCF over all
    /// critical primary outputs"; a pattern sensitizing speed-paths to
    /// several outputs counts once per output).
    pub fn critical_pattern_count(&self, bdd: &Bdd) -> f64 {
        self.outputs.iter().map(|o| bdd.sat_count(o.spcf)).sum()
    }

    /// Outputs whose SPCF is non-empty.
    pub fn nonempty_outputs(&self, bdd: &Bdd) -> usize {
        let zero = bdd.zero();
        self.outputs.iter().filter(|o| o.spcf != zero).count()
    }
}

/// Cache of on-set/off-set prime implicants per gate *function*.
///
/// Eqn. 1 needs "the set of all prime implicants in the on-set and
/// off-set of f" for every gate; functions repeat, so compute them
/// once. Entries are keyed by a packed-u64 function key (arity tag +
/// raw truth-table bits, injective for the ≤5-input functions library
/// cells have), so structurally identical functions share one entry
/// even across distinct cells or remapped duplicate-fanin gates.
/// Entries are `Arc`-shared: lookups hand out cheap handles instead of
/// forcing cube-vector clones, and a prewarmed cache can be cloned into
/// parallel SPCF workers without recomputing a single prime.
#[derive(Clone, Debug, Default)]
pub struct GatePrimes {
    cache: HashMap<u64, Arc<(Vec<Cube>, Vec<Cube>)>>,
}

/// Packs a ≤5-input function into an injective u64 cache key: the
/// arity in the top bits, the `2^arity` truth-table bits below. Wider
/// functions (none in the shipped libraries) are not packable and
/// bypass the cache.
fn function_key(tt: &TruthTable) -> Option<u64> {
    let n = tt.num_vars();
    if n > 5 {
        return None;
    }
    let mut bits = 0u64;
    for m in 0..(1u64 << n) {
        bits |= u64::from(tt.eval(m)) << m;
    }
    debug_assert!(bits < 1u64 << (1u64 << n), "table bits exceed the packed arity range");
    Some(((n as u64) << 59) | bits)
}

impl GatePrimes {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// `(on_primes, off_primes)` of an arbitrary small function,
    /// cached under its packed key.
    pub fn of_function(&mut self, tt: &TruthTable) -> Arc<(Vec<Cube>, Vec<Cube>)> {
        match function_key(tt) {
            Some(key) => Arc::clone(
                self.cache.entry(key).or_insert_with(|| Arc::new(qm::on_off_primes(tt))),
            ),
            None => Arc::new(qm::on_off_primes(tt)),
        }
    }

    /// `(on_primes, off_primes)` of the cell's function, cached.
    pub fn of(&mut self, netlist: &Netlist, cell: CellId) -> Arc<(Vec<Cube>, Vec<Cube>)> {
        self.of_function(netlist.library().cell(cell).function())
    }

    /// Computes the primes of every cell the netlist instantiates, so
    /// clones of this cache (one per parallel worker) share the work.
    pub fn prewarm(&mut self, netlist: &Netlist) {
        let cells: Vec<CellId> = netlist.gates().map(|(_, g)| g.cell()).collect();
        for cell in cells {
            self.of(netlist, cell);
        }
    }
}

/// `(on_primes, off_primes)` of a gate over its *distinct* fanins.
///
/// The common case — all fanins distinct — is served straight from the
/// cell-level cache (the remap in [`distinct_fanins`] is the identity
/// there); gates with duplicated fanins get primes of the remapped
/// function.
pub fn gate_on_off_primes(
    netlist: &Netlist,
    primes: &mut GatePrimes,
    gate: GateId,
    distinct: usize,
    tt: &TruthTable,
) -> Arc<(Vec<Cube>, Vec<Cube>)> {
    let g = netlist.gate(gate);
    if distinct == g.inputs().len() {
        primes.of(netlist, g.cell())
    } else {
        primes.of_function(tt)
    }
}

/// Builds the global BDD of every net over the primary-input space (BDD
/// variable `i` = input position `i`); index by `NetId::index`.
///
/// # Panics
///
/// Panics if the manager has fewer variables than the netlist has
/// inputs.
pub fn net_global_bdds(netlist: &Netlist, bdd: &mut Bdd) -> Vec<BddRef> {
    assert!(bdd.num_vars() >= netlist.inputs().len(), "BDD manager too narrow");
    let mut globals = LazyGlobals::new(netlist);
    (0..netlist.num_nets())
        .map(|idx| globals.of(netlist, bdd, NetId::from_index(idx)))
        .collect()
}

/// Lazily computed global net functions over the primary-input space.
///
/// Only nets actually queried (plus their transitive fanins) are built —
/// engines that touch a small part of the circuit (the node-based pass
/// only needs the fanins of critical gates) avoid the full sweep of
/// [`net_global_bdds`].
#[derive(Debug)]
pub struct LazyGlobals {
    refs: Vec<Option<BddRef>>,
}

impl LazyGlobals {
    /// An empty cache for the given netlist.
    pub fn new(netlist: &Netlist) -> Self {
        LazyGlobals { refs: vec![None; netlist.num_nets()] }
    }

    /// The global function of `net`, building fanin functions on demand.
    ///
    /// # Panics
    ///
    /// Panics if the manager has fewer variables than the netlist has
    /// inputs, or if a finite manager budget runs out (use
    /// [`LazyGlobals::try_of`] under a budget).
    pub fn of(&mut self, netlist: &Netlist, bdd: &mut Bdd, net: NetId) -> BddRef {
        self.try_of(netlist, bdd, net)
            .expect("unbudgeted global construction cannot exhaust")
    }

    /// Budget-checked [`LazyGlobals::of`]: surfaces the manager's
    /// exhaustion instead of panicking.
    pub fn try_of(
        &mut self,
        netlist: &Netlist,
        bdd: &mut Bdd,
        net: NetId,
    ) -> Result<BddRef, Exhausted> {
        if let Some(f) = self.refs[net.index()] {
            return Ok(f);
        }
        let f = match netlist.driver(net) {
            Driver::PrimaryInput => {
                let pos = netlist
                    .input_position(net)
                    .expect("input-driven net is a primary input");
                bdd.try_var(pos)?
            }
            Driver::Gate(gid) => {
                let g = netlist.gate(gid);
                let func = netlist.library().cell(g.cell()).function().clone();
                let mut ins = Vec::with_capacity(g.inputs().len());
                for &i in g.inputs() {
                    ins.push(self.try_of(netlist, bdd, i)?);
                }
                let mut terms = Vec::new();
                for m in 0..(1u64 << ins.len()) {
                    if !func.eval(m) {
                        continue;
                    }
                    let mut lits = Vec::with_capacity(ins.len());
                    for (pin, &w) in ins.iter().enumerate() {
                        lits.push(if (m >> pin) & 1 == 1 { w } else { bdd.try_not(w)? });
                    }
                    terms.push(bdd.try_and_all(lits)?);
                }
                bdd.try_or_all(terms)?
            }
        };
        self.refs[net.index()] = Some(f);
        Ok(f)
    }
}

/// Resolves a gate's fanins to *distinct* nets, pairing each with the
/// worst (largest) pin delay among the pins it drives, and remaps the
/// cell function onto the distinct-net variable order.
///
/// Almost every gate has distinct fanins; duplicates only arise from
/// hand-built netlists, and taking the worst pin delay keeps the timed
/// analyses safe (a literal is only considered settled when its slowest
/// pin has propagated).
pub fn distinct_fanins(
    netlist: &Netlist,
    sta: &tm_sta::Sta<'_>,
    gate: tm_netlist::GateId,
) -> (Vec<NetId>, Vec<Delay>, tm_logic::TruthTable) {
    let g = netlist.gate(gate);
    let mut nets: Vec<NetId> = Vec::new();
    let mut delays: Vec<Delay> = Vec::new();
    let mut pin_to_pos = Vec::with_capacity(g.inputs().len());
    for (pin, &inp) in g.inputs().iter().enumerate() {
        let d = sta.pin_delay(gate, pin);
        match nets.iter().position(|&n| n == inp) {
            Some(pos) => {
                delays[pos] = delays[pos].max(d);
                pin_to_pos.push(pos);
            }
            None => {
                nets.push(inp);
                delays.push(d);
                pin_to_pos.push(nets.len() - 1);
            }
        }
    }
    let cell_tt = netlist.library().cell(g.cell()).function().clone();
    let tt = tm_logic::TruthTable::from_fn(nets.len(), |m| {
        let mut pins = 0u64;
        for (pin, &pos) in pin_to_pos.iter().enumerate() {
            if (m >> pos) & 1 == 1 {
                pins |= 1 << pin;
            }
        }
        cell_tt.eval(pins)
    });
    (nets, delays, tt)
}

/// True when `net` is driven by a gate (not a primary input).
pub fn is_gate_output(netlist: &Netlist, net: NetId) -> bool {
    matches!(netlist.driver(net), Driver::Gate(_))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tm_netlist::circuits::comparator2;
    use tm_netlist::library::lsi10k_like;

    #[test]
    fn global_bdds_agree_with_eval() {
        let nl = comparator2(Arc::new(lsi10k_like()));
        let mut bdd = Bdd::new(4);
        let refs = net_global_bdds(&nl, &mut bdd);
        for m in 0..16u64 {
            let a: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
            let vals = nl.eval_all_nets(&a);
            for idx in 0..nl.num_nets() {
                assert_eq!(bdd.eval(refs[idx], &a), vals[idx], "net {idx} m={m}");
            }
        }
    }

    #[test]
    fn gate_primes_cached() {
        let nl = comparator2(Arc::new(lsi10k_like()));
        let mut primes = GatePrimes::new();
        let (_, g) = nl.gates().next().unwrap();
        let handle = primes.of(&nl, g.cell());
        let (on, off) = &*handle;
        // INV: on-set prime = x0', off-set = x0.
        assert_eq!(on.len(), 1);
        assert_eq!(off.len(), 1);
        // Cache hit returns a handle to the same shared data.
        let again = primes.of(&nl, g.cell());
        assert!(Arc::ptr_eq(&handle, &again));
    }

    #[test]
    fn distinct_fanins_dedups() {
        use tm_netlist::Netlist;
        let lib = Arc::new(lsi10k_like());
        let mut nl = Netlist::new("dup", lib.clone());
        let a = nl.add_input("a");
        // AND2(a, a) = a
        let y = nl.add_gate(lib.expect("AND2"), &[a, a], "y");
        nl.mark_output(y);
        let sta = tm_sta::Sta::new(&nl);
        let (nets, delays, tt) = distinct_fanins(&nl, &sta, tm_netlist::GateId::from_index(0));
        assert_eq!(nets, vec![a]);
        assert_eq!(delays.len(), 1);
        assert!(tt.eval(1) && !tt.eval(0));
    }
}
