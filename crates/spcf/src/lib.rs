//! Speed-path characteristic function (SPCF) engines — §3 of Choudhury &
//! Mohanram, DATE 2009.
//!
//! For a primary output `y` and a target arrival time `Δ_y`, the SPCF
//! `Σ_y(Δ_y)` is the characteristic function of all *speed-path
//! activation patterns*: input patterns whose stabilization delay at `y`
//! exceeds `Δ_y`. Three engines compute it, mirroring Table 1 of the
//! paper:
//!
//! | engine | accuracy | cost |
//! |---|---|---|
//! | [`node_based_spcf`] | over-approximation | one topological pass (fastest) |
//! | [`path_based_spcf`] | exact | full timed waveform per net (slowest) |
//! | [`short_path_spcf`] | exact | memoized single-time queries (the paper's proposal) |
//!
//! All three return BDDs over the primary-input space, so exactness and
//! containment are *checked*, not assumed: tests assert
//! `short_path == path_based ⊆ node_based` on every circuit.
//!
//! # Example: the paper's worked comparator
//!
//! ```
//! use std::sync::Arc;
//! use tm_logic::Bdd;
//! use tm_netlist::{circuits::comparator2, library::lsi10k_like, Delay};
//! use tm_spcf::short_path_spcf;
//! use tm_sta::Sta;
//!
//! let nl = comparator2(Arc::new(lsi10k_like()));
//! let sta = Sta::new(&nl);
//! let delta = sta.critical_path_delay();       // 7 units
//! let target = delta * 0.9;                    // Δ_y = 6.3
//! let mut bdd = Bdd::new(nl.inputs().len());
//! let spcf = short_path_spcf(&nl, &sta, &mut bdd, target);
//! assert_eq!(spcf.critical_pattern_count(&bdd), 10.0); // ā1 + ā0·b1
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod conservative;
pub mod engine;
pub mod node_based;
pub mod path_based;
pub mod short_path;

pub use common::{net_global_bdds, Algorithm, GatePrimes, LazyGlobals, OutputSpcf, SpcfSet};
pub use conservative::{conservative_spcf, ConservativeEngine};
pub use engine::{
    critical_outputs, engine_for, spcf_with, try_spcf_with, EngineCx, EngineSession,
    SpcfEngine, SpcfOptions, WarmSession, JOBS_ENV,
};
pub use node_based::{node_based_spcf, try_node_based_spcf, NodeBasedEngine};
pub use path_based::{
    exact_output_delays, path_based_spcf, try_path_based_spcf, PathBasedEngine,
};
pub use short_path::{
    short_path_spcf, short_path_spcf_of_net, try_short_path_spcf, ShortPathEngine,
};
