//! Property tests for `Snapshot::merge` — the registry-free
//! aggregation primitive behind the serving daemon's shared aggregate
//! and the bench harness's cross-run folds.
//!
//! Merge must behave like multiset union of the recorded observations:
//!
//! - **associative**: `(a ∪ b) ∪ c == a ∪ (b ∪ c)` — the daemon folds
//!   worker drains in whatever grouping the locking produces;
//! - **commutative** over everything except gauges — gauges are
//!   documented last-write-wins, so commutativity is checked on
//!   gauge-free snapshots (and the gauge asymmetry is pinned by a
//!   dedicated case below);
//! - **identity**: the empty snapshot is a two-sided unit.
//!
//! Numeric payloads are generated as small integers so `f64` sums stay
//! exact — the properties are about merge structure, not float
//! rounding.

use tm_telemetry::digest::Digest;
use tm_telemetry::{HistogramStat, Snapshot, SpanStat};
use tm_testkit::prop::{self, Config, Gen};

const COUNTER_NAMES: &[&str] = &["serve.requests", "serve.pool.hits", "bdd.cache.hits"];
const GAUGE_NAMES: &[&str] = &["serve.pool.sessions", "bdd.nodes"];
const HISTOGRAM_NAMES: &[&str] = &["spcf.short_path.output_ns", "spcf.path_based.output_ns"];
const DIGEST_NAMES: &[&str] = &["serve.request_ns", "serve.queue_ns"];
const SPAN_NAMES: &[&str] = &["serve.request", "spcf.short_path"];

fn gen_snapshot(g: &mut Gen, with_gauges: bool) -> Snapshot {
    let mut s = Snapshot::default();
    for name in COUNTER_NAMES {
        if g.next_bool() {
            s.counters.push((name.to_string(), g.gen_range(0..1000u64)));
        }
    }
    if with_gauges {
        for name in GAUGE_NAMES {
            if g.next_bool() {
                s.gauges.push((name.to_string(), g.gen_range(0..1000u64) as f64));
            }
        }
    }
    for name in HISTOGRAM_NAMES {
        if g.next_bool() {
            let mut h = HistogramStat::default();
            for _ in 0..g.gen_range(1..6usize) {
                h.record(g.gen_range(0..2_000_000u64) as f64);
            }
            s.histograms.push((name.to_string(), h));
        }
    }
    for name in DIGEST_NAMES {
        if g.next_bool() {
            let mut d = Digest::default();
            for _ in 0..g.gen_range(1..6usize) {
                d.record(g.gen_range(0..2_000_000u64));
            }
            s.digests.push((name.to_string(), d));
        }
    }
    for name in SPAN_NAMES {
        if g.next_bool() {
            let total = g.gen_range(1..100_000u64);
            s.spans.push(SpanStat {
                name: name.to_string(),
                calls: g.gen_range(1..50u64),
                total_ns: total,
                self_ns: g.gen_range(0..=total),
            });
        }
    }
    // Real snapshots are always name-sorted (snapshot() sorts, merge
    // preserves order) — generated ones must satisfy the same invariant.
    s.counters.sort_by(|a, b| a.0.cmp(&b.0));
    s.gauges.sort_by(|a, b| a.0.cmp(&b.0));
    s.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    s.digests.sort_by(|a, b| a.0.cmp(&b.0));
    s.spans.sort_by(|a, b| a.name.cmp(&b.name));
    s
}

/// Snapshot equality via the deterministic JSON rendering (name-sorted,
/// so structurally equal snapshots render identically).
fn rendered(s: &Snapshot) -> String {
    s.to_json().render()
}

fn merged(a: &Snapshot, b: &Snapshot) -> Snapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

#[test]
fn merge_is_associative() {
    prop::check(
        "merge_is_associative",
        &Config::with_cases(64),
        |g| (gen_snapshot(g, true), gen_snapshot(g, true), gen_snapshot(g, true)),
        |(a, b, c)| {
            let left = rendered(&merged(&merged(a, b), c));
            let right = rendered(&merged(a, &merged(b, c)));
            if left == right {
                Ok(())
            } else {
                Err(format!("(a∪b)∪c != a∪(b∪c)\nleft:  {left}\nright: {right}"))
            }
        },
    );
}

#[test]
fn merge_is_commutative_without_gauges() {
    prop::check(
        "merge_is_commutative_without_gauges",
        &Config::with_cases(64),
        |g| (gen_snapshot(g, false), gen_snapshot(g, false)),
        |(a, b)| {
            let ab = rendered(&merged(a, b));
            let ba = rendered(&merged(b, a));
            if ab == ba {
                Ok(())
            } else {
                Err(format!("a∪b != b∪a\nab: {ab}\nba: {ba}"))
            }
        },
    );
}

#[test]
fn merge_identity_is_two_sided() {
    prop::check(
        "merge_identity_is_two_sided",
        &Config::with_cases(64),
        |g| gen_snapshot(g, true),
        |a| {
            let empty = Snapshot::default();
            let left = rendered(&merged(&empty, a));
            let right = rendered(&merged(a, &empty));
            let want = rendered(a);
            if left != want {
                return Err(format!("empty∪a != a\ngot:  {left}\nwant: {want}"));
            }
            if right != want {
                return Err(format!("a∪empty != a\ngot:  {right}\nwant: {want}"));
            }
            Ok(())
        },
    );
}

/// Pins the documented gauge asymmetry: merge order decides which
/// gauge value survives (last write wins), which is exactly why the
/// commutativity property above excludes gauges.
#[test]
fn gauge_merge_is_last_write_wins_by_construction() {
    let mut a = Snapshot::default();
    a.gauges.push(("serve.pool.sessions".to_string(), 1.0));
    let mut b = Snapshot::default();
    b.gauges.push(("serve.pool.sessions".to_string(), 2.0));
    assert_eq!(merged(&a, &b).gauge("serve.pool.sessions"), Some(2.0));
    assert_eq!(merged(&b, &a).gauge("serve.pool.sessions"), Some(1.0));
}
