//! Named counters, gauges, and fixed-bucket histograms, with JSON
//! snapshots.
//!
//! Metric names are `&'static str` in `crate.subsystem.metric` form and
//! must be registered in [`crate::schema`] — the CI validator fails on
//! names it does not know, so adding a metric means adding it to the
//! schema in the same change. The hot path allocates nothing in steady
//! state: names are static, histogram buckets are a fixed array, and a
//! disabled thread returns after one branch.

use crate::digest::Digest;
use crate::span::SpanStat as SpanStatInner;
use std::cell::RefCell;
use std::collections::HashMap;
use tm_testkit::json::Json;

pub use crate::span::SpanStat;

/// Histogram bucket upper bounds: 1–2–5 per decade over nine decades.
/// Values above the last bound land in an overflow bucket rendered with
/// `"le": null` (+∞). One shared layout keeps snapshots comparable
/// across metrics and runs.
pub const BUCKET_BOUNDS: [f64; 28] = [
    1.0, 2.0, 5.0, 1e1, 2e1, 5e1, 1e2, 2e2, 5e2, 1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5, 2e5, 5e5,
    1e6, 2e6, 5e6, 1e7, 2e7, 5e7, 1e8, 2e8, 5e8, 1e9,
];

/// A fixed-bucket histogram: per-bucket counts plus total count and sum.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistogramStat {
    /// Counts per bound of [`BUCKET_BOUNDS`] (`buckets[i]` counts
    /// values `v ≤ BUCKET_BOUNDS[i]` not counted by an earlier bucket).
    pub buckets: [u64; BUCKET_BOUNDS.len()],
    /// Values above the last bound.
    pub overflow: u64,
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
}

impl HistogramStat {
    /// Records one value into the matching bucket.
    pub fn record(&mut self, v: f64) {
        match BUCKET_BOUNDS.iter().position(|&b| v <= b) {
            Some(i) => self.buckets[i] += 1,
            None => self.overflow += 1,
        }
        self.count = self.count.saturating_add(1);
        self.sum += v;
    }
}

/// One thread's metric state (spans live here too, so a [`crate::Scope`]
/// swap isolates everything at once).
#[derive(Debug, Default)]
pub struct Registry {
    pub(crate) counters: HashMap<&'static str, u64>,
    pub(crate) gauges: HashMap<&'static str, f64>,
    pub(crate) histograms: HashMap<&'static str, HistogramStat>,
    pub(crate) digests: HashMap<&'static str, Digest>,
    pub(crate) spans: HashMap<&'static str, SpanStatInner>,
}

thread_local! {
    static REGISTRY: RefCell<Registry> = RefCell::new(Registry::default());
}

/// Swaps the current thread's registry, returning the old one
/// (the mechanism behind [`crate::Scope`]).
pub(crate) fn swap_registry(new: Registry) -> Registry {
    REGISTRY.with(|r| std::mem::replace(&mut *r.borrow_mut(), new))
}

pub(crate) fn with_registry<T>(f: impl FnOnce(&mut Registry) -> T) -> T {
    REGISTRY.with(|r| f(&mut r.borrow_mut()))
}

/// Adds `n` to the counter `name` (saturating — counters never wrap).
/// No-op while collection is disabled on this thread.
#[inline]
pub fn counter_add(name: &'static str, n: u64) {
    if !crate::enabled() {
        return;
    }
    with_registry(|r| {
        let c = r.counters.entry(name).or_insert(0);
        *c = c.saturating_add(n);
    });
}

/// Sets the gauge `name` to `v` (last write wins). No-op while
/// collection is disabled on this thread.
#[inline]
pub fn gauge_set(name: &'static str, v: f64) {
    if !crate::enabled() {
        return;
    }
    with_registry(|r| {
        r.gauges.insert(name, v);
    });
}

/// Records `v` into the histogram `name`. No-op while collection is
/// disabled on this thread.
#[inline]
pub fn histogram_record(name: &'static str, v: f64) {
    if !crate::enabled() {
        return;
    }
    with_registry(|r| r.histograms.entry(name).or_default().record(v));
}

/// Records `v` (a nanosecond latency or similar `u64` measure) into
/// the exact-percentile digest `name`. No-op while collection is
/// disabled on this thread.
#[inline]
pub fn digest_record(name: &'static str, v: u64) {
    if !crate::enabled() {
        return;
    }
    with_registry(|r| r.digests.entry(name).or_default().record(v));
}

/// Clears the current thread's registry.
pub fn reset() {
    with_registry(|r| *r = Registry::default());
}

/// Takes the current thread's metrics, leaving the registry empty.
///
/// This is the worker half of cross-thread aggregation: a worker thread
/// drains its registry just before finishing and hands the [`Snapshot`]
/// to the spawning thread, which folds it in with [`absorb`].
pub fn drain() -> Snapshot {
    let snap = snapshot();
    reset();
    snap
}

/// Folds a drained worker [`Snapshot`] into the current thread's
/// registry: counters add (saturating), gauges keep the incoming value
/// (last write wins, and the worker finished last), histograms add
/// bucket-wise, spans add calls and times.
///
/// Names are resolved against the closed [`crate::schema`] registry —
/// that is where the `&'static str` keys come from — so entries whose
/// names are not registered are dropped, exactly as the CI validator
/// would reject them. No-op while collection is disabled on this
/// thread.
pub fn absorb(snap: &Snapshot) {
    if !crate::enabled() {
        return;
    }
    let static_metric = |name: &str| {
        crate::schema::KNOWN_METRICS.iter().find(|(n, _)| *n == name).map(|(n, _)| *n)
    };
    let static_span =
        |name: &str| crate::schema::KNOWN_SPANS.iter().find(|n| **n == name).copied();
    with_registry(|r| {
        for (name, v) in &snap.counters {
            if let Some(key) = static_metric(name) {
                let c = r.counters.entry(key).or_insert(0);
                *c = c.saturating_add(*v);
            }
        }
        for (name, v) in &snap.gauges {
            if let Some(key) = static_metric(name) {
                r.gauges.insert(key, *v);
            }
        }
        for (name, h) in &snap.histograms {
            if let Some(key) = static_metric(name) {
                let into = r.histograms.entry(key).or_default();
                for (b, add) in into.buckets.iter_mut().zip(&h.buckets) {
                    *b = b.saturating_add(*add);
                }
                into.overflow = into.overflow.saturating_add(h.overflow);
                into.count = into.count.saturating_add(h.count);
                into.sum += h.sum;
            }
        }
        for (name, d) in &snap.digests {
            if let Some(key) = static_metric(name) {
                r.digests.entry(key).or_default().merge(d);
            }
        }
        for s in &snap.spans {
            if let Some(key) = static_span(&s.name) {
                let stat = r
                    .spans
                    .entry(key)
                    .or_insert_with(|| SpanStat { name: key.to_string(), ..SpanStat::default() });
                stat.calls = stat.calls.saturating_add(s.calls);
                stat.total_ns = stat.total_ns.saturating_add(s.total_ns);
                stat.self_ns = stat.self_ns.saturating_add(s.self_ns);
            }
        }
    });
}

/// A point-in-time copy of the current thread's metrics, ordered by
/// name for deterministic rendering.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// `(name, value)` counters.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges.
    pub gauges: Vec<(String, f64)>,
    /// `(name, stat)` histograms.
    pub histograms: Vec<(String, HistogramStat)>,
    /// `(name, digest)` exact-percentile digests.
    pub digests: Vec<(String, Digest)>,
    /// Aggregated span statistics.
    pub spans: Vec<SpanStat>,
}

impl Snapshot {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.digests.is_empty()
            && self.spans.is_empty()
    }

    /// The value of a counter, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The value of a gauge, if recorded.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The stats of a histogram, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramStat> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// The stats of an exact-percentile digest, if recorded.
    pub fn digest(&self, name: &str) -> Option<&Digest> {
        self.digests.iter().find(|(n, _)| n == name).map(|(_, d)| d)
    }

    /// The aggregated stats of a span, if recorded.
    pub fn span(&self, name: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Folds another snapshot into this one, registry-free: counters
    /// add (saturating), gauges keep the incoming value (last write
    /// wins), histograms add bucket-wise, spans add calls and times.
    /// Name order stays sorted, so rendering stays deterministic.
    ///
    /// This is the aggregation primitive for long-running processes
    /// (the serving daemon) that fold per-request worker drains into a
    /// shared `Mutex<Snapshot>` instead of a thread-local registry —
    /// [`absorb`] requires the destination to be the current thread's
    /// registry, which a shared aggregate is not.
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, v) in &other.counters {
            match self.counters.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                Ok(i) => self.counters[i].1 = self.counters[i].1.saturating_add(*v),
                Err(i) => self.counters.insert(i, (name.clone(), *v)),
            }
        }
        for (name, v) in &other.gauges {
            match self.gauges.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                Ok(i) => self.gauges[i].1 = *v,
                Err(i) => self.gauges.insert(i, (name.clone(), *v)),
            }
        }
        for (name, h) in &other.histograms {
            match self.histograms.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                Ok(i) => {
                    let into = &mut self.histograms[i].1;
                    for (b, add) in into.buckets.iter_mut().zip(&h.buckets) {
                        *b = b.saturating_add(*add);
                    }
                    into.overflow = into.overflow.saturating_add(h.overflow);
                    into.count = into.count.saturating_add(h.count);
                    into.sum += h.sum;
                }
                Err(i) => self.histograms.insert(i, (name.clone(), h.clone())),
            }
        }
        for (name, d) in &other.digests {
            match self.digests.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
                Ok(i) => self.digests[i].1.merge(d),
                Err(i) => self.digests.insert(i, (name.clone(), d.clone())),
            }
        }
        for s in &other.spans {
            match self.spans.binary_search_by(|e| e.name.cmp(&s.name)) {
                Ok(i) => {
                    let stat = &mut self.spans[i];
                    stat.calls = stat.calls.saturating_add(s.calls);
                    stat.total_ns = stat.total_ns.saturating_add(s.total_ns);
                    stat.self_ns = stat.self_ns.saturating_add(s.self_ns);
                }
                Err(i) => self.spans.insert(i, s.clone()),
            }
        }
    }

    /// Renders the snapshot as the workspace's metrics-report JSON
    /// (validated by [`crate::schema::validate`]).
    pub fn to_json(&self) -> Json {
        let spans = self
            .spans
            .iter()
            .map(|s| {
                Json::obj([
                    ("name", Json::str(s.name.clone())),
                    ("calls", Json::Num(s.calls as f64)),
                    ("total_ns", Json::Num(s.total_ns as f64)),
                    ("self_ns", Json::Num(s.self_ns as f64)),
                ])
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|(n, v)| {
                Json::obj([("name", Json::str(n.clone())), ("value", Json::Num(*v as f64))])
            })
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(n, v)| Json::obj([("name", Json::str(n.clone())), ("value", Json::Num(*v))]))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(n, h)| {
                let mut buckets: Vec<Json> = BUCKET_BOUNDS
                    .iter()
                    .zip(&h.buckets)
                    .filter(|(_, &c)| c > 0)
                    .map(|(&le, &c)| {
                        Json::obj([("le", Json::Num(le)), ("count", Json::Num(c as f64))])
                    })
                    .collect();
                if h.overflow > 0 {
                    buckets.push(Json::obj([
                        ("le", Json::Null),
                        ("count", Json::Num(h.overflow as f64)),
                    ]));
                }
                Json::obj([
                    ("name", Json::str(n.clone())),
                    ("count", Json::Num(h.count as f64)),
                    ("sum", Json::Num(h.sum)),
                    ("buckets", Json::Arr(buckets)),
                ])
            })
            .collect();
        let digests = self.digests.iter().map(|(n, d)| d.to_json(n)).collect();
        Json::obj([
            ("schema_version", Json::Num(crate::schema::SCHEMA_VERSION as f64)),
            ("spans", Json::Arr(spans)),
            ("counters", Json::Arr(counters)),
            ("gauges", Json::Arr(gauges)),
            ("histograms", Json::Arr(histograms)),
            ("digests", Json::Arr(digests)),
        ])
    }
}

/// Copies the current thread's metrics into a [`Snapshot`]. Works
/// whether or not collection is enabled (a disabled thread yields an
/// empty report).
pub fn snapshot() -> Snapshot {
    with_registry(|r| {
        let mut counters: Vec<(String, u64)> =
            r.counters.iter().map(|(n, v)| (n.to_string(), *v)).collect();
        counters.sort();
        let mut gauges: Vec<(String, f64)> =
            r.gauges.iter().map(|(n, v)| (n.to_string(), *v)).collect();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        let mut histograms: Vec<(String, HistogramStat)> =
            r.histograms.iter().map(|(n, h)| (n.to_string(), h.clone())).collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        let mut digests: Vec<(String, Digest)> =
            r.digests.iter().map(|(n, d)| (n.to_string(), d.clone())).collect();
        digests.sort_by(|a, b| a.0.cmp(&b.0));
        let mut spans: Vec<SpanStat> = r.spans.values().cloned().collect();
        spans.sort_by(|a, b| a.name.cmp(&b.name));
        Snapshot { counters, gauges, histograms, digests, spans }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scope;

    #[test]
    fn counters_accumulate_and_saturate() {
        let _scope = Scope::enter();
        counter_add("sim.timing.events", 2);
        counter_add("sim.timing.events", 3);
        assert_eq!(snapshot().counter("sim.timing.events"), Some(5));
        counter_add("sim.timing.events", u64::MAX);
        assert_eq!(
            snapshot().counter("sim.timing.events"),
            Some(u64::MAX),
            "counter overflow must saturate, not wrap"
        );
    }

    #[test]
    fn gauges_keep_last_write() {
        let _scope = Scope::enter();
        gauge_set("bdd.nodes", 10.0);
        gauge_set("bdd.nodes", 7.0);
        assert_eq!(snapshot().gauge("bdd.nodes"), Some(7.0));
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive() {
        let _scope = Scope::enter();
        // Exactly on a bound → that bucket; just above → the next.
        histogram_record("spcf.short_path.output_ns", 1.0);
        histogram_record("spcf.short_path.output_ns", 1.5);
        histogram_record("spcf.short_path.output_ns", 2.0);
        histogram_record("spcf.short_path.output_ns", 2.0001);
        histogram_record("spcf.short_path.output_ns", 1e9);
        histogram_record("spcf.short_path.output_ns", 1e9 + 1.0);
        let snap = snapshot();
        let h = snap.histogram("spcf.short_path.output_ns").expect("recorded");
        assert_eq!(h.buckets[0], 1, "v=1.0 lands in le=1");
        assert_eq!(h.buckets[1], 2, "v=1.5 and v=2.0 land in le=2");
        assert_eq!(h.buckets[2], 1, "v=2.0001 lands in le=5");
        assert_eq!(h.buckets[BUCKET_BOUNDS.len() - 1], 1, "v=1e9 lands in the last bucket");
        assert_eq!(h.overflow, 1, "v>1e9 lands in the overflow bucket");
        assert_eq!(h.count, 6);
        let expect_sum = 1.0 + 1.5 + 2.0 + 2.0001 + 1e9 + (1e9 + 1.0);
        assert!((h.sum - expect_sum).abs() < 1e-6);
    }

    #[test]
    fn snapshot_orders_by_name() {
        let _scope = Scope::enter();
        counter_add("spcf.short_path.memo_miss", 1);
        counter_add("bdd.cache.hits", 1);
        counter_add("monitor.trace.dropped", 1);
        let snap = snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "bdd.cache.hits",
                "monitor.trace.dropped",
                "spcf.short_path.memo_miss"
            ]
        );
    }

    #[test]
    fn absorb_merges_every_metric_kind() {
        let _scope = Scope::enter();
        counter_add("spcf.short_path.stab_calls", 3);
        gauge_set("bdd.nodes", 5.0);
        histogram_record("spcf.short_path.output_ns", 3.0);
        {
            let _span = crate::span!("spcf.short_path");
        }

        // A "worker" snapshot as another thread would have drained it.
        let mut worker = Snapshot::default();
        worker.counters.push(("spcf.short_path.stab_calls".to_string(), 4));
        worker.counters.push(("not.registered".to_string(), 99));
        worker.gauges.push(("bdd.nodes".to_string(), 9.0));
        let mut h = HistogramStat::default();
        h.record(1.5);
        h.record(2e12);
        worker.histograms.push(("spcf.short_path.output_ns".to_string(), h));
        worker.spans.push(SpanStat {
            name: "spcf.short_path".to_string(),
            calls: 2,
            total_ns: 100,
            self_ns: 80,
        });

        absorb(&worker);
        let snap = snapshot();
        assert_eq!(snap.counter("spcf.short_path.stab_calls"), Some(7));
        assert_eq!(snap.counter("not.registered"), None, "unknown names are dropped");
        assert_eq!(snap.gauge("bdd.nodes"), Some(9.0), "worker gauge wins");
        let merged = snap.histogram("spcf.short_path.output_ns").expect("merged");
        assert_eq!(merged.count, 3);
        assert_eq!(merged.overflow, 1);
        let span = snap.span("spcf.short_path").expect("merged span");
        assert_eq!(span.calls, 3);
        assert!(span.total_ns >= 100, "worker time folded in: {span:?}");
        assert!(span.self_ns <= span.total_ns);
    }

    #[test]
    fn merge_is_registry_free_and_keeps_name_order() {
        let mut agg = Snapshot::default();
        let mut a = Snapshot::default();
        a.counters.push(("serve.requests".to_string(), 2));
        a.gauges.push(("serve.pool.sessions".to_string(), 1.0));
        let mut h = HistogramStat::default();
        h.record(3.0);
        a.histograms.push(("spcf.short_path.output_ns".to_string(), h));
        let mut d = Digest::default();
        d.record(3);
        a.digests.push(("serve.request_ns".to_string(), d));
        a.spans.push(SpanStat {
            name: "serve.request".to_string(),
            calls: 2,
            total_ns: 50,
            self_ns: 40,
        });
        let mut b = Snapshot::default();
        b.counters.push(("serve.pool.hits".to_string(), 1));
        b.counters.push(("serve.requests".to_string(), 3));
        b.gauges.push(("serve.pool.sessions".to_string(), 4.0));
        let mut h2 = HistogramStat::default();
        h2.record(2e12);
        b.histograms.push(("spcf.short_path.output_ns".to_string(), h2));
        let mut d2 = Digest::default();
        d2.record(2_000_000_000_000);
        b.digests.push(("serve.request_ns".to_string(), d2));
        b.spans.push(SpanStat {
            name: "serve.request".to_string(),
            calls: 1,
            total_ns: 10,
            self_ns: 10,
        });
        agg.merge(&a);
        agg.merge(&b);
        assert_eq!(agg.counter("serve.requests"), Some(5));
        assert_eq!(agg.counter("serve.pool.hits"), Some(1));
        let names: Vec<&str> = agg.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["serve.pool.hits", "serve.requests"], "sorted after merge");
        assert_eq!(agg.gauge("serve.pool.sessions"), Some(4.0), "last write wins");
        let merged = agg.histogram("spcf.short_path.output_ns").expect("merged");
        assert_eq!(merged.count, 2);
        assert_eq!(merged.overflow, 1);
        let digest = agg.digest("serve.request_ns").expect("merged digest");
        assert_eq!(digest.count, 2);
        assert_eq!(digest.min, 3);
        assert_eq!(digest.max, 2_000_000_000_000);
        let span = agg.span("serve.request").expect("merged span");
        assert_eq!((span.calls, span.total_ns, span.self_ns), (3, 60, 50));
        // A merged aggregate renders to a schema-valid report.
        let parsed = Json::parse(&agg.to_json().render()).expect("parses");
        crate::schema::validate(&parsed).expect("merged aggregate is schema-valid");
    }

    #[test]
    fn drain_empties_and_absorb_restores_across_threads() {
        let _scope = Scope::enter();
        counter_add("sim.timing.events", 1);
        let workers: Vec<Snapshot> = std::thread::scope(|scope| {
            (0..3)
                .map(|_| {
                    scope.spawn(|| {
                        crate::set_thread_enabled(Some(true));
                        counter_add("sim.timing.events", 10);
                        drain()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect()
        });
        for w in &workers {
            assert_eq!(w.counter("sim.timing.events"), Some(10));
            absorb(w);
        }
        assert_eq!(snapshot().counter("sim.timing.events"), Some(31));
        // drain leaves the worker registry empty — verified locally too.
        counter_add("sim.timing.events", 1);
        let drained = drain();
        assert_eq!(drained.counter("sim.timing.events"), Some(32));
        assert!(snapshot().is_empty());
    }

    #[test]
    fn json_round_trips_through_parser_and_schema() {
        let _scope = Scope::enter();
        counter_add("bdd.unique.hits", 41);
        gauge_set("spcf.short_path.memo_entries", 12.0);
        histogram_record("spcf.path_based.output_ns", 1234.0);
        histogram_record("spcf.path_based.output_ns", 2e12); // overflow
        {
            let _outer = crate::span!("masking.synthesize");
            let _inner = crate::span!("masking.spcf");
        }
        let rendered = snapshot().to_json().render();
        let parsed = Json::parse(&rendered).expect("report parses");
        crate::schema::validate(&parsed).expect("report is schema-valid");
        // The parsed tree carries the same values the snapshot had.
        let counters = parsed.get("counters").and_then(Json::as_arr).expect("counters");
        assert_eq!(counters[0].get("name").and_then(Json::as_str), Some("bdd.unique.hits"));
        assert_eq!(counters[0].get("value").and_then(Json::as_num), Some(41.0));
        let hists = parsed.get("histograms").and_then(Json::as_arr).expect("histograms");
        let buckets = hists[0].get("buckets").and_then(Json::as_arr).expect("buckets");
        assert_eq!(buckets.last().and_then(|b| b.get("le")), Some(&Json::Null));
    }
}
