//! Hermetic observability for the `timemask` workspace: tracing spans
//! and engine metrics, with JSON snapshots and an offline schema
//! checker. Zero registry dependencies (DESIGN.md §5) — the JSON value
//! type comes from `tm-testkit`.
//!
//! Three pieces:
//!
//! - [`span`]: a lightweight span facade. `span!("spcf.short_path")`
//!   returns an RAII guard; a thread-local stack attributes monotonic
//!   wall time hierarchically, so every span name accumulates call
//!   count, *total* time (inclusive of children) and *self* time
//!   (exclusive).
//! - [`metrics`]: a registry of named counters, gauges, and
//!   fixed-bucket histograms, plus [`snapshot`] → JSON reports.
//! - [`schema`]: the closed registry of metric, span, and flight-event
//!   names used across the workspace, and a validator for emitted
//!   reports (CI parses the report back with `tm_testkit::json` and
//!   fails on structural errors or unknown metric names).
//! - [`flight`]: the flight recorder — per-thread ring buffers of
//!   structured [`flight::TraceEvent`]s with request-scoped trace
//!   contexts, slow-request capture, and Chrome trace-event JSON
//!   export (the `trace` verb and `tm_profile` in tm-server).
//! - [`digest`]: exact-percentile latency digests (log-linear,
//!   mergeable) for `serve.*` latency metrics where fixed 1–2–5
//!   buckets are too coarse for SLO questions.
//!
//! # Gating and the zero-overhead guarantee
//!
//! Collection is off by default. It turns on when the `TM_TRACE`
//! environment variable is set (to anything but `0`), or per thread via
//! [`Scope`] (used by tests and by benches honoring `--metrics-out` /
//! `TM_METRICS_OUT`). `TM_TRACE=2` additionally prints span enter/exit
//! lines to stderr. While disabled every recording call is a single
//! cached branch and [`snapshot`] returns an empty report — the
//! instrumented engines pay nothing measurable (enforced by CI: tier-1
//! test wall time must not regress).
//!
//! All state is **thread-local**: parallel `cargo test` threads never
//! share a registry, so snapshots are deterministic per test.
//!
//! # Example
//!
//! ```
//! let _scope = tm_telemetry::Scope::enter(); // collect on this thread
//! {
//!     let _span = tm_telemetry::span!("spcf.short_path");
//!     tm_telemetry::counter_add("spcf.short_path.memo_hit", 3);
//! }
//! let snap = tm_telemetry::snapshot();
//! assert_eq!(snap.counter("spcf.short_path.memo_hit"), Some(3));
//! assert_eq!(snap.span("spcf.short_path").unwrap().calls, 1);
//! tm_telemetry::schema::validate(&snap.to_json()).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digest;
pub mod flight;
pub mod metrics;
pub mod schema;
pub mod span;

pub use digest::Digest;
pub use metrics::{
    absorb, counter_add, digest_record, drain, gauge_set, histogram_record, reset, snapshot,
    HistogramStat, Snapshot, SpanStat, BUCKET_BOUNDS,
};

use std::cell::Cell;
use std::sync::OnceLock;

/// Environment variable enabling collection process-wide (`1` =
/// collect, `2` = collect and print span enter/exit to stderr).
pub const TRACE_ENV: &str = "TM_TRACE";

/// Environment variable naming a file benches write their metrics
/// snapshot to (same effect as passing `--metrics-out <path>`).
pub const METRICS_OUT_ENV: &str = "TM_METRICS_OUT";

static ENV_LEVEL: OnceLock<u8> = OnceLock::new();

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<bool>> = const { Cell::new(None) };
}

/// The `TM_TRACE` level: 0 (off), 1 (collect), 2 (collect + verbose
/// span printing). Read once per process.
pub fn trace_level() -> u8 {
    *ENV_LEVEL.get_or_init(|| match std::env::var(TRACE_ENV) {
        Err(_) => 0,
        Ok(v) if v.is_empty() || v == "0" => 0,
        Ok(v) if v == "2" => 2,
        Ok(_) => 1,
    })
}

/// Whether this thread is currently collecting telemetry.
///
/// True when `TM_TRACE` is set, unless overridden per thread (see
/// [`set_thread_enabled`] / [`Scope`]).
#[inline]
pub fn enabled() -> bool {
    THREAD_OVERRIDE.with(|o| o.get()).unwrap_or_else(|| trace_level() > 0)
}

/// Overrides collection for the current thread: `Some(true)` /
/// `Some(false)` force it on/off, `None` restores the `TM_TRACE`
/// default. Prefer [`Scope`] in tests — it also isolates the registry.
pub fn set_thread_enabled(on: Option<bool>) {
    THREAD_OVERRIDE.with(|o| o.set(on));
}

/// RAII scope that turns collection on for the current thread with a
/// fresh, empty registry, and restores the previous registry and
/// enablement when dropped. The isolation is what makes telemetry
/// assertions deterministic under parallel `cargo test`.
#[must_use = "collection stops when the Scope is dropped"]
#[derive(Debug)]
pub struct Scope {
    saved_override: Option<bool>,
    saved_registry: metrics::Registry,
}

impl Scope {
    /// Starts collecting on this thread into a fresh registry.
    pub fn enter() -> Scope {
        let saved_override = THREAD_OVERRIDE.with(|o| o.replace(Some(true)));
        let saved_registry = metrics::swap_registry(metrics::Registry::default());
        Scope { saved_override, saved_registry }
    }
}

impl Drop for Scope {
    fn drop(&mut self) {
        THREAD_OVERRIDE.with(|o| o.set(self.saved_override));
        metrics::swap_registry(std::mem::take(&mut self.saved_registry));
    }
}

/// The metrics output path benches should honor: the value of
/// `TM_METRICS_OUT`, if set.
pub fn metrics_out_env() -> Option<String> {
    std::env::var(METRICS_OUT_ENV).ok().filter(|p| !p.is_empty())
}

/// Writes the current thread's snapshot as JSON to `path`.
pub fn write_snapshot(path: &str) -> std::io::Result<()> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, snapshot().to_json().render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_thread_records_nothing() {
        set_thread_enabled(Some(false));
        counter_add("bdd.cache.hits", 5);
        gauge_set("bdd.nodes", 9.0);
        histogram_record("spcf.short_path.output_ns", 100.0);
        let _span = crate::span!("spcf.short_path");
        drop(_span);
        let snap = snapshot();
        assert!(snap.is_empty(), "disabled thread must produce an empty report");
        set_thread_enabled(None);
    }

    #[test]
    fn scope_isolates_and_restores() {
        let outer = Scope::enter();
        counter_add("sim.timing.events", 1);
        {
            let _inner = Scope::enter();
            counter_add("sim.timing.events", 10);
            assert_eq!(snapshot().counter("sim.timing.events"), Some(10));
        }
        // Inner scope's counts must not leak into the outer registry.
        assert_eq!(snapshot().counter("sim.timing.events"), Some(1));
        drop(outer);
        assert!(snapshot().counter("sim.timing.events").is_none());
    }

    #[test]
    fn empty_snapshot_is_deterministic_and_schema_valid() {
        set_thread_enabled(Some(false));
        let a = snapshot().to_json().render();
        let b = snapshot().to_json().render();
        assert_eq!(a, b);
        let parsed = tm_testkit::json::Json::parse(&a).expect("parses");
        schema::validate(&parsed).expect("empty report is schema-valid");
        set_thread_enabled(None);
    }
}
