//! Exact-percentile latency digests: a log-linear (HDR-style) sketch
//! over `u64` nanosecond values.
//!
//! The fixed 1–2–5 [`crate::BUCKET_BOUNDS`] histograms are fine for
//! dashboards but useless for latency SLO questions — a p99 read off a
//! bucket whose bounds are 2 ms and 5 ms can be wrong by 2.5×. A
//! [`Digest`] instead stores values below 128 ns exactly and everything
//! above in sub-buckets of 7 mantissa bits per power of two, bounding
//! the relative quantile error at `2⁻⁷ < 0.8%` while keeping the state
//! mergeable (bucket-wise addition, like the histograms) and compact (a
//! sparse index→count map; a typical latency stream touches a few dozen
//! buckets).
//!
//! `count`, `sum`, `min`, and `max` are tracked exactly, and quantiles
//! are clamped into `[min, max]`, so `p0`/`p100` are always true
//! observed extremes.

use std::collections::BTreeMap;
use tm_testkit::json::Json;

/// Values strictly below this record exactly (one bucket per value).
const EXACT_LIMIT: u64 = 128;
/// Mantissa bits kept per power-of-two group above [`EXACT_LIMIT`].
const SUB_BITS: u32 = 7;

/// A mergeable log-linear quantile sketch with ≤0.8% relative error.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Digest {
    /// Sparse bucket-index → count map, ascending by index (and
    /// therefore by represented value).
    pub buckets: BTreeMap<u16, u64>,
    /// Total recorded values.
    pub count: u64,
    /// Exact sum of recorded values.
    pub sum: f64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

/// The bucket index a value lands in. Indices are monotone in the
/// value, exact below [`EXACT_LIMIT`], log-linear above.
pub fn bucket_index(v: u64) -> u16 {
    if v < EXACT_LIMIT {
        return v as u16;
    }
    let exp = 63 - v.leading_zeros(); // ≥ SUB_BITS since v ≥ 128
    let group = (exp - SUB_BITS + 1) as u16;
    let sub = ((v >> (exp - SUB_BITS)) & ((1 << SUB_BITS) - 1)) as u16;
    (group << SUB_BITS) | sub
}

/// The largest value that maps to bucket `idx` (the quantile estimate
/// reported for ranks landing in that bucket).
pub fn bucket_upper(idx: u16) -> u64 {
    let idx = idx as u64;
    if idx < EXACT_LIMIT {
        return idx;
    }
    let group = idx >> SUB_BITS;
    let sub = idx & ((1 << SUB_BITS) - 1);
    let exp = group as u32 + SUB_BITS - 1;
    ((EXACT_LIMIT + sub + 1) << (exp - SUB_BITS)) - 1
}

impl Digest {
    /// Records one value.
    pub fn record(&mut self, v: u64) {
        *self.buckets.entry(bucket_index(v)).or_insert(0) += 1;
        if self.count == 0 || v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.count = self.count.saturating_add(1);
        self.sum += v as f64;
    }

    /// Folds another digest into this one (bucket-wise addition; exact
    /// extremes combine as min/max).
    pub fn merge(&mut self, other: &Digest) {
        if other.count == 0 {
            return;
        }
        for (idx, n) in &other.buckets {
            let c = self.buckets.entry(*idx).or_insert(0);
            *c = c.saturating_add(*n);
        }
        if self.count == 0 || other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
        self.count = self.count.saturating_add(other.count);
        self.sum += other.sum;
    }

    /// The `q`-quantile (`0.0 ≤ q ≤ 1.0`) of the recorded values, or
    /// `None` when empty. Exact for values below 128; within 0.8%
    /// relative error above; always clamped into `[min, max]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        if q <= 0.0 {
            return Some(self.min);
        }
        if q >= 1.0 {
            return Some(self.max);
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, n) in &self.buckets {
            cum += n;
            if cum >= rank {
                return Some(bucket_upper(*idx).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Renders one digest entry for the metrics-report JSON.
    pub fn to_json(&self, name: &str) -> Json {
        let buckets = self
            .buckets
            .iter()
            .map(|(idx, n)| {
                Json::obj([("b", Json::Num(*idx as f64)), ("count", Json::Num(*n as f64))])
            })
            .collect();
        let q = |q: f64| Json::Num(self.quantile(q).unwrap_or(0) as f64);
        Json::obj([
            ("name", Json::str(name)),
            ("count", Json::Num(self.count as f64)),
            ("sum", Json::Num(self.sum)),
            ("min", Json::Num(self.min as f64)),
            ("max", Json::Num(self.max as f64)),
            ("p50", q(0.50)),
            ("p90", q(0.90)),
            ("p95", q(0.95)),
            ("p99", q(0.99)),
            ("buckets", Json::Arr(buckets)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_testkit::rng::Rng;

    #[test]
    fn small_values_are_exact() {
        let mut d = Digest::default();
        for v in 0..128u64 {
            d.record(v);
        }
        assert_eq!(d.count, 128);
        assert_eq!(d.min, 0);
        assert_eq!(d.max, 127);
        // Every distinct small value occupies its own bucket, so every
        // quantile is an exactly-recorded value.
        assert_eq!(d.quantile(0.5), Some(63));
        assert_eq!(d.quantile(1.0), Some(127));
        assert_eq!(d.quantile(0.0), Some(0));
    }

    #[test]
    fn bucket_index_is_monotone_and_upper_bound_tight() {
        let mut prev_idx = 0u16;
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            let idx = bucket_index(v);
            assert!(idx >= prev_idx, "index not monotone at v={v}");
            prev_idx = idx;
            let upper = bucket_upper(idx);
            assert!(upper >= v, "upper bound {upper} < value {v}");
            // Relative error of reporting `upper` for `v` is < 2^-7.
            let err = (upper - v) as f64 / v as f64;
            assert!(err < 1.0 / 127.0, "relative error {err} too large at v={v}");
            v = v * 3 + 1;
        }
    }

    #[test]
    fn quantiles_bounded_error_on_random_stream() {
        let mut rng = Rng::seed_from_u64(0x0d19e57);
        let mut d = Digest::default();
        let mut values: Vec<u64> = (0..5000)
            .map(|_| {
                // Log-uniform over ~9 decades, like latencies.
                let exp = rng.gen_range(0..30u32);
                (rng.next_u64() % 1000).saturating_add(1) << exp
            })
            .collect();
        for &v in &values {
            d.record(v);
        }
        values.sort_unstable();
        for &q in &[0.5, 0.9, 0.95, 0.99] {
            let exact = values[(((q * values.len() as f64).ceil() as usize) - 1).min(values.len() - 1)];
            let est = d.quantile(q).unwrap();
            let err = (est as f64 - exact as f64).abs() / exact as f64;
            assert!(err < 0.01, "q={q}: est {est} vs exact {exact} (err {err})");
        }
        assert_eq!(d.quantile(0.0), Some(values[0]));
        assert_eq!(d.quantile(1.0), Some(*values.last().unwrap()));
    }

    #[test]
    fn merge_equals_combined_stream() {
        let mut rng = Rng::seed_from_u64(42);
        let mut a = Digest::default();
        let mut b = Digest::default();
        let mut all = Digest::default();
        for i in 0..2000 {
            let v = rng.next_u64() % 10_000_000;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, all, "merge must equal recording the combined stream");
        // Merging an empty digest is the identity.
        let before = merged.clone();
        merged.merge(&Digest::default());
        assert_eq!(merged, before);
    }

    #[test]
    fn json_shape_has_ordered_percentiles() {
        let mut d = Digest::default();
        for v in [100u64, 2000, 300_000, 4_000_000] {
            d.record(v);
        }
        let j = d.to_json("serve.request_ns");
        let rendered = j.render();
        let parsed = Json::parse(&rendered).expect("parses");
        let p50 = parsed.get("p50").and_then(Json::as_num).unwrap();
        let p99 = parsed.get("p99").and_then(Json::as_num).unwrap();
        let min = parsed.get("min").and_then(Json::as_num).unwrap();
        let max = parsed.get("max").and_then(Json::as_num).unwrap();
        assert!(min <= p50 && p50 <= p99 && p99 <= max);
    }
}
