//! Offline schema checker for emitted metrics reports.
//!
//! Usage: `validate_metrics [--require-nonzero NAME]... <report.json>...`
//! — parses each file with the in-repo JSON parser and validates it
//! against the closed metric registry ([`tm_telemetry::schema`]). Each
//! `--require-nonzero NAME` additionally demands that every report
//! records counter `NAME` with a positive value (CI uses this as a
//! cache-stats sanity gate: a smoke bench that never hits the BDD
//! computed cache means the instrumentation or the cache is broken).
//! Exits nonzero listing every problem if any file is malformed, names
//! an unregistered metric, or misses a required counter.

use tm_telemetry::schema;
use tm_testkit::json::Json;

fn counter_value(report: &Json, name: &str) -> Option<f64> {
    report
        .get("counters")
        .and_then(Json::as_arr)?
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some(name))
        .and_then(|e| e.get("value").and_then(Json::as_num))
}

fn main() {
    let mut paths: Vec<String> = Vec::new();
    let mut required: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--require-nonzero" {
            match args.next() {
                Some(name) => required.push(name),
                None => {
                    eprintln!("--require-nonzero needs a counter name");
                    std::process::exit(2);
                }
            }
        } else {
            paths.push(arg);
        }
    }
    if paths.is_empty() {
        eprintln!("usage: validate_metrics [--require-nonzero NAME]... <report.json>...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        let parsed = match Json::parse(&text) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("{path}: invalid JSON: {e}");
                failed = true;
                continue;
            }
        };
        match schema::validate(&parsed) {
            Ok(()) => {
                let mut missing = false;
                for name in &required {
                    match counter_value(&parsed, name) {
                        Some(v) if v > 0.0 => {}
                        Some(v) => {
                            eprintln!("{path}: counter `{name}` must be nonzero, got {v}");
                            missing = true;
                        }
                        None => {
                            eprintln!("{path}: required counter `{name}` is absent");
                            missing = true;
                        }
                    }
                }
                if missing {
                    failed = true;
                    continue;
                }
                let n = |section: &str| {
                    parsed.get(section).and_then(Json::as_arr).map_or(0, <[Json]>::len)
                };
                println!(
                    "{path}: ok ({} spans, {} counters, {} gauges, {} histograms)",
                    n("spans"),
                    n("counters"),
                    n("gauges"),
                    n("histograms"),
                );
            }
            Err(errs) => {
                for e in &errs {
                    eprintln!("{path}: {e}");
                }
                failed = true;
            }
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}
