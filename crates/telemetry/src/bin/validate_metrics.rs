//! Offline schema checker for emitted metrics reports.
//!
//! Usage: `validate_metrics <report.json>...` — parses each file with
//! the in-repo JSON parser and validates it against the closed metric
//! registry ([`tm_telemetry::schema`]). Exits nonzero listing every
//! problem if any file is malformed or names an unregistered metric.

use tm_telemetry::schema;
use tm_testkit::json::Json;

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: validate_metrics <report.json>...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        let parsed = match Json::parse(&text) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("{path}: invalid JSON: {e}");
                failed = true;
                continue;
            }
        };
        match schema::validate(&parsed) {
            Ok(()) => {
                let n = |section: &str| {
                    parsed.get(section).and_then(Json::as_arr).map_or(0, <[Json]>::len)
                };
                println!(
                    "{path}: ok ({} spans, {} counters, {} gauges, {} histograms)",
                    n("spans"),
                    n("counters"),
                    n("gauges"),
                    n("histograms"),
                );
            }
            Err(errs) => {
                for e in &errs {
                    eprintln!("{path}: {e}");
                }
                failed = true;
            }
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}
