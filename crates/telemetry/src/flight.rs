//! Flight recorder: fixed-size per-thread ring buffers of structured
//! trace events, request-scoped trace contexts, a slow-request capture
//! log, and a hand-rolled Chrome trace-event JSON exporter.
//!
//! The span/metrics machinery in this crate answers "where does time go
//! *on average*"; the flight recorder answers "where did time go in
//! *this request*". Every recording thread owns a bounded ring of
//! [`TraceEvent`]s (overwrite-oldest, with exact drop accounting), so
//! the recorder is always on once enabled and never grows without
//! bound. A server request opens a [`RequestTrace`]: events recorded
//! while it is active carry its process-unique trace id and are
//! buffered lock-free in the context, then flushed to the ring as one
//! contiguous block when the request finishes. Requests whose wall time
//! exceeds a caller-chosen threshold are additionally copied into a
//! bounded global slow log, so the full phase tree of an outlier
//! survives long after the ring has wrapped.
//!
//! [`chrome_trace`] renders ring + slow-log contents as Chrome
//! trace-event JSON (the `traceEvents` array format), loadable in
//! Perfetto / `chrome://tracing`, written by hand against
//! `tm_testkit::json` — zero registry dependencies (DESIGN.md §5).
//!
//! # Gating
//!
//! Recording is off by default and costs one branch per call site when
//! off. It turns on per thread via [`set_thread_recording`], process
//! wide via [`force_recording`] (the serving daemon does this at boot),
//! or ambiently when `TM_TRACE` is set. Event names must be registered
//! in [`crate::schema::KNOWN_EVENTS`] — the trace validator
//! (`tm_profile --check`) rejects names it does not know, exactly like
//! the metrics schema.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, Weak};
use std::time::Instant;
use tm_testkit::json::Json;

/// Events kept per thread ring before overwrite-oldest kicks in.
pub const RING_CAPACITY: usize = 4096;
/// Slow-request captures kept before the oldest is evicted.
pub const SLOW_LOG_CAPACITY: usize = 32;

/// One structured trace event. `dur_ns == u64::MAX` marks an instant
/// event (a point, not an interval).
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Registered event name (see [`crate::schema::KNOWN_EVENTS`]).
    pub name: &'static str,
    /// The request trace id this event belongs to (0 = none).
    pub trace_id: u64,
    /// Recorder-assigned thread id (dense, process-unique).
    pub tid: u64,
    /// Start time in nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds; `u64::MAX` marks an instant event.
    pub dur_ns: u64,
    /// Small numeric payload rendered into the Chrome `args` object.
    pub args: Vec<(&'static str, f64)>,
}

impl TraceEvent {
    /// Whether this is an instant (point) event.
    pub fn is_instant(&self) -> bool {
        self.dur_ns == u64::MAX
    }
}

/// A completed request's summary, returned by [`RequestTrace::finish`].
#[derive(Clone, Debug)]
pub struct RequestSummary {
    /// The request's process-unique trace id.
    pub trace_id: u64,
    /// Wall time from context open (minus queue backdating) to finish.
    pub wall_ns: u64,
    /// Events recorded under this context (including the root event).
    pub events: u64,
    /// Whether the request exceeded the slow threshold and was captured.
    pub slow: bool,
}

/// One slow request's full event capture.
#[derive(Clone, Debug)]
pub struct SlowCapture {
    /// The request's trace id.
    pub trace_id: u64,
    /// The request's wall time.
    pub wall_ns: u64,
    /// Every event recorded under the request, root last.
    pub events: Vec<TraceEvent>,
}

/// Aggregate recorder state, for the `stats` verb.
#[derive(Clone, Copy, Debug, Default)]
pub struct FlightStats {
    /// Live recording threads (rings registered and not yet dropped).
    pub threads: u64,
    /// Events currently buffered across all rings.
    pub buffered: u64,
    /// Events ever recorded into rings.
    pub recorded: u64,
    /// Events overwritten before export (exact drop count).
    pub dropped: u64,
    /// Slow-request captures taken.
    pub slow_captured: u64,
    /// Slow captures evicted from the bounded slow log.
    pub slow_evicted: u64,
}

// ---------------------------------------------------------------------
// Recording gate
// ---------------------------------------------------------------------

/// Process-wide force flag: 0 = unset (fall through to `TM_TRACE`),
/// 1 = force on, 2 = force off.
static FORCE: AtomicU8 = AtomicU8::new(0);

thread_local! {
    static THREAD_RECORDING: Cell<Option<bool>> = const { Cell::new(None) };
    static AMBIENT_TRACE_ID: Cell<u64> = const { Cell::new(0) };
    static ACTIVE: RefCell<Option<ActiveRequest>> = const { RefCell::new(None) };
}

/// Whether the current thread is recording flight events.
///
/// Resolution order: per-thread override, then [`force_recording`],
/// then the `TM_TRACE` environment gate.
#[inline]
pub fn recording() -> bool {
    if let Some(on) = THREAD_RECORDING.with(|o| o.get()) {
        return on;
    }
    match FORCE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => crate::trace_level() > 0,
    }
}

/// Overrides flight recording for the current thread (`None` restores
/// the process default). Used by tests and by parallel-driver workers
/// inheriting the spawning thread's state.
pub fn set_thread_recording(on: Option<bool>) {
    let _ = epoch();
    THREAD_RECORDING.with(|o| o.set(on));
}

/// Forces flight recording on or off process-wide (the serving daemon
/// calls `force_recording(true)` at boot so the recorder is always on,
/// independent of `TM_TRACE`).
///
/// Also pins the trace epoch to now-or-earlier: the epoch otherwise
/// initializes at the first recorded event, and a first request whose
/// root is back-dated (queue wait) would saturate its timestamps at 0.
pub fn force_recording(on: bool) {
    let _ = epoch();
    FORCE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// Epoch and ids
// ---------------------------------------------------------------------

static EPOCH: OnceLock<Instant> = OnceLock::new();
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process trace epoch (first recorder use).
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// The trace id events on this thread currently attach to: the active
/// request context's id, else the ambient id set by
/// [`set_ambient_trace_id`] (worker threads), else 0.
pub fn current_trace_id() -> u64 {
    ACTIVE.with(|a| a.borrow().as_ref().map(|r| r.trace_id)).unwrap_or_else(|| {
        AMBIENT_TRACE_ID.with(|t| t.get())
    })
}

/// Sets the ambient trace id for events recorded on this thread outside
/// any request context (parallel-driver workers inherit the spawning
/// request's id this way). Returns the previous value.
pub fn set_ambient_trace_id(id: u64) -> u64 {
    AMBIENT_TRACE_ID.with(|t| t.replace(id))
}

// ---------------------------------------------------------------------
// Per-thread rings and the global registry
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct Ring {
    buf: VecDeque<TraceEvent>,
    recorded: u64,
    dropped: u64,
}

#[derive(Debug)]
struct ThreadRing {
    tid: u64,
    ring: Mutex<Ring>,
}

static REGISTRY: Mutex<Vec<Weak<ThreadRing>>> = Mutex::new(Vec::new());
static SLOW_LOG: Mutex<VecDeque<SlowCapture>> = Mutex::new(VecDeque::new());
static SLOW_CAPTURED: AtomicU64 = AtomicU64::new(0);
static SLOW_EVICTED: AtomicU64 = AtomicU64::new(0);

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

thread_local! {
    static THREAD_RING: Arc<ThreadRing> = {
        let ring = Arc::new(ThreadRing {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            ring: Mutex::new(Ring::default()),
        });
        let mut reg = lock(&REGISTRY);
        reg.retain(|w| w.strong_count() > 0); // prune dead threads
        reg.push(Arc::downgrade(&ring));
        ring
    };
}

/// The recorder-assigned dense thread id for the current thread.
pub fn thread_id() -> u64 {
    THREAD_RING.with(|r| r.tid)
}

fn ring_push(ring: &ThreadRing, ev: TraceEvent) {
    let mut g = lock(&ring.ring);
    if g.buf.len() >= RING_CAPACITY {
        g.buf.pop_front();
        g.dropped += 1;
    }
    g.buf.push_back(ev);
    g.recorded += 1;
}

fn record_event(ev: TraceEvent) {
    let buffered = ACTIVE.with(|a| {
        if let Some(req) = a.borrow_mut().as_mut() {
            req.events.push(ev.clone());
            true
        } else {
            false
        }
    });
    if !buffered {
        THREAD_RING.with(|r| ring_push(r, ev));
    }
}

// ---------------------------------------------------------------------
// Event recording API
// ---------------------------------------------------------------------

fn make_event(name: &'static str, ts_ns: u64, dur_ns: u64, args: &[(&'static str, f64)]) -> TraceEvent {
    TraceEvent {
        name,
        trace_id: current_trace_id(),
        tid: thread_id(),
        ts_ns,
        dur_ns,
        args: args.to_vec(),
    }
}

/// Records an instant (point) event. No-op unless [`recording`].
#[inline]
pub fn instant(name: &'static str, args: &[(&'static str, f64)]) {
    if !recording() {
        return;
    }
    record_event(make_event(name, now_ns(), u64::MAX, args));
}

/// Records a complete event with an explicit start and duration (used
/// to back-date phases measured outside the recorder, e.g. queue wait).
/// No-op unless [`recording`].
#[inline]
pub fn complete(name: &'static str, ts_ns: u64, dur_ns: u64, args: &[(&'static str, f64)]) {
    if !recording() {
        return;
    }
    record_event(make_event(name, ts_ns, dur_ns, args));
}

/// RAII guard recording a complete event covering its own lifetime.
#[must_use = "the phase ends when the guard is dropped"]
#[derive(Debug)]
pub struct PhaseGuard {
    name: &'static str,
    start_ns: u64,
    args: Vec<(&'static str, f64)>,
    live: bool,
}

/// Opens a phase: a complete event from now until the guard drops.
/// Inert (records nothing) unless [`recording`].
#[inline]
pub fn phase(name: &'static str) -> PhaseGuard {
    phase_with(name, &[])
}

/// [`phase`] with a numeric argument payload.
#[inline]
pub fn phase_with(name: &'static str, args: &[(&'static str, f64)]) -> PhaseGuard {
    let live = recording();
    PhaseGuard {
        name,
        start_ns: if live { now_ns() } else { 0 },
        args: if live { args.to_vec() } else { Vec::new() },
        live,
    }
}

impl PhaseGuard {
    /// Appends a numeric argument to the phase's payload (e.g. a
    /// pool-hit flag learned mid-phase).
    pub fn arg(&mut self, key: &'static str, value: f64) {
        if self.live {
            self.args.push((key, value));
        }
    }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        let dur = now_ns().saturating_sub(self.start_ns);
        record_event(TraceEvent {
            name: self.name,
            trace_id: current_trace_id(),
            tid: thread_id(),
            ts_ns: self.start_ns,
            dur_ns: dur,
            args: std::mem::take(&mut self.args),
        });
    }
}

// ---------------------------------------------------------------------
// Request contexts
// ---------------------------------------------------------------------

#[derive(Debug)]
struct ActiveRequest {
    trace_id: u64,
    name: &'static str,
    start_ns: u64,
    events: Vec<TraceEvent>,
}

/// A request-scoped trace context (see module docs). Obtained from
/// [`request_begin`]; consumed by [`RequestTrace::finish`] (or `Drop`,
/// which finishes without slow-capture).
#[must_use = "the request trace flushes when finished or dropped"]
#[derive(Debug)]
pub struct RequestTrace {
    trace_id: u64, // 0 = inert (not recording, or a context was already active)
}

/// Opens a request trace context on this thread. Events recorded until
/// `finish` carry a fresh process-unique trace id and are buffered in
/// the context, then flushed to the thread ring as one block. The
/// context start is back-dated by `queue_ns` so the root event covers
/// time spent queued before this thread picked the request up.
///
/// Returns an inert guard when not [`recording`] or when a context is
/// already active on this thread (contexts do not nest).
pub fn request_begin(name: &'static str, queue_ns: u64) -> RequestTrace {
    if !recording() {
        return RequestTrace { trace_id: 0 };
    }
    let nested = ACTIVE.with(|a| a.borrow().is_some());
    if nested {
        return RequestTrace { trace_id: 0 };
    }
    let trace_id = NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed);
    let start_ns = now_ns().saturating_sub(queue_ns);
    ACTIVE.with(|a| {
        *a.borrow_mut() = Some(ActiveRequest { trace_id, name, start_ns, events: Vec::new() })
    });
    RequestTrace { trace_id }
}

impl RequestTrace {
    /// The context's trace id (0 for an inert guard).
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// Closes the context: appends the root complete event covering the
    /// whole request, flushes the buffered events to the thread ring,
    /// and — when wall time reaches `slow_threshold_ns` — copies the
    /// full capture into the global slow log. Returns `None` for inert
    /// guards.
    pub fn finish(mut self, slow_threshold_ns: u64) -> Option<RequestSummary> {
        self.close(slow_threshold_ns)
    }

    fn close(&mut self, slow_threshold_ns: u64) -> Option<RequestSummary> {
        if self.trace_id == 0 {
            return None;
        }
        let trace_id = std::mem::replace(&mut self.trace_id, 0);
        let req = ACTIVE.with(|a| a.borrow_mut().take())?;
        debug_assert_eq!(req.trace_id, trace_id, "request contexts must close in LIFO order");
        let wall_ns = now_ns().saturating_sub(req.start_ns);
        let mut events = req.events;
        events.push(TraceEvent {
            name: req.name,
            trace_id,
            tid: thread_id(),
            ts_ns: req.start_ns,
            dur_ns: wall_ns,
            args: vec![("wall_ns", wall_ns as f64)],
        });
        let slow = wall_ns >= slow_threshold_ns;
        if slow {
            SLOW_CAPTURED.fetch_add(1, Ordering::Relaxed);
            let mut log = lock(&SLOW_LOG);
            if log.len() >= SLOW_LOG_CAPACITY {
                log.pop_front();
                SLOW_EVICTED.fetch_add(1, Ordering::Relaxed);
            }
            log.push_back(SlowCapture { trace_id, wall_ns, events: events.clone() });
        }
        let n = events.len() as u64;
        THREAD_RING.with(|r| {
            for ev in events {
                ring_push(r, ev);
            }
        });
        Some(RequestSummary { trace_id, wall_ns, events: n, slow })
    }
}

impl Drop for RequestTrace {
    fn drop(&mut self) {
        // Abandoned guard (e.g. a panicking handler): flush without
        // slow-capture so the ring still sees the events.
        let _ = self.close(u64::MAX);
    }
}

// ---------------------------------------------------------------------
// Cross-thread absorption (parallel driver)
// ---------------------------------------------------------------------

/// Takes every event buffered in the current thread's ring, leaving the
/// ring empty (drop/record counters are preserved). The worker half of
/// deterministic cross-thread absorption: parallel workers drain just
/// before finishing and the spawning thread folds the batches back in
/// **worker order** with [`absorb_events`].
pub fn drain_thread() -> Vec<TraceEvent> {
    THREAD_RING.with(|r| {
        let mut g = lock(&r.ring);
        g.buf.drain(..).collect()
    })
}

/// Folds a drained worker batch into the current thread's context (when
/// a request is active) or ring. Events keep their original tid and
/// timestamps, so per-thread nesting stays valid in the export.
pub fn absorb_events(events: Vec<TraceEvent>) {
    if events.is_empty() || !recording() {
        return;
    }
    let buffered = ACTIVE.with(|a| {
        if let Some(req) = a.borrow_mut().as_mut() {
            req.events.extend(events.iter().cloned());
            true
        } else {
            false
        }
    });
    if !buffered {
        THREAD_RING.with(|r| {
            for ev in events {
                ring_push(r, ev);
            }
        });
    }
}

// ---------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------

/// A point-in-time export of the recorder.
#[derive(Clone, Debug, Default)]
pub struct Export {
    /// Ring contents across all live threads, ordered by `(ts, tid)`.
    pub events: Vec<TraceEvent>,
    /// Events dropped (newest-first truncation by `limit`, plus ring
    /// overwrites) — exact.
    pub dropped: u64,
    /// Slow-request captures (oldest first).
    pub slow: Vec<SlowCapture>,
}

/// Snapshots recorder statistics (for the `stats` verb).
pub fn stats() -> FlightStats {
    let mut s = FlightStats {
        slow_captured: SLOW_CAPTURED.load(Ordering::Relaxed),
        slow_evicted: SLOW_EVICTED.load(Ordering::Relaxed),
        ..FlightStats::default()
    };
    let mut reg = lock(&REGISTRY);
    reg.retain(|w| w.strong_count() > 0);
    for w in reg.iter() {
        if let Some(ring) = w.upgrade() {
            let g = lock(&ring.ring);
            s.threads += 1;
            s.buffered += g.buf.len() as u64;
            s.recorded += g.recorded;
            s.dropped += g.dropped;
        }
    }
    s
}

/// Copies the recorder contents: every live ring (sorted by start time,
/// then tid) capped to the `limit` most recent events, plus the slow
/// log. Does not consume the rings.
pub fn export(limit: usize) -> Export {
    let mut events = Vec::new();
    let mut dropped = 0u64;
    {
        let mut reg = lock(&REGISTRY);
        reg.retain(|w| w.strong_count() > 0);
        for w in reg.iter() {
            if let Some(ring) = w.upgrade() {
                let g = lock(&ring.ring);
                dropped += g.dropped;
                events.extend(g.buf.iter().cloned());
            }
        }
    }
    events.sort_by(|a, b| (a.ts_ns, a.tid).cmp(&(b.ts_ns, b.tid)));
    if events.len() > limit {
        let cut = events.len() - limit;
        dropped += cut as u64;
        events.drain(..cut);
    }
    let slow = lock(&SLOW_LOG).iter().cloned().collect();
    Export { events, dropped, slow }
}

// ---------------------------------------------------------------------
// Chrome trace-event JSON
// ---------------------------------------------------------------------

/// Process id used for live ring events in the Chrome export.
pub const PID_FLIGHT: u64 = 1;
/// Process id used for slow-log captures in the Chrome export.
pub const PID_SLOW: u64 = 2;

fn chrome_event(ev: &TraceEvent, pid: u64) -> Json {
    let mut args: Vec<(&'static str, Json)> = Vec::with_capacity(ev.args.len() + 1);
    if ev.trace_id != 0 {
        args.push(("trace", Json::Num(ev.trace_id as f64)));
    }
    for (k, v) in &ev.args {
        args.push((*k, Json::Num(*v)));
    }
    let ts_us = ev.ts_ns as f64 / 1000.0;
    let mut fields: Vec<(&'static str, Json)> = vec![
        ("name", Json::str(ev.name)),
        ("cat", Json::str(ev.name.split('.').next().unwrap_or("event"))),
        ("ph", Json::str(if ev.is_instant() { "i" } else { "X" })),
        ("pid", Json::Num(pid as f64)),
        ("tid", Json::Num(ev.tid as f64)),
        ("ts", Json::Num(ts_us)),
    ];
    if ev.is_instant() {
        fields.push(("s", Json::str("t"))); // thread-scoped instant
    } else {
        fields.push(("dur", Json::Num(ev.dur_ns as f64 / 1000.0)));
    }
    fields.push(("args", Json::obj(args)));
    Json::obj(fields)
}

fn process_name(pid: u64, name: &str) -> Json {
    Json::obj([
        ("name", Json::str("process_name")),
        ("ph", Json::str("M")),
        ("pid", Json::Num(pid as f64)),
        ("tid", Json::Num(0.0)),
        ("args", Json::obj([("name", Json::str(name))])),
    ])
}

/// Renders an [`Export`] as a Chrome trace-event JSON object
/// (`{"displayTimeUnit": "ms", "traceEvents": [...]}`) loadable in
/// Perfetto. Live ring events render under pid [`PID_FLIGHT`]; each
/// slow capture renders under pid [`PID_SLOW`] so outlier requests stay
/// visible even after the rings wrapped past them.
pub fn chrome_trace(export: &Export) -> Json {
    let mut events = Vec::with_capacity(export.events.len() + 2);
    events.push(process_name(PID_FLIGHT, "tm flight recorder"));
    if !export.slow.is_empty() {
        events.push(process_name(PID_SLOW, "tm slow requests"));
    }
    for ev in &export.events {
        events.push(chrome_event(ev, PID_FLIGHT));
    }
    for cap in &export.slow {
        for ev in &cap.events {
            events.push(chrome_event(ev, PID_SLOW));
        }
    }
    Json::obj([
        ("displayTimeUnit", Json::str("ms")),
        ("traceEvents", Json::Arr(events)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Restores the thread recording override on drop.
    struct RecordOn(Option<bool>);
    impl RecordOn {
        fn new() -> Self {
            let prev = THREAD_RECORDING.with(|o| o.replace(Some(true)));
            drain_thread(); // start from an empty ring
            RecordOn(prev)
        }
    }
    impl Drop for RecordOn {
        fn drop(&mut self) {
            THREAD_RECORDING.with(|o| o.set(self.0));
        }
    }

    #[test]
    fn dormant_thread_records_nothing() {
        set_thread_recording(Some(false));
        instant("bdd.publish", &[]);
        let _p = phase("serve.parse");
        drop(_p);
        let req = request_begin("serve.request", 0);
        assert_eq!(req.trace_id(), 0);
        assert!(req.finish(0).is_none());
        assert!(drain_thread().is_empty());
        set_thread_recording(None);
    }

    #[test]
    fn request_context_buffers_and_flushes_one_block() {
        let _on = RecordOn::new();
        let req = request_begin("serve.request", 1000);
        let id = req.trace_id();
        assert!(id > 0);
        {
            let mut p = phase("serve.parse");
            p.arg("bytes", 42.0);
        }
        instant("bdd.publish", &[("nodes", 7.0)]);
        // Buffered in the context — the ring stays empty until finish.
        assert!(drain_thread().is_empty());
        let summary = req.finish(u64::MAX).expect("live context");
        assert_eq!(summary.trace_id, id);
        assert_eq!(summary.events, 3);
        assert!(!summary.slow);
        let events = drain_thread();
        assert_eq!(events.len(), 3);
        assert!(events.iter().all(|e| e.trace_id == id), "{events:?}");
        let root = events.last().expect("root event");
        assert_eq!(root.name, "serve.request");
        assert!(root.dur_ns >= 1000, "root back-dated by queue_ns: {root:?}");
        // Phases nest within the root interval.
        for ev in &events[..2] {
            assert!(ev.ts_ns >= root.ts_ns);
            if !ev.is_instant() {
                assert!(ev.ts_ns + ev.dur_ns <= root.ts_ns + root.dur_ns);
            }
        }
    }

    #[test]
    fn ring_overwrites_oldest_with_exact_drop_accounting() {
        let _on = RecordOn::new();
        let before = stats();
        for _ in 0..RING_CAPACITY + 100 {
            instant("bdd.publish", &[]);
        }
        let events = drain_thread();
        assert_eq!(events.len(), RING_CAPACITY);
        let after = stats();
        assert_eq!(after.dropped - before.dropped, 100, "exactly the overflow is dropped");
        assert_eq!(after.recorded - before.recorded, (RING_CAPACITY + 100) as u64);
    }

    #[test]
    fn slow_requests_are_captured() {
        let _on = RecordOn::new();
        let req = request_begin("serve.request", 0);
        let id = req.trace_id();
        {
            let _p = phase("serve.compute");
        }
        let summary = req.finish(0).expect("live context"); // threshold 0 → everything is slow
        assert!(summary.slow);
        let caps = export(usize::MAX).slow;
        let cap = caps.iter().find(|c| c.trace_id == id).expect("captured");
        assert_eq!(cap.events.len(), 2);
        assert_eq!(cap.events.last().map(|e| e.name), Some("serve.request"));
        drain_thread();
    }

    #[test]
    fn absorb_preserves_worker_tid_and_trace_id() {
        let _on = RecordOn::new();
        let parent_tid = thread_id();
        let req = request_begin("serve.request", 0);
        let id = req.trace_id();
        let batch = std::thread::scope(|s| {
            s.spawn(move || {
                set_thread_recording(Some(true));
                let prev = set_ambient_trace_id(id);
                instant("spcf.output", &[("output", 3.0)]);
                set_ambient_trace_id(prev);
                drain_thread()
            })
            .join()
            .expect("worker")
        });
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].trace_id, id, "worker inherits the request id");
        let worker_tid = batch[0].tid;
        assert_ne!(worker_tid, parent_tid);
        absorb_events(batch);
        req.finish(u64::MAX);
        let events = drain_thread();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].tid, worker_tid, "absorbed event keeps its tid");
    }

    #[test]
    fn chrome_export_is_well_formed_and_parsable() {
        let _on = RecordOn::new();
        let req = request_begin("serve.request", 500);
        {
            let _p = phase("serve.parse");
        }
        instant("resilience.exhausted", &[("kind", 1.0)]);
        req.finish(0); // capture into the slow log too
        let ex = export(usize::MAX);
        let json = chrome_trace(&ex);
        let rendered = json.render();
        let parsed = Json::parse(&rendered).expect("chrome trace parses");
        let events = parsed.get("traceEvents").and_then(Json::as_arr).expect("traceEvents");
        assert!(events.len() >= 5, "metadata + 3 events + slow copy: {}", events.len());
        for ev in events {
            let ph = ev.get("ph").and_then(Json::as_str).expect("ph");
            assert!(matches!(ph, "X" | "i" | "M"), "unexpected ph {ph}");
            assert!(ev.get("name").and_then(Json::as_str).is_some());
            assert!(ev.get("pid").and_then(Json::as_num).is_some());
            if ph == "X" {
                assert!(ev.get("dur").and_then(Json::as_num).expect("dur") >= 0.0);
            }
        }
        // The slow capture renders under PID_SLOW.
        assert!(
            events.iter().any(|e| e.get("pid").and_then(Json::as_num) == Some(PID_SLOW as f64)
                && e.get("ph").and_then(Json::as_str) == Some("X")),
            "slow capture present"
        );
        drain_thread();
    }

    #[test]
    fn export_limit_truncates_oldest_and_counts_drops() {
        let _on = RecordOn::new();
        for i in 0..10 {
            complete("serve.compute", 1_000 + i, 10, &[]);
        }
        let ex = export(4);
        assert_eq!(ex.events.len(), 4);
        assert!(ex.dropped >= 6);
        // Newest survive.
        assert!(ex.events.iter().all(|e| e.ts_ns >= 1_006));
        drain_thread();
    }
}
