//! The span facade: RAII guards over a thread-local stack, aggregated
//! per name into call count, total (inclusive) and self (exclusive)
//! wall time.
//!
//! Use the [`crate::span!`] macro rather than calling [`enter`]
//! directly — it keeps the call site to one line and formats field
//! arguments only at `TM_TRACE=2`:
//!
//! ```
//! let _scope = tm_telemetry::Scope::enter();
//! let net = 7;
//! let _span = tm_telemetry::span!("spcf.short_path", net = net);
//! ```

use crate::metrics::with_registry;
use std::cell::RefCell;
use std::time::Instant;

/// Aggregated statistics of one span name on one thread.
#[derive(Clone, Debug, Default)]
pub struct SpanStat {
    /// Span name (`crate.subsystem` form, from [`crate::schema`]).
    pub name: String,
    /// Number of completed spans with this name.
    pub calls: u64,
    /// Wall time including children, in nanoseconds.
    pub total_ns: u64,
    /// Wall time excluding child spans, in nanoseconds.
    pub self_ns: u64,
}

struct Frame {
    name: &'static str,
    start: Instant,
    /// Nanoseconds spent in completed child spans.
    child_ns: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// An active span; records itself into the thread's aggregate on drop.
/// Inert (a no-op) when collection was disabled at entry.
#[must_use = "a span measures nothing unless bound to a variable"]
#[derive(Debug)]
pub struct SpanGuard {
    active: bool,
}

/// Opens a span. Prefer the [`crate::span!`] macro.
pub fn enter(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { active: false };
    }
    if crate::trace_level() >= 2 {
        let depth = STACK.with(|s| s.borrow().len());
        eprintln!("[tm-trace] {:indent$}> {name}", "", indent = depth * 2);
    }
    STACK.with(|s| {
        s.borrow_mut().push(Frame { name, start: Instant::now(), child_ns: 0 })
    });
    SpanGuard { active: true }
}

/// Opens a span with lazily formatted fields; `fields` is only invoked
/// at `TM_TRACE=2` (the verbose printing level).
pub fn enter_verbose(name: &'static str, fields: impl FnOnce() -> String) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { active: false };
    }
    if crate::trace_level() >= 2 {
        let depth = STACK.with(|s| s.borrow().len());
        eprintln!("[tm-trace] {:indent$}> {name} {}", "", fields(), indent = depth * 2);
    }
    STACK.with(|s| {
        s.borrow_mut().push(Frame { name, start: Instant::now(), child_ns: 0 })
    });
    SpanGuard { active: true }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let Some(frame) = STACK.with(|s| s.borrow_mut().pop()) else {
            return; // stack desync (a guard outlived a Scope) — drop silently
        };
        let total_ns = frame.start.elapsed().as_nanos() as u64;
        let self_ns = total_ns.saturating_sub(frame.child_ns);
        STACK.with(|s| {
            if let Some(parent) = s.borrow_mut().last_mut() {
                parent.child_ns = parent.child_ns.saturating_add(total_ns);
            }
        });
        with_registry(|r| {
            let stat = r.spans.entry(frame.name).or_insert_with(|| SpanStat {
                name: frame.name.to_string(),
                ..SpanStat::default()
            });
            stat.calls += 1;
            stat.total_ns = stat.total_ns.saturating_add(total_ns);
            stat.self_ns = stat.self_ns.saturating_add(self_ns);
        });
        if crate::trace_level() >= 2 {
            let depth = STACK.with(|s| s.borrow().len());
            eprintln!(
                "[tm-trace] {:indent$}< {} ({:.3} ms)",
                "",
                frame.name,
                total_ns as f64 / 1e6,
                indent = depth * 2
            );
        }
    }
}

/// Opens a span guarded on the current thread's collection state.
///
/// `span!("name")` opens a plain span; `span!("name", k = v, ...)`
/// additionally prints `k=v` fields when `TM_TRACE=2` (the fields are
/// not formatted otherwise). Bind the result: `let _span = span!(...)`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::enter($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::span::enter_verbose($name, || {
            let mut s = String::new();
            $(
                s.push_str(concat!(stringify!($key), "="));
                s.push_str(&format!("{:?} ", $value));
            )+
            s
        })
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scope;

    fn spin(us: u64) {
        let start = Instant::now();
        while start.elapsed().as_micros() < us as u128 {
            std::hint::black_box(0u64);
        }
    }

    #[test]
    fn nested_spans_attribute_self_and_total_time() {
        let _scope = Scope::enter();
        {
            let _outer = crate::span!("masking.synthesize");
            spin(200);
            {
                let _inner = crate::span!("masking.spcf");
                spin(200);
            }
            {
                let _inner = crate::span!("masking.spcf");
                spin(200);
            }
            spin(100);
        }
        let snap = crate::snapshot();
        let outer = snap.span("masking.synthesize").expect("outer recorded");
        let inner = snap.span("masking.spcf").expect("inner recorded");
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 2);
        // Self time excludes children and is bounded by total time.
        assert!(outer.self_ns <= outer.total_ns, "self must never exceed total");
        assert!(inner.self_ns == inner.total_ns, "leaf spans are all self time");
        assert!(
            outer.total_ns >= outer.self_ns + inner.total_ns.saturating_sub(1_000),
            "outer total covers inner total: outer={outer:?} inner={inner:?}"
        );
        assert!(outer.self_ns > 0, "outer did real work outside its children");
    }

    #[test]
    fn sibling_child_time_accumulates_into_parent() {
        let _scope = Scope::enter();
        {
            let _outer = crate::span!("spcf.path_based");
            for _ in 0..3 {
                let _child = crate::span!("spcf.short_path");
                spin(100);
            }
        }
        let snap = crate::snapshot();
        let outer = snap.span("spcf.path_based").expect("outer");
        let child = snap.span("spcf.short_path").expect("child");
        assert_eq!(child.calls, 3);
        assert!(outer.total_ns >= child.total_ns, "parent total covers all children");
    }

    #[test]
    fn span_with_fields_compiles_and_records() {
        let _scope = Scope::enter();
        {
            let id = 42;
            let _span = crate::span!("monitor.trace.session", net = id, phase = true);
        }
        assert_eq!(crate::snapshot().span("monitor.trace.session").unwrap().calls, 1);
    }

    #[test]
    fn inert_guard_outside_collection_is_free() {
        crate::set_thread_enabled(Some(false));
        {
            let _span = crate::span!("spcf.node_based");
        }
        assert!(crate::snapshot().span("spcf.node_based").is_none());
        crate::set_thread_enabled(None);
    }
}
