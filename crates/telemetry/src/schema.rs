//! The closed registry of metric and span names used across the
//! workspace, and an offline validator for emitted JSON reports.
//!
//! Names follow `crate.subsystem.metric` (lowercase, `.`-separated,
//! `[a-z0-9_]` segments). The registry is *closed*: a report naming a
//! metric or span not listed here fails validation, so instrumentation
//! and this file must move together — that is what keeps dashboards
//! and CI assertions from silently drifting when a counter is renamed.

use tm_testkit::json::Json;

/// Version stamped into every report under `schema_version`.
pub const SCHEMA_VERSION: u64 = 1;

/// The kind of a registered metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic saturating `u64` sum.
    Counter,
    /// Last-write-wins `f64` level.
    Gauge,
    /// Fixed-bucket distribution (see [`crate::BUCKET_BOUNDS`]).
    Histogram,
    /// Log-linear exact-percentile digest (see [`crate::digest::Digest`]).
    Digest,
}

/// Every metric name the workspace may emit, with its kind.
pub const KNOWN_METRICS: &[(&str, MetricKind)] = &[
    // tm-logic: complement-edge ROBDD manager (unique table, lossy
    // ITE computed cache, quantifier cache).
    ("bdd.unique.hits", MetricKind::Counter),
    ("bdd.unique.misses", MetricKind::Counter),
    ("bdd.unique.rehashes", MetricKind::Counter),
    ("bdd.cache.hits", MetricKind::Counter),
    ("bdd.cache.misses", MetricKind::Counter),
    ("bdd.cache.evictions", MetricKind::Counter),
    ("bdd.cache.clears", MetricKind::Counter),
    ("bdd.quant.hits", MetricKind::Counter),
    ("bdd.quant.misses", MetricKind::Counter),
    ("bdd.nodes", MetricKind::Gauge),
    ("bdd.unique.entries", MetricKind::Gauge),
    // tm-spcf: the engine sessions and the three SPCF engines.
    ("spcf.session.retargets", MetricKind::Counter),
    ("spcf.short_path.memo_hit", MetricKind::Counter),
    ("spcf.short_path.memo_miss", MetricKind::Counter),
    ("spcf.short_path.stab_calls", MetricKind::Counter),
    ("spcf.short_path.memo_entries", MetricKind::Gauge),
    ("spcf.short_path.output_ns", MetricKind::Histogram),
    ("spcf.path_based.waveform_nodes", MetricKind::Counter),
    ("spcf.path_based.output_ns", MetricKind::Histogram),
    ("spcf.node_based.critical_gates", MetricKind::Counter),
    ("spcf.node_based.output_ns", MetricKind::Histogram),
    // tm-core: masking synthesis and verification.
    ("masking.synth.cubes_considered", MetricKind::Counter),
    ("masking.synth.cubes_kept", MetricKind::Counter),
    ("masking.synth.selection_rounds", MetricKind::Counter),
    ("masking.synth.nodes_masked", MetricKind::Counter),
    ("masking.verify.outputs_checked", MetricKind::Counter),
    // tm-sim: event-driven timing simulation.
    ("sim.timing.events", MetricKind::Counter),
    ("sim.timing.transitions", MetricKind::Counter),
    // tm-monitor: trace capture.
    ("monitor.trace.captured", MetricKind::Counter),
    ("monitor.trace.dropped", MetricKind::Counter),
    // tm-resilience: budgets and the masking degradation ladder.
    ("resilience.budget.exhausted", MetricKind::Counter),
    ("resilience.fallback.node_based", MetricKind::Counter),
    ("resilience.fallback.conservative", MetricKind::Counter),
    // tm-spcf warm sessions: defensive rebuilds on ascending ladders.
    ("spcf.session.rebuilds", MetricKind::Counter),
    // tm-server: masking-as-a-service daemon.
    ("serve.requests", MetricKind::Counter),
    ("serve.errors", MetricKind::Counter),
    ("serve.shed", MetricKind::Counter),
    ("serve.coalesced", MetricKind::Counter),
    ("serve.degrade.node_based", MetricKind::Counter),
    ("serve.degrade.conservative", MetricKind::Counter),
    ("serve.pool.hits", MetricKind::Counter),
    ("serve.pool.misses", MetricKind::Counter),
    ("serve.pool.evictions", MetricKind::Counter),
    ("serve.pool.sessions", MetricKind::Gauge),
    // Serving latencies are digests, not fixed-bucket histograms: SLO
    // questions need exact percentiles (p99 read off a 2–5 ms bucket
    // can be wrong by 2.5×).
    ("serve.request_ns", MetricKind::Digest),
    ("serve.queue_ns", MetricKind::Digest),
    // Flight recorder (crate::flight): per-request trace accounting.
    ("serve.trace.events", MetricKind::Counter),
    ("serve.slow.captured", MetricKind::Counter),
    ("serve.trace.threads", MetricKind::Gauge),
    ("serve.trace.buffered", MetricKind::Gauge),
    ("serve.trace.dropped", MetricKind::Gauge),
];

/// Every span name the workspace may open.
pub const KNOWN_SPANS: &[&str] = &[
    "spcf.short_path",
    "spcf.path_based",
    "spcf.node_based",
    "spcf.conservative",
    "spcf.parallel",
    "masking.synthesize",
    "masking.spcf",
    "masking.extract",
    "masking.covers",
    "masking.map",
    "masking.slack",
    "masking.verify",
    "monitor.trace.session",
    "serve.request",
];

/// Every flight-recorder event name the workspace may record (see
/// [`crate::flight`]). Closed like the metric registry: the trace
/// validator (`tm_profile --check`) rejects unknown names.
pub const KNOWN_EVENTS: &[&str] = &[
    // tm-server request phases (serve.request is the per-request root).
    "serve.request",
    "serve.queue",
    "serve.parse",
    "serve.pool",
    "serve.compute",
    "serve.serialize",
    // tm-spcf engine sessions.
    "spcf.prepare",
    "spcf.output",
    // tm-logic: coarse BDD manager checkpoints (delta publishes).
    "bdd.publish",
    // tm-resilience: budget exhaustion, tagged with the live trace id.
    "resilience.exhausted",
];

/// Whether `name` is a registered flight-recorder event.
pub fn is_known_event(name: &str) -> bool {
    KNOWN_EVENTS.contains(&name)
}

/// Looks up a registered metric's kind.
pub fn metric_kind(name: &str) -> Option<MetricKind> {
    KNOWN_METRICS.iter().find(|(n, _)| *n == name).map(|(_, k)| *k)
}

/// Whether `name` is a registered span.
pub fn is_known_span(name: &str) -> bool {
    KNOWN_SPANS.contains(&name)
}

fn well_formed_name(name: &str) -> bool {
    !name.is_empty()
        && name.split('.').count() >= 2
        && name.split('.').all(|seg| {
            !seg.is_empty()
                && seg.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
        })
}

/// Validates a parsed metrics report against the schema.
///
/// Checks: the top-level structure (`schema_version`, `spans`,
/// `counters`, `gauges`, `histograms` arrays with the expected per-entry
/// fields), that every name is well-formed and registered above with
/// the right kind, and histogram internals (bucket counts sum to
/// `count`, `le` bounds strictly increasing with an optional trailing
/// `null` overflow bucket). Returns every problem found, not just the
/// first.
pub fn validate(report: &Json) -> Result<(), Vec<String>> {
    let mut errs = Vec::new();

    match report.get("schema_version").and_then(Json::as_num) {
        Some(v) if v == SCHEMA_VERSION as f64 => {}
        Some(v) => errs.push(format!("schema_version {v} != {SCHEMA_VERSION}")),
        None => errs.push("missing numeric schema_version".to_string()),
    }

    for section in ["spans", "counters", "gauges", "histograms"] {
        if report.get(section).and_then(Json::as_arr).is_none() {
            errs.push(format!("missing array section `{section}`"));
        }
    }
    if !errs.is_empty() && report.get("spans").is_none() {
        return Err(errs);
    }

    for entry in report.get("spans").and_then(Json::as_arr).unwrap_or(&[]) {
        check_name(&mut errs, entry, "spans", None);
        for field in ["calls", "total_ns", "self_ns"] {
            if entry.get(field).and_then(Json::as_num).is_none() {
                errs.push(format!("spans: entry missing numeric `{field}`"));
            }
        }
        if let (Some(t), Some(s)) = (
            entry.get("total_ns").and_then(Json::as_num),
            entry.get("self_ns").and_then(Json::as_num),
        ) {
            if s > t {
                errs.push(format!("spans: self_ns {s} > total_ns {t}"));
            }
        }
    }

    for entry in report.get("counters").and_then(Json::as_arr).unwrap_or(&[]) {
        check_name(&mut errs, entry, "counters", Some(MetricKind::Counter));
        if entry.get("value").and_then(Json::as_num).is_none() {
            errs.push("counters: entry missing numeric `value`".to_string());
        }
    }

    for entry in report.get("gauges").and_then(Json::as_arr).unwrap_or(&[]) {
        check_name(&mut errs, entry, "gauges", Some(MetricKind::Gauge));
        if entry.get("value").and_then(Json::as_num).is_none() {
            errs.push("gauges: entry missing numeric `value`".to_string());
        }
    }

    for entry in report.get("histograms").and_then(Json::as_arr).unwrap_or(&[]) {
        let name = check_name(&mut errs, entry, "histograms", Some(MetricKind::Histogram))
            .unwrap_or_else(|| "<unnamed>".to_string());
        let count = entry.get("count").and_then(Json::as_num);
        if count.is_none() {
            errs.push(format!("histograms: `{name}` missing numeric `count`"));
        }
        if entry.get("sum").and_then(Json::as_num).is_none() {
            errs.push(format!("histograms: `{name}` missing numeric `sum`"));
        }
        let Some(buckets) = entry.get("buckets").and_then(Json::as_arr) else {
            errs.push(format!("histograms: `{name}` missing `buckets` array"));
            continue;
        };
        let mut bucket_total = 0.0;
        let mut prev_le = f64::NEG_INFINITY;
        for (i, b) in buckets.iter().enumerate() {
            match b.get("count").and_then(Json::as_num) {
                Some(c) => bucket_total += c,
                None => errs.push(format!("histograms: `{name}` bucket {i} missing `count`")),
            }
            match b.get("le") {
                Some(Json::Null) => {
                    if i + 1 != buckets.len() {
                        errs.push(format!(
                            "histograms: `{name}` overflow bucket (le: null) not last"
                        ));
                    }
                }
                Some(j) => match j.as_num() {
                    Some(le) if le > prev_le => prev_le = le,
                    Some(le) => errs.push(format!(
                        "histograms: `{name}` bucket bounds not increasing at le={le}"
                    )),
                    None => errs.push(format!("histograms: `{name}` bucket {i} bad `le`")),
                },
                None => errs.push(format!("histograms: `{name}` bucket {i} missing `le`")),
            }
        }
        if let Some(c) = count {
            if (bucket_total - c).abs() > 0.5 {
                errs.push(format!(
                    "histograms: `{name}` bucket counts sum to {bucket_total}, count is {c}"
                ));
            }
        }
    }

    // The digests section is optional (reports predating schema
    // additions omit it) but validated strictly when present.
    for entry in report.get("digests").and_then(Json::as_arr).unwrap_or(&[]) {
        let name = check_name(&mut errs, entry, "digests", Some(MetricKind::Digest))
            .unwrap_or_else(|| "<unnamed>".to_string());
        let count = entry.get("count").and_then(Json::as_num);
        for field in ["count", "sum", "min", "max", "p50", "p90", "p95", "p99"] {
            if entry.get(field).and_then(Json::as_num).is_none() {
                errs.push(format!("digests: `{name}` missing numeric `{field}`"));
            }
        }
        let q = |f: &str| entry.get(f).and_then(Json::as_num).unwrap_or(0.0);
        if count.unwrap_or(0.0) > 0.0 {
            let (min, p50, p90, p95, p99, max) =
                (q("min"), q("p50"), q("p90"), q("p95"), q("p99"), q("max"));
            if !(min <= p50 && p50 <= p90 && p90 <= p95 && p95 <= p99 && p99 <= max) {
                errs.push(format!(
                    "digests: `{name}` percentiles not monotone: \
                     min={min} p50={p50} p90={p90} p95={p95} p99={p99} max={max}"
                ));
            }
        }
        let Some(buckets) = entry.get("buckets").and_then(Json::as_arr) else {
            errs.push(format!("digests: `{name}` missing `buckets` array"));
            continue;
        };
        let mut bucket_total = 0.0;
        let mut prev_b = f64::NEG_INFINITY;
        for (i, b) in buckets.iter().enumerate() {
            match b.get("count").and_then(Json::as_num) {
                Some(c) => bucket_total += c,
                None => errs.push(format!("digests: `{name}` bucket {i} missing `count`")),
            }
            match b.get("b").and_then(Json::as_num) {
                Some(idx) if idx > prev_b => prev_b = idx,
                Some(idx) => {
                    errs.push(format!("digests: `{name}` bucket indices not increasing at b={idx}"))
                }
                None => errs.push(format!("digests: `{name}` bucket {i} missing numeric `b`")),
            }
        }
        if let Some(c) = count {
            if (bucket_total - c).abs() > 0.5 {
                errs.push(format!(
                    "digests: `{name}` bucket counts sum to {bucket_total}, count is {c}"
                ));
            }
        }
    }

    if errs.is_empty() { Ok(()) } else { Err(errs) }
}

/// Checks one entry's `name` field: present, well-formed, registered
/// with the right kind (`want = None` means a span). Returns the name
/// when present so callers can cite it in further errors.
fn check_name(
    errs: &mut Vec<String>,
    entry: &Json,
    section: &str,
    want: Option<MetricKind>,
) -> Option<String> {
    let Some(name) = entry.get("name").and_then(Json::as_str) else {
        errs.push(format!("{section}: entry without a string `name`"));
        return None;
    };
    if !well_formed_name(name) {
        errs.push(format!("{section}: malformed name `{name}`"));
    }
    match want {
        None => {
            if !is_known_span(name) {
                errs.push(format!("{section}: unknown span `{name}`"));
            }
        }
        Some(kind) => match metric_kind(name) {
            Some(k) if k == kind => {}
            Some(k) => errs.push(format!(
                "{section}: `{name}` is registered as {k:?}, emitted as {kind:?}"
            )),
            None => errs.push(format!("{section}: unknown metric `{name}`")),
        },
    }
    Some(name.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_well_formed_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for (name, _) in KNOWN_METRICS {
            assert!(well_formed_name(name), "malformed metric name {name}");
            assert!(seen.insert(*name), "duplicate metric name {name}");
        }
        for name in KNOWN_SPANS {
            assert!(well_formed_name(name), "malformed span name {name}");
            assert!(seen.insert(*name), "span name collides: {name}");
        }
        // Event names live in their own namespace (the root event
        // deliberately shares `serve.request` with the span), but must
        // still be well-formed and unique among themselves.
        let mut events = std::collections::HashSet::new();
        for name in KNOWN_EVENTS {
            assert!(well_formed_name(name), "malformed event name {name}");
            assert!(events.insert(*name), "duplicate event name {name}");
            assert!(is_known_event(name));
        }
    }

    #[test]
    fn validates_digest_entries() {
        let report = Json::parse(
            r#"{"schema_version": 1, "spans": [], "counters": [], "gauges": [],
                "histograms": [],
                "digests": [{"name": "serve.request_ns", "count": 2, "sum": 30, "min": 10,
                             "max": 20, "p50": 25, "p90": 18, "p95": 19, "p99": 20,
                             "buckets": [{"b": 10, "count": 1}, {"b": 10, "count": 2}]}]}"#,
        )
        .unwrap();
        let errs = validate(&report).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("percentiles not monotone")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("indices not increasing")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("sum to 3")), "{errs:?}");

        let good = Json::parse(
            r#"{"schema_version": 1, "spans": [], "counters": [], "gauges": [],
                "histograms": [],
                "digests": [{"name": "serve.queue_ns", "count": 2, "sum": 30, "min": 10,
                             "max": 20, "p50": 10, "p90": 20, "p95": 20, "p99": 20,
                             "buckets": [{"b": 10, "count": 1}, {"b": 20, "count": 1}]}]}"#,
        )
        .unwrap();
        validate(&good).expect("well-formed digest entry validates");
    }

    #[test]
    fn rejects_unknown_and_miskinded_names() {
        let report = Json::parse(
            r#"{"schema_version": 1,
                "spans": [{"name": "spcf.bogus", "calls": 1, "total_ns": 5, "self_ns": 5}],
                "counters": [{"name": "bdd.nodes", "value": 3}],
                "gauges": [],
                "histograms": []}"#,
        )
        .unwrap();
        let errs = validate(&report).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("unknown span `spcf.bogus`")), "{errs:?}");
        assert!(
            errs.iter().any(|e| e.contains("registered as Gauge")),
            "counter/gauge kind mismatch must be flagged: {errs:?}"
        );
    }

    #[test]
    fn rejects_self_exceeding_total_and_bad_buckets() {
        let report = Json::parse(
            r#"{"schema_version": 1,
                "spans": [{"name": "spcf.short_path", "calls": 1, "total_ns": 5, "self_ns": 9}],
                "counters": [],
                "gauges": [],
                "histograms": [{"name": "spcf.short_path.output_ns", "count": 2, "sum": 30,
                                "buckets": [{"le": 10, "count": 1}, {"le": 10, "count": 2}]}]}"#,
        )
        .unwrap();
        let errs = validate(&report).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("self_ns 9 > total_ns 5")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("not increasing")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("sum to 3")), "{errs:?}");
    }

    #[test]
    fn accepts_a_real_snapshot() {
        let _scope = crate::Scope::enter();
        crate::counter_add("spcf.short_path.memo_hit", 7);
        crate::gauge_set("bdd.nodes", 42.0);
        crate::histogram_record("spcf.short_path.output_ns", 1234.0);
        crate::histogram_record("spcf.short_path.output_ns", 5e12); // overflow bucket
        {
            let _span = crate::span!("spcf.short_path");
        }
        let json = crate::snapshot().to_json();
        validate(&json).expect("live snapshot validates");
        let reparsed = Json::parse(&json.render()).expect("round-trips");
        validate(&reparsed).expect("re-parsed snapshot validates");
    }
}
