//! Deterministic, seedable PRNG: xoshiro256\*\* seeded via splitmix64.
//!
//! Not cryptographic — this is a test/workload generator. The API is
//! the small slice of `rand` the workspace actually uses
//! (`seed_from_u64`, `gen_range`, `gen_bool`, raw draws, shuffling), so
//! migrating call sites is mechanical.

/// One step of splitmix64: the recommended seeder for xoshiro state.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a raw 64-bit draw to an index in `[0, n)` without modulo bias
/// (Lemire's widening-multiply method, single pass).
#[inline]
pub fn map_index(raw: u64, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((raw as u128 * n as u128) >> 64) as u64
}

/// Maps a raw 64-bit draw to a float in `[0, 1)` with 53 random bits.
#[inline]
pub fn map_unit_f64(raw: u64) -> f64 {
    (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A seedable xoshiro256\*\* generator.
///
/// # Examples
///
/// ```
/// use tm_testkit::rng::Rng;
/// let mut rng = Rng::seed_from_u64(42);
/// let a = rng.gen_range(0..10usize);
/// assert!(a < 10);
/// let b = rng.gen_range(0.0..1.0);
/// assert!((0.0..1.0).contains(&b));
/// // Deterministic in the seed.
/// assert_eq!(Rng::seed_from_u64(7).next_u64(), Rng::seed_from_u64(7).next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Expands a 64-bit seed into the full 256-bit state via splitmix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// The next raw 64-bit draw (xoshiro256\*\*).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniformly random bool.
    #[inline]
    pub fn next_bool(&mut self) -> bool {
        // Top bit: the high bits of xoshiro256** are the best-mixed.
        self.next_u64() >> 63 == 1
    }

    /// A uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        map_unit_f64(self.next_u64())
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniform sample from the range (`Range` / `RangeInclusive` over
    /// the integer types the workspace uses, plus `f64`).
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(&mut || self.next_u64())
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = map_index(self.next_u64(), (i + 1) as u64) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_range(0..slice.len())])
        }
    }
}

/// Ranges that [`Rng::gen_range`] (and the property runner's
/// [`crate::prop::Gen`]) can sample from a stream of raw `u64` draws.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws a uniform sample, pulling raw 64-bit words from `raw`.
    fn sample_from(self, raw: &mut dyn FnMut() -> u64) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from(self, raw: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(map_index(raw(), span) as $t)
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from(self, raw: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every u64 is valid.
                    return lo.wrapping_add(raw() as $t);
                }
                lo.wrapping_add(map_index(raw(), span) as $t)
            }
        }
    )*};
}

int_range!(usize, u64, u32, u16, u8);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from(self, raw: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + map_unit_f64(raw()) * (self.end - self.start)
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    #[inline]
    fn sample_from(self, raw: &mut dyn FnMut() -> u64) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        lo + map_unit_f64(raw()) * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = Rng::seed_from_u64(123);
        let mut b = Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(124);
        assert_ne!(Rng::seed_from_u64(123).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..1000 {
            let u = rng.gen_range(3..17usize);
            assert!((3..17).contains(&u));
            let f = rng.gen_range(-0.25..=0.25);
            assert!((-0.25..=0.25).contains(&f));
            let g = rng.gen_range(2.0..5.0);
            assert!((2.0..5.0).contains(&g));
            let i = rng.gen_range(0u64..1);
            assert_eq!(i, 0);
        }
    }

    #[test]
    fn gen_bool_probability_is_roughly_right() {
        let mut rng = Rng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn unit_f64_is_half_open() {
        let mut rng = Rng::seed_from_u64(77);
        for _ in 0..10_000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = Rng::seed_from_u64(2);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*rng.choose(&items).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert!(rng.choose::<u8>(&[]).is_none());
    }
}
