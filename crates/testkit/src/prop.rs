//! A miniature property-test runner.
//!
//! Replaces `proptest` for this workspace. The design is
//! Hypothesis-style: a property's input is generated from a stream of
//! raw `u64` *choices* drawn through [`Gen`]; the runner records the
//! choice tape, and when a case fails it shrinks the **tape** (zeroing,
//! halving, decrementing and truncating entries) and regenerates the
//! input from the shrunk tape. Because every generated structure —
//! integers, bit-vectors, whole netlists — is a deterministic function
//! of the tape, one shrinker covers them all: integer draws shrink
//! toward the range minimum, bitvec words shrink toward zero, sizes
//! shrink toward their lower bounds.
//!
//! Failures report the case seed; re-run just that case with
//! `TM_PROP_SEED=<seed> cargo test <name>`.
//!
//! # Examples
//!
//! ```
//! use tm_testkit::prop::{check, Config, Gen};
//!
//! check("addition_commutes", &Config::default(), |g: &mut Gen| {
//!     (g.gen_range(0u64..1000), g.gen_range(0u64..1000))
//! }, |&(a, b)| {
//!     if a + b == b + a { Ok(()) } else { Err("math broke".to_string()) }
//! });
//! ```

use crate::rng::{splitmix64, Rng, SampleRange};

/// Runner configuration.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Base seed; each case derives its own seed from it.
    pub seed: u64,
    /// Maximum number of candidate tapes tried while shrinking.
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 32, seed: 0x7E57_0000_2009_0bb5, max_shrink_iters: 2_000 }
    }
}

impl Config {
    /// A config running `cases` cases (default seed and shrink budget).
    pub fn with_cases(cases: u32) -> Self {
        Config { cases, ..Config::default() }
    }
}

/// The choice source handed to generator closures.
///
/// In fresh mode it draws from a seeded [`Rng`] and records the tape;
/// in replay mode it reads a (shrunk) tape back, substituting zeros
/// once the tape is exhausted — the canonical "smallest" choice.
pub struct Gen {
    rng: Rng,
    tape: Vec<u64>,
    replay: Option<Vec<u64>>,
    pos: usize,
}

impl Gen {
    fn fresh(seed: u64) -> Self {
        Gen { rng: Rng::seed_from_u64(seed), tape: Vec::new(), replay: None, pos: 0 }
    }

    fn replaying(tape: Vec<u64>) -> Self {
        Gen { rng: Rng::seed_from_u64(0), tape: Vec::new(), replay: Some(tape), pos: 0 }
    }

    /// The next raw 64-bit choice.
    pub fn next_raw(&mut self) -> u64 {
        let raw = match &self.replay {
            Some(tape) => tape.get(self.pos).copied().unwrap_or(0),
            None => self.rng.next_u64(),
        };
        self.pos += 1;
        self.tape.push(raw);
        raw
    }

    /// A uniform sample from the range; shrinks toward the range start.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(&mut || self.next_raw())
    }

    /// `true` with probability `p`; shrinks toward `false`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        // Raw 0 maps to 1.0 so the shrunk choice is `false`.
        crate::rng::map_unit_f64(!self.next_raw()) < p
    }

    /// A uniformly random bool; shrinks toward `false`.
    pub fn next_bool(&mut self) -> bool {
        self.next_raw() & 1 == 1
    }

    /// A raw word masked to `bits` bits; shrinks toward zero. The
    /// building block for random truth tables and bit-vectors.
    pub fn bits(&mut self, bits: u32) -> u64 {
        let raw = self.next_raw();
        if bits >= 64 {
            raw
        } else {
            raw & ((1u64 << bits) - 1)
        }
    }

    /// `len` raw words, each masked to `bits` bits (a random bitvec).
    pub fn bitvec(&mut self, len: usize, bits: u32) -> Vec<u64> {
        (0..len).map(|_| self.bits(bits)).collect()
    }
}

/// Environment variable that pins the runner to a single case seed.
pub const SEED_ENV: &str = "TM_PROP_SEED";

fn case_seed(base: u64, case: u32) -> u64 {
    let mut s = base ^ (case as u64).wrapping_mul(0xA076_1D64_78BD_642F);
    splitmix64(&mut s)
}

/// Runs a property over `cfg.cases` generated inputs.
///
/// `gen` builds an input from the choice stream; `prop` returns
/// `Err(reason)` to fail the case. On failure the input is shrunk and
/// the runner panics with the case seed, the shrunk input's `Debug`
/// form, and the failure reason.
///
/// # Panics
///
/// Panics when a case fails (that is the point).
pub fn check<T: std::fmt::Debug>(
    name: &str,
    cfg: &Config,
    gen: impl Fn(&mut Gen) -> T,
    prop: impl Fn(&T) -> Result<(), String>,
) {
    let pinned: Option<u64> = std::env::var(SEED_ENV)
        .ok()
        .and_then(|v| parse_seed(&v));
    let cases: Vec<u64> = match pinned {
        Some(seed) => vec![seed],
        None => (0..cfg.cases).map(|i| case_seed(cfg.seed, i)).collect(),
    };

    for (i, &seed) in cases.iter().enumerate() {
        let mut g = Gen::fresh(seed);
        let input = gen(&mut g);
        let outcome = prop(&input);
        if let Err(reason) = outcome {
            let tape = g.tape.clone();
            let (min_input, min_reason, shrinks) =
                shrink(&tape, &gen, &prop, cfg.max_shrink_iters, input, reason);
            panic!(
                "property `{name}` failed (case {i}, seed {seed:#018x}, {shrinks} shrinks)\n\
                 reproduce: {SEED_ENV}={seed:#018x} cargo test\n\
                 minimal input: {min_input:#?}\n\
                 failure: {min_reason}"
            );
        }
    }
}

fn parse_seed(v: &str) -> Option<u64> {
    let v = v.trim();
    if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(&hex.replace('_', ""), 16).ok()
    } else {
        v.replace('_', "").parse().ok()
    }
}

/// Shrinks a failing tape; returns the minimal failing input, its
/// failure reason, and the number of successful shrink steps.
fn shrink<T: std::fmt::Debug>(
    tape: &[u64],
    gen: &impl Fn(&mut Gen) -> T,
    prop: &impl Fn(&T) -> Result<(), String>,
    budget: u32,
    worst_input: T,
    worst_reason: String,
) -> (T, String, u32) {
    let mut best = tape.to_vec();
    let mut best_input = worst_input;
    let mut best_reason = worst_reason;
    let mut tried = 0u32;
    let mut improved_any = 0u32;

    // A candidate tape fails ⇒ adopt it. Regeneration may consume
    // fewer/more choices than the tape holds; both are fine (missing
    // choices read as 0).
    let attempt = |cand: Vec<u64>,
                       best: &mut Vec<u64>,
                       best_input: &mut T,
                       best_reason: &mut String|
     -> bool {
        let mut g = Gen::replaying(cand);
        let input = gen(&mut g);
        if g.tape == *best {
            // Regeneration padded the candidate back to the current
            // tape (e.g. truncating an already-zero tail): no progress.
            return false;
        }
        match prop(&input) {
            Err(reason) => {
                *best = g.tape.clone();
                *best_input = input;
                *best_reason = reason;
                true
            }
            Ok(()) => false,
        }
    };

    loop {
        let mut improved = false;

        // Pass 1: truncate the tail (shrinks collection sizes fast).
        let mut cut = best.len() / 2;
        while cut > 0 && tried < budget {
            if best.len() <= cut {
                break;
            }
            tried += 1;
            let cand = best[..best.len() - cut].to_vec();
            if attempt(cand, &mut best, &mut best_input, &mut best_reason) {
                improved = true;
                improved_any += 1;
            } else {
                cut /= 2;
            }
        }

        // Pass 2: zero each entry (smallest choice at each point).
        for i in 0..best.len() {
            if tried >= budget {
                break;
            }
            if best[i] == 0 {
                continue;
            }
            tried += 1;
            let mut cand = best.clone();
            cand[i] = 0;
            if attempt(cand, &mut best, &mut best_input, &mut best_reason) {
                improved = true;
                improved_any += 1;
            }
        }

        // Pass 3: binary-search each entry downward.
        for i in 0..best.len() {
            if tried >= budget {
                break;
            }
            let mut lo = 0u64;
            while lo < best.get(i).copied().unwrap_or(0) && tried < budget {
                let mid = lo + (best[i] - lo) / 2;
                if mid == best[i] {
                    break;
                }
                tried += 1;
                let mut cand = best.clone();
                cand[i] = mid;
                if attempt(cand, &mut best, &mut best_input, &mut best_reason) {
                    improved = true;
                    improved_any += 1;
                } else {
                    lo = mid + 1;
                }
            }
        }

        if !improved || tried >= budget {
            break;
        }
    }
    (best_input, best_reason, improved_any)
}

/// Fails the surrounding property when `cond` is false.
///
/// Use inside the property closure of [`check`]; expands to an early
/// `return Err(..)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fails the surrounding property when the two sides differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs != rhs {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                lhs,
                rhs
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs != rhs {
            return Err(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                lhs,
                rhs
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut ran = 0u32;
        let cfg = Config::with_cases(17);
        // Count via a cell captured by the generator.
        let counter = std::cell::Cell::new(0u32);
        check("counts", &cfg, |g| {
            counter.set(counter.get() + 1);
            g.gen_range(0u64..100)
        }, |_| Ok(()));
        ran += counter.get();
        assert_eq!(ran, 17);
    }

    #[test]
    fn failing_property_panics_with_seed() {
        let err = std::panic::catch_unwind(|| {
            check("always_fails", &Config::with_cases(4), |g| g.gen_range(0u64..100), |_| {
                Err("nope".to_string())
            });
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("always_fails"));
        assert!(msg.contains(SEED_ENV));
        assert!(msg.contains("nope"));
    }

    #[test]
    fn shrinking_finds_integer_boundary() {
        // Fails for x >= 500: the minimal counterexample is exactly 500.
        let err = std::panic::catch_unwind(|| {
            check(
                "boundary",
                &Config::with_cases(200),
                |g| g.gen_range(0u64..10_000),
                |&x| if x < 500 { Ok(()) } else { Err(format!("{x} too big")) },
            );
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("minimal input: 500"), "shrunk badly: {msg}");
    }

    #[test]
    fn shrinking_minimizes_bitvecs() {
        // Fails when any word has bit 3 set; minimal tape is the single
        // word 0b1000 (earlier words zeroed, tail truncated).
        let err = std::panic::catch_unwind(|| {
            check(
                "bitvec",
                &Config::with_cases(100),
                |g| g.bitvec(8, 16),
                |v| {
                    if v.iter().any(|w| w & 8 != 0) {
                        Err("bit 3 set".to_string())
                    } else {
                        Ok(())
                    }
                },
            );
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string panic");
        // All surviving words are 0 except one that is exactly 8.
        let nonzero = msg.matches("    8,").count();
        assert_eq!(nonzero, 1, "expected exactly one word == 8 in: {msg}");
    }

    #[test]
    fn tuples_and_derived_structures_shrink() {
        #[derive(Debug)]
        struct Pair {
            a: u64,
            b: Vec<u64>,
        }
        let err = std::panic::catch_unwind(|| {
            check(
                "derived",
                &Config::with_cases(100),
                |g| {
                    let a = g.gen_range(0u64..64);
                    let len = g.gen_range(1usize..6);
                    let b = g.bitvec(len, 8);
                    Pair { a, b }
                },
                |p| {
                    if p.a >= 10 && p.b.iter().sum::<u64>() >= 1 {
                        Err("both conditions".to_string())
                    } else {
                        Ok(())
                    }
                },
            );
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("a: 10"), "a not minimal: {msg}");
    }

    #[test]
    fn gen_bool_shrinks_to_false() {
        let mut g = Gen::replaying(vec![]);
        assert!(!g.gen_bool(0.9), "zero choice must decode as false");
        assert!(!g.next_bool());
    }

    #[test]
    fn seed_parsing() {
        assert_eq!(parse_seed("123"), Some(123));
        assert_eq!(parse_seed("0x7f"), Some(127));
        assert_eq!(parse_seed("0x00ff_0000_0000_0001"), Some(0x00ff_0000_0000_0001));
        assert_eq!(parse_seed("garbage"), None);
    }
}
