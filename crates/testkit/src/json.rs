//! A tiny JSON value type and writer (the workspace's `serde_json`
//! stand-in; output only — nothing in the repo parses JSON).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object members.
    pub fn obj(members: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // Integral values print without a trailing ".0" so
                    // counts look like counts.
                    if n.fract() == 0.0 && n.abs() < 9.0e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values() {
        let v = Json::obj([
            ("name", Json::str("spcf")),
            ("ok", Json::Bool(true)),
            ("median_ns", Json::Num(1250.0)),
            ("p95_ns", Json::Num(1300.5)),
            ("tags", Json::Arr(vec![Json::str("a"), Json::Null])),
        ]);
        assert_eq!(
            v.render(),
            r#"{"name":"spcf","ok":true,"median_ns":1250,"p95_ns":1300.5,"tags":["a",null]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let s = Json::str("a\"b\\c\nd\u{1}").render();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_numbers_are_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }
}
