//! A tiny JSON value type, writer, and parser (the workspace's
//! `serde_json` stand-in). The writer serves bench and telemetry
//! reports; the parser exists so CI can re-read and validate emitted
//! reports offline (see `tm-telemetry`'s schema checker).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object members.
    pub fn obj(members: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Parses a JSON document.
    ///
    /// Accepts exactly what [`Json::render`] emits plus insignificant
    /// whitespace; numbers are parsed as `f64`. Errors carry a byte
    /// offset and a short description.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Looks up a member of an object by key (`None` for non-objects
    /// and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // Integral values print without a trailing ".0" so
                    // counts look like counts.
                    if n.fract() == 0.0 && n.abs() < 9.0e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogates are not emitted by our writer;
                            // map them to the replacement character.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values() {
        let v = Json::obj([
            ("name", Json::str("spcf")),
            ("ok", Json::Bool(true)),
            ("median_ns", Json::Num(1250.0)),
            ("p95_ns", Json::Num(1300.5)),
            ("tags", Json::Arr(vec![Json::str("a"), Json::Null])),
        ]);
        assert_eq!(
            v.render(),
            r#"{"name":"spcf","ok":true,"median_ns":1250,"p95_ns":1300.5,"tags":["a",null]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let s = Json::str("a\"b\\c\nd\u{1}").render();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_numbers_are_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let v = Json::obj([
            ("name", Json::str("spcf")),
            ("ok", Json::Bool(true)),
            ("n", Json::Num(1250.0)),
            ("frac", Json::Num(0.25)),
            ("none", Json::Null),
            ("tags", Json::Arr(vec![Json::str("a\n\"b\\"), Json::Null, Json::Num(-3.5)])),
            ("nested", Json::obj([("k", Json::Arr(vec![]))])),
        ]);
        let parsed = Json::parse(&v.render()).expect("round trip");
        assert_eq!(parsed, v);
    }

    #[test]
    fn parse_accepts_whitespace() {
        let v = Json::parse(" {\n  \"a\" : [ 1 , 2 ] ,\t\"b\" : { } }\r\n").expect("ok");
        assert_eq!(v.get("a").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
        assert_eq!(v.get("b"), Some(&Json::Obj(vec![])));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated", "{\"a\" 1}"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_unicode_escapes() {
        let v = Json::parse("\"a\\u0041\\u00e9\"").expect("ok");
        assert_eq!(v, Json::str("aAé"));
    }

    #[test]
    fn accessors() {
        let v = Json::obj([("x", Json::Num(2.0)), ("s", Json::str("y"))]);
        assert_eq!(v.get("x").and_then(Json::as_num), Some(2.0));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("y"));
        assert!(v.as_arr().is_none());
        assert!(Json::Null.as_num().is_none());
    }
}
