//! Wall-clock benchmark harness (the workspace's `criterion`
//! stand-in).
//!
//! Each benchmark runs a warmup phase, then `sample_size` timed
//! samples; a sample times a batch of iterations sized so one sample
//! takes at least [`MIN_SAMPLE_TIME`] (fast kernels are batched, slow
//! kernels run once per sample). The harness reports min / median /
//! p95 / max per iteration and appends every result to a JSON report
//! written on [`BenchGroup::finish`] (default
//! `target/tm-bench/<group>.json`, overridable via `TM_BENCH_DIR`).
//!
//! Benches stay `harness = false` binaries, mirroring the criterion
//! layout:
//!
//! ```no_run
//! use tm_testkit::bench::BenchGroup;
//!
//! let mut group = BenchGroup::new("spcf_algorithms");
//! group.sample_size(10);
//! group.bench("node_based/c1", || 2 + 2);
//! group.finish();
//! ```

use crate::json::Json;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Minimum wall-clock span of one timed sample; iterations are batched
/// until a sample is at least this long.
pub const MIN_SAMPLE_TIME: Duration = Duration::from_millis(2);

/// Environment variable overriding the JSON report directory.
pub const DIR_ENV: &str = "TM_BENCH_DIR";

/// Statistics of one benchmark, in nanoseconds per iteration.
#[derive(Clone, Debug)]
pub struct BenchStats {
    /// Benchmark id within the group.
    pub id: String,
    /// Iterations per timed sample.
    pub iters_per_sample: u64,
    /// Number of timed samples.
    pub samples: usize,
    /// Fastest sample.
    pub min_ns: f64,
    /// Median sample.
    pub median_ns: f64,
    /// 95th-percentile sample (nearest-rank).
    pub p95_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
}

impl BenchStats {
    fn from_samples(id: &str, iters: u64, mut ns: Vec<f64>) -> Self {
        ns.sort_by(f64::total_cmp);
        let n = ns.len();
        let rank = |q: f64| ns[(((n as f64) * q).ceil() as usize).clamp(1, n) - 1];
        BenchStats {
            id: id.to_string(),
            iters_per_sample: iters,
            samples: n,
            min_ns: ns[0],
            median_ns: rank(0.5),
            p95_ns: rank(0.95),
            max_ns: ns[n - 1],
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::str(self.id.clone())),
            ("iters_per_sample", Json::Num(self.iters_per_sample as f64)),
            ("samples", Json::Num(self.samples as f64)),
            ("min_ns", Json::Num(self.min_ns)),
            ("median_ns", Json::Num(self.median_ns)),
            ("p95_ns", Json::Num(self.p95_ns)),
            ("max_ns", Json::Num(self.max_ns)),
        ])
    }
}

/// A named group of benchmarks sharing a sample budget and one JSON
/// report file.
pub struct BenchGroup {
    name: String,
    sample_size: usize,
    warmup: Duration,
    results: Vec<BenchStats>,
    meta: Vec<(&'static str, f64)>,
}

impl BenchGroup {
    /// A new group with 20 samples and a 200 ms warmup per benchmark.
    pub fn new(name: impl Into<String>) -> Self {
        BenchGroup {
            name: name.into(),
            sample_size: 20,
            warmup: Duration::from_millis(200),
            results: Vec::new(),
            meta: Vec::new(),
        }
    }

    /// Sets the number of timed samples per benchmark (minimum 1 — a
    /// single sample is a smoke run, not a measurement).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warmup duration per benchmark.
    pub fn warmup(&mut self, d: Duration) -> &mut Self {
        self.warmup = d;
        self
    }

    /// Records a group-level metadata value (e.g. the worker count a
    /// run used), emitted in the JSON report's `meta` object. A repeated
    /// key overwrites the earlier value.
    pub fn meta(&mut self, key: &'static str, value: f64) -> &mut Self {
        match self.meta.iter_mut().find(|(k, _)| *k == key) {
            Some(slot) => slot.1 = value,
            None => self.meta.push((key, value)),
        }
        self
    }

    /// Runs one benchmark: warmup, then timed samples of `f`.
    ///
    /// The closure's return value is passed through
    /// [`std::hint::black_box`] so the work is not optimized away.
    pub fn bench<R>(&mut self, id: &str, mut f: impl FnMut() -> R) -> &BenchStats {
        // Warmup, measuring a single-iteration estimate as we go.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while elapsed < self.warmup || warmup_iters == 0 {
            black_box(f());
            warmup_iters += 1;
            elapsed = warmup_start.elapsed();
            if warmup_iters >= 1_000_000 {
                break;
            }
        }
        let est_per_iter = elapsed.as_secs_f64() / warmup_iters as f64;
        // Batch iterations so one sample spans at least MIN_SAMPLE_TIME.
        let iters = if est_per_iter <= 0.0 {
            1
        } else {
            (MIN_SAMPLE_TIME.as_secs_f64() / est_per_iter).ceil().max(1.0) as u64
        };

        let mut samples_ns = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples_ns.push(t0.elapsed().as_nanos() as f64 / iters as f64);
        }

        let stats = BenchStats::from_samples(id, iters, samples_ns);
        println!(
            "{:<40} median {:>12} p95 {:>12} (n={}, {} iter/sample)",
            format!("{}/{}", self.name, stats.id),
            fmt_ns(stats.median_ns),
            fmt_ns(stats.p95_ns),
            stats.samples,
            stats.iters_per_sample,
        );
        self.results.push(stats);
        self.results.last().expect("just pushed")
    }

    /// Writes the group's JSON report and consumes the group.
    ///
    /// Report path: `$TM_BENCH_DIR/<group>.json` or
    /// `target/tm-bench/<group>.json`. I/O failures are reported to
    /// stderr but never fail the bench run.
    pub fn finish(self) {
        let dir = std::env::var(DIR_ENV).unwrap_or_else(|_| default_report_dir());
        let report = Json::obj([
            ("group", Json::str(self.name.clone())),
            (
                "meta",
                Json::obj(self.meta.iter().map(|&(k, v)| (k, Json::Num(v)))),
            ),
            ("results", Json::Arr(self.results.iter().map(BenchStats::to_json).collect())),
        ]);
        let path = format!("{dir}/{}.json", self.name);
        if let Err(e) = std::fs::create_dir_all(&dir)
            .and_then(|_| std::fs::write(&path, report.render()))
        {
            eprintln!("tm-testkit: could not write {path}: {e}");
        } else {
            println!("wrote {path}");
        }
    }
}

/// The workspace root: the outermost ancestor of the current directory
/// holding a `Cargo.lock`. Cargo runs test and bench binaries with the
/// *package* directory as CWD, so relative output paths should be
/// resolved against this instead.
pub fn workspace_root() -> Option<std::path::PathBuf> {
    let cwd = std::env::current_dir().ok()?;
    cwd.ancestors()
        .filter(|a| a.join("Cargo.lock").is_file())
        .last()
        .map(std::path::Path::to_path_buf)
}

/// Default report directory: `target/tm-bench` under the workspace
/// root, so reports from every crate's benches land in one place.
fn default_report_dir() -> String {
    match workspace_root() {
        Some(root) => root.join("target/tm-bench").to_string_lossy().into_owned(),
        None => "target/tm-bench".to_string(),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_ordered_and_sane() {
        let s = BenchStats::from_samples("x", 1, vec![5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(s.min_ns, 1.0);
        assert_eq!(s.median_ns, 3.0);
        assert_eq!(s.max_ns, 5.0);
        assert!(s.p95_ns >= s.median_ns && s.p95_ns <= s.max_ns);
    }

    #[test]
    fn bench_runs_and_records() {
        let mut g = BenchGroup::new("testkit_selftest");
        g.sample_size(3).warmup(Duration::from_millis(1));
        let s = g.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(s.min_ns > 0.0);
        assert!(s.median_ns >= s.min_ns);
        assert_eq!(s.samples, 3);
        // Don't write a report from unit tests.
    }

    #[test]
    fn meta_overwrites_repeated_keys() {
        let mut g = BenchGroup::new("testkit_meta");
        g.meta("jobs", 1.0).meta("gates", 42.0).meta("jobs", 4.0);
        assert_eq!(g.meta, vec![("jobs", 4.0), ("gates", 42.0)]);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(12.34), "12.3 ns");
        assert_eq!(fmt_ns(12_340.0), "12.34 µs");
        assert_eq!(fmt_ns(12_340_000.0), "12.34 ms");
        assert_eq!(fmt_ns(2_500_000_000.0), "2.500 s");
    }
}
