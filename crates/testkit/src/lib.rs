//! Hermetic test & bench substrate for the `timemask` workspace.
//!
//! The build environment has no network and no registry access, so the
//! workspace carries its own miniature replacements for the external
//! crates a Rust project would normally reach for:
//!
//! | external crate | replacement | module |
//! |---|---|---|
//! | `rand` | seedable xoshiro256\*\* PRNG with the small API the repo uses | [`rng`] |
//! | `proptest` | property runner: case counts, failure seeds, choice-tape shrinking | [`prop`] |
//! | `criterion` | warmup + N-sample wall-clock harness with median/p95 and JSON output | [`bench`] |
//! | `serde`/`serde_json` | tiny hand-rolled JSON value writer | [`json`] |
//!
//! Everything is deterministic: the PRNG is seeded explicitly, the
//! property runner derives one seed per case from a base seed and
//! prints the failing case's seed (reproduce with
//! `TM_PROP_SEED=<seed>`), and bench workloads are expected to be
//! seeded by their callers.
//!
//! The hermetic-build policy (see `DESIGN.md`): dev-dependencies are
//! never added to the workspace — missing test/bench functionality is
//! grown here instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod json;
pub mod prop;
pub mod rng;

pub use bench::BenchGroup;
pub use json::Json;
pub use prop::{check, Config, Gen};
pub use rng::Rng;
