//! Mutation-based fuzzing of the BLIF parser: arbitrary corruption of
//! well-formed documents must produce `Ok` or a `ParseBlifError` with a
//! sane line number — never a panic. This is the "running untrusted
//! netlists" guarantee the README documents.

use tm_netlist::blif::{parse_blif, write_blif};
use tm_testkit::rng::Rng;

/// Seed corpus of well-formed documents covering every construct the
/// parser supports (comments, continuations, off-set rows, forward
/// references, constants).
const CORPUS: &[&str] = &[
    ".model tiny\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n",
    "# header comment\n.model m\n.inputs a b c\n.outputs y z\n.names a b t\n11 1\n00 1\n.names t c y\n1- 1\n-1 1\n.names a z\n0 1\n.end\n",
    ".model fwd\n.inputs a b\n.outputs y\n.names t y\n1 1\n.names a b t\n11 1\n.end\n",
    ".model cont\n.inputs a \\\nb c\n.outputs y\n.names a b c y\n1-1 1\n01- 1\n.end\n",
    ".model consts\n.inputs a\n.outputs one zero q\n.names one\n1\n.names zero\n.names a q\n0 1\n.end\n",
    ".model nand\n.inputs a b\n.outputs y\n.names a b y\n11 0\n.end\n",
];

/// Bytes the mutator splices in: BLIF-meaningful tokens and separators,
/// so mutations explore the parser's grammar rather than only its
/// tokenizer.
const SPLICE: &[&str] = &[
    ".names", ".inputs", ".outputs", ".model", ".end", ".latch", ".subckt", ".gate", "0", "1",
    "-", "2", "x", "y", "a", "\\", "#", " ", "\n", "\t", "\u{221e}",
];

fn mutate(rng: &mut Rng, base: &str) -> String {
    let mut text = base.to_string();
    let edits = rng.gen_range(1..6usize);
    for _ in 0..edits {
        // Operate on char boundaries so slicing never panics in the
        // harness itself.
        let boundaries: Vec<usize> = text.char_indices().map(|(i, _)| i).chain([text.len()]).collect();
        match rng.gen_range(0..4u32) {
            // Delete a random span.
            0 if boundaries.len() > 2 => {
                let s = rng.gen_range(0..boundaries.len() - 1);
                let e = (s + rng.gen_range(1..8usize)).min(boundaries.len() - 1);
                text.replace_range(boundaries[s]..boundaries[e], "");
            }
            // Insert a grammar token.
            1 => {
                let at = boundaries[rng.gen_range(0..boundaries.len())];
                let tok = SPLICE[rng.gen_range(0..SPLICE.len())];
                text.insert_str(at, tok);
            }
            // Duplicate a random line (duplicate .outputs/.names paths).
            2 => {
                let lines: Vec<&str> = text.lines().collect();
                if let Some(&line) = rng.choose(&lines) {
                    let dup = format!("{line}\n");
                    text.push_str(&dup);
                }
            }
            // Swap two random characters.
            _ => {
                if boundaries.len() > 3 {
                    let i = rng.gen_range(0..boundaries.len() - 1);
                    let j = rng.gen_range(0..boundaries.len() - 1);
                    let (i, j) = (i.min(j), i.max(j));
                    if i != j {
                        let ci: String = text[boundaries[i]..].chars().take(1).collect();
                        let cj: String = text[boundaries[j]..].chars().take(1).collect();
                        let (bi, bj) = (boundaries[i], boundaries[j]);
                        text.replace_range(bj..bj + cj.len(), &ci);
                        text.replace_range(bi..bi + ci.len(), &cj);
                    }
                }
            }
        }
    }
    text
}

#[test]
fn mutated_blif_never_panics() {
    let mut rng = Rng::seed_from_u64(0xB11F);
    let mut parsed_ok = 0usize;
    let mut rejected = 0usize;
    const ROUNDS: usize = 600;
    for round in 0..ROUNDS {
        let base = CORPUS[round % CORPUS.len()];
        let text = mutate(&mut rng, base);
        match parse_blif(&text) {
            Ok(net) => {
                parsed_ok += 1;
                // Accepted documents must round-trip without panicking
                // either (the writer sees whatever the parser built).
                let _ = write_blif(&net);
            }
            Err(e) => {
                rejected += 1;
                // Error-line sanity: 1-based and within the document.
                let num_lines = text.lines().count().max(1);
                assert!(
                    e.line() >= 1 && e.line() <= num_lines,
                    "error line {} outside document of {} lines for input {text:?}",
                    e.line(),
                    num_lines
                );
            }
        }
    }
    assert_eq!(parsed_ok + rejected, ROUNDS);
    // The mutator must actually exercise both paths, or it tests nothing.
    assert!(parsed_ok > 0, "mutator never produced a valid document");
    assert!(rejected > 0, "mutator never produced an invalid document");
}

#[test]
fn pathological_documents_never_panic() {
    // Hand-picked adversarial shapes that unfuzzed parsers tend to die
    // on: each must be Ok or a typed error.
    let cases = [
        "",
        "\n\n\n",
        "\\",
        ".names\n",
        ".names \\\n",
        ".model\n.end\n",
        ".inputs a\n.inputs a\n.outputs a\n.end\n",
        ".model m\n.outputs y\n.names y y\n1 1\n.end\n",
        ".model m\n.inputs a\n.outputs y\n.names a y\n\u{221e} 1\n.end\n",
        ".model m\n.inputs a\n.outputs y y y\n.names a y\n1 1\n.end\n",
        "# only a comment",
        ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n1 1\n1 1\n.end\n.end\n.end\n",
    ];
    for text in cases {
        let _ = parse_blif(text);
    }
}
