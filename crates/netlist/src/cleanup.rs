//! Gate-level cleanup optimization: the light post-synthesis passes a
//! commercial flow would run after assembling a netlist.
//!
//! [`cleanup`] iterates four equivalence-preserving rewrites to a fixed
//! point:
//!
//! 1. **Constant propagation** — `TIE0`/`TIE1` values flow through gate
//!    functions; gates whose outputs become constant turn into tie
//!    cells, gates reduced to a single live input collapse to wires or
//!    inverters.
//! 2. **Identity collapse** — buffers and double inverters forward
//!    their source net.
//! 3. **Structural deduplication** — gates with identical cell and
//!    fanins share one instance.
//! 4. **Dead-gate sweep** — logic outside every output cone is dropped.
//!
//! The primary-input and primary-output interface (names, order,
//! functions) is preserved exactly; the masking synthesis runs this on
//! the mapped error-masking circuit before enforcing its slack budget.

use crate::netlist::{Driver, Netlist};
use crate::types::{CellId, NetId};
use std::collections::HashMap;
use tm_logic::TruthTable;

/// What [`cleanup`] accomplished.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CleanupStats {
    /// Gates before cleanup.
    pub gates_before: usize,
    /// Gates after cleanup.
    pub gates_after: usize,
    /// Fixed-point iterations run.
    pub iterations: usize,
}

impl CleanupStats {
    /// Gates removed.
    pub fn removed(&self) -> usize {
        self.gates_before.saturating_sub(self.gates_after)
    }
}

/// A net's statically known state during rewriting.
#[derive(Clone, Copy, PartialEq, Eq)]
enum NetState {
    /// Constant 0 or 1.
    Constant(bool),
    /// Identical to another (earlier) net.
    Alias(NetId),
    /// An ordinary driven net.
    Free,
}

/// Runs cleanup to a fixed point; returns the optimized netlist and
/// statistics.
///
/// The result computes the same primary-output functions over the same
/// primary inputs (asserted by the caller's tests, guaranteed by
/// construction: every rewrite is a local equivalence).
pub fn cleanup(netlist: &Netlist) -> (Netlist, CleanupStats) {
    let mut stats = CleanupStats {
        gates_before: netlist.num_gates(),
        gates_after: netlist.num_gates(),
        iterations: 0,
    };
    let mut current = netlist.clone();
    loop {
        stats.iterations += 1;
        let next = pass(&current);
        let done = next.num_gates() == current.num_gates();
        current = next;
        if done || stats.iterations >= 8 {
            break;
        }
    }
    stats.gates_after = current.num_gates();
    (current, stats)
}

/// One rewrite pass: constant propagation + identity collapse +
/// structural dedup, then dead sweep via rebuild.
fn pass(netlist: &Netlist) -> Netlist {
    let lib = netlist.library().clone();
    let tie0 = lib.find("TIE0");
    let tie1 = lib.find("TIE1");

    // Resolve each net to a state in topological order.
    let mut state: Vec<NetState> = vec![NetState::Free; netlist.num_nets()];
    let mut strash: HashMap<(CellId, Vec<NetId>), NetId> = HashMap::new();
    // For inverter-chain collapsing: net → the net it is a negation of.
    let mut negation_of: Vec<Option<NetId>> = vec![None; netlist.num_nets()];

    // Follow alias chains to a representative.
    fn resolve(state: &[NetState], mut n: NetId) -> NetId {
        while let NetState::Alias(m) = state[n.index()] {
            n = m;
        }
        n
    }

    for (_, g) in netlist.gates() {
        let out = g.output();
        let cell = lib.cell(g.cell());
        let f = cell.function();

        // Resolve fanins through aliases and deduplicate equal nets so
        // the specialized function sees each distinct signal once.
        let mut distinct: Vec<NetId> = Vec::with_capacity(g.inputs().len());
        let mut pin_to_distinct: Vec<usize> = Vec::with_capacity(g.inputs().len());
        for &i in g.inputs() {
            let r = resolve(&state, i);
            match distinct.iter().position(|&d| d == r) {
                Some(p) => pin_to_distinct.push(p),
                None => {
                    distinct.push(r);
                    pin_to_distinct.push(distinct.len() - 1);
                }
            }
        }
        let known: Vec<Option<bool>> = distinct
            .iter()
            .map(|&d| match state[d.index()] {
                NetState::Constant(v) => Some(v),
                _ => None,
            })
            .collect();

        // Specialize the function over the distinct unknown inputs.
        let free: Vec<usize> = (0..distinct.len()).filter(|&p| known[p].is_none()).collect();
        let spec = TruthTable::from_fn(free.len(), |m| {
            let mut full = 0u64;
            for (pin, &dp) in pin_to_distinct.iter().enumerate() {
                let bit = match known[dp] {
                    Some(v) => v,
                    None => {
                        let pos = free.iter().position(|&fp| fp == dp).expect("free");
                        (m >> pos) & 1 == 1
                    }
                };
                if bit {
                    full |= 1 << pin;
                }
            }
            f.eval(full)
        });

        state[out.index()] = if spec.is_one() {
            NetState::Constant(true)
        } else if spec.is_zero() {
            NetState::Constant(false)
        } else if free.len() == 1 && spec.eval(1) && !spec.eval(0) {
            // Identity of its single live input.
            NetState::Alias(distinct[free[0]])
        } else if free.len() == 1 && spec.eval(0) && !spec.eval(1) {
            // Negation of its single live input: collapse inverter
            // chains (NOT(NOT(x)) = x) and share equivalent negations.
            let src = distinct[free[0]];
            if let Some(grand) = negation_of[src.index()] {
                NetState::Alias(grand)
            } else if let Some(&prior) =
                strash.get(&(g.cell(), vec![src]))
            {
                NetState::Alias(prior)
            } else {
                negation_of[out.index()] = Some(src);
                strash.insert((g.cell(), vec![src]), out);
                NetState::Free
            }
        } else {
            // Structural dedup on the resolved (undeduplicated) fanins.
            let resolved: Vec<NetId> = pin_to_distinct.iter().map(|&p| distinct[p]).collect();
            let key = (g.cell(), resolved);
            match strash.get(&key) {
                Some(&prior) => NetState::Alias(prior),
                None => {
                    strash.insert(key, out);
                    NetState::Free
                }
            }
        };
    }

    // Rebuild: keep only gates whose output is Free and reachable.
    let mut out_nl = Netlist::new(netlist.name().to_string(), lib.clone());
    let mut new_net: HashMap<NetId, NetId> = HashMap::new();
    for &pi in netlist.inputs() {
        let n = out_nl.add_input(netlist.net_name(pi).to_string());
        new_net.insert(pi, n);
    }

    // Constant sources are materialized on demand (at most one each).
    let mut const_net: [Option<NetId>; 2] = [None, None];
    let mut materialize_const = |out_nl: &mut Netlist, v: bool| -> NetId {
        let slot = v as usize;
        if let Some(n) = const_net[slot] {
            return n;
        }
        let cell = if v { tie1 } else { tie0 }.expect("library has tie cells");
        let n = out_nl.add_gate(cell, &[], if v { "const1" } else { "const0" });
        const_net[slot] = Some(n);
        n
    };

    // Reachability from outputs over the rewritten fanin relation.
    let mut needed = vec![false; netlist.num_nets()];
    let mut stack: Vec<NetId> = netlist
        .outputs()
        .iter()
        .map(|&o| resolve(&state, o))
        .collect();
    while let Some(n) = stack.pop() {
        if needed[n.index()] {
            continue;
        }
        needed[n.index()] = true;
        if let Driver::Gate(gid) = netlist.driver(n) {
            if matches!(state[n.index()], NetState::Free) {
                for &i in netlist.gate(gid).inputs() {
                    stack.push(resolve(&state, i));
                }
            }
        }
    }

    for (_, g) in netlist.gates() {
        let out = g.output();
        if !matches!(state[out.index()], NetState::Free) || !needed[out.index()] {
            continue;
        }
        let inputs: Vec<NetId> = g
            .inputs()
            .iter()
            .map(|&i| {
                let r = resolve(&state, i);
                match state[r.index()] {
                    NetState::Constant(v) => materialize_const(&mut out_nl, v),
                    _ => *new_net.get(&r).expect("topological order"),
                }
            })
            .collect();
        let n = out_nl.add_gate(g.cell(), &inputs, netlist.net_name(out).to_string());
        new_net.insert(out, n);
    }

    // Outputs: resolve through aliases/constants; keep one net per
    // output role (buffer on collision or PI-alias).
    for &o in netlist.outputs() {
        let r = resolve(&state, o);
        let mut n = match state[r.index()] {
            NetState::Constant(v) => materialize_const(&mut out_nl, v),
            _ => *new_net.get(&r).expect("resolved net exists"),
        };
        if out_nl.outputs().contains(&n) || netlist.inputs().contains(&r) {
            let buf = lib.expect("BUF");
            n = out_nl.add_gate(buf, &[n], format!("{}_out", netlist.net_name(o)));
        }
        while out_nl.outputs().contains(&n) {
            let buf = lib.expect("BUF");
            n = out_nl.add_gate(buf, &[n], format!("{}_out2", netlist.net_name(o)));
        }
        out_nl.mark_output(n);
    }
    out_nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::{lsi10k_like, Library};
    use std::sync::Arc;

    fn lib() -> Arc<Library> {
        Arc::new(lsi10k_like())
    }

    fn equivalent(a: &Netlist, b: &Netlist) {
        let n = a.inputs().len();
        assert!(n <= 12);
        for m in 0..(1u64 << n) {
            let bits: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(a.eval(&bits), b.eval(&bits), "mismatch at {m:#b}");
        }
    }

    #[test]
    fn constants_propagate() {
        let lib = lib();
        let mut nl = Netlist::new("c", lib.clone());
        let a = nl.add_input("a");
        let one = nl.add_gate(lib.expect("TIE1"), &[], "one");
        // AND(a, 1) = a; OR(a, 1) = 1.
        let x = nl.add_gate(lib.expect("AND2"), &[a, one], "x");
        let y = nl.add_gate(lib.expect("OR2"), &[x, one], "y");
        nl.mark_output(y);
        nl.mark_output(x);
        let (opt, stats) = cleanup(&nl);
        equivalent(&nl, &opt);
        // y is constant 1 (one TIE), x collapses to a buffer of a.
        assert!(stats.gates_after < stats.gates_before, "{stats:?}");
    }

    #[test]
    fn double_inverters_vanish() {
        let lib = lib();
        let mut nl = Netlist::new("ii", lib.clone());
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let i1 = nl.add_gate(lib.expect("INV"), &[a], "i1");
        let i2 = nl.add_gate(lib.expect("INV"), &[i1], "i2");
        let y = nl.add_gate(lib.expect("NAND2"), &[i2, b], "y");
        nl.mark_output(y);
        let (opt, stats) = cleanup(&nl);
        equivalent(&nl, &opt);
        assert_eq!(stats.gates_after, 1, "{stats:?}"); // just the NAND
    }

    #[test]
    fn duplicate_logic_shares() {
        let lib = lib();
        let mut nl = Netlist::new("dup", lib.clone());
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x1 = nl.add_gate(lib.expect("AND2"), &[a, b], "x1");
        let x2 = nl.add_gate(lib.expect("AND2"), &[a, b], "x2");
        let y = nl.add_gate(lib.expect("OR2"), &[x1, x2], "y");
        nl.mark_output(y);
        let (opt, stats) = cleanup(&nl);
        equivalent(&nl, &opt);
        // OR(x, x) = x too: everything collapses to a single AND.
        assert_eq!(stats.gates_after, 1, "{stats:?}");
    }

    #[test]
    fn dead_logic_swept() {
        let lib = lib();
        let mut nl = Netlist::new("dead", lib.clone());
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let _unused = nl.add_gate(lib.expect("XOR2"), &[a, b], "unused");
        let y = nl.add_gate(lib.expect("NOR2"), &[a, b], "y");
        nl.mark_output(y);
        let (opt, stats) = cleanup(&nl);
        equivalent(&nl, &opt);
        assert_eq!(stats.gates_after, 1);
        assert_eq!(stats.removed(), 1);
    }

    #[test]
    fn interface_is_preserved() {
        let lib = lib();
        let nl = crate::circuits::comparator2(lib.clone());
        let (opt, _) = cleanup(&nl);
        assert_eq!(opt.inputs().len(), nl.inputs().len());
        assert_eq!(opt.outputs().len(), nl.outputs().len());
        for (&a, &b) in nl.inputs().iter().zip(opt.inputs()) {
            assert_eq!(nl.net_name(a), opt.net_name(b));
        }
        equivalent(&nl, &opt);
        assert!(opt.check().is_empty());
    }

    #[test]
    fn generated_circuits_stay_equivalent() {
        use crate::generate::{generate, GeneratorSpec};
        for seed in [1u64, 7, 42] {
            let mut spec = GeneratorSpec::sized(format!("cl{seed}"), 8, 3, 40);
            spec.seed = seed;
            let nl = generate(&spec, lib());
            let (opt, stats) = cleanup(&nl);
            equivalent(&nl, &opt);
            assert!(opt.check().is_empty());
            assert!(stats.gates_after <= stats.gates_before);
        }
    }

    #[test]
    fn pi_output_and_constant_output() {
        let lib = lib();
        let mut nl = Netlist::new("po", lib.clone());
        let a = nl.add_input("a");
        let buf = nl.add_gate(lib.expect("BUF"), &[a], "abuf");
        let zero = nl.add_gate(lib.expect("TIE0"), &[], "z");
        nl.mark_output(buf);
        nl.mark_output(zero);
        let (opt, _) = cleanup(&nl);
        equivalent(&nl, &opt);
        assert_eq!(opt.outputs().len(), 2);
    }
}
