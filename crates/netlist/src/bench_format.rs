//! ISCAS `.bench` format reading and writing.
//!
//! The ISCAS-85 circuits the paper evaluates (C432, C880, C2670, …) are
//! customarily distributed in `.bench` format:
//!
//! ```text
//! INPUT(G1)
//! OUTPUT(G17)
//! G10 = NAND(G1, G3)
//! G17 = NOT(G10)
//! ```
//!
//! This module parses that format directly into a mapped [`Netlist`]
//! over the bundled library, so users who have the real benchmark files
//! can run the actual circuits through the flow instead of the
//! synthetic stand-ins.

use crate::library::Library;
use crate::{NetId, Netlist};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Error produced while parsing `.bench` text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBenchError {
    line: usize,
    message: String,
}

impl ParseBenchError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseBenchError { line, message: message.into() }
    }

    /// 1-based line number of the offending line.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseBenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bench parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseBenchError {}

/// Maps a `.bench` primitive and arity onto a library cell name.
///
/// Wide AND/OR/NAND/NOR primitives are legal in `.bench`; arities
/// beyond the library's widest cell are decomposed by the parser.
fn primitive_cell(op: &str, arity: usize) -> Option<String> {
    let name = match (op, arity) {
        ("NOT", 1) => "INV".to_string(),
        ("BUF" | "BUFF", 1) => "BUF".to_string(),
        ("AND" | "NAND" | "OR" | "NOR", 2..=4) => format!("{op}{arity}"),
        ("XOR", 2) => "XOR2".to_string(),
        ("XNOR", 2) => "XNOR2".to_string(),
        _ => return None,
    };
    Some(name)
}

/// Parses ISCAS `.bench` text into a mapped netlist.
///
/// Wide gates are decomposed into trees of the library's 2–4-input
/// cells (inverting forms keep their polarity by splitting into an
/// AND/OR tree plus a final inverting stage). Signals may be used
/// before definition.
///
/// # Errors
///
/// Returns [`ParseBenchError`] on syntax errors, unknown primitives,
/// undefined signals, or cyclic definitions.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use tm_netlist::{bench_format::parse_bench, library::lsi10k_like};
///
/// let src = "\
/// ## a tiny circuit
/// INPUT(a)
/// INPUT(b)
/// OUTPUT(y)
/// t = NAND(a, b)
/// y = NOT(t)
/// ";
/// let nl = parse_bench(src, Arc::new(lsi10k_like()))?;
/// assert_eq!(nl.eval(&[true, true]), vec![true]); // y = a & b
/// # Ok::<(), tm_netlist::bench_format::ParseBenchError>(())
/// ```
pub fn parse_bench(text: &str, library: Arc<Library>) -> Result<Netlist, ParseBenchError> {
    struct RawGate {
        line: usize,
        output: String,
        op: String,
        inputs: Vec<String>,
    }

    let mut input_names = Vec::new();
    let mut output_names = Vec::new();
    let mut gates: Vec<RawGate> = Vec::new();

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = match raw.find('#') {
            Some(p) => &raw[..p],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let upper = line.to_ascii_uppercase();
        if let Some(rest) = upper.strip_prefix("INPUT") {
            let name = extract_parens(rest, line, line_no)?;
            input_names.push(name);
        } else if let Some(rest) = upper.strip_prefix("OUTPUT") {
            let name = extract_parens(rest, line, line_no)?;
            output_names.push(name);
        } else if let Some(eq) = line.find('=') {
            let output = line[..eq].trim().to_string();
            let rhs = line[eq + 1..].trim();
            let open = rhs
                .find('(')
                .ok_or_else(|| ParseBenchError::new(line_no, "expected OP(args)"))?;
            let close = rhs
                .rfind(')')
                .ok_or_else(|| ParseBenchError::new(line_no, "unbalanced parentheses"))?;
            let op = rhs[..open].trim().to_ascii_uppercase();
            let inputs: Vec<String> = rhs[open + 1..close]
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            if inputs.is_empty() {
                return Err(ParseBenchError::new(line_no, "gate with no inputs"));
            }
            gates.push(RawGate { line: line_no, output, op, inputs });
        } else {
            return Err(ParseBenchError::new(line_no, format!("unrecognized line {line:?}")));
        }
    }

    let mut nl = Netlist::new("bench", library.clone());
    let mut net_of: HashMap<String, NetId> = HashMap::new();
    for name in &input_names {
        if net_of.contains_key(name) {
            return Err(ParseBenchError::new(0, format!("duplicate input {name}")));
        }
        net_of.insert(name.clone(), nl.add_input(name.clone()));
    }
    {
        let mut seen = HashMap::new();
        for g in &gates {
            if seen.insert(g.output.clone(), g.line).is_some() {
                return Err(ParseBenchError::new(g.line, format!("signal {} defined twice", g.output)));
            }
        }
    }

    // Emit gates once their fanins are all defined (forward refs ok).
    let mut remaining: Vec<&RawGate> = gates.iter().collect();
    while !remaining.is_empty() {
        let before = remaining.len();
        remaining.retain(|g| {
            if !g.inputs.iter().all(|i| net_of.contains_key(i)) {
                return true;
            }
            let fanins: Vec<NetId> = g.inputs.iter().map(|i| net_of[i]).collect();
            let net = build_primitive(&mut nl, &library, &g.op, &fanins, &g.output);
            match net {
                Some(n) => {
                    net_of.insert(g.output.clone(), n);
                    false
                }
                None => true, // leave in place; flagged below
            }
        });
        if remaining.len() == before {
            let g = remaining[0];
            let msg = if primitive_cell(&g.op, g.inputs.len().min(4)).is_none()
                && !matches!(g.op.as_str(), "AND" | "OR" | "NAND" | "NOR")
            {
                format!("unknown primitive {}", g.op)
            } else {
                "cyclic or undefined signal dependency".to_string()
            };
            return Err(ParseBenchError::new(g.line, msg));
        }
    }

    for name in &output_names {
        match net_of.get(name) {
            Some(&n) => nl.mark_output(n),
            None => return Err(ParseBenchError::new(0, format!("output {name} never defined"))),
        }
    }
    Ok(nl)
}

fn extract_parens(rest: &str, original: &str, line_no: usize) -> Result<String, ParseBenchError> {
    let rest = rest.trim();
    let inner = rest
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| ParseBenchError::new(line_no, format!("malformed declaration {original:?}")))?;
    // Preserve the original case of the signal name.
    let start = original.find('(').expect("checked") + 1;
    let end = original.rfind(')').expect("checked");
    let _ = inner;
    Ok(original[start..end].trim().to_string())
}

/// Builds one `.bench` primitive, decomposing wide gates into trees.
fn build_primitive(
    nl: &mut Netlist,
    lib: &Arc<Library>,
    op: &str,
    fanins: &[NetId],
    name: &str,
) -> Option<NetId> {
    let arity = fanins.len();
    if let Some(cell) = primitive_cell(op, arity) {
        let id = lib.find(&cell)?;
        return Some(nl.add_gate(id, fanins, name.to_string()));
    }
    // Wide gates: reduce with the non-inverting tree, invert at the end
    // for NAND/NOR. BUF/NOT of wrong arity fall through to None.
    let (tree_op, invert) = match op {
        "AND" => ("AND", false),
        "OR" => ("OR", false),
        "NAND" => ("AND", true),
        "NOR" => ("OR", true),
        _ => return None,
    };
    if arity < 2 {
        return None;
    }
    let mut layer: Vec<NetId> = fanins.to_vec();
    let mut level = 0usize;
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(4));
        for (j, chunk) in layer.chunks(4).enumerate() {
            if chunk.len() == 1 {
                next.push(chunk[0]);
                continue;
            }
            let cell = lib.find(&format!("{tree_op}{}", chunk.len()))?;
            next.push(nl.add_gate(cell, chunk, format!("{name}_t{level}_{j}")));
        }
        layer = next;
        level += 1;
    }
    let out = if invert {
        nl.add_gate(lib.find("INV")?, &[layer[0]], name.to_string())
    } else {
        layer[0]
    };
    Some(out)
}

/// Serializes a mapped netlist to `.bench` text.
///
/// Only possible when every cell maps onto a `.bench` primitive
/// (INV/BUF/AND/OR/NAND/NOR/XOR/XNOR families and constant cells are
/// written as one-gate constructs; AOI/OAI/MUX cells are not
/// representable).
///
/// # Errors
///
/// Returns the offending cell name when a gate has no `.bench`
/// equivalent.
pub fn write_bench(netlist: &Netlist) -> Result<String, String> {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# generated by timemask (tm-netlist): {}", netlist.name());
    for &i in netlist.inputs() {
        let _ = writeln!(out, "INPUT({})", netlist.net_name(i));
    }
    for &o in netlist.outputs() {
        let _ = writeln!(out, "OUTPUT({})", netlist.net_name(o));
    }
    for (_, g) in netlist.gates() {
        let cell = netlist.library().cell(g.cell());
        let base = cell.name().trim_end_matches("_F");
        let op = match base {
            "INV" => "NOT".to_string(),
            "BUF" => "BUFF".to_string(),
            n if n.starts_with("NAND") => "NAND".to_string(),
            n if n.starts_with("NOR") => "NOR".to_string(),
            n if n.starts_with("AND") => "AND".to_string(),
            n if n.starts_with("OR") => "OR".to_string(),
            "XOR2" => "XOR".to_string(),
            "XNOR2" => "XNOR".to_string(),
            other => return Err(format!("cell {other} has no .bench primitive")),
        };
        let args: Vec<&str> = g.inputs().iter().map(|&n| netlist.net_name(n)).collect();
        let _ = writeln!(out, "{} = {}({})", netlist.net_name(g.output()), op, args.join(", "));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::lsi10k_like;

    fn lib() -> Arc<Library> {
        Arc::new(lsi10k_like())
    }

    #[test]
    fn parses_small_circuit() {
        let src = "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nt = AND(a, b)\ny = NOR(t, c)\n";
        let nl = parse_bench(src, lib()).expect("valid");
        for m in 0..8u64 {
            let a = m & 1 != 0;
            let b = m & 2 != 0;
            let c = m & 4 != 0;
            assert_eq!(nl.eval(&[a, b, c]), vec![!((a && b) || c)], "m={m}");
        }
    }

    #[test]
    fn wide_gates_decompose() {
        let src = "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nINPUT(f)\nOUTPUT(y)\ny = NAND(a, b, c, d, e, f)\n";
        let nl = parse_bench(src, lib()).expect("valid");
        for m in 0..64u64 {
            let bits: Vec<bool> = (0..6).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(nl.eval(&bits), vec![m != 63], "m={m}");
        }
    }

    #[test]
    fn forward_references_and_comments() {
        let src = "# header\nINPUT(a)\nOUTPUT(y)\ny = NOT(t)\nt = BUFF(a)\n";
        let nl = parse_bench(src, lib()).expect("valid");
        assert_eq!(nl.eval(&[true]), vec![false]);
    }

    #[test]
    fn errors_are_reported_with_lines() {
        let e = parse_bench("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n", lib()).expect_err("bad op");
        assert_eq!(e.line(), 3);
        assert!(e.to_string().contains("unknown primitive"));
        let e = parse_bench("INPUT(a)\nOUTPUT(y)\n", lib()).expect_err("undefined");
        assert!(e.to_string().contains("never defined"));
        let e = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(z)\nz = NOT(y)\n", lib())
            .expect_err("cycle");
        assert!(e.to_string().contains("cyclic"));
    }

    #[test]
    fn roundtrip_through_bench() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\nt = XOR(a, b)\ny = NAND(t, a)\nz = NOT(t)\n";
        let nl = parse_bench(src, lib()).expect("valid");
        let text = write_bench(&nl).expect("serializable");
        let back = parse_bench(&text, lib()).expect("roundtrip");
        for m in 0..4u64 {
            let bits: Vec<bool> = (0..2).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(nl.eval(&bits), back.eval(&bits), "m={m}");
        }
    }

    #[test]
    fn parsed_circuits_are_structurally_sound() {
        let src = "\
INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\n\
n1 = NAND(a, b)\nn2 = NAND(n1, c)\nn3 = NAND(n2, d)\nn4 = NAND(n3, a)\ny = OR(n4, b)\n";
        let nl = parse_bench(src, lib()).expect("valid");
        assert!(nl.check().is_empty());
        assert_eq!(nl.depth(), 5);
        // (the full SPCF + masking flow on .bench input is exercised in
        // the workspace integration tests)
    }
}
