//! BLIF (Berkeley Logic Interchange Format) reading and writing.
//!
//! BLIF's `.names` construct *is* a technology-independent SOP node, so
//! the natural exchange type is [`SopNetwork`]. The supported subset is
//! the combinational core: `.model`, `.inputs`, `.outputs`, `.names`
//! (single-output cover rows), `.end`, comments and `\` line
//! continuations. Latches and subcircuits are out of scope — the paper's
//! flow operates on combinational blocks between registers.

use crate::sop_network::SopNetwork;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use tm_logic::tt::MAX_TT_VARS;
use tm_logic::{qm, Cube, Sop, TruthTable};

/// Error produced while parsing BLIF text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBlifError {
    line: usize,
    message: String,
}

impl ParseBlifError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseBlifError { line, message: message.into() }
    }

    /// 1-based line number of the offending input line.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseBlifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blif parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseBlifError {}

/// Parses a BLIF document into a [`SopNetwork`].
///
/// Signals may be used before their defining `.names` block appears; a
/// two-pass scheme resolves forward references. Covers with output value
/// `0` (off-set rows) are complemented into on-set covers via exact
/// two-level minimization, so node fanin counts must stay within
/// [`tm_logic::tt::MAX_TT_VARS`].
///
/// # Errors
///
/// Returns [`ParseBlifError`] on malformed syntax, undefined signals,
/// duplicate definitions, cyclic node dependencies, or `.names` blocks
/// with more than [`MAX_TT_VARS`] fanins (the supported subset keeps
/// every node truth-table representable). Arbitrary — including
/// adversarial — input never panics; every rejection carries the
/// 1-based line number of the offending construct.
///
/// # Examples
///
/// ```
/// use tm_netlist::blif::parse_blif;
///
/// let src = "\
/// .model tiny
/// .inputs a b
/// .outputs y
/// .names a b y
/// 11 1
/// .end
/// ";
/// let net = parse_blif(src)?;
/// assert_eq!(net.eval(&[true, true]), vec![true]);
/// assert_eq!(net.eval(&[true, false]), vec![false]);
/// # Ok::<(), tm_netlist::blif::ParseBlifError>(())
/// ```
pub fn parse_blif(text: &str) -> Result<SopNetwork, ParseBlifError> {
    struct RawNames {
        line: usize,
        signals: Vec<String>, // fanins... , output
        rows: Vec<(String, char)>,
    }

    let mut model_name = String::from("unnamed");
    // Names paired with the line of the directive that declared them,
    // so late errors (duplicates, undefined outputs) can point at it.
    let mut input_names: Vec<(usize, String)> = Vec::new();
    let mut output_names: Vec<(usize, String)> = Vec::new();
    let mut names_blocks: Vec<RawNames> = Vec::new();

    // Join continuation lines, tracking original line numbers.
    let mut logical_lines: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let without_comment = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let trimmed = without_comment.trim_end();
        let (content, continued) = match trimmed.strip_suffix('\\') {
            Some(stripped) => (stripped, true),
            None => (trimmed, false),
        };
        match pending.take() {
            Some((start, mut acc)) => {
                acc.push(' ');
                acc.push_str(content);
                if continued {
                    pending = Some((start, acc));
                } else {
                    logical_lines.push((start, acc));
                }
            }
            None => {
                if continued {
                    pending = Some((line_no, content.to_string()));
                } else if !content.trim().is_empty() {
                    logical_lines.push((line_no, content.to_string()));
                }
            }
        }
    }
    if let Some((start, acc)) = pending {
        logical_lines.push((start, acc));
    }

    let mut idx = 0;
    while idx < logical_lines.len() {
        let (line_no, line) = &logical_lines[idx];
        let mut tokens = line.split_whitespace();
        let head = tokens.next().unwrap_or("");
        match head {
            ".model" => {
                model_name = tokens.next().unwrap_or("unnamed").to_string();
                idx += 1;
            }
            ".inputs" => {
                input_names.extend(tokens.map(|t| (*line_no, t.to_string())));
                idx += 1;
            }
            ".outputs" => {
                output_names.extend(tokens.map(|t| (*line_no, t.to_string())));
                idx += 1;
            }
            ".names" => {
                let signals: Vec<String> = tokens.map(str::to_string).collect();
                if signals.is_empty() {
                    return Err(ParseBlifError::new(*line_no, ".names needs at least an output"));
                }
                if signals.len() - 1 > MAX_TT_VARS {
                    return Err(ParseBlifError::new(
                        *line_no,
                        format!(
                            ".names with {} fanins exceeds the supported maximum of {MAX_TT_VARS}",
                            signals.len() - 1
                        ),
                    ));
                }
                let mut rows = Vec::new();
                idx += 1;
                while idx < logical_lines.len() {
                    let (row_line, row) = &logical_lines[idx];
                    if row.trim_start().starts_with('.') {
                        break;
                    }
                    let parts: Vec<&str> = row.split_whitespace().collect();
                    let (plane, out) = match (signals.len() - 1, parts.as_slice()) {
                        (0, [o]) => (String::new(), *o),
                        (_, [p, o]) => ((*p).to_string(), *o),
                        _ => {
                            return Err(ParseBlifError::new(
                                *row_line,
                                format!("malformed cover row {row:?}"),
                            ))
                        }
                    };
                    if plane.len() != signals.len() - 1 {
                        return Err(ParseBlifError::new(
                            *row_line,
                            format!(
                                "cover row width {} does not match {} fanins",
                                plane.len(),
                                signals.len() - 1
                            ),
                        ));
                    }
                    if let Some(bad) = plane.chars().find(|c| !matches!(c, '0' | '1' | '-')) {
                        return Err(ParseBlifError::new(
                            *row_line,
                            format!("invalid cover row character {bad:?} (expected 0, 1, or -)"),
                        ));
                    }
                    let out_char = out.chars().next().unwrap_or('?');
                    if out_char != '0' && out_char != '1' {
                        return Err(ParseBlifError::new(*row_line, "output value must be 0 or 1"));
                    }
                    rows.push((plane, out_char));
                    idx += 1;
                }
                names_blocks.push(RawNames { line: *line_no, signals, rows });
            }
            ".end" => {
                idx += 1;
            }
            ".latch" | ".subckt" | ".gate" => {
                return Err(ParseBlifError::new(
                    *line_no,
                    format!("unsupported construct {head} (combinational subset only)"),
                ));
            }
            _ => {
                return Err(ParseBlifError::new(*line_no, format!("unknown directive {head:?}")));
            }
        }
    }

    // Resolve definition order (forward references allowed): repeatedly
    // emit blocks whose fanins are all defined.
    let mut net = SopNetwork::new(model_name);
    let mut defined: HashMap<String, crate::sop_network::SigId> = HashMap::new();
    for (line, name) in &input_names {
        if defined.contains_key(name) {
            return Err(ParseBlifError::new(*line, format!("duplicate input {name}")));
        }
        defined.insert(name.clone(), net.add_input(name.clone()));
    }

    let mut remaining: Vec<&RawNames> = names_blocks.iter().collect();
    // Duplicate output definitions check.
    {
        let mut seen: HashMap<&str, usize> = HashMap::new();
        for b in &names_blocks {
            let out = b.signals.last().expect("nonempty").as_str();
            if seen.insert(out, b.line).is_some() {
                return Err(ParseBlifError::new(b.line, format!("signal {out} defined twice")));
            }
            if input_names.iter().any(|(_, i)| i == out) {
                return Err(ParseBlifError::new(b.line, format!("signal {out} shadows an input")));
            }
        }
    }

    while !remaining.is_empty() {
        let mut progressed = false;
        remaining.retain(|block| {
            let fanins = &block.signals[..block.signals.len() - 1];
            if !fanins.iter().all(|f| defined.contains_key(f)) {
                return true; // keep for a later pass
            }
            let out_name = block.signals.last().expect("nonempty").clone();
            let arity = fanins.len();
            let fanin_ids = fanins.iter().map(|f| defined[f]).collect::<Vec<_>>();

            let cover = rows_to_cover(arity, &block.rows);
            let sig = net.add_node(out_name.clone(), fanin_ids, cover);
            defined.insert(out_name, sig);
            progressed = true;
            false
        });
        if !remaining.is_empty() && !progressed {
            let b = remaining[0];
            return Err(ParseBlifError::new(
                b.line,
                "cyclic or undefined signal dependency in .names blocks",
            ));
        }
    }

    let mut marked: HashMap<&str, usize> = HashMap::new();
    for (line, name) in &output_names {
        if marked.insert(name.as_str(), *line).is_some() {
            return Err(ParseBlifError::new(*line, format!("output {name} listed twice")));
        }
        match defined.get(name) {
            Some(&sig) => net.mark_output(sig),
            None => {
                return Err(ParseBlifError::new(*line, format!("output {name} never defined")));
            }
        }
    }
    Ok(net)
}

fn rows_to_cover(arity: usize, rows: &[(String, char)]) -> Sop {
    let mut on_rows: Vec<Cube> = Vec::new();
    let mut off_rows: Vec<Cube> = Vec::new();
    for (plane, out) in rows {
        let mut lits: Vec<(usize, bool)> = Vec::new();
        for (pos, ch) in plane.chars().enumerate() {
            match ch {
                '1' => lits.push((pos, true)),
                '0' => lits.push((pos, false)),
                _ => {}
            }
        }
        let cube = Cube::from_literals(arity.max(1), &lits);
        if *out == '1' {
            on_rows.push(cube);
        } else {
            off_rows.push(cube);
        }
    }
    if !off_rows.is_empty() {
        // Off-set rows define the complement; on-set = NOT(union of rows).
        let off = TruthTable::from_sop(arity, &Sop::from_cubes(arity, off_rows));
        qm::minimize(&!&off, &TruthTable::zero(arity))
    } else {
        Sop::from_cubes(arity, on_rows)
    }
}

/// Serializes a [`SopNetwork`] to BLIF text.
///
/// The output round-trips through [`parse_blif`] to an equivalent
/// network (same interface and behaviour).
pub fn write_blif(net: &SopNetwork) -> String {
    let mut out = String::new();
    out.push_str(&format!(".model {}\n", net.name()));
    out.push_str(".inputs");
    for &i in net.inputs() {
        out.push_str(&format!(" {}", net.sig_name(i)));
    }
    out.push('\n');
    out.push_str(".outputs");
    for &o in net.outputs() {
        out.push_str(&format!(" {}", net.sig_name(o)));
    }
    out.push('\n');
    for sig in net.node_sigs() {
        let node = net.node_of(sig).expect("node sig");
        out.push_str(".names");
        for &f in node.inputs() {
            out.push_str(&format!(" {}", net.sig_name(f)));
        }
        out.push_str(&format!(" {}\n", net.sig_name(sig)));
        let arity = node.inputs().len();
        for cube in node.cover().cubes() {
            let mut plane = String::with_capacity(arity);
            for pos in 0..arity {
                plane.push(match cube.literal(pos) {
                    Some(true) => '1',
                    Some(false) => '0',
                    None => '-',
                });
            }
            if arity == 0 {
                out.push_str("1\n");
            } else {
                out.push_str(&format!("{plane} 1\n"));
            }
        }
        if node.cover().is_empty() {
            // Constant-zero node: BLIF convention is an empty cover, which
            // is exactly "no rows" — nothing to emit.
        }
    }
    out.push_str(".end\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_and() {
        let net = parse_blif(".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n")
            .expect("valid blif");
        assert_eq!(net.inputs().len(), 2);
        assert_eq!(net.eval(&[true, true]), vec![true]);
        assert_eq!(net.eval(&[false, true]), vec![false]);
    }

    #[test]
    fn parse_dontcare_rows_and_comments() {
        let src = "# comment\n.model m\n.inputs a b c\n.outputs y\n.names a b c y\n1-1 1\n01- 1\n.end\n";
        let net = parse_blif(src).expect("valid");
        for m in 0..8u64 {
            let a = m & 1 != 0;
            let b = m & 2 != 0;
            let c = m & 4 != 0;
            let expect = (a && c) || (!a && b);
            assert_eq!(net.eval(&[a, b, c]), vec![expect], "m={m}");
        }
    }

    #[test]
    fn parse_offset_rows() {
        // y defined by its off-set: y=0 iff a=1,b=1 → y = NAND.
        let src = ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 0\n.end\n";
        let net = parse_blif(src).expect("valid");
        assert_eq!(net.eval(&[true, true]), vec![false]);
        assert_eq!(net.eval(&[true, false]), vec![true]);
    }

    #[test]
    fn parse_forward_references() {
        let src = ".model m\n.inputs a b\n.outputs y\n.names t y\n1 1\n.names a b t\n11 1\n.end\n";
        let net = parse_blif(src).expect("forward refs resolve");
        assert_eq!(net.eval(&[true, true]), vec![true]);
    }

    #[test]
    fn parse_line_continuation() {
        let src = ".model m\n.inputs a \\\nb\n.outputs y\n.names a b y\n11 1\n.end\n";
        let net = parse_blif(src).expect("continuation");
        assert_eq!(net.inputs().len(), 2);
    }

    #[test]
    fn constant_nodes() {
        let src = ".model m\n.inputs a\n.outputs one zero\n.names one\n1\n.names zero\n.end\n";
        let net = parse_blif(src).expect("constants");
        assert_eq!(net.eval(&[false]), vec![true, false]);
    }

    #[test]
    fn errors_have_line_numbers() {
        let err = parse_blif(".model m\n.inputs a\n.outputs y\n.names a y\n12 1\n.end\n")
            .expect_err("bad row");
        assert_eq!(err.line(), 5);
        let err = parse_blif(".model m\n.latch a b\n.end\n").expect_err("latch");
        assert!(err.to_string().contains("unsupported"));
        let err = parse_blif(".model m\n.inputs a\n.outputs y\n.end\n").expect_err("undefined");
        assert!(err.to_string().contains("never defined"));
    }

    #[test]
    fn degenerate_inputs_are_errors_not_panics() {
        // Empty .names (no signals at all).
        let err = parse_blif(".model m\n.inputs a\n.outputs y\n.names\n.end\n")
            .expect_err("empty names");
        assert_eq!(err.line(), 4);
        // Duplicate .outputs entry used to trip a mark_output assert.
        let err = parse_blif(".model m\n.inputs a\n.outputs y y\n.names a y\n1 1\n.end\n")
            .expect_err("duplicate output");
        assert_eq!(err.line(), 3);
        assert!(err.to_string().contains("listed twice"));
        // Undefined output now points at the .outputs directive.
        let err = parse_blif(".model m\n.inputs a\n.outputs ghost\n.end\n")
            .expect_err("undefined output");
        assert_eq!(err.line(), 3);
        // Duplicate input points at the .inputs directive.
        let err = parse_blif(".model m\n.inputs a a\n.outputs a\n.end\n")
            .expect_err("duplicate input");
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn oversized_names_block_rejected() {
        // 21 fanins would overflow the truth-table limit during off-set
        // complementation; reject at parse time with the .names line.
        let fanins: Vec<String> = (0..21).map(|i| format!("x{i}")).collect();
        let src = format!(
            ".model m\n.inputs {}\n.outputs y\n.names {} y\n{} 0\n.end\n",
            fanins.join(" "),
            fanins.join(" "),
            "1".repeat(21)
        );
        let err = parse_blif(&src).expect_err("too many fanins");
        assert_eq!(err.line(), 4);
        assert!(err.to_string().contains("exceeds the supported maximum"));
    }

    #[test]
    fn invalid_plane_character_rejected() {
        let err = parse_blif(".model m\n.inputs a b\n.outputs y\n.names a b y\n1x 1\n.end\n")
            .expect_err("bad plane char");
        assert_eq!(err.line(), 5);
        assert!(err.to_string().contains("'x'"));
    }

    #[test]
    fn duplicate_definition_rejected() {
        let src = ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.names a y\n0 1\n.end\n";
        assert!(parse_blif(src).is_err());
    }

    #[test]
    fn cycle_detected() {
        let src = ".model m\n.inputs a\n.outputs y\n.names z y\n1 1\n.names y z\n1 1\n.end\n";
        let err = parse_blif(src).expect_err("cycle");
        assert!(err.to_string().contains("cyclic"));
    }

    #[test]
    fn roundtrip() {
        let src = ".model rt\n.inputs a b c\n.outputs y z\n.names a b t\n11 1\n00 1\n.names t c y\n1- 1\n-1 1\n.names a z\n0 1\n.end\n";
        let net = parse_blif(src).expect("valid");
        let text = write_blif(&net);
        let net2 = parse_blif(&text).expect("roundtrip parses");
        for m in 0..8u64 {
            let a: Vec<bool> = (0..3).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(net.eval(&a), net2.eval(&a), "m={m}");
        }
    }
}
