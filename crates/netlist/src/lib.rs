//! Gate-level netlists, cell libraries, and circuit construction for the
//! `timemask` workspace.
//!
//! This crate is the structural substrate of the reproduction of
//! Choudhury & Mohanram, *"Masking timing errors on speed-paths in logic
//! circuits"* (DATE 2009):
//!
//! - [`library`]: standard cells with area/delay/power; the bundled
//!   [`library::lsi10k_like`] library stands in for Synopsys `lsi_10k`.
//! - [`netlist`]: technology-mapped combinational netlists.
//! - [`sop_network`]: technology-independent networks of complex SOP
//!   nodes — the starting representation of the paper's synthesis (§4.1).
//! - [`extract`] / [`map`]: conversions between the two representations
//!   (partial collapse, technology mapping).
//! - [`blif`]: BLIF I/O for SOP networks; [`bench_format`]: ISCAS
//!   `.bench` I/O for mapped netlists (run the *real* benchmark files
//!   when you have them); [`verilog`]: structural Verilog export.
//! - [`circuits`]: exactly-specified reference circuits, including the
//!   paper's Fig. 2 comparator.
//! - [`generate`] / [`suites`]: the deterministic synthetic benchmark
//!   suites standing in for the paper's ISCAS-85/OpenSPARC evaluation
//!   circuits (see `DESIGN.md` for the substitution argument).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use tm_netlist::{circuits::comparator2, extract::{extract, ExtractOptions}, library::lsi10k_like};
//!
//! let lib = Arc::new(lsi10k_like());
//! let mapped = comparator2(lib);
//! assert_eq!(mapped.depth(), 4); // b0 → INV → OR2 → AND2 → OR2 → y
//!
//! // Lift back to a technology-independent network.
//! let net = extract(&mapped, ExtractOptions::default());
//! assert_eq!(net.eval(&[false, true, true, false]), vec![true]); // 2 >= 1
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench_format;
pub mod blif;
pub mod circuits;
pub mod cleanup;
pub mod extract;
pub mod generate;
pub mod library;
pub mod map;
pub mod netlist;
pub mod sop_network;
pub mod suites;
pub mod types;
pub mod verilog;

pub use library::{Cell, Library};
pub use netlist::{Driver, Gate, Netlist};
pub use sop_network::{SigId, SigKind, SopNetwork};
pub use types::{CellId, Delay, GateId, NetId};
