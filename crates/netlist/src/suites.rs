//! Benchmark suites mirroring the paper's evaluation circuits.
//!
//! The paper evaluates on MCNC/ISCAS-85 benchmarks and OpenSPARC T1
//! modules (Tables 1 and 2). The original netlists are not distributed
//! here, so each row is reproduced as a *synthetic stand-in* with the
//! same name, the paper's reported input/output counts, and a gate
//! budget matching the reported size (see `DESIGN.md` §3 for why this
//! preserves the evaluation's shape). Generation is deterministic, so
//! every run of the harness sees identical circuits.

use crate::generate::{generate, GeneratorSpec};
use crate::library::Library;
use crate::netlist::Netlist;
use std::sync::Arc;

/// One evaluation circuit: the paper's reported interface plus our
/// generator parameters.
#[derive(Clone, Debug)]
pub struct SuiteEntry {
    /// Circuit name as printed in the paper.
    pub name: &'static str,
    /// Paper-reported primary input count.
    pub inputs: usize,
    /// Paper-reported primary output count.
    pub outputs: usize,
    /// Paper-reported size (gate count for Table 2, area for Table 1).
    pub paper_gates: usize,
}

impl SuiteEntry {
    const fn new(name: &'static str, inputs: usize, outputs: usize, paper_gates: usize) -> Self {
        SuiteEntry { name, inputs, outputs, paper_gates }
    }

    /// Builds the deterministic stand-in netlist for this entry.
    pub fn build(&self, library: Arc<Library>) -> Netlist {
        let mut spec =
            GeneratorSpec::sized(self.name, self.inputs, self.outputs, self.paper_gates);
        // One fixed seed per circuit name so stand-ins are stable across
        // suites and releases.
        spec.seed = self
            .name
            .bytes()
            .fold(0xDA7E_2009_u64, |acc, b| acc.rotate_left(8) ^ b as u64);
        // Keep at least a couple of engineered speed chains on every
        // circuit so near-critical paths always exist.
        spec.speed_chains = spec.speed_chains.max(2);
        generate(&spec, library)
    }
}

/// The five circuits of Table 1 (SPCF accuracy vs runtime).
pub fn table1_suite() -> Vec<SuiteEntry> {
    vec![
        SuiteEntry::new("C432", 36, 7, 147),
        SuiteEntry::new("C2670", 233, 140, 568),
        SuiteEntry::new("sparc_ifu_dec", 131, 146, 887),
        SuiteEntry::new("sparc_ifu_invctl", 173, 115, 442),
        SuiteEntry::new("lsu_stb_ctl", 182, 169, 810),
    ]
}

/// The twenty circuits of Table 2 (area/power overhead of masking).
pub fn table2_suite() -> Vec<SuiteEntry> {
    vec![
        SuiteEntry::new("i1", 25, 16, 33),
        SuiteEntry::new("cmb", 16, 4, 13),
        SuiteEntry::new("x2", 10, 7, 26),
        SuiteEntry::new("cu", 14, 11, 26),
        SuiteEntry::new("too_large", 38, 3, 230),
        SuiteEntry::new("k2", 45, 45, 649),
        SuiteEntry::new("alu2", 10, 6, 190),
        SuiteEntry::new("alu4", 14, 8, 355),
        SuiteEntry::new("apex4", 9, 19, 973),
        SuiteEntry::new("apex6", 135, 99, 392),
        SuiteEntry::new("frg1", 28, 3, 56),
        SuiteEntry::new("C432", 36, 7, 95),
        SuiteEntry::new("C880", 60, 26, 180),
        SuiteEntry::new("C2670", 233, 140, 369),
        SuiteEntry::new("sparc_ifu_dec", 131, 146, 556),
        SuiteEntry::new("sparc_ifu_invctl", 212, 72, 312),
        SuiteEntry::new("sparc_ifu_ifqdp", 882, 987, 1974),
        SuiteEntry::new("sparc_ifu_dcl", 136, 94, 400),
        SuiteEntry::new("lsu_stb_ctl", 182, 169, 810),
        SuiteEntry::new("sparc_exu_ecl", 572, 634, 1515),
    ]
}

/// A small fast suite for tests and smoke benchmarks (subset of the
/// Table 2 rows with modest sizes).
pub fn smoke_suite() -> Vec<SuiteEntry> {
    vec![
        SuiteEntry::new("i1", 25, 16, 33),
        SuiteEntry::new("cmb", 16, 4, 13),
        SuiteEntry::new("x2", 10, 7, 26),
        SuiteEntry::new("cu", 14, 11, 26),
        SuiteEntry::new("frg1", 28, 3, 56),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::lsi10k_like;

    #[test]
    fn suites_have_paper_rows() {
        assert_eq!(table1_suite().len(), 5);
        assert_eq!(table2_suite().len(), 20);
        let t2 = table2_suite();
        let ifqdp = t2.iter().find(|e| e.name == "sparc_ifu_ifqdp").unwrap();
        assert_eq!((ifqdp.inputs, ifqdp.outputs), (882, 987));
    }

    #[test]
    fn smoke_suite_builds_and_matches_interface() {
        let lib = Arc::new(lsi10k_like());
        for entry in smoke_suite() {
            let nl = entry.build(lib.clone());
            assert_eq!(nl.inputs().len(), entry.inputs, "{}", entry.name);
            assert_eq!(nl.outputs().len(), entry.outputs, "{}", entry.name);
            assert!(nl.check().is_empty(), "{}", entry.name);
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let lib = Arc::new(lsi10k_like());
        let e = &smoke_suite()[0];
        let a = e.build(lib.clone());
        let b = e.build(lib.clone());
        assert_eq!(a.num_gates(), b.num_gates());
        let bits: Vec<bool> = (0..e.inputs).map(|i| i % 3 == 0).collect();
        assert_eq!(a.eval(&bits), b.eval(&bits));
    }

    #[test]
    fn same_name_same_structure_across_suites() {
        // C432 appears in both tables with different size columns; the
        // builds differ in gate budget but share the seed derivation.
        let lib = Arc::new(lsi10k_like());
        let t1_c432 = table1_suite().into_iter().find(|e| e.name == "C432").unwrap();
        let t2_c432 = table2_suite().into_iter().find(|e| e.name == "C432").unwrap();
        let a = t1_c432.build(lib.clone());
        let b = t2_c432.build(lib.clone());
        assert_eq!(a.inputs().len(), b.inputs().len());
    }
}
