//! Technology mapping: SOP networks onto library cells.
//!
//! The mapper is a light stand-in for a commercial synthesis backend
//! (the paper uses Synopsys DC + `lsi_10k`): direct cell matching for
//! small nodes, SOP decomposition with arrival-aware (Huffman-style)
//! AND/OR trees for complex nodes, structural hashing to share logic,
//! and shared input inverters. It is deliberately simple but produces
//! the delay/area trade-offs the evaluation needs.

use crate::library::Library;
use crate::netlist::Netlist;
use crate::sop_network::{SigId, SigKind, SopNetwork};
use crate::types::{Delay, NetId};
use std::collections::HashMap;
use std::sync::Arc;

/// Options controlling technology mapping.
#[derive(Clone, Copy, Debug)]
pub struct MapOptions {
    /// Build arrival-aware trees (earliest-arriving signals combined
    /// deepest) instead of plain balanced trees. On by default; the
    /// difference matters when enforcing the masking circuit's slack.
    pub arrival_aware: bool,
    /// Allow wide (3- and 4-input) AND/OR cells. On by default; turning
    /// it off forces 2-input trees (useful in ablations).
    pub wide_gates: bool,
}

impl Default for MapOptions {
    fn default() -> Self {
        MapOptions { arrival_aware: true, wide_gates: true }
    }
}

struct Mapper<'a> {
    lib: Arc<Library>,
    netlist: Netlist,
    options: MapOptions,
    /// Structural hashing: (cell, inputs) → existing output net.
    strash: HashMap<(crate::types::CellId, Vec<NetId>), NetId>,
    /// Shared inverters per source net.
    inverters: HashMap<NetId, NetId>,
    /// Arrival estimate per net (library units).
    arrival: Vec<Delay>,
    counter: usize,
    prefix: &'a str,
}

impl<'a> Mapper<'a> {
    fn fresh_name(&mut self, tag: &str) -> String {
        self.counter += 1;
        format!("{}{}_{}", self.prefix, tag, self.counter)
    }

    fn arrival_of(&self, net: NetId) -> Delay {
        self.arrival.get(net.index()).copied().unwrap_or(Delay::ZERO)
    }

    fn add_gate(&mut self, cell_name: &str, inputs: &[NetId], tag: &str) -> NetId {
        let cell = self.lib.expect(cell_name);
        let key = (cell, inputs.to_vec());
        if let Some(&net) = self.strash.get(&key) {
            return net;
        }
        let name = self.fresh_name(tag);
        let out = self.netlist.add_gate(cell, inputs, name);
        let cell_ref = self.lib.cell(cell);
        let mut arr = Delay::ZERO;
        for (pin, &i) in inputs.iter().enumerate() {
            arr = arr.max(self.arrival_of(i) + cell_ref.pin_delay(pin));
        }
        if self.arrival.len() <= out.index() {
            self.arrival.resize(out.index() + 1, Delay::ZERO);
        }
        self.arrival[out.index()] = arr;
        self.strash.insert(key, out);
        out
    }

    fn invert(&mut self, net: NetId) -> NetId {
        if let Some(&inv) = self.inverters.get(&net) {
            return inv;
        }
        let out = self.add_gate("INV", &[net], "inv");
        self.inverters.insert(net, out);
        out
    }

    /// Builds an AND/OR tree over `nets` using 2–4-input cells,
    /// combining earliest-arriving operands first when arrival-aware.
    fn tree(&mut self, kind: &str, mut nets: Vec<NetId>, tag: &str) -> NetId {
        assert!(!nets.is_empty(), "empty tree");
        let max_width = if self.options.wide_gates { 4 } else { 2 };
        while nets.len() > 1 {
            if self.options.arrival_aware {
                // Latest last so we pop the earliest.
                nets.sort_by(|&a, &b| {
                    self.arrival_of(b)
                        .units()
                        .total_cmp(&self.arrival_of(a).units())
                });
            }
            let take = nets.len().min(max_width).max(2);
            let group: Vec<NetId> = nets.split_off(nets.len() - take);
            let cell = format!("{kind}{}", group.len());
            let out = self.add_gate(&cell, &group, tag);
            nets.push(out);
        }
        nets[0]
    }

    fn buffer(&mut self, net: NetId) -> NetId {
        self.add_gate("BUF", &[net], "buf")
    }
}

/// Maps a technology-independent network onto library cells.
///
/// The result has the same primary-input order and one primary output
/// per network output, in order, computing the same functions.
///
/// # Panics
///
/// Panics if the library lacks the base cells (`INV`, `BUF`,
/// `AND2`/`OR2` families, `TIE0`, `TIE1`), as when given an empty
/// custom library.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use tm_logic::{cube::Cube, sop::Sop};
/// use tm_netlist::{library::lsi10k_like, map::{tech_map, MapOptions}, sop_network::SopNetwork};
///
/// let mut net = SopNetwork::new("m");
/// let a = net.add_input("a");
/// let b = net.add_input("b");
/// let y = net.add_node("y", vec![a, b], Sop::from_cubes(2, vec![
///     Cube::from_literals(2, &[(0, true)]),
///     Cube::from_literals(2, &[(1, true)]),
/// ]));
/// net.mark_output(y);
///
/// let nl = tech_map(&net, Arc::new(lsi10k_like()), MapOptions::default());
/// assert_eq!(nl.eval(&[false, true]), vec![true]);
/// ```
pub fn tech_map(net: &SopNetwork, library: Arc<Library>, options: MapOptions) -> Netlist {
    let netlist = Netlist::new(net.name().to_string(), library.clone());
    let mut mapper = Mapper {
        lib: library,
        netlist,
        options,
        strash: HashMap::new(),
        inverters: HashMap::new(),
        arrival: Vec::new(),
        counter: 0,
        prefix: "m_",
    };

    let mut net_of: HashMap<SigId, NetId> = HashMap::new();
    for &pi in net.inputs() {
        let n = mapper.netlist.add_input(net.sig_name(pi).to_string());
        if mapper.arrival.len() <= n.index() {
            mapper.arrival.resize(n.index() + 1, Delay::ZERO);
        }
        net_of.insert(pi, n);
    }

    for sig in net.node_sigs() {
        let node = net.node_of(sig).expect("node sig");
        let fanin_nets: Vec<NetId> = node.inputs().iter().map(|f| net_of[f]).collect();
        let out = map_node(&mut mapper, node.cover(), &fanin_nets);
        net_of.insert(sig, out);
    }

    for &o in net.outputs() {
        let mut n = net_of[&o];
        // An output may alias an input or another output net (structural
        // hashing merges identical logic); buffer until each output role
        // has its own net. Chained buffering terminates because each
        // round produces a strictly newer net.
        if matches!(net.kind(o), SigKind::Input) {
            n = mapper.buffer(n);
        }
        while mapper.netlist.outputs().contains(&n) {
            n = mapper.buffer(n);
        }
        mapper.netlist.mark_output(n);
    }
    mapper.netlist
}

fn map_node(mapper: &mut Mapper<'_>, cover: &tm_logic::Sop, fanins: &[NetId]) -> NetId {
    // Constants.
    if cover.is_empty() {
        return mapper.add_gate("TIE0", &[], "tie0");
    }
    if cover.cubes().iter().any(|c| c.literal_count() == 0) {
        return mapper.add_gate("TIE1", &[], "tie1");
    }

    // Small nodes: try an exact cell match over the truth table.
    if !fanins.is_empty() && fanins.len() <= 4 {
        let tt = tm_logic::TruthTable::from_sop(fanins.len(), cover);
        if let Some(cell) = mapper.lib.match_function(&tt) {
            let name = mapper.lib.cell(cell).name().to_string();
            // Skip TIE matches handled above; direct instantiation.
            return mapper.add_gate(&name, fanins, "cell");
        }
    }

    // General SOP decomposition.
    let mut product_nets: Vec<NetId> = Vec::with_capacity(cover.len());
    for cube in cover.cubes() {
        let mut literal_nets: Vec<NetId> = Vec::new();
        for (pos, pol) in cube.literals() {
            let base = fanins[pos];
            literal_nets.push(if pol { base } else { mapper.invert(base) });
        }
        let product = if literal_nets.len() == 1 {
            literal_nets[0]
        } else {
            mapper.tree("AND", literal_nets, "and")
        };
        product_nets.push(product);
    }
    if product_nets.len() == 1 {
        let single = product_nets[0];
        // A bare wire cannot be a node output if it aliases a fanin:
        // buffer single-literal identity functions.
        if fanins.contains(&single) {
            return mapper.buffer(single);
        }
        return single;
    }
    mapper.tree("OR", product_nets, "or")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::lsi10k_like;
    use tm_logic::{Cube, Sop};

    fn map_and_check(net: &SopNetwork, options: MapOptions) -> Netlist {
        let nl = tech_map(net, Arc::new(lsi10k_like()), options);
        assert!(nl.check().is_empty(), "structural problems: {:?}", nl.check());
        let n = net.inputs().len();
        assert!(n <= 12);
        for m in 0..(1u64 << n) {
            let a: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(net.eval(&a), nl.eval(&a), "mismatch at {m:#b}");
        }
        nl
    }

    #[test]
    fn maps_simple_or() {
        let mut net = SopNetwork::new("o");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let y = net.add_node(
            "y",
            vec![a, b],
            Sop::from_cubes(2, vec![
                Cube::from_literals(2, &[(0, true)]),
                Cube::from_literals(2, &[(1, true)]),
            ]),
        );
        net.mark_output(y);
        let nl = map_and_check(&net, MapOptions::default());
        // Exact OR2 match: one gate.
        assert_eq!(nl.num_gates(), 1);
    }

    #[test]
    fn maps_xor_via_cell_match() {
        let mut net = SopNetwork::new("x");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let y = net.add_node(
            "y",
            vec![a, b],
            Sop::from_cubes(2, vec![
                Cube::from_literals(2, &[(0, true), (1, false)]),
                Cube::from_literals(2, &[(0, false), (1, true)]),
            ]),
        );
        net.mark_output(y);
        let nl = map_and_check(&net, MapOptions::default());
        assert_eq!(nl.num_gates(), 1);
        let (_, g) = nl.gates().next().unwrap();
        assert_eq!(nl.library().cell(g.cell()).name(), "XOR2");
    }

    #[test]
    fn maps_complex_sop() {
        let mut net = SopNetwork::new("c");
        let sigs: Vec<SigId> = (0..6).map(|i| net.add_input(format!("x{i}"))).collect();
        // y = x0x1x2' + x3x4 + x5'
        let y = net.add_node(
            "y",
            sigs.clone(),
            Sop::from_cubes(6, vec![
                Cube::from_literals(6, &[(0, true), (1, true), (2, false)]),
                Cube::from_literals(6, &[(3, true), (4, true)]),
                Cube::from_literals(6, &[(5, false)]),
            ]),
        );
        net.mark_output(y);
        map_and_check(&net, MapOptions::default());
        map_and_check(&net, MapOptions { wide_gates: false, arrival_aware: false });
    }

    #[test]
    fn constant_nodes_map_to_ties() {
        let mut net = SopNetwork::new("k");
        let _a = net.add_input("a");
        let one = net.add_node("one", vec![], Sop::one(0));
        let zero = net.add_node("zero", vec![], Sop::zero(0));
        net.mark_output(one);
        net.mark_output(zero);
        let nl = map_and_check(&net, MapOptions::default());
        assert_eq!(nl.num_gates(), 2);
    }

    #[test]
    fn identity_node_buffers() {
        let mut net = SopNetwork::new("w");
        let a = net.add_input("a");
        let y = net.add_node(
            "y",
            vec![a],
            Sop::from_cubes(1, vec![Cube::from_literals(1, &[(0, true)])]),
        );
        net.mark_output(y);
        let nl = map_and_check(&net, MapOptions::default());
        assert!(nl.num_gates() >= 1);
    }

    #[test]
    fn duplicate_output_functions_get_distinct_nets() {
        // Two outputs with identical covers: structural hashing merges
        // the logic, so the mapper must buffer to keep one net per
        // output role.
        let mut net = SopNetwork::new("dupout");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let cover = Sop::from_cubes(2, vec![Cube::from_literals(2, &[(0, true), (1, true)])]);
        let y = net.add_node("y", vec![a, b], cover.clone());
        let z = net.add_node("z", vec![a, b], cover);
        net.mark_output(y);
        net.mark_output(z);
        let nl = map_and_check(&net, MapOptions::default());
        assert_eq!(nl.outputs().len(), 2);
        assert_ne!(nl.outputs()[0], nl.outputs()[1]);
    }

    #[test]
    fn pi_output_buffers() {
        let mut net = SopNetwork::new("pio");
        let a = net.add_input("a");
        net.mark_output(a);
        let nl = map_and_check(&net, MapOptions::default());
        assert_eq!(nl.num_gates(), 1);
    }

    #[test]
    fn inverters_are_shared() {
        let mut net = SopNetwork::new("share");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        // Two nodes both using !a; the inverter should be built once.
        let y = net.add_node(
            "y",
            vec![a, b],
            Sop::from_cubes(2, vec![Cube::from_literals(2, &[(0, false), (1, true)])]),
        );
        let z = net.add_node(
            "z",
            vec![a, c],
            Sop::from_cubes(2, vec![Cube::from_literals(2, &[(0, false), (1, false)])]),
        );
        net.mark_output(y);
        net.mark_output(z);
        let nl = map_and_check(&net, MapOptions::default());
        let inv_count = nl
            .gates()
            .filter(|(_, g)| nl.library().cell(g.cell()).name() == "INV")
            .count();
        // z = !a & !c matches NOR2 exactly; y needs !a explicitly: at most
        // 1 INV of a (sharing would matter with more uses, but never 2 of
        // the same net).
        assert!(inv_count <= 2);
    }

    #[test]
    fn arrival_aware_tree_is_no_deeper() {
        let mut net = SopNetwork::new("deep");
        let sigs: Vec<SigId> = (0..9).map(|i| net.add_input(format!("x{i}"))).collect();
        let cube = Cube::from_literals(9, &(0..9).map(|i| (i, true)).collect::<Vec<_>>());
        let y = net.add_node("y", sigs, Sop::from_cubes(9, vec![cube]));
        net.mark_output(y);
        let wide = map_and_check(&net, MapOptions::default());
        let narrow = map_and_check(&net, MapOptions { wide_gates: false, arrival_aware: true });
        assert!(wide.depth() <= narrow.depth());
    }
}
