//! Domain newtypes shared across the workspace: delays, identifiers.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A circuit delay in abstract library time units.
///
/// The bundled `lsi10k`-like library uses the unit scale of the paper's
/// worked example (inverter = 1.0, two-input gate = 2.0). Delays are
/// ordinary floating-point quantities with arithmetic; [`Delay::quantize`]
/// produces an integer key in femto-units for use in memo tables.
///
/// # Examples
///
/// ```
/// use tm_netlist::Delay;
///
/// let d = Delay::new(2.0) + Delay::new(1.0);
/// assert_eq!(d, Delay::new(3.0));
/// assert!(d * 0.9 < d);
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Delay(f64);

impl Delay {
    /// Zero delay.
    pub const ZERO: Delay = Delay(0.0);

    /// A delay no real path can exceed; used as an "unreached" sentinel.
    pub const NEG_INFINITY: Delay = Delay(f64::NEG_INFINITY);

    /// Wraps a raw value in library time units.
    ///
    /// # Panics
    ///
    /// Panics if the value is NaN.
    pub fn new(units: f64) -> Self {
        assert!(!units.is_nan(), "delay cannot be NaN");
        Delay(units)
    }

    /// Const constructor for compile-time delay constants (no NaN
    /// check; use [`Delay::new`] for runtime values).
    pub const fn from_units_const(units: f64) -> Self {
        Delay(units)
    }

    /// The raw value in library time units.
    pub fn units(self) -> f64 {
        self.0
    }

    /// Integer femto-unit key (value × 10⁶, rounded); used for exact
    /// memoization of timed recursions.
    pub fn quantize(self) -> i64 {
        (self.0 * 1e6).round() as i64
    }

    /// Reconstructs a delay from a [`Delay::quantize`] key.
    pub fn from_quantized(key: i64) -> Self {
        Delay(key as f64 / 1e6)
    }

    /// Element-wise maximum.
    pub fn max(self, other: Delay) -> Delay {
        Delay(self.0.max(other.0))
    }

    /// Element-wise minimum.
    pub fn min(self, other: Delay) -> Delay {
        Delay(self.0.min(other.0))
    }

    /// Whether the delay is a finite number.
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl Add for Delay {
    type Output = Delay;
    fn add(self, rhs: Delay) -> Delay {
        Delay(self.0 + rhs.0)
    }
}

impl AddAssign for Delay {
    fn add_assign(&mut self, rhs: Delay) {
        self.0 += rhs.0;
    }
}

impl Sub for Delay {
    type Output = Delay;
    fn sub(self, rhs: Delay) -> Delay {
        Delay(self.0 - rhs.0)
    }
}

impl Mul<f64> for Delay {
    type Output = Delay;
    fn mul(self, rhs: f64) -> Delay {
        Delay(self.0 * rhs)
    }
}

impl Div<Delay> for Delay {
    type Output = f64;
    fn div(self, rhs: Delay) -> f64 {
        self.0 / rhs.0
    }
}

impl Neg for Delay {
    type Output = Delay;
    fn neg(self) -> Delay {
        Delay(-self.0)
    }
}

impl Sum for Delay {
    fn sum<I: Iterator<Item = Delay>>(iter: I) -> Delay {
        Delay(iter.map(|d| d.0).sum())
    }
}

impl fmt::Debug for Delay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}u", self.0)
    }
}

impl fmt::Display for Delay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

/// Identifier of a net (signal) within a [`crate::netlist::Netlist`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// Raw index into the netlist's net arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NetId` from a raw index (for deserialization and tests;
    /// validity is checked by the netlist on use).
    pub fn from_index(index: usize) -> Self {
        NetId(index as u32)
    }
}

impl fmt::Debug for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a gate instance within a [`crate::netlist::Netlist`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GateId(pub(crate) u32);

impl GateId {
    /// Raw index into the netlist's gate arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `GateId` from a raw index.
    pub fn from_index(index: usize) -> Self {
        GateId(index as u32)
    }
}

impl fmt::Debug for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Identifier of a cell in a [`crate::library::Library`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub(crate) u32);

impl CellId {
    /// Raw index into the library's cell list.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_arithmetic() {
        let a = Delay::new(1.5);
        let b = Delay::new(2.5);
        assert_eq!(a + b, Delay::new(4.0));
        assert_eq!(b - a, Delay::new(1.0));
        assert_eq!(a * 2.0, Delay::new(3.0));
        assert!((b / a - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(-a, Delay::new(-1.5));
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn delay_quantization_roundtrip() {
        for v in [0.0, 1.0, 6.3, 0.9 * 7.0, 123.456789] {
            let d = Delay::new(v);
            let q = d.quantize();
            assert!((Delay::from_quantized(q) - d).units().abs() < 1e-6);
        }
        // Quantization is injective on distinct realistic delays.
        assert_ne!(Delay::new(6.3).quantize(), Delay::new(6.300001).quantize());
    }

    #[test]
    fn delay_sum() {
        let total: Delay = [1.0, 2.0, 3.0].into_iter().map(Delay::new).sum();
        assert_eq!(total, Delay::new(6.0));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Delay::new(f64::NAN);
    }

    #[test]
    fn id_debug_formats() {
        assert_eq!(format!("{:?}", NetId(3)), "n3");
        assert_eq!(format!("{:?}", GateId(7)), "g7");
        assert_eq!(format!("{:?}", CellId(1)), "c1");
    }
}
