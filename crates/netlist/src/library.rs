//! Standard-cell libraries: cell functions, area, delay, and power.
//!
//! The paper maps benchmarks with the Synopsys `lsi_10k` library; we
//! provide [`lsi10k_like`], a self-contained stand-in whose *relative*
//! area/delay/power figures drive the same evaluation. Delays follow the
//! paper's worked comparator example (§4.2): an inverter costs 1 unit,
//! two-input gates cost 2.

use crate::types::{CellId, Delay};
use std::fmt;
use tm_logic::TruthTable;

/// A standard cell: a named Boolean function with physical attributes.
#[derive(Clone)]
pub struct Cell {
    name: String,
    function: TruthTable,
    area: f64,
    /// Dynamic energy per output transition (abstract units).
    switch_power: f64,
    /// Pin-to-output delay for each input pin.
    pin_delays: Vec<Delay>,
}

impl Cell {
    /// Creates a cell.
    ///
    /// # Panics
    ///
    /// Panics if `pin_delays.len()` differs from the function's input
    /// count.
    pub fn new(
        name: impl Into<String>,
        function: TruthTable,
        area: f64,
        switch_power: f64,
        pin_delays: Vec<Delay>,
    ) -> Self {
        assert_eq!(
            pin_delays.len(),
            function.num_vars(),
            "pin delay count must match function arity"
        );
        Cell { name: name.into(), function, area, switch_power, pin_delays }
    }

    /// Cell name (e.g. `"NAND2"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cell's Boolean function over its input pins.
    pub fn function(&self) -> &TruthTable {
        &self.function
    }

    /// Number of input pins.
    pub fn num_inputs(&self) -> usize {
        self.function.num_vars()
    }

    /// Cell area (abstract units).
    pub fn area(&self) -> f64 {
        self.area
    }

    /// Dynamic energy per output transition.
    pub fn switch_power(&self) -> f64 {
        self.switch_power
    }

    /// Pin-to-output delay of input pin `pin`.
    ///
    /// # Panics
    ///
    /// Panics if `pin` is out of range.
    pub fn pin_delay(&self, pin: usize) -> Delay {
        self.pin_delays[pin]
    }

    /// Worst (maximum) pin-to-output delay.
    pub fn max_delay(&self) -> Delay {
        self.pin_delays.iter().copied().fold(Delay::ZERO, Delay::max)
    }
}

impl fmt::Debug for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cell({}, {} pins, area {})", self.name, self.num_inputs(), self.area)
    }
}

/// A collection of cells addressable by [`CellId`] or name.
#[derive(Clone, Debug, Default)]
pub struct Library {
    name: String,
    cells: Vec<Cell>,
}

impl Library {
    /// An empty library with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Library { name: name.into(), cells: Vec::new() }
    }

    /// Library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a cell and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a cell with the same name already exists.
    pub fn add(&mut self, cell: Cell) -> CellId {
        assert!(
            self.find(cell.name()).is_none(),
            "duplicate cell name {}",
            cell.name()
        );
        let id = CellId(self.cells.len() as u32);
        self.cells.push(cell);
        id
    }

    /// Looks a cell up by name.
    pub fn find(&self, name: &str) -> Option<CellId> {
        self.cells
            .iter()
            .position(|c| c.name == name)
            .map(|i| CellId(i as u32))
    }

    /// Looks a cell up by name, panicking with a helpful message when
    /// absent.
    ///
    /// # Panics
    ///
    /// Panics if no cell has that name.
    pub fn expect(&self, name: &str) -> CellId {
        self.find(name)
            .unwrap_or_else(|| panic!("library {} has no cell named {name}", self.name))
    }

    /// The cell for an id.
    ///
    /// # Panics
    ///
    /// Panics if the id is from a different library.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.0 as usize]
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterates over `(id, cell)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (CellId(i as u32), c))
    }

    /// Finds a cell whose function equals `f` exactly (same pin order),
    /// preferring lower area.
    pub fn match_function(&self, f: &TruthTable) -> Option<CellId> {
        self.iter()
            .filter(|(_, c)| c.function() == f)
            .min_by(|(_, a), (_, b)| a.area().total_cmp(&b.area()))
            .map(|(id, _)| id)
    }

    /// The faster drive-strength variant of a cell, if the library defines
    /// one (by the `_F` name suffix convention).
    pub fn fast_variant(&self, id: CellId) -> Option<CellId> {
        let name = self.cell(id).name();
        if name.ends_with("_F") {
            return None;
        }
        self.find(&format!("{name}_F"))
    }
}

/// Builds the `lsi10k`-like library used throughout the reproduction.
///
/// Unit conventions (paper §4.2): inverter delay 1.0, two-input gate 2.0;
/// wider gates scale by fan-in. Inverting CMOS forms (NAND/NOR/AOI/OAI)
/// are cheaper than their non-inverting counterparts, XORs are expensive —
/// the usual standard-cell shape. Each combinational cell also has an
/// `_F` fast variant (0.65× delay, 1.6× area, 1.4× power) used by the
/// gate-sizing pass that enforces the masking circuit's 20 % slack budget.
///
/// # Examples
///
/// ```
/// use tm_netlist::library::lsi10k_like;
///
/// let lib = lsi10k_like();
/// let nand2 = lib.cell(lib.expect("NAND2"));
/// assert_eq!(nand2.num_inputs(), 2);
/// assert_eq!(nand2.pin_delay(0).units(), 2.0);
/// assert!(lib.fast_variant(lib.expect("NAND2")).is_some());
/// ```
pub fn lsi10k_like() -> Library {
    let mut lib = Library::new("lsi10k_like");

    struct Spec {
        name: &'static str,
        inputs: usize,
        f: fn(u64, usize) -> bool,
        delay: f64,
        area: f64,
        power: f64,
    }

    fn all_ones(m: u64, n: usize) -> bool {
        m == (1u64 << n) - 1
    }
    fn any_one(m: u64, _n: usize) -> bool {
        m != 0
    }

    let specs = [
        Spec { name: "INV", inputs: 1, f: |m, _| m == 0, delay: 1.0, area: 1.0, power: 1.0 },
        Spec { name: "BUF", inputs: 1, f: |m, _| m == 1, delay: 1.4, area: 1.2, power: 1.1 },
        Spec { name: "NAND2", inputs: 2, f: |m, n| !all_ones(m, n), delay: 2.0, area: 2.0, power: 1.6 },
        Spec { name: "NAND3", inputs: 3, f: |m, n| !all_ones(m, n), delay: 2.6, area: 2.8, power: 2.2 },
        Spec { name: "NAND4", inputs: 4, f: |m, n| !all_ones(m, n), delay: 3.2, area: 3.6, power: 2.8 },
        Spec { name: "NOR2", inputs: 2, f: |m, n| !any_one(m, n), delay: 2.0, area: 2.0, power: 1.6 },
        Spec { name: "NOR3", inputs: 3, f: |m, n| !any_one(m, n), delay: 2.8, area: 2.9, power: 2.3 },
        Spec { name: "NOR4", inputs: 4, f: |m, n| !any_one(m, n), delay: 3.6, area: 3.8, power: 3.0 },
        Spec { name: "AND2", inputs: 2, f: all_ones, delay: 2.0, area: 2.4, power: 1.8 },
        Spec { name: "AND3", inputs: 3, f: all_ones, delay: 2.8, area: 3.2, power: 2.4 },
        Spec { name: "AND4", inputs: 4, f: all_ones, delay: 3.4, area: 4.0, power: 3.0 },
        Spec { name: "OR2", inputs: 2, f: any_one, delay: 2.0, area: 2.4, power: 1.8 },
        Spec { name: "OR3", inputs: 3, f: any_one, delay: 2.8, area: 3.2, power: 2.4 },
        Spec { name: "OR4", inputs: 4, f: any_one, delay: 3.4, area: 4.0, power: 3.0 },
        Spec { name: "XOR2", inputs: 2, f: |m, _| m.count_ones() & 1 == 1, delay: 2.8, area: 3.4, power: 3.0 },
        Spec { name: "XNOR2", inputs: 2, f: |m, _| m.count_ones() & 1 == 0, delay: 2.8, area: 3.4, power: 3.0 },
        // AOI21: !((a & b) | c), pins (a, b, c)
        Spec {
            name: "AOI21",
            inputs: 3,
            f: |m, _| !(((m & 1 != 0) && (m & 2 != 0)) || (m & 4 != 0)),
            delay: 2.4,
            area: 2.6,
            power: 2.0,
        },
        // OAI21: !((a | b) & c)
        Spec {
            name: "OAI21",
            inputs: 3,
            f: |m, _| !(((m & 1 != 0) || (m & 2 != 0)) && (m & 4 != 0)),
            delay: 2.4,
            area: 2.6,
            power: 2.0,
        },
        // MUX2: s ? b : a, pins (a, b, s)
        Spec {
            name: "MUX2",
            inputs: 3,
            f: |m, _| {
                if m & 4 != 0 {
                    m & 2 != 0
                } else {
                    m & 1 != 0
                }
            },
            delay: 2.6,
            area: 3.2,
            power: 2.6,
        },
    ];

    for s in &specs {
        let tt = TruthTable::from_fn(s.inputs, |m| (s.f)(m, s.inputs));
        lib.add(Cell::new(
            s.name,
            tt.clone(),
            s.area,
            s.power,
            vec![Delay::new(s.delay); s.inputs],
        ));
        lib.add(Cell::new(
            format!("{}_F", s.name),
            tt,
            s.area * 1.6,
            s.power * 1.4,
            vec![Delay::new(s.delay * 0.65); s.inputs],
        ));
    }

    // Constant generators (zero-input cells).
    lib.add(Cell::new("TIE0", TruthTable::zero(0), 0.5, 0.0, Vec::new()));
    lib.add(Cell::new("TIE1", TruthTable::one(0), 0.5, 0.0, Vec::new()));

    lib
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsi10k_cells_present_and_consistent() {
        let lib = lsi10k_like();
        for name in [
            "INV", "BUF", "NAND2", "NAND3", "NAND4", "NOR2", "NOR3", "NOR4", "AND2", "AND3",
            "AND4", "OR2", "OR3", "OR4", "XOR2", "XNOR2", "AOI21", "OAI21", "MUX2", "TIE0",
            "TIE1",
        ] {
            let id = lib.expect(name);
            let c = lib.cell(id);
            assert_eq!(c.name(), name);
        }
        assert!(lib.len() > 30); // base + fast variants
    }

    #[test]
    fn functions_are_correct() {
        let lib = lsi10k_like();
        let nand2 = lib.cell(lib.expect("NAND2")).function();
        assert!(nand2.eval(0b00) && nand2.eval(0b01) && nand2.eval(0b10) && !nand2.eval(0b11));
        let mux = lib.cell(lib.expect("MUX2")).function();
        // s=0 → a
        assert!(mux.eval(0b001) && !mux.eval(0b010));
        // s=1 → b
        assert!(mux.eval(0b110) && !mux.eval(0b101));
        let aoi = lib.cell(lib.expect("AOI21")).function();
        assert!(aoi.eval(0b000));
        assert!(!aoi.eval(0b011)); // a&b
        assert!(!aoi.eval(0b100)); // c
        let tie1 = lib.cell(lib.expect("TIE1")).function();
        assert!(tie1.eval(0));
    }

    #[test]
    fn fast_variants_are_faster_and_bigger() {
        let lib = lsi10k_like();
        let slow = lib.expect("NAND2");
        let fast = lib.fast_variant(slow).expect("fast NAND2");
        assert!(lib.cell(fast).pin_delay(0) < lib.cell(slow).pin_delay(0));
        assert!(lib.cell(fast).area() > lib.cell(slow).area());
        assert_eq!(lib.cell(fast).function(), lib.cell(slow).function());
        // Fast variants have no faster variant themselves.
        assert!(lib.fast_variant(fast).is_none());
    }

    #[test]
    fn paper_unit_scale() {
        let lib = lsi10k_like();
        assert_eq!(lib.cell(lib.expect("INV")).pin_delay(0), Delay::new(1.0));
        assert_eq!(lib.cell(lib.expect("AND2")).pin_delay(1), Delay::new(2.0));
        assert_eq!(lib.cell(lib.expect("OR2")).pin_delay(0), Delay::new(2.0));
    }

    #[test]
    fn match_function_prefers_cheapest() {
        let lib = lsi10k_like();
        let and2 = TruthTable::from_fn(2, |m| m == 0b11);
        let id = lib.match_function(&and2).expect("AND2 present");
        assert_eq!(lib.cell(id).name(), "AND2");
    }

    #[test]
    #[should_panic(expected = "no cell named")]
    fn expect_missing_panics() {
        lsi10k_like().expect("FLUXCAP");
    }

    #[test]
    #[should_panic(expected = "duplicate cell")]
    fn duplicate_names_rejected() {
        let mut lib = lsi10k_like();
        lib.add(Cell::new("INV", TruthTable::from_fn(1, |m| m == 0), 1.0, 1.0, vec![Delay::new(1.0)]));
    }
}
