//! Extraction of a technology-independent network from a mapped netlist.
//!
//! The paper's synthesis starts from "the technology-independent
//! representation of the original circuit" with complex nodes of 10–15
//! inputs (§4.1). [`extract`] produces that representation by *partial
//! collapse*: every gate becomes an SOP node, then single-fanout nodes
//! are greedily inlined into their reader while the combined support
//! stays within the requested bound.

use crate::netlist::{Driver, Netlist};
use crate::sop_network::{SigId, SopNetwork};
use crate::types::NetId;
use std::collections::HashMap;
use tm_logic::{qm, TruthTable};

/// Options controlling partial collapse.
#[derive(Clone, Copy, Debug)]
pub struct ExtractOptions {
    /// Maximum node support (fanin count) after collapsing. The paper
    /// works with 10–15-input nodes; the default is 12.
    pub max_support: usize,
}

impl Default for ExtractOptions {
    fn default() -> Self {
        ExtractOptions { max_support: 12 }
    }
}

/// A gate cluster during collapse: a truth table over boundary nets.
#[derive(Clone)]
struct Cluster {
    boundary: Vec<NetId>,
    tt: TruthTable,
}

/// Extracts a technology-independent [`SopNetwork`] from a mapped
/// [`Netlist`] by partial collapse.
///
/// The result computes the same function (input/output order preserved).
/// Node supports never exceed `options.max_support`, except that a single
/// gate whose own fanin count exceeds the bound is kept as-is.
///
/// # Panics
///
/// Panics if `options.max_support` exceeds
/// [`tm_logic::tt::MAX_TT_VARS`] or is zero.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use tm_netlist::{extract::{extract, ExtractOptions}, library::lsi10k_like, netlist::Netlist};
///
/// let lib = Arc::new(lsi10k_like());
/// let mut nl = Netlist::new("chain", lib.clone());
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let c = nl.add_input("c");
/// let t = nl.add_gate(lib.expect("AND2"), &[a, b], "t");
/// let y = nl.add_gate(lib.expect("OR2"), &[t, c], "y");
/// nl.mark_output(y);
///
/// let net = extract(&nl, ExtractOptions::default());
/// // The chain collapses into one 3-input node.
/// assert_eq!(net.num_nodes(), 1);
/// assert_eq!(net.eval(&[true, true, false]), vec![true]);
/// ```
pub fn extract(netlist: &Netlist, options: ExtractOptions) -> SopNetwork {
    assert!(options.max_support > 0, "max_support must be positive");
    assert!(
        options.max_support <= tm_logic::tt::MAX_TT_VARS,
        "max_support exceeds dense truth-table limit"
    );
    let k = options.max_support;
    let lib = netlist.library();

    // Fanout counts per net (reads by gates + primary-output uses).
    let mut fanout = vec![0usize; netlist.num_nets()];
    for (_, g) in netlist.gates() {
        for &i in g.inputs() {
            fanout[i.index()] += 1;
        }
    }
    let mut is_output = vec![false; netlist.num_nets()];
    for &o in netlist.outputs() {
        is_output[o.index()] = true;
    }

    // Build clusters in topological order.
    let mut clusters: HashMap<NetId, Cluster> = HashMap::new();
    for (_, gate) in netlist.gates() {
        let cell = lib.cell(gate.cell());
        // Deduplicate fanins (a gate may in principle read a net twice).
        let mut boundary: Vec<NetId> = Vec::new();
        let mut pin_to_pos: Vec<usize> = Vec::with_capacity(gate.inputs().len());
        for &inp in gate.inputs() {
            match boundary.iter().position(|&b| b == inp) {
                Some(p) => pin_to_pos.push(p),
                None => {
                    boundary.push(inp);
                    pin_to_pos.push(boundary.len() - 1);
                }
            }
        }
        let tt = TruthTable::from_fn(boundary.len(), |m| {
            let mut pins = 0u64;
            for (pin, &pos) in pin_to_pos.iter().enumerate() {
                if (m >> pos) & 1 == 1 {
                    pins |= 1 << pin;
                }
            }
            cell.function().eval(pins)
        });
        let mut cluster = Cluster { boundary, tt };

        // Greedy inlining: repeatedly absorb an eligible boundary net.
        loop {
            let mut absorbed = false;
            for (pos, &net) in cluster.boundary.clone().iter().enumerate() {
                let eligible = matches!(netlist.driver(net), Driver::Gate(_))
                    && fanout[net.index()] == 1
                    && !is_output[net.index()]
                    && clusters.contains_key(&net);
                if !eligible {
                    continue;
                }
                let inner = &clusters[&net];
                // Merged boundary size check.
                let mut merged = cluster.boundary.clone();
                merged.remove(pos);
                let mut inner_pos_map = Vec::with_capacity(inner.boundary.len());
                for &ib in &inner.boundary {
                    match merged.iter().position(|&b| b == ib) {
                        Some(p) => inner_pos_map.push(p),
                        None => {
                            merged.push(ib);
                            inner_pos_map.push(merged.len() - 1);
                        }
                    }
                }
                if merged.len() > k {
                    continue;
                }
                // Positions of the outer boundary nets inside `merged`.
                let outer_pos_map: Vec<usize> = cluster
                    .boundary
                    .iter()
                    .enumerate()
                    .map(|(i, &ob)| {
                        if i == pos {
                            usize::MAX // replaced by inner function
                        } else {
                            merged.iter().position(|&b| b == ob).expect("kept net")
                        }
                    })
                    .collect();
                let inner_tt = inner.tt.clone();
                let outer_tt = cluster.tt.clone();
                let new_tt = TruthTable::from_fn(merged.len(), |m| {
                    let mut inner_m = 0u64;
                    for (ip, &mp) in inner_pos_map.iter().enumerate() {
                        if (m >> mp) & 1 == 1 {
                            inner_m |= 1 << ip;
                        }
                    }
                    let inner_val = inner_tt.eval(inner_m);
                    let mut outer_m = 0u64;
                    for (op, &mp) in outer_pos_map.iter().enumerate() {
                        let bit = if mp == usize::MAX {
                            inner_val
                        } else {
                            (m >> mp) & 1 == 1
                        };
                        if bit {
                            outer_m |= 1 << op;
                        }
                    }
                    outer_tt.eval(outer_m)
                });
                cluster = Cluster { boundary: merged, tt: new_tt };
                absorbed = true;
                break;
            }
            if !absorbed {
                break;
            }
        }

        // Drop boundary entries the function does not depend on.
        let support = cluster.tt.support();
        if support.len() != cluster.boundary.len() {
            let kept: Vec<NetId> = support.iter().map(|&p| cluster.boundary[p]).collect();
            let tt = TruthTable::from_fn(kept.len(), |m| {
                let mut full = 0u64;
                for (new_pos, &old_pos) in support.iter().enumerate() {
                    if (m >> new_pos) & 1 == 1 {
                        full |= 1 << old_pos;
                    }
                }
                cluster.tt.eval(full)
            });
            cluster = Cluster { boundary: kept, tt };
        }

        clusters.insert(gate.output(), cluster);
    }

    // Materialize: outputs plus every net referenced by a materialized
    // cluster's boundary.
    let mut materialize = vec![false; netlist.num_nets()];
    let mut stack: Vec<NetId> = netlist.outputs().to_vec();
    while let Some(net) = stack.pop() {
        if materialize[net.index()] {
            continue;
        }
        materialize[net.index()] = true;
        if let Some(cluster) = clusters.get(&net) {
            stack.extend(cluster.boundary.iter().copied());
        }
    }

    // Emit the new network in topological order of the original nets.
    let mut out = SopNetwork::new(netlist.name().to_string());
    let mut sig_of: HashMap<NetId, SigId> = HashMap::new();
    for &pi in netlist.inputs() {
        let sig = out.add_input(netlist.net_name(pi).to_string());
        sig_of.insert(pi, sig);
    }
    for (net_idx, &mat) in materialize.iter().enumerate() {
        let net = NetId::from_index(net_idx);
        if !mat || sig_of.contains_key(&net) {
            continue;
        }
        let cluster = match clusters.get(&net) {
            Some(c) => c,
            None => continue, // an input, already added
        };
        let inputs: Vec<SigId> = cluster.boundary.iter().map(|b| sig_of[b]).collect();
        let cover = qm::minimize(&cluster.tt, &TruthTable::zero(cluster.boundary.len()));
        let sig = out.add_node(netlist.net_name(net).to_string(), inputs, cover);
        sig_of.insert(net, sig);
    }
    for &o in netlist.outputs() {
        out.mark_output(sig_of[&o]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::lsi10k_like;
    use std::sync::Arc;

    fn lib() -> Arc<crate::library::Library> {
        Arc::new(lsi10k_like())
    }

    /// Two-level tree: y = (a&b) | (c&d), all intermediate single-fanout.
    fn tree() -> Netlist {
        let lib = lib();
        let mut nl = Netlist::new("tree", lib.clone());
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let d = nl.add_input("d");
        let ab = nl.add_gate(lib.expect("AND2"), &[a, b], "ab");
        let cd = nl.add_gate(lib.expect("AND2"), &[c, d], "cd");
        let y = nl.add_gate(lib.expect("OR2"), &[ab, cd], "y");
        nl.mark_output(y);
        nl
    }

    fn equivalent(nl: &Netlist, net: &SopNetwork) {
        let n = nl.inputs().len();
        assert!(n <= 16, "exhaustive check limited");
        for m in 0..(1u64 << n) {
            let a: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(nl.eval(&a), net.eval(&a), "mismatch at {m:#b}");
        }
    }

    #[test]
    fn collapses_single_fanout_tree() {
        let nl = tree();
        let net = extract(&nl, ExtractOptions::default());
        assert_eq!(net.num_nodes(), 1);
        let y = net.outputs()[0];
        assert_eq!(net.node_of(y).unwrap().inputs().len(), 4);
        equivalent(&nl, &net);
    }

    #[test]
    fn support_cap_limits_collapse() {
        let nl = tree();
        let net = extract(&nl, ExtractOptions { max_support: 3 });
        // Merging both ANDs would need 4 inputs; only one can inline.
        assert!(net.num_nodes() >= 2);
        equivalent(&nl, &net);
    }

    #[test]
    fn multifanout_nodes_survive() {
        let lib = lib();
        let mut nl = Netlist::new("mf", lib.clone());
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let t = nl.add_gate(lib.expect("AND2"), &[a, b], "t");
        let y = nl.add_gate(lib.expect("OR2"), &[t, c], "y");
        let z = nl.add_gate(lib.expect("NAND2"), &[t, c], "z");
        nl.mark_output(y);
        nl.mark_output(z);
        let net = extract(&nl, ExtractOptions::default());
        // t feeds two readers: stays a node.
        assert_eq!(net.num_nodes(), 3);
        equivalent(&nl, &net);
    }

    #[test]
    fn output_gates_not_inlined() {
        let lib = lib();
        let mut nl = Netlist::new("o", lib.clone());
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let t = nl.add_gate(lib.expect("AND2"), &[a, b], "t");
        let y = nl.add_gate(lib.expect("INV"), &[t], "y");
        nl.mark_output(t); // t is itself an output
        nl.mark_output(y);
        let net = extract(&nl, ExtractOptions::default());
        assert_eq!(net.num_nodes(), 2);
        equivalent(&nl, &net);
    }

    #[test]
    fn redundant_support_dropped() {
        let lib = lib();
        let mut nl = Netlist::new("r", lib.clone());
        let a = nl.add_input("a");
        let na = nl.add_gate(lib.expect("INV"), &[a], "na");
        // a | !a = 1: function independent of everything.
        let y = nl.add_gate(lib.expect("OR2"), &[a, na], "y");
        nl.mark_output(y);
        let net = extract(&nl, ExtractOptions::default());
        equivalent(&nl, &net);
        let y_sig = net.outputs()[0];
        assert!(net.node_of(y_sig).unwrap().inputs().is_empty());
    }

    #[test]
    fn deep_chain_respects_bound() {
        let lib = lib();
        let mut nl = Netlist::new("chain", lib.clone());
        let inputs: Vec<_> = (0..10).map(|i| nl.add_input(format!("x{i}"))).collect();
        let mut acc = inputs[0];
        for (i, &x) in inputs.iter().enumerate().skip(1) {
            acc = nl.add_gate(lib.expect("AND2"), &[acc, x], format!("t{i}"));
        }
        nl.mark_output(acc);
        let net = extract(&nl, ExtractOptions { max_support: 4 });
        equivalent(&nl, &net);
        for sig in net.node_sigs() {
            assert!(net.node_of(sig).unwrap().inputs().len() <= 4);
        }
    }
}
