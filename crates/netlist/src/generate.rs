//! Seeded synthetic benchmark generator.
//!
//! The paper evaluates on ISCAS-85/MCNC netlists and OpenSPARC T1
//! modules synthesized with a commercial flow; neither the netlists nor
//! the flow are available here, so [`generate`] builds *structural
//! stand-ins*: random multi-level control-style logic with a chosen
//! input/output count, gate budget, and logic depth. Two properties are
//! engineered in:
//!
//! - **Cone locality**: each gate draws its fanins from a sliding window
//!   of input positions, like real control logic where each output
//!   depends on a bounded input field. This keeps output cones (and
//!   their BDDs) tractable while allowing wide circuits (the paper's
//!   `sparc_ifu_ifqdp` stand-in has 882 inputs).
//! - **Speed-path trunks and tails**: a few deliberately deep NAND
//!   trunks (with per-stage side inputs) fan into short tails of
//!   different lengths, one per critical output. Every instance gets
//!   clear near-critical speed-paths with thin SPCF slices, the masking
//!   cost amortizes over the outputs sharing a trunk, and the differing
//!   tail slacks create the multi-fanout criticality that separates the
//!   node-based SPCF from the exact one (see `DESIGN.md` §11).
//!
//! Generation is deterministic in the seed.

use crate::library::Library;
use crate::netlist::Netlist;
use crate::types::NetId;
use tm_testkit::rng::Rng;
use std::sync::Arc;

/// Parameters for [`generate`].
#[derive(Clone, Debug)]
pub struct GeneratorSpec {
    /// Circuit name.
    pub name: String,
    /// Number of primary inputs.
    pub num_inputs: usize,
    /// Number of primary outputs.
    pub num_outputs: usize,
    /// Approximate number of gates (the result lands within a few
    /// percent; chains and patch-up logic add a handful).
    pub target_gates: usize,
    /// Target logic depth in gate levels.
    pub levels: usize,
    /// Width of the input-position window each gate draws fanins from.
    pub locality: usize,
    /// Fraction of gates that are XOR/XNOR (keep small; XOR trees blow
    /// up BDDs).
    pub xor_fraction: f64,
    /// Number of deliberately deep speed chains.
    pub speed_chains: usize,
    /// Extra depth of each chain beyond `levels`.
    pub chain_extra_depth: usize,
    /// RNG seed.
    pub seed: u64,
}

impl GeneratorSpec {
    /// A reasonable spec for a circuit of the given interface and size;
    /// tune fields afterwards as needed.
    ///
    /// The defaults place the bulk of the logic at roughly 70 % of the
    /// critical path delay and let the engineered speed chains define
    /// `Δ`, so that (as in the paper's circuits) a minority of outputs
    /// is critical and the speed-path pattern space is a thin slice of
    /// the input space.
    pub fn sized(name: impl Into<String>, inputs: usize, outputs: usize, gates: usize) -> Self {
        // Logic depth grows roughly with the square root of size in real
        // mapped control logic; clamp into a plausible band.
        let levels = (gates as f64).sqrt().round() as usize;
        let levels = levels.clamp(5, 24);
        GeneratorSpec {
            name: name.into(),
            num_inputs: inputs,
            num_outputs: outputs,
            target_gates: gates,
            levels,
            locality: (inputs / 4).clamp(6, 24),
            xor_fraction: 0.04,
            speed_chains: (outputs / 10).clamp(1, 24),
            chain_extra_depth: (levels / 2).max(3),
            seed: 0xDA7E_2009 ^ gates as u64,
        }
    }
}

/// A signal available for fanin selection, with the input-position
/// "center" it covers and its level.
#[derive(Clone, Copy)]
struct Avail {
    net: NetId,
    center: f64,
    level: usize,
}

/// Generates a deterministic random netlist from a spec.
///
/// The result is acyclic and structurally sound
/// ([`Netlist::check`] is empty), every primary input feeds logic, and
/// the number of primary outputs matches the spec exactly.
///
/// # Panics
///
/// Panics if the spec has zero inputs or outputs, or a gate budget too
/// small to reach the output count.
pub fn generate(spec: &GeneratorSpec, library: Arc<Library>) -> Netlist {
    assert!(spec.num_inputs > 0 && spec.num_outputs > 0, "interface must be nonempty");
    assert!(
        spec.target_gates >= spec.num_outputs,
        "gate budget smaller than output count"
    );
    let lib = library.clone();
    let mut rng = Rng::seed_from_u64(spec.seed);
    let mut nl = Netlist::new(spec.name.clone(), library);

    let mut avail: Vec<Avail> = Vec::new();
    for i in 0..spec.num_inputs {
        let net = nl.add_input(format!("x{i}"));
        avail.push(Avail { net, center: i as f64, level: 0 });
    }

    // Weighted gate menu: (name, weight). Mostly inverting CMOS forms,
    // like mapped control logic.
    let menu: &[(&str, f64)] = &[
        ("NAND2", 0.22),
        ("NOR2", 0.16),
        ("AND2", 0.14),
        ("OR2", 0.14),
        ("INV", 0.08),
        ("NAND3", 0.08),
        ("NOR3", 0.06),
        ("AOI21", 0.06),
        ("OAI21", 0.06),
    ];
    let menu_total: f64 = menu.iter().map(|(_, w)| w).sum();

    let levels = spec.levels.max(2);
    // Reserve budget for the speed-path trunks and tails so the total
    // lands near target_gates.
    let trunk_estimate = (spec.speed_chains / 8).clamp(1, 4) * (levels + spec.chain_extra_depth)
        + spec.speed_chains * 3;
    let regular_budget = spec.target_gates.saturating_sub(trunk_estimate).max(levels);
    let per_level = (regular_budget / levels).max(1);
    let mut used = vec![false; spec.num_inputs];

    let window = spec.locality.max(2) as f64;
    let span = spec.num_inputs as f64;

    let pick_fanin = |rng: &mut Rng, avail: &[Avail], center: f64, level: usize| -> Avail {
        // Prefer the previous level; fall back to anything below.
        for _ in 0..40 {
            let cand = &avail[rng.gen_range(0..avail.len())];
            if cand.level >= level {
                continue;
            }
            let near = (cand.center - center).abs() <= window;
            let prev = cand.level + 1 == level;
            if near && (prev || rng.gen_bool(0.35)) {
                return *cand;
            }
        }
        // Relaxed retry ignoring locality.
        for _ in 0..40 {
            let cand = &avail[rng.gen_range(0..avail.len())];
            if cand.level < level {
                return *cand;
            }
        }
        avail[0]
    };

    for level in 1..=levels {
        let count = if level == levels {
            regular_budget.saturating_sub(per_level * (levels - 1)).max(1)
        } else {
            per_level
        };
        let mut new_sigs = Vec::with_capacity(count);
        for g in 0..count {
            let center = if count > 1 {
                g as f64 * span / count as f64
            } else {
                span / 2.0
            };
            let cell_name = if rng.gen_bool(spec.xor_fraction) {
                if rng.gen_bool(0.5) {
                    "XOR2"
                } else {
                    "XNOR2"
                }
            } else {
                let mut roll = rng.gen_range(0.0..menu_total);
                let mut chosen = menu[0].0;
                for &(name, w) in menu {
                    if roll < w {
                        chosen = name;
                        break;
                    }
                    roll -= w;
                }
                chosen
            };
            let cell = lib.expect(cell_name);
            let arity = lib.cell(cell).num_inputs();
            let mut fanins = Vec::with_capacity(arity);
            let mut max_level = 0usize;
            let mut center_sum = 0.0;
            for _ in 0..arity {
                let mut pick = pick_fanin(&mut rng, &avail, center, level);
                // Avoid duplicate fanins where possible.
                for _ in 0..10 {
                    if fanins.contains(&pick.net) {
                        pick = pick_fanin(&mut rng, &avail, center, level);
                    } else {
                        break;
                    }
                }
                if let Some(pos) = nl.input_position(pick.net) {
                    used[pos] = true;
                }
                max_level = max_level.max(pick.level);
                center_sum += pick.center;
                fanins.push(pick.net);
            }
            let out = nl.add_gate(cell, &fanins, format!("g{level}_{g}"));
            new_sigs.push(Avail {
                net: out,
                center: center_sum / arity.max(1) as f64,
                level: max_level + 1,
            });
        }
        avail.extend(new_sigs);
    }

    // Fold unused inputs in so every PI drives logic: pair them with
    // random internal signals through OR gates feeding extra top nodes.
    let unused: Vec<usize> = (0..spec.num_inputs).filter(|&i| !used[i]).collect();
    let mut fold_tops: Vec<NetId> = Vec::new();
    for chunk in unused.chunks(3) {
        let mut acc = nl.inputs()[chunk[0]];
        for &i in &chunk[1..] {
            let pi = nl.inputs()[i];
            acc = nl.add_gate(lib.expect("OR2"), &[acc, pi], format!("use{i}"));
        }
        // Merge with a random internal signal so the logic is not isolated.
        let internal = avail[rng.gen_range(spec.num_inputs..avail.len())].net;
        let merged = nl.add_gate(lib.expect("AND2"), &[acc, internal], format!("fold{}", chunk[0]));
        fold_tops.push(merged);
    }

    // Speed paths: a few deep NAND *trunks* (2-delay stages, varied side
    // inputs) overshoot the regular logic depth and define the circuit's
    // critical path; each trunk fans out into several short *tails* of
    // different lengths, one per critical output. Consequences match the
    // paper's circuits:
    //
    // - the SPCF is a thin slice of the input space (a trunk is
    //   dynamically sensitized only when every side input is
    //   non-controlling);
    // - many critical outputs share one trunk, so the speed-path logic
    //   (and hence the masking circuit that predicts it) is amortized —
    //   control logic shares late conditions the same way;
    // - a trunk is critical with *different* slacks toward its tails,
    //   the multi-fanout situation that makes the node-based SPCF a
    //   strict over-approximation.
    let chain_stages = levels + spec.chain_extra_depth;
    // Peers are inverted primary inputs: shallow (so the masking
    // circuit's prediction cones stay small, like real bypass/enable
    // terms) and — because a NAND side condition asks for 1 while the
    // peer's non-controlling value asks for the *inverted* signal to be
    // 0, i.e. the input to be 1 — never contradictory with the trunk
    // sensitization conditions, keeping every chain's SPCF nonempty.
    let mut peer_counter = 0usize;
    let mut pick_peer = |nl: &mut Netlist, rng: &mut Rng| -> NetId {
        let src = nl.inputs()[rng.gen_range(0..spec.num_inputs)];
        peer_counter += 1;
        nl.add_gate(lib.expect("INV"), &[src], format!("peer{peer_counter}"))
    };
    let mut chain_tops: Vec<NetId> = Vec::new();
    let trunk_count = (spec.speed_chains / 8).clamp(1, 4);
    let tails_per_trunk = spec.speed_chains.div_ceil(trunk_count);
    for t in 0..trunk_count {
        let start = nl.inputs()[rng.gen_range(0..spec.num_inputs)];
        let mut trunk = start;
        for s in 0..chain_stages {
            let side = nl.inputs()[rng.gen_range(0..spec.num_inputs)];
            trunk = nl.add_gate(lib.expect("NAND2"), &[trunk, side], format!("trunk{t}_{s}"));
        }
        for j in 0..tails_per_trunk {
            if chain_tops.len() >= spec.speed_chains {
                break;
            }
            let mut tail = trunk;
            // Tails of 1–3 stages: different slacks at the shared trunk.
            for s in 0..(1 + j % 3) {
                let side = nl.inputs()[rng.gen_range(0..spec.num_inputs)];
                tail = nl.add_gate(lib.expect("NAND2"), &[tail, side], format!("tail{t}_{j}_{s}"));
            }
            let peer = pick_peer(&mut nl, &mut rng);
            chain_tops.push(nl.add_gate(lib.expect("OR2"), &[tail, peer], format!("chain{t}_{j}")));
        }
    }

    // Choose outputs: chains first (they carry the speed-paths and
    // define Δ), then input folds, then the latest-generated signals.
    let mut outputs: Vec<NetId> = Vec::new();
    for net in chain_tops.into_iter().chain(fold_tops) {
        if outputs.len() < spec.num_outputs {
            outputs.push(net);
        }
    }
    let mut idx = avail.len();
    while outputs.len() < spec.num_outputs && idx > spec.num_inputs {
        idx -= 1;
        let net = avail[idx].net;
        if !outputs.contains(&net) {
            outputs.push(net);
        }
    }
    // Extremely small budgets: fall back to buffering inputs.
    let mut fallback = 0;
    while outputs.len() < spec.num_outputs {
        let pi = nl.inputs()[fallback % spec.num_inputs];
        let buf = nl.add_gate(lib.expect("BUF"), &[pi], format!("po_pad{fallback}"));
        outputs.push(buf);
        fallback += 1;
    }
    for (i, net) in outputs.into_iter().enumerate() {
        nl.mark_output(net);
        let _ = i;
    }

    debug_assert!(nl.check().is_empty(), "generator produced unsound netlist");
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::lsi10k_like;

    fn lib() -> Arc<Library> {
        Arc::new(lsi10k_like())
    }

    #[test]
    fn deterministic_in_seed() {
        let spec = GeneratorSpec::sized("det", 20, 8, 120);
        let a = generate(&spec, lib());
        let b = generate(&spec, lib());
        assert_eq!(a.num_gates(), b.num_gates());
        assert_eq!(a.num_nets(), b.num_nets());
        for m in [0u64, 5, 1023, 54321] {
            let bits: Vec<bool> = (0..20).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(a.eval(&bits), b.eval(&bits));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut s1 = GeneratorSpec::sized("s", 20, 8, 120);
        let mut s2 = s1.clone();
        s1.seed = 1;
        s2.seed = 2;
        let a = generate(&s1, lib());
        let b = generate(&s2, lib());
        // Same size class but (almost surely) different behaviour.
        let mut differs = false;
        for m in 0..64u64 {
            let bits: Vec<bool> = (0..20).map(|i| ((m * 2654435761) >> i) & 1 == 1).collect();
            if a.eval(&bits) != b.eval(&bits) {
                differs = true;
                break;
            }
        }
        assert!(differs);
    }

    #[test]
    fn interface_matches_spec() {
        for (i, o, g) in [(10, 4, 40), (36, 7, 150), (64, 32, 400)] {
            let spec = GeneratorSpec::sized(format!("if{i}"), i, o, g);
            let nl = generate(&spec, lib());
            assert_eq!(nl.inputs().len(), i);
            assert_eq!(nl.outputs().len(), o);
            assert!(nl.check().is_empty());
            // Gate budget within 40% (chains/folds add a few).
            let ratio = nl.num_gates() as f64 / g as f64;
            assert!(ratio > 0.8 && ratio < 1.6, "gate ratio {ratio} for target {g}");
        }
    }

    #[test]
    fn all_inputs_drive_logic() {
        let spec = GeneratorSpec::sized("drv", 48, 12, 200);
        let nl = generate(&spec, lib());
        let fanouts = nl.fanouts();
        for &pi in nl.inputs() {
            assert!(
                !fanouts[pi.index()].is_empty() || nl.outputs().contains(&pi),
                "input {} unused",
                nl.net_name(pi)
            );
        }
    }

    #[test]
    fn speed_chains_create_depth_spread() {
        let mut spec = GeneratorSpec::sized("chains", 30, 10, 150);
        spec.speed_chains = 3;
        spec.chain_extra_depth = 6;
        let nl = generate(&spec, lib());
        let arrivals = nl.structural_arrivals();
        let mut po_arr: Vec<f64> = nl
            .outputs()
            .iter()
            .map(|&o| arrivals[o.index()].units())
            .collect();
        po_arr.sort_by(f64::total_cmp);
        let max = po_arr.last().copied().unwrap_or(0.0);
        let min = po_arr.first().copied().unwrap_or(0.0);
        // The chain outputs are meaningfully deeper than the shallowest.
        assert!(max > min + 4.0, "spread {min}..{max} too tight");
    }

    #[test]
    fn wide_circuit_generates() {
        let spec = GeneratorSpec::sized("wide", 400, 200, 900);
        let nl = generate(&spec, lib());
        assert_eq!(nl.inputs().len(), 400);
        assert_eq!(nl.outputs().len(), 200);
        assert!(nl.check().is_empty());
    }
}
