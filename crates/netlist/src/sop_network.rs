//! Technology-independent networks: DAGs of complex SOP nodes.
//!
//! The paper's synthesis (§4.1) starts from "the technology-independent
//! representation of the original circuit … in which the internal nodes
//! can have complex Boolean functions (with 10–15 inputs)". A
//! [`SopNetwork`] is exactly that: each node holds a sum-of-products
//! cover over its local fanins. Extraction from a mapped netlist lives in
//! [`crate::extract`], mapping back to gates in [`crate::map`].

use std::collections::HashMap;
use std::fmt;
use tm_logic::bdd::{Bdd, BddRef};
use tm_logic::{Sop, TruthTable};

/// Identifier of a signal (input or node output) in a [`SopNetwork`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SigId(pub(crate) u32);

impl SigId {
    /// Raw index into the network's signal arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SigId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// What a signal is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SigKind {
    /// A primary input.
    Input,
    /// The output of the internal node with this index.
    Node(usize),
}

#[derive(Clone, Debug)]
struct Sig {
    name: String,
    kind: SigKind,
}

/// An internal node: an SOP cover over ordered local fanins.
#[derive(Clone, Debug)]
pub struct SopNode {
    inputs: Vec<SigId>,
    cover: Sop,
}

impl SopNode {
    /// Local fanin signals; cube variable `i` refers to `inputs[i]`.
    pub fn inputs(&self) -> &[SigId] {
        &self.inputs
    }

    /// The node's SOP cover over local input positions.
    pub fn cover(&self) -> &Sop {
        &self.cover
    }

    /// The node's function as a truth table over local inputs.
    pub fn truth_table(&self) -> TruthTable {
        TruthTable::from_sop(self.inputs.len(), &self.cover)
    }
}

/// A technology-independent logic network.
///
/// # Examples
///
/// ```
/// use tm_logic::{cube::Cube, sop::Sop};
/// use tm_netlist::sop_network::SopNetwork;
///
/// let mut net = SopNetwork::new("demo");
/// let a = net.add_input("a");
/// let b = net.add_input("b");
/// // y = a & !b
/// let y = net.add_node(
///     "y",
///     vec![a, b],
///     Sop::from_cubes(2, vec![Cube::from_literals(2, &[(0, true), (1, false)])]),
/// );
/// net.mark_output(y);
/// assert_eq!(net.eval(&[true, false]), vec![true]);
/// ```
#[derive(Clone)]
pub struct SopNetwork {
    name: String,
    sigs: Vec<Sig>,
    nodes: Vec<SopNode>,
    inputs: Vec<SigId>,
    outputs: Vec<SigId>,
}

impl SopNetwork {
    /// An empty network.
    pub fn new(name: impl Into<String>) -> Self {
        SopNetwork {
            name: name.into(),
            sigs: Vec::new(),
            nodes: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a primary input.
    pub fn add_input(&mut self, name: impl Into<String>) -> SigId {
        let id = SigId(self.sigs.len() as u32);
        self.sigs.push(Sig { name: name.into(), kind: SigKind::Input });
        self.inputs.push(id);
        id
    }

    /// Adds an internal node computing `cover` over `inputs`.
    ///
    /// # Panics
    ///
    /// Panics if the cover's arity differs from the input count or an
    /// input id is invalid (forward references are impossible, keeping
    /// the network acyclic by construction).
    pub fn add_node(&mut self, name: impl Into<String>, inputs: Vec<SigId>, cover: Sop) -> SigId {
        assert_eq!(cover.num_vars(), inputs.len(), "cover arity mismatch");
        for &i in &inputs {
            assert!((i.0 as usize) < self.sigs.len(), "invalid node input {i:?}");
        }
        let node_idx = self.nodes.len();
        let id = SigId(self.sigs.len() as u32);
        self.sigs.push(Sig { name: name.into(), kind: SigKind::Node(node_idx) });
        self.nodes.push(SopNode { inputs, cover });
        id
    }

    /// Marks a signal as a primary output.
    ///
    /// # Panics
    ///
    /// Panics if the id is invalid or already marked.
    pub fn mark_output(&mut self, sig: SigId) {
        assert!((sig.0 as usize) < self.sigs.len(), "invalid signal {sig:?}");
        assert!(!self.outputs.contains(&sig), "signal {sig:?} already an output");
        self.outputs.push(sig);
    }

    /// Primary inputs in order.
    pub fn inputs(&self) -> &[SigId] {
        &self.inputs
    }

    /// Primary outputs in order.
    pub fn outputs(&self) -> &[SigId] {
        &self.outputs
    }

    /// Number of internal nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The kind of a signal.
    pub fn kind(&self, sig: SigId) -> SigKind {
        self.sigs[sig.0 as usize].kind
    }

    /// A signal's name.
    pub fn sig_name(&self, sig: SigId) -> &str {
        &self.sigs[sig.0 as usize].name
    }

    /// Looks up a signal by name.
    pub fn find_sig(&self, name: &str) -> Option<SigId> {
        self.sigs
            .iter()
            .position(|s| s.name == name)
            .map(|i| SigId(i as u32))
    }

    /// The node driving a signal, if it is a node output.
    pub fn node_of(&self, sig: SigId) -> Option<&SopNode> {
        match self.kind(sig) {
            SigKind::Input => None,
            SigKind::Node(i) => Some(&self.nodes[i]),
        }
    }

    /// Replaces the cover of the node driving `sig`.
    ///
    /// # Panics
    ///
    /// Panics if `sig` is a primary input or the new cover's arity
    /// differs from the node's fanin count.
    pub fn replace_cover(&mut self, sig: SigId, cover: Sop) {
        match self.kind(sig) {
            SigKind::Input => panic!("cannot replace cover of a primary input"),
            SigKind::Node(i) => {
                assert_eq!(cover.num_vars(), self.nodes[i].inputs.len(), "cover arity mismatch");
                self.nodes[i].cover = cover;
            }
        }
    }

    /// Total signal count (inputs + nodes); `SigId::index` is bounded
    /// by this.
    pub fn num_sigs(&self) -> usize {
        self.sigs.len()
    }

    /// All node-output signals in topological (insertion) order.
    pub fn node_sigs(&self) -> Vec<SigId> {
        self.sigs
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.kind, SigKind::Node(_)))
            .map(|(i, _)| SigId(i as u32))
            .collect()
    }

    /// Evaluates the network on an input assignment (in input order).
    ///
    /// # Panics
    ///
    /// Panics if the assignment length differs from the input count.
    pub fn eval(&self, assignment: &[bool]) -> Vec<bool> {
        let values = self.eval_all(assignment);
        self.outputs.iter().map(|&o| values[o.0 as usize]).collect()
    }

    /// Evaluates every signal; index by `SigId::index`.
    pub fn eval_all(&self, assignment: &[bool]) -> Vec<bool> {
        assert_eq!(assignment.len(), self.inputs.len(), "assignment arity mismatch");
        let mut values = vec![false; self.sigs.len()];
        for (pos, &sig) in self.inputs.iter().enumerate() {
            values[sig.0 as usize] = assignment[pos];
        }
        for (i, sig) in self.sigs.iter().enumerate() {
            if let SigKind::Node(n) = sig.kind {
                let node = &self.nodes[n];
                let mut minterm = 0u64;
                for (pos, &inp) in node.inputs.iter().enumerate() {
                    if values[inp.0 as usize] {
                        minterm |= 1 << pos;
                    }
                }
                values[i] = node.cover.eval(minterm);
            }
        }
        values
    }

    /// Signals in the transitive fanin cone of `sig` (inclusive),
    /// topologically ordered.
    pub fn fanin_cone(&self, sig: SigId) -> Vec<SigId> {
        let mut in_cone = vec![false; self.sigs.len()];
        let mut stack = vec![sig];
        while let Some(s) = stack.pop() {
            if in_cone[s.0 as usize] {
                continue;
            }
            in_cone[s.0 as usize] = true;
            if let SigKind::Node(n) = self.kind(s) {
                stack.extend(self.nodes[n].inputs.iter().copied());
            }
        }
        (0..self.sigs.len())
            .filter(|&i| in_cone[i])
            .map(|i| SigId(i as u32))
            .collect()
    }

    /// Builds the global BDD of every signal over the primary-input space
    /// (BDD variable `i` = input position `i`). Returns one ref per
    /// signal, indexed by `SigId::index`.
    pub fn global_bdds(&self, bdd: &mut Bdd) -> Vec<BddRef> {
        assert!(bdd.num_vars() >= self.inputs.len(), "BDD manager too narrow");
        let mut refs = vec![bdd.zero(); self.sigs.len()];
        for (pos, &sig) in self.inputs.iter().enumerate() {
            refs[sig.0 as usize] = bdd.var(pos);
        }
        for (i, sig) in self.sigs.iter().enumerate() {
            if let SigKind::Node(n) = sig.kind {
                let node = &self.nodes[n];
                let fanin_refs: Vec<BddRef> =
                    node.inputs.iter().map(|&f| refs[f.0 as usize]).collect();
                let mut cube_fns = Vec::with_capacity(node.cover.len());
                for cube in node.cover.cubes() {
                    let lits: Vec<BddRef> = cube
                        .literals()
                        .map(|(pos, pol)| {
                            if pol {
                                fanin_refs[pos]
                            } else {
                                bdd.not(fanin_refs[pos])
                            }
                        })
                        .collect();
                    cube_fns.push(bdd.and_all(lits));
                }
                refs[i] = bdd.or_all(cube_fns);
            }
        }
        refs
    }

    /// Removes nodes not in the fanin cone of any output (dead logic),
    /// renumbering signals. Returns the old→new signal map.
    pub fn sweep(&self) -> (SopNetwork, HashMap<SigId, SigId>) {
        let mut live = vec![false; self.sigs.len()];
        for &o in &self.outputs {
            for s in self.fanin_cone(o) {
                live[s.0 as usize] = true;
            }
        }
        // Inputs always survive (interface stability).
        for &i in &self.inputs {
            live[i.0 as usize] = true;
        }
        let mut out = SopNetwork::new(self.name.clone());
        let mut map: HashMap<SigId, SigId> = HashMap::new();
        for (i, sig) in self.sigs.iter().enumerate() {
            if !live[i] {
                continue;
            }
            let old = SigId(i as u32);
            let new = match sig.kind {
                SigKind::Input => out.add_input(sig.name.clone()),
                SigKind::Node(n) => {
                    let node = &self.nodes[n];
                    let inputs: Vec<SigId> = node.inputs.iter().map(|x| map[x]).collect();
                    out.add_node(sig.name.clone(), inputs, node.cover.clone())
                }
            };
            map.insert(old, new);
        }
        for &o in &self.outputs {
            out.mark_output(map[&o]);
        }
        (out, map)
    }

    /// Total SOP literal count over all nodes (a technology-independent
    /// size metric).
    pub fn literal_count(&self) -> usize {
        self.nodes.iter().map(|n| n.cover.literal_count()).sum()
    }
}

impl fmt::Debug for SopNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SopNetwork({}: {} in, {} out, {} nodes, {} literals)",
            self.name,
            self.inputs.len(),
            self.outputs.len(),
            self.nodes.len(),
            self.literal_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_logic::cube::Cube;

    /// y = (a & b) | c, z = !c & a
    fn sample() -> SopNetwork {
        let mut net = SopNetwork::new("s");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let y = net.add_node(
            "y",
            vec![a, b, c],
            Sop::from_cubes(3, vec![
                Cube::from_literals(3, &[(0, true), (1, true)]),
                Cube::from_literals(3, &[(2, true)]),
            ]),
        );
        let z = net.add_node(
            "z",
            vec![c, a],
            Sop::from_cubes(2, vec![Cube::from_literals(2, &[(0, false), (1, true)])]),
        );
        net.mark_output(y);
        net.mark_output(z);
        net
    }

    #[test]
    fn eval_matches_expressions() {
        let net = sample();
        for m in 0..8u64 {
            let a = m & 1 != 0;
            let b = m & 2 != 0;
            let c = m & 4 != 0;
            let out = net.eval(&[a, b, c]);
            assert_eq!(out[0], (a && b) || c);
            assert_eq!(out[1], !c && a);
        }
    }

    #[test]
    fn node_accessors() {
        let net = sample();
        let y = net.find_sig("y").expect("y exists");
        let node = net.node_of(y).expect("y is a node");
        assert_eq!(node.inputs().len(), 3);
        assert_eq!(node.cover().len(), 2);
        let tt = node.truth_table();
        assert!(tt.eval(0b011) && tt.eval(0b100) && !tt.eval(0b001));
        assert!(net.node_of(net.inputs()[0]).is_none());
        assert_eq!(net.node_sigs().len(), 2);
    }

    #[test]
    fn global_bdds_match_eval() {
        let net = sample();
        let mut bdd = Bdd::new(3);
        let refs = net.global_bdds(&mut bdd);
        for m in 0..8u64 {
            let assignment: Vec<bool> = (0..3).map(|i| (m >> i) & 1 == 1).collect();
            let values = net.eval_all(&assignment);
            for sig in 0..net.sigs.len() {
                assert_eq!(
                    bdd.eval(refs[sig], &assignment),
                    values[sig],
                    "sig {sig} at m={m}"
                );
            }
        }
    }

    #[test]
    fn cone_and_sweep() {
        let mut net = sample();
        // Add a dead node.
        let a = net.inputs()[0];
        let _dead = net.add_node(
            "dead",
            vec![a],
            Sop::from_cubes(1, vec![Cube::from_literals(1, &[(0, false)])]),
        );
        assert_eq!(net.num_nodes(), 3);
        let (swept, map) = net.sweep();
        assert_eq!(swept.num_nodes(), 2);
        assert_eq!(swept.inputs().len(), 3);
        let y_old = net.find_sig("y").unwrap();
        assert!(map.contains_key(&y_old));
        // Behaviour preserved.
        for m in 0..8u64 {
            let assignment: Vec<bool> = (0..3).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(net.eval(&assignment), swept.eval(&assignment));
        }
    }

    #[test]
    fn replace_cover_changes_function() {
        let mut net = sample();
        let y = net.find_sig("y").unwrap();
        net.replace_cover(y, Sop::one(3));
        assert!(net.eval(&[false, false, false])[0]);
    }

    #[test]
    #[should_panic(expected = "cover arity mismatch")]
    fn replace_cover_checks_arity() {
        let mut net = sample();
        let y = net.find_sig("y").unwrap();
        net.replace_cover(y, Sop::one(2));
    }

    #[test]
    fn literal_count_sums_nodes() {
        let net = sample();
        assert_eq!(net.literal_count(), 3 + 2);
    }
}
