//! Gate-level (technology-mapped) netlists.
//!
//! A [`Netlist`] is a DAG of library-cell instances. Nets are the unit of
//! connectivity: every net has exactly one driver (a primary input or a
//! gate output) and any number of sinks. Combinational only — the paper's
//! analysis and synthesis operate between register boundaries.

use crate::library::Library;
use crate::types::{CellId, Delay, GateId, NetId};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// What drives a net.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Driver {
    /// Driven from outside the netlist.
    PrimaryInput,
    /// Driven by the output of a gate.
    Gate(GateId),
}

#[derive(Clone, Debug)]
struct Net {
    name: String,
    driver: Driver,
}

/// A cell instance.
#[derive(Clone, Debug)]
pub struct Gate {
    cell: CellId,
    inputs: Vec<NetId>,
    output: NetId,
}

impl Gate {
    /// The library cell this gate instantiates.
    pub fn cell(&self) -> CellId {
        self.cell
    }

    /// Input nets in pin order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Output net.
    pub fn output(&self) -> NetId {
        self.output
    }
}

/// A technology-mapped combinational netlist over a shared [`Library`].
///
/// # Examples
///
/// ```
/// use tm_netlist::{library::lsi10k_like, netlist::Netlist};
/// use std::sync::Arc;
///
/// let lib = Arc::new(lsi10k_like());
/// let mut nl = Netlist::new("demo", lib.clone());
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let y = nl.add_gate(lib.expect("NAND2"), &[a, b], "y");
/// nl.mark_output(y);
/// assert_eq!(nl.eval(&[true, true]), vec![false]);
/// ```
#[derive(Clone)]
pub struct Netlist {
    name: String,
    library: Arc<Library>,
    nets: Vec<Net>,
    gates: Vec<Gate>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
}

impl Netlist {
    /// An empty netlist bound to a library.
    pub fn new(name: impl Into<String>, library: Arc<Library>) -> Self {
        Netlist {
            name: name.into(),
            library,
            nets: Vec::new(),
            gates: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Netlist name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the netlist.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// The library the netlist's cells come from.
    pub fn library(&self) -> &Arc<Library> {
        &self.library
    }

    /// Adds a primary input net.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let id = NetId(self.nets.len() as u32);
        self.nets.push(Net { name: name.into(), driver: Driver::PrimaryInput });
        self.inputs.push(id);
        id
    }

    /// Adds a gate driving a fresh net.
    ///
    /// # Panics
    ///
    /// Panics if the input count does not match the cell arity or an
    /// input net id is invalid.
    pub fn add_gate(&mut self, cell: CellId, inputs: &[NetId], out_name: impl Into<String>) -> NetId {
        let arity = self.library.cell(cell).num_inputs();
        assert_eq!(inputs.len(), arity, "cell {} expects {arity} inputs", self.library.cell(cell).name());
        for &i in inputs {
            assert!((i.0 as usize) < self.nets.len(), "invalid input net {i:?}");
        }
        let gate_id = GateId(self.gates.len() as u32);
        let out = NetId(self.nets.len() as u32);
        self.nets.push(Net { name: out_name.into(), driver: Driver::Gate(gate_id) });
        self.gates.push(Gate { cell, inputs: inputs.to_vec(), output: out });
        out
    }

    /// Marks a net as a primary output (a net may be marked once).
    ///
    /// # Panics
    ///
    /// Panics if the net id is invalid or already an output.
    pub fn mark_output(&mut self, net: NetId) {
        assert!((net.0 as usize) < self.nets.len(), "invalid net {net:?}");
        assert!(!self.outputs.contains(&net), "net {net:?} already an output");
        self.outputs.push(net);
    }

    /// Primary inputs in declaration order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary outputs in declaration order.
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// Number of gates.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// The gate with the given id.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.0 as usize]
    }

    /// Iterates over `(id, gate)` pairs in insertion order (which is
    /// topological when built through [`Netlist::add_gate`], since inputs
    /// must already exist).
    pub fn gates(&self) -> impl Iterator<Item = (GateId, &Gate)> {
        self.gates
            .iter()
            .enumerate()
            .map(|(i, g)| (GateId(i as u32), g))
    }

    /// A net's name.
    pub fn net_name(&self, net: NetId) -> &str {
        &self.nets[net.0 as usize].name
    }

    /// A net's driver.
    pub fn driver(&self, net: NetId) -> Driver {
        self.nets[net.0 as usize].driver
    }

    /// Position of a net in the primary-input list, if it is one.
    pub fn input_position(&self, net: NetId) -> Option<usize> {
        self.inputs.iter().position(|&n| n == net)
    }

    /// Looks up a net by name (linear scan; intended for tests and I/O).
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.nets
            .iter()
            .position(|n| n.name == name)
            .map(|i| NetId(i as u32))
    }

    /// Gate ids in topological order (inputs before outputs).
    ///
    /// Because gates can only reference existing nets at construction
    /// time, insertion order is already topological; this returns it
    /// explicitly for clarity at call sites.
    pub fn topo_order(&self) -> Vec<GateId> {
        (0..self.gates.len() as u32).map(GateId).collect()
    }

    /// Fanout map: for each net, the gates that read it.
    pub fn fanouts(&self) -> Vec<Vec<GateId>> {
        let mut out = vec![Vec::new(); self.nets.len()];
        for (id, g) in self.gates() {
            for &i in &g.inputs {
                out[i.0 as usize].push(id);
            }
        }
        out
    }

    /// Total cell area.
    pub fn area(&self) -> f64 {
        self.gates
            .iter()
            .map(|g| self.library.cell(g.cell).area())
            .sum()
    }

    /// Evaluates the netlist on one input assignment, returning output
    /// values in output order.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len()` differs from the input count.
    pub fn eval(&self, assignment: &[bool]) -> Vec<bool> {
        let values = self.eval_all_nets(assignment);
        self.outputs.iter().map(|&o| values[o.0 as usize]).collect()
    }

    /// Evaluates every net; index by `NetId::index`.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len()` differs from the input count.
    pub fn eval_all_nets(&self, assignment: &[bool]) -> Vec<bool> {
        assert_eq!(assignment.len(), self.inputs.len(), "assignment arity mismatch");
        let mut values = vec![false; self.nets.len()];
        for (pos, &net) in self.inputs.iter().enumerate() {
            values[net.0 as usize] = assignment[pos];
        }
        for g in &self.gates {
            let mut minterm = 0u64;
            for (pin, &inp) in g.inputs.iter().enumerate() {
                if values[inp.0 as usize] {
                    minterm |= 1 << pin;
                }
            }
            values[g.output.0 as usize] = self.library.cell(g.cell).function().eval(minterm);
        }
        values
    }

    /// Replaces the cell of a gate with another cell of identical
    /// function and arity (gate sizing).
    ///
    /// # Panics
    ///
    /// Panics if the new cell's function differs from the old one's.
    pub fn resize_gate(&mut self, id: GateId, cell: CellId) {
        let old = self.gates[id.0 as usize].cell;
        assert_eq!(
            self.library.cell(old).function(),
            self.library.cell(cell).function(),
            "resize must preserve the gate function"
        );
        self.gates[id.0 as usize].cell = cell;
    }

    /// Structural sanity check: every net reachable, single drivers, pin
    /// arities consistent. Returns a list of violation descriptions
    /// (empty when healthy).
    pub fn check(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for (i, net) in self.nets.iter().enumerate() {
            match net.driver {
                Driver::PrimaryInput => {
                    if !self.inputs.contains(&NetId(i as u32)) {
                        problems.push(format!("net {} marked input-driven but not an input", net.name));
                    }
                }
                Driver::Gate(g) => {
                    if g.0 as usize >= self.gates.len() {
                        problems.push(format!("net {} driven by missing gate", net.name));
                    } else if self.gates[g.0 as usize].output != NetId(i as u32) {
                        problems.push(format!("net {} driver mismatch", net.name));
                    }
                }
            }
        }
        for (gi, g) in self.gates.iter().enumerate() {
            let arity = self.library.cell(g.cell).num_inputs();
            if g.inputs.len() != arity {
                problems.push(format!("gate g{gi} arity mismatch"));
            }
            for &inp in &g.inputs {
                if inp.0 as usize >= self.nets.len() {
                    problems.push(format!("gate g{gi} reads missing net"));
                }
                // Feedback impossible by construction (inputs precede the
                // gate's own output net), but check defensively.
                if inp == g.output {
                    problems.push(format!("gate g{gi} self-loop"));
                }
            }
        }
        for &o in &self.outputs {
            if o.0 as usize >= self.nets.len() {
                problems.push("dangling output".to_string());
            }
        }
        problems
    }

    /// The structural depth (maximum gate count on any input→output
    /// path).
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.nets.len()];
        for g in &self.gates {
            let max_in = g.inputs.iter().map(|&i| level[i.0 as usize]).max().unwrap_or(0);
            level[g.output.0 as usize] = max_in + 1;
        }
        self.outputs.iter().map(|&o| level[o.0 as usize]).max().unwrap_or(0)
    }

    /// Per-net worst-case structural arrival time assuming inputs arrive
    /// at time zero (a quick bound; full analysis lives in `tm-sta`).
    pub fn structural_arrivals(&self) -> Vec<Delay> {
        let mut arr = vec![Delay::ZERO; self.nets.len()];
        for g in &self.gates {
            let cell = self.library.cell(g.cell);
            let mut worst = Delay::ZERO;
            for (pin, &inp) in g.inputs.iter().enumerate() {
                worst = worst.max(arr[inp.0 as usize] + cell.pin_delay(pin));
            }
            arr[g.output.0 as usize] = worst;
        }
        arr
    }

    /// The set of gates in the transitive fanin cone of `net` (including
    /// its driver, excluding primary inputs), plus the cone's primary
    /// inputs.
    pub fn fanin_cone(&self, net: NetId) -> (Vec<GateId>, Vec<NetId>) {
        let mut gate_seen = vec![false; self.gates.len()];
        let mut pi_seen = vec![false; self.nets.len()];
        let mut stack = vec![net];
        while let Some(n) = stack.pop() {
            match self.driver(n) {
                Driver::PrimaryInput => pi_seen[n.0 as usize] = true,
                Driver::Gate(g) => {
                    if !gate_seen[g.0 as usize] {
                        gate_seen[g.0 as usize] = true;
                        stack.extend(self.gates[g.0 as usize].inputs.iter().copied());
                    }
                }
            }
        }
        let gates = (0..self.gates.len())
            .filter(|&i| gate_seen[i])
            .map(|i| GateId(i as u32))
            .collect();
        let pis = self
            .inputs
            .iter()
            .copied()
            .filter(|n| pi_seen[n.0 as usize])
            .collect();
        (gates, pis)
    }

    /// Merges another netlist into this one, returning the mapping from
    /// the other netlist's nets to the new ids. The other netlist's
    /// primary inputs are bound to `input_bindings` (same order) instead
    /// of creating new inputs; its outputs are *not* marked as outputs
    /// here.
    ///
    /// This is how the error-masking circuit is attached beside the
    /// original circuit without disturbing it (paper Fig. 1).
    ///
    /// # Panics
    ///
    /// Panics if the libraries differ or the binding count is wrong.
    pub fn absorb(&mut self, other: &Netlist, input_bindings: &[NetId]) -> HashMap<NetId, NetId> {
        assert!(
            Arc::ptr_eq(&self.library, &other.library) || self.library.name() == other.library.name(),
            "netlists must share a library"
        );
        assert_eq!(input_bindings.len(), other.inputs.len(), "binding arity mismatch");
        let mut map: HashMap<NetId, NetId> = HashMap::new();
        for (pos, &inp) in other.inputs.iter().enumerate() {
            map.insert(inp, input_bindings[pos]);
        }
        for (_, g) in other.gates() {
            let inputs: Vec<NetId> = g.inputs.iter().map(|i| map[i]).collect();
            let name = format!("{}::{}", other.name, other.net_name(g.output));
            let new_out = self.add_gate(g.cell, &inputs, name);
            map.insert(g.output, new_out);
        }
        map
    }
}

impl fmt::Debug for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Netlist({}: {} in, {} out, {} gates)",
            self.name,
            self.inputs.len(),
            self.outputs.len(),
            self.gates.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::lsi10k_like;

    fn lib() -> Arc<Library> {
        Arc::new(lsi10k_like())
    }

    /// Builds y = (a & b) | !c.
    fn sample() -> Netlist {
        let lib = lib();
        let mut nl = Netlist::new("sample", lib.clone());
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let ab = nl.add_gate(lib.expect("AND2"), &[a, b], "ab");
        let nc = nl.add_gate(lib.expect("INV"), &[c], "nc");
        let y = nl.add_gate(lib.expect("OR2"), &[ab, nc], "y");
        nl.mark_output(y);
        nl
    }

    #[test]
    fn eval_matches_expression() {
        let nl = sample();
        for m in 0..8u64 {
            let a = m & 1 != 0;
            let b = m & 2 != 0;
            let c = m & 4 != 0;
            assert_eq!(nl.eval(&[a, b, c]), vec![(a && b) || !c], "m={m}");
        }
    }

    #[test]
    fn structure_queries() {
        let nl = sample();
        assert_eq!(nl.num_gates(), 3);
        assert_eq!(nl.inputs().len(), 3);
        assert_eq!(nl.outputs().len(), 1);
        assert_eq!(nl.depth(), 2);
        assert!(nl.check().is_empty());
        assert!(nl.area() > 0.0);
        let y = nl.outputs()[0];
        assert_eq!(nl.net_name(y), "y");
        assert!(matches!(nl.driver(y), Driver::Gate(_)));
        assert_eq!(nl.find_net("nc"), Some(NetId(4)));
    }

    #[test]
    fn structural_arrival_times() {
        let nl = sample();
        let arr = nl.structural_arrivals();
        let y = nl.outputs()[0];
        // a/b -> AND2 (2.0) -> OR2 (2.0) = 4.0; c -> INV (1.0) -> OR2 = 3.0
        assert_eq!(arr[y.index()], Delay::new(4.0));
    }

    #[test]
    fn fanin_cone_collects_cone() {
        let nl = sample();
        let y = nl.outputs()[0];
        let (gates, pis) = nl.fanin_cone(y);
        assert_eq!(gates.len(), 3);
        assert_eq!(pis.len(), 3);
        // Cone of the inverter output: just the inverter and input c.
        let nc = nl.find_net("nc").unwrap();
        let (g2, p2) = nl.fanin_cone(nc);
        assert_eq!(g2.len(), 1);
        assert_eq!(p2.len(), 1);
    }

    #[test]
    fn fanouts_reflect_reads() {
        let nl = sample();
        let fans = nl.fanouts();
        let a = nl.inputs()[0];
        assert_eq!(fans[a.index()].len(), 1);
        let ab = nl.find_net("ab").unwrap();
        assert_eq!(fans[ab.index()].len(), 1);
        let y = nl.outputs()[0];
        assert!(fans[y.index()].is_empty());
    }

    #[test]
    fn resize_preserves_function() {
        let mut nl = sample();
        let lib = nl.library().clone();
        let and2f = lib.expect("AND2_F");
        nl.resize_gate(GateId(0), and2f);
        assert_eq!(nl.eval(&[true, true, true]), vec![true]);
        let arr = nl.structural_arrivals();
        let y = nl.outputs()[0];
        assert!(arr[y.index()] < Delay::new(4.0));
    }

    #[test]
    #[should_panic(expected = "resize must preserve")]
    fn resize_rejects_function_change() {
        let mut nl = sample();
        let lib = nl.library().clone();
        nl.resize_gate(GateId(0), lib.expect("OR2"));
    }

    #[test]
    fn absorb_binds_inputs() {
        let lib = lib();
        let mut host = sample();
        // Small companion circuit: z = !(p & q)
        let mut side = Netlist::new("side", lib.clone());
        let p = side.add_input("p");
        let q = side.add_input("q");
        let z = side.add_gate(lib.expect("NAND2"), &[p, q], "z");
        side.mark_output(z);

        let a = host.inputs()[0];
        let b = host.inputs()[1];
        let map = host.absorb(&side, &[a, b]);
        let z_new = map[&z];
        let vals = host.eval_all_nets(&[true, true, false]);
        assert!(!vals[z_new.index()]); // !(1&1) = 0
        assert_eq!(host.num_gates(), 4);
        assert!(host.check().is_empty());
    }

    #[test]
    fn tie_cells_evaluate() {
        let lib = lib();
        let mut nl = Netlist::new("ties", lib.clone());
        let _a = nl.add_input("a");
        let one = nl.add_gate(lib.expect("TIE1"), &[], "one");
        let zero = nl.add_gate(lib.expect("TIE0"), &[], "zero");
        nl.mark_output(one);
        nl.mark_output(zero);
        assert_eq!(nl.eval(&[false]), vec![true, false]);
    }

    #[test]
    #[should_panic(expected = "expects 2 inputs")]
    fn arity_mismatch_panics() {
        let lib = lib();
        let mut nl = Netlist::new("bad", lib.clone());
        let a = nl.add_input("a");
        nl.add_gate(lib.expect("NAND2"), &[a], "y");
    }
}
