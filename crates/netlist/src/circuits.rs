//! Exactly-specified reference circuits.
//!
//! [`comparator2`] reproduces the paper's Fig. 2 worked example
//! gate-for-gate; the others are classic arithmetic/control blocks used
//! by the examples, tests, and the synthetic benchmark suites.

use crate::library::Library;
use crate::netlist::Netlist;
use crate::types::NetId;
use std::sync::Arc;

/// The paper's 2-bit comparator (Fig. 2a): output `y = (a1a0 >= b1b0)`.
///
/// Built from the optimal factored form of Eqn. 3,
/// `y = a1·b̄1 + (a0 + b̄0)(a1 + b̄1)`, with unit-delay inverters and
/// 2-unit two-input gates. The critical path delay is 7 units and the
/// speed-paths within 10 % of it run through both inverters, exactly as
/// highlighted in the paper.
///
/// Input order: `a0, a1, b0, b1`.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use tm_netlist::{circuits::comparator2, library::lsi10k_like};
///
/// let nl = comparator2(Arc::new(lsi10k_like()));
/// // 2 >= 1
/// assert_eq!(nl.eval(&[false, true, true, false]), vec![true]);
/// // 1 < 2
/// assert_eq!(nl.eval(&[true, false, false, true]), vec![false]);
/// ```
pub fn comparator2(library: Arc<Library>) -> Netlist {
    let lib = library.clone();
    let mut nl = Netlist::new("comparator2", library);
    let a0 = nl.add_input("a0");
    let a1 = nl.add_input("a1");
    let b0 = nl.add_input("b0");
    let b1 = nl.add_input("b1");
    let nb0 = nl.add_gate(lib.expect("INV"), &[b0], "nb0");
    let nb1 = nl.add_gate(lib.expect("INV"), &[b1], "nb1");
    let t1 = nl.add_gate(lib.expect("AND2"), &[a1, nb1], "t1"); // a1·b̄1
    let t2 = nl.add_gate(lib.expect("OR2"), &[a0, nb0], "t2"); // a0 + b̄0
    let t3 = nl.add_gate(lib.expect("OR2"), &[a1, nb1], "t3"); // a1 + b̄1
    let t4 = nl.add_gate(lib.expect("AND2"), &[t2, t3], "t4");
    let y = nl.add_gate(lib.expect("OR2"), &[t1, t4], "y");
    nl.mark_output(y);
    nl
}

/// An `n`-bit ripple-carry adder: inputs `a0..a(n-1), b0..b(n-1), cin`,
/// outputs `s0..s(n-1), cout`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn ripple_adder(library: Arc<Library>, n: usize) -> Netlist {
    assert!(n > 0, "adder width must be positive");
    let lib = library.clone();
    let mut nl = Netlist::new(format!("adder{n}"), library);
    let a: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("a{i}"))).collect();
    let b: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("b{i}"))).collect();
    let mut carry = nl.add_input("cin");
    let mut sums = Vec::with_capacity(n);
    for i in 0..n {
        let axb = nl.add_gate(lib.expect("XOR2"), &[a[i], b[i]], format!("axb{i}"));
        let s = nl.add_gate(lib.expect("XOR2"), &[axb, carry], format!("s{i}"));
        let ab = nl.add_gate(lib.expect("AND2"), &[a[i], b[i]], format!("ab{i}"));
        let pc = nl.add_gate(lib.expect("AND2"), &[axb, carry], format!("pc{i}"));
        carry = nl.add_gate(lib.expect("OR2"), &[ab, pc], format!("c{i}"));
        sums.push(s);
    }
    for s in sums {
        nl.mark_output(s);
    }
    nl.mark_output(carry);
    nl
}

/// A small `n`-bit ALU: `op1 op0` select among AND, OR, XOR, ADD
/// (00/01/10/11). Inputs `a*, b*, op0, op1`; outputs `y0..y(n-1)`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn mini_alu(library: Arc<Library>, n: usize) -> Netlist {
    assert!(n > 0, "ALU width must be positive");
    let lib = library.clone();
    let mut nl = Netlist::new(format!("alu{n}"), library);
    let a: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("a{i}"))).collect();
    let b: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("b{i}"))).collect();
    let op0 = nl.add_input("op0");
    let op1 = nl.add_input("op1");

    // Adder chain (carry-in 0 ⇒ first carry is a&b).
    let mut carry: Option<NetId> = None;
    let mut add_bits = Vec::with_capacity(n);
    for i in 0..n {
        let axb = nl.add_gate(lib.expect("XOR2"), &[a[i], b[i]], format!("axb{i}"));
        let ab = nl.add_gate(lib.expect("AND2"), &[a[i], b[i]], format!("ab{i}"));
        match carry {
            None => {
                add_bits.push(axb);
                carry = Some(ab);
            }
            Some(c) => {
                let s = nl.add_gate(lib.expect("XOR2"), &[axb, c], format!("sum{i}"));
                let pc = nl.add_gate(lib.expect("AND2"), &[axb, c], format!("pc{i}"));
                let nc = nl.add_gate(lib.expect("OR2"), &[ab, pc], format!("carry{i}"));
                add_bits.push(s);
                carry = Some(nc);
            }
        }
    }

    for i in 0..n {
        let and = nl.add_gate(lib.expect("AND2"), &[a[i], b[i]], format!("and_{i}"));
        let or = nl.add_gate(lib.expect("OR2"), &[a[i], b[i]], format!("or_{i}"));
        let xor = nl.add_gate(lib.expect("XOR2"), &[a[i], b[i]], format!("xor_{i}"));
        // level 1: op0 chooses within pairs.
        let lo = nl.add_gate(lib.expect("MUX2"), &[and, or, op0], format!("lo_{i}"));
        let hi = nl.add_gate(lib.expect("MUX2"), &[xor, add_bits[i], op0], format!("hi_{i}"));
        let y = nl.add_gate(lib.expect("MUX2"), &[lo, hi, op1], format!("y{i}"));
        nl.mark_output(y);
    }
    nl
}

/// An `n`-input priority encoder: inputs `r0..r(n-1)` (r0 highest
/// priority), outputs `g0..g(n-1)` (one-hot grant) and `valid`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn priority_encoder(library: Arc<Library>, n: usize) -> Netlist {
    assert!(n > 0, "encoder width must be positive");
    let lib = library.clone();
    let mut nl = Netlist::new(format!("prio{n}"), library);
    let reqs: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("r{i}"))).collect();
    // none_before[i] = !(r0 | … | r(i-1))
    let mut any_so_far: Option<NetId> = None;
    let mut grants = Vec::with_capacity(n);
    for (i, &req) in reqs.iter().enumerate() {
        let g = match any_so_far {
            None => {
                // grant0 = r0; buffered so the output has its own net.
                nl.add_gate(lib.expect("BUF"), &[req], format!("g{i}"))
            }
            Some(any) => {
                let none = nl.add_gate(lib.expect("INV"), &[any], format!("none{i}"));
                nl.add_gate(lib.expect("AND2"), &[req, none], format!("g{i}"))
            }
        };
        grants.push(g);
        any_so_far = Some(match any_so_far {
            None => req,
            Some(any) => nl.add_gate(lib.expect("OR2"), &[any, req], format!("any{i}")),
        });
    }
    for g in grants {
        nl.mark_output(g);
    }
    let valid = nl.add_gate(lib.expect("BUF"), &[any_so_far.expect("n>0")], "valid");
    nl.mark_output(valid);
    nl
}

/// An `n`-to-2ⁿ decoder with enable: inputs `s0..s(n-1), en`; outputs
/// `d0..d(2ⁿ-1)`.
///
/// # Panics
///
/// Panics if `n == 0` or `n > 6`.
pub fn decoder(library: Arc<Library>, n: usize) -> Netlist {
    assert!(n > 0 && n <= 6, "decoder select width must be in 1..=6");
    let lib = library.clone();
    let mut nl = Netlist::new(format!("dec{n}"), library);
    let sels: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("s{i}"))).collect();
    let en = nl.add_input("en");
    let nsels: Vec<NetId> = sels
        .iter()
        .enumerate()
        .map(|(i, &s)| nl.add_gate(lib.expect("INV"), &[s], format!("ns{i}")))
        .collect();
    for code in 0..(1usize << n) {
        let mut term = en;
        for (i, (&s, &ns)) in sels.iter().zip(&nsels).enumerate() {
            let lit = if (code >> i) & 1 == 1 { s } else { ns };
            term = nl.add_gate(lib.expect("AND2"), &[term, lit], format!("d{code}_l{i}"));
        }
        nl.mark_output(term);
    }
    nl
}

/// An `n`-input odd-parity tree: output 1 iff an odd number of inputs
/// are 1.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn parity(library: Arc<Library>, n: usize) -> Netlist {
    assert!(n > 0, "parity width must be positive");
    let lib = library.clone();
    let mut nl = Netlist::new(format!("parity{n}"), library);
    let mut layer: Vec<NetId> = (0..n).map(|i| nl.add_input(format!("x{i}"))).collect();
    let mut counter = 0;
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                counter += 1;
                next.push(nl.add_gate(lib.expect("XOR2"), &[pair[0], pair[1]], format!("p{counter}")));
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
    }
    let out = if nl.inputs().contains(&layer[0]) {
        nl.add_gate(lib.expect("BUF"), &[layer[0]], "y")
    } else {
        layer[0]
    };
    nl.mark_output(out);
    nl
}

/// A 2ᵏ-to-1 multiplexer tree: inputs `d0..d(2ᵏ-1), s0..s(k-1)`,
/// one output.
///
/// # Panics
///
/// Panics if `k == 0` or `k > 6`.
pub fn mux_tree(library: Arc<Library>, k: usize) -> Netlist {
    assert!(k > 0 && k <= 6, "mux select width must be in 1..=6");
    let lib = library.clone();
    let mut nl = Netlist::new(format!("mux{}", 1 << k), library);
    let mut layer: Vec<NetId> = (0..(1usize << k))
        .map(|i| nl.add_input(format!("d{i}")))
        .collect();
    let sels: Vec<NetId> = (0..k).map(|i| nl.add_input(format!("s{i}"))).collect();
    for (lvl, &s) in sels.iter().enumerate() {
        let mut next = Vec::with_capacity(layer.len() / 2);
        for (j, pair) in layer.chunks(2).enumerate() {
            next.push(nl.add_gate(lib.expect("MUX2"), &[pair[0], pair[1], s], format!("m{lvl}_{j}")));
        }
        layer = next;
    }
    nl.mark_output(layer[0]);
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::lsi10k_like;
    use crate::types::Delay;

    fn lib() -> Arc<Library> {
        Arc::new(lsi10k_like())
    }

    #[test]
    fn comparator_truth() {
        let nl = comparator2(lib());
        for m in 0..16u64 {
            let a0 = m & 1 != 0;
            let a1 = m & 2 != 0;
            let b0 = m & 4 != 0;
            let b1 = m & 8 != 0;
            let a = (a1 as u8) * 2 + a0 as u8;
            let b = (b1 as u8) * 2 + b0 as u8;
            assert_eq!(nl.eval(&[a0, a1, b0, b1]), vec![a >= b], "a={a} b={b}");
        }
    }

    #[test]
    fn comparator_critical_path_is_seven() {
        let nl = comparator2(lib());
        let arr = nl.structural_arrivals();
        let y = nl.outputs()[0];
        assert_eq!(arr[y.index()], Delay::new(7.0));
    }

    #[test]
    fn adder_adds() {
        let nl = ripple_adder(lib(), 3);
        for a in 0..8u64 {
            for b in 0..8u64 {
                for cin in 0..2u64 {
                    let mut bits = Vec::new();
                    bits.extend((0..3).map(|i| (a >> i) & 1 == 1));
                    bits.extend((0..3).map(|i| (b >> i) & 1 == 1));
                    bits.push(cin == 1);
                    let out = nl.eval(&bits);
                    let total = a + b + cin;
                    for (i, &bit) in out.iter().enumerate() {
                        assert_eq!(bit, (total >> i) & 1 == 1, "a={a} b={b} cin={cin} bit{i}");
                    }
                }
            }
        }
    }

    #[test]
    fn alu_ops() {
        let nl = mini_alu(lib(), 2);
        for a in 0..4u64 {
            for b in 0..4u64 {
                for op in 0..4u64 {
                    let mut bits = Vec::new();
                    bits.extend((0..2).map(|i| (a >> i) & 1 == 1));
                    bits.extend((0..2).map(|i| (b >> i) & 1 == 1));
                    bits.push(op & 1 == 1);
                    bits.push(op & 2 == 2);
                    let out = nl.eval(&bits);
                    let expect = match op {
                        0 => a & b,
                        1 => a | b,
                        2 => a ^ b,
                        _ => (a + b) & 3,
                    };
                    for (i, &bit) in out.iter().enumerate() {
                        assert_eq!(bit, (expect >> i) & 1 == 1, "a={a} b={b} op={op} bit{i}");
                    }
                }
            }
        }
    }

    #[test]
    fn priority_encoder_grants_highest() {
        let nl = priority_encoder(lib(), 4);
        for m in 0..16u64 {
            let reqs: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
            let out = nl.eval(&reqs);
            let first = reqs.iter().position(|&r| r);
            for (i, &bit) in out.iter().take(4).enumerate() {
                assert_eq!(bit, first == Some(i), "m={m} grant{i}");
            }
            assert_eq!(out[4], first.is_some(), "m={m} valid");
        }
    }

    #[test]
    fn decoder_one_hot() {
        let nl = decoder(lib(), 3);
        for m in 0..16u64 {
            let mut bits: Vec<bool> = (0..3).map(|i| (m >> i) & 1 == 1).collect();
            let en = m & 8 != 0;
            bits.push(en);
            let out = nl.eval(&bits);
            for (code, &bit) in out.iter().enumerate() {
                assert_eq!(bit, en && code as u64 == m & 7, "m={m} code={code}");
            }
        }
    }

    #[test]
    fn parity_counts_ones() {
        for n in [1usize, 2, 5, 8] {
            let nl = parity(lib(), n);
            for m in 0..(1u64 << n) {
                let bits: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
                assert_eq!(nl.eval(&bits), vec![m.count_ones() % 2 == 1], "n={n} m={m}");
            }
        }
    }

    #[test]
    fn mux_selects() {
        let nl = mux_tree(lib(), 2);
        for m in 0..64u64 {
            let data: Vec<bool> = (0..4).map(|i| (m >> i) & 1 == 1).collect();
            let s0 = m & 16 != 0;
            let s1 = m & 32 != 0;
            let mut bits = data.clone();
            bits.push(s0);
            bits.push(s1);
            let idx = (s1 as usize) * 2 + s0 as usize;
            assert_eq!(nl.eval(&bits), vec![data[idx]], "m={m}");
        }
    }

    #[test]
    fn all_circuits_structurally_sound() {
        let l = lib();
        for nl in [
            comparator2(l.clone()),
            ripple_adder(l.clone(), 4),
            mini_alu(l.clone(), 3),
            priority_encoder(l.clone(), 6),
            decoder(l.clone(), 4),
            parity(l.clone(), 9),
            mux_tree(l.clone(), 3),
        ] {
            assert!(nl.check().is_empty(), "{} unsound", nl.name());
            assert!(nl.depth() > 0);
        }
    }
}
