//! End-to-end degradation ladder (DESIGN.md §7): synthesis under a
//! tiny computation budget steps down to a coarser SPCF engine instead
//! of panicking or running away, and the mask it produces still passes
//! the exact BDD verification — degradation costs area, never
//! correctness.

use std::sync::Arc;
use tm_masking::{synthesize, verify, DegradationLevel, MaskingOptions};
use tm_netlist::generate::{generate, GeneratorSpec};
use tm_netlist::library::lsi10k_like;
use tm_netlist::Netlist;
use tm_resilience::Budget;
use tm_sta::Sta;

/// A 12-input random netlist large enough that the exact engines need
/// real memo/waveform storage.
fn ladder_netlist(name: &str) -> Netlist {
    generate(&GeneratorSpec::sized(name, 12, 4, 56), Arc::new(lsi10k_like()))
}

#[test]
fn unlimited_budget_stays_exact() {
    let nl = ladder_netlist("ladder_exact");
    let r = synthesize(&nl, MaskingOptions::default());
    assert_eq!(r.report.degradation, DegradationLevel::Exact);
    assert_eq!(r.spcf.algorithm, tm_spcf::Algorithm::ShortPath);
    assert!(!r.report.table2_row().contains("degraded"));
}

#[test]
fn memo_budget_degrades_to_node_based_and_still_verifies() {
    let _scope = tm_telemetry::Scope::enter();
    let nl = ladder_netlist("ladder_nb");
    // A 4-entry memo cannot cover a 56-gate netlist, so the exact
    // short-path engine exhausts; the node-based pass has no memo and
    // must succeed under the same budget.
    let budget = Budget::unlimited().with_max_memo_entries(4);
    let mut r = synthesize(&nl, MaskingOptions { budget, ..Default::default() });

    assert_eq!(r.report.degradation, DegradationLevel::NodeBased);
    assert_eq!(r.spcf.algorithm, tm_spcf::Algorithm::NodeBased);
    assert!(r.design.is_protected(), "a 0.9Δ target must protect something");
    assert!(r.report.table2_row().contains("degraded: node_based"));

    let snap = tm_telemetry::snapshot();
    assert!(snap.counter("resilience.budget.exhausted").unwrap_or(0) >= 1);
    assert!(snap.counter("resilience.fallback.node_based").unwrap_or(0) >= 1);
    assert_eq!(snap.counter("resilience.fallback.conservative").unwrap_or(0), 0);

    // The mask synthesized against the over-approximation passes the
    // exact checks: coverage, safety, transparency.
    let v = verify(&mut r);
    assert!(v.all_ok(), "{v:?}");
    assert_eq!(v.coverage(), 1.0);

    // Soundness of the fallback itself: the node-based SPCF contains
    // the exact one, so every true activation pattern is covered.
    let sta = Sta::new(&nl);
    let target = sta.critical_path_delay() * 0.9;
    let exact = tm_spcf::short_path_spcf(&nl, &sta, &mut r.bdd, target);
    for o in &exact.outputs {
        let sup = r.spcf.spcf_of(o.output).expect("critical output present in fallback SPCF");
        assert!(r.bdd.is_subset(o.spcf, sup), "fallback SPCF must contain the exact SPCF");
    }
}

#[test]
fn node_budget_degrades_to_conservative_guard() {
    let _scope = tm_telemetry::Scope::enter();
    let nl = ladder_netlist("ladder_cons");
    // 8 BDD nodes starve every real engine, including node-based; only
    // the guard-everything rung (constant-true SPCFs) remains.
    let budget = Budget::unlimited().with_max_bdd_nodes(8);
    let mut r = synthesize(&nl, MaskingOptions { budget, ..Default::default() });

    assert_eq!(r.report.degradation, DegradationLevel::Conservative);
    assert_eq!(r.spcf.algorithm, tm_spcf::Algorithm::Conservative);
    assert!(r.design.is_protected());
    assert!(r.report.table2_row().contains("degraded: conservative"));
    for o in &r.spcf.outputs {
        assert_eq!(o.spcf, r.bdd.one(), "guard-everything SPCF is constant true");
    }

    let snap = tm_telemetry::snapshot();
    assert!(snap.counter("resilience.fallback.node_based").unwrap_or(0) >= 1);
    assert!(snap.counter("resilience.fallback.conservative").unwrap_or(0) >= 1);

    // Guarding everything is still sound: the indicator fires on every
    // pattern and the prediction is the full function.
    let v = verify(&mut r);
    assert!(v.all_ok(), "{v:?}");
    assert_eq!(v.coverage(), 1.0);
}
