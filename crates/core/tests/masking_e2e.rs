//! End-to-end coverage of the masking synthesis flow: randomized
//! netlists must synthesize, verify exactly (BDD-based, through
//! `verify`), and stay functionally transparent pattern-by-pattern;
//! plus directed circuits hitting the cube-selection edge cases
//! (tautological node functions with an empty off-set, and
//! single-cube SOPs).
//!
//! Runs on the in-repo `tm-testkit` property runner; a failing case
//! prints its seed (reproduce with `TM_PROP_SEED=<seed>`).

use std::sync::Arc;
use tm_masking::{synthesize, verify, CubeSelection, MaskingOptions};
use tm_netlist::generate::{generate, GeneratorSpec};
use tm_netlist::library::lsi10k_like;
use tm_netlist::{Library, Netlist};
use tm_testkit::prop::{check, Config, Gen};
use tm_testkit::{prop_assert, prop_assert_eq};

fn lib() -> Arc<Library> {
    Arc::new(lsi10k_like())
}

/// Exhaustive functional-transparency check: the combined design
/// computes the original function on every input pattern.
fn assert_transparent(original: &Netlist, combined: &Netlist) -> Result<(), String> {
    let n = original.inputs().len();
    let mut assignment = vec![false; n];
    for m in 0..(1u64 << n) {
        for (i, a) in assignment.iter_mut().enumerate() {
            *a = (m >> i) & 1 == 1;
        }
        prop_assert_eq!(
            combined.eval(&assignment),
            original.eval(&assignment),
            "combined design diverges from the original on pattern {m:#b}"
        );
    }
    Ok(())
}

/// Randomized netlists, both cube-selection strategies: synthesis
/// must verify exactly and the combined design must be functionally
/// equivalent to the original on every input pattern.
#[test]
fn random_netlists_mask_and_verify() {
    check(
        "random_netlists_mask_and_verify",
        &Config::with_cases(20),
        |g: &mut Gen| {
            let inputs = g.gen_range(5usize..9);
            let outputs = g.gen_range(2usize..5);
            let gates = g.gen_range(15usize..40);
            let seed = g.gen_range(0u64..1_000_000);
            let essential = g.next_bool();
            let mut spec =
                GeneratorSpec::sized(format!("mask_e2e_{seed}"), inputs, outputs, gates);
            spec.seed = seed;
            (generate(&spec, lib()), essential)
        },
        |(nl, essential)| {
            let opts = MaskingOptions {
                cube_selection: if *essential {
                    CubeSelection::EssentialWeight
                } else {
                    CubeSelection::FullCover
                },
                ..Default::default()
            };
            let mut result = synthesize(nl, opts);
            let verdict = verify(&mut result);
            prop_assert!(verdict.all_ok(), "verification failed: {verdict:?}");
            prop_assert_eq!(verdict.coverage(), 1.0, "SPCF not fully covered");
            assert_transparent(nl, &result.design.combined)
        },
    );
}

/// Tautological node functions (empty off-set): an inverter chain's
/// extracted node partitions its whole local space, so the indicator
/// `e = n⁰ ⊕ n¹` is constant 1 and gets skipped; the AND-tree then
/// degenerates to a constant-one node. Both cube-selection strategies
/// must handle the empty off-set cover and still verify.
#[test]
fn tautological_indicator_empty_off_set() {
    let library = lib();
    let mut nl = Netlist::new("inv_chain", library.clone());
    let a = nl.add_input("a");
    let mut prev = a;
    for i in 0..5 {
        prev = nl.add_gate(library.expect("INV"), &[prev], format!("n{i}"));
    }
    nl.mark_output(prev);

    for selection in [CubeSelection::EssentialWeight, CubeSelection::FullCover] {
        let opts = MaskingOptions { cube_selection: selection, ..Default::default() };
        let mut result = synthesize(&nl, opts);
        assert_eq!(result.design.protected.len(), 1, "{selection:?}: chain output protected");
        let verdict = verify(&mut result);
        assert!(verdict.all_ok(), "{selection:?}: {verdict:?}");
        assert_eq!(verdict.coverage(), 1.0, "{selection:?}");
        assert_transparent(&nl, &result.design.combined).unwrap();
    }
}

/// A constant-true node inside the cone (OR of a literal and its
/// negation): its off-set cover is literally empty. Synthesis must
/// neither panic in essential-weight selection (the off care set is
/// empty too) nor lose transparency.
#[test]
fn constant_node_empty_off_cover() {
    let library = lib();
    let mut nl = Netlist::new("tautology", library.clone());
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let na = nl.add_gate(library.expect("INV"), &[a], "na");
    let t = nl.add_gate(library.expect("OR2"), &[a, na], "t"); // constant 1
    let y = nl.add_gate(library.expect("AND2"), &[t, b], "y"); // y = b, slow path through t
    nl.mark_output(y);

    for selection in [CubeSelection::EssentialWeight, CubeSelection::FullCover] {
        let opts = MaskingOptions { cube_selection: selection, ..Default::default() };
        let mut result = synthesize(&nl, opts);
        let verdict = verify(&mut result);
        assert!(verdict.all_ok(), "{selection:?}: {verdict:?}");
        assert_transparent(&nl, &result.design.combined).unwrap();
    }
}

/// Single-cube SOPs: a balanced AND tree where every node's on-set
/// cover is one cube. Essential-weight selection must keep exactly
/// that cube (nothing to drop), match full-cover area, and verify.
#[test]
fn single_cube_sop_and_tree() {
    let library = lib();
    let mut nl = Netlist::new("and_tree", library.clone());
    let ins: Vec<_> = (0..4).map(|i| nl.add_input(format!("i{i}"))).collect();
    let l = nl.add_gate(library.expect("AND2"), &[ins[0], ins[1]], "l");
    let r = nl.add_gate(library.expect("AND2"), &[ins[2], ins[3]], "r");
    let y = nl.add_gate(library.expect("AND2"), &[l, r], "y");
    nl.mark_output(y);

    let mut essential = synthesize(
        &nl,
        MaskingOptions { cube_selection: CubeSelection::EssentialWeight, ..Default::default() },
    );
    let mut full = synthesize(
        &nl,
        MaskingOptions { cube_selection: CubeSelection::FullCover, ..Default::default() },
    );
    for (name, result) in [("essential", &mut essential), ("full", &mut full)] {
        let verdict = verify(result);
        assert!(verdict.all_ok(), "{name}: {verdict:?}");
        assert_transparent(&nl, &result.design.combined).unwrap();
    }
    // Single-cube covers leave essential-weight selection nothing to
    // drop: both strategies build the same masking hardware.
    assert_eq!(
        essential.design.masking.area(),
        full.design.masking.area(),
        "essential-weight should not change single-cube covers"
    );
}
