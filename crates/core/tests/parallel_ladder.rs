//! `MaskingOptions::jobs` is a performance knob, never a semantic one:
//! the degradation ladder settles on the same rung and the synthesized
//! report carries the same SPCF population whether the SPCF engines
//! run serial or sharded across workers (DESIGN.md §8).

use std::sync::Arc;
use tm_masking::{synthesize, MaskingOptions};
use tm_netlist::generate::{generate, GeneratorSpec};
use tm_netlist::library::lsi10k_like;
use tm_netlist::Netlist;
use tm_resilience::Budget;

/// The same 20 seeded multi-output netlists as the tm-spcf determinism
/// suite (5–10 inputs, 2–5 outputs).
fn ladder_suite() -> Vec<Netlist> {
    let lib = Arc::new(lsi10k_like());
    (0..20u64)
        .map(|i| {
            let mut spec = GeneratorSpec::sized(
                format!("ladder_det_{i}"),
                5 + (i as usize % 6),
                2 + (i as usize % 4),
                18 + 3 * i as usize,
            );
            spec.seed = 0xC0FFEE + 7919 * i;
            generate(&spec, lib.clone())
        })
        .collect()
}

#[test]
fn jobs_do_not_change_the_ladder_rung_or_the_report() {
    // Unlimited stays on the exact rung; a 4-entry memo starves the
    // exact engine on every one of these netlists and lands node-based
    // — in both cases on the same rung for every worker count.
    let budgets =
        [Budget::unlimited(), Budget::unlimited().with_max_memo_entries(4)];
    for nl in ladder_suite() {
        for budget in budgets {
            let serial = synthesize(&nl, MaskingOptions { budget, jobs: 1, ..Default::default() });
            let sharded = synthesize(&nl, MaskingOptions { budget, jobs: 4, ..Default::default() });
            assert_eq!(
                serial.report.degradation, sharded.report.degradation,
                "{}: ladder rung depends on jobs under {budget:?}",
                nl.name()
            );
            assert_eq!(
                serial.report.critical_patterns, sharded.report.critical_patterns,
                "{}: SPCF population depends on jobs under {budget:?}",
                nl.name()
            );
            assert_eq!(
                serial.report.area_overhead_percent, sharded.report.area_overhead_percent,
                "{}: synthesized area depends on jobs under {budget:?}",
                nl.name()
            );
            assert_eq!(serial.report.jobs, serial.spcf.jobs);
            assert_eq!(sharded.report.jobs, sharded.spcf.jobs);
        }
    }
}
