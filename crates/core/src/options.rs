//! Configuration of the error-masking synthesis flow.

use tm_netlist::extract::ExtractOptions;
use tm_netlist::map::MapOptions;
use tm_resilience::Budget;

/// How node covers are pruned against the SPCF.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CubeSelection {
    /// The paper's essential-weight selection (§4.1): cubes sorted by
    /// ascending literal count; a cube survives only if it covers SPCF
    /// patterns no earlier cube covered.
    EssentialWeight,
    /// Keep the full minimized covers (no SPCF-driven pruning). Ablation
    /// baseline: shows how much area the don't-care space saves.
    FullCover,
}

/// Options for [`crate::synthesize`].
#[derive(Clone, Copy, Debug)]
pub struct MaskingOptions {
    /// Target arrival time as a fraction of the critical path delay `Δ`;
    /// the paper protects speed-paths within 10 % of `Δ`, i.e. `0.9`.
    pub target_fraction: f64,
    /// Minimum timing slack of the masking circuit over the original
    /// (paper: at least 20 %, i.e. `0.2`).
    pub slack_fraction: f64,
    /// Technology-independent node support bound (paper: 10–15 inputs).
    pub extract: ExtractOptions,
    /// Technology-mapping options for the masking circuit.
    pub map: MapOptions,
    /// Fan-in bound of the `e_y` AND-reduction tree nodes.
    pub and_tree_arity: usize,
    /// Cube-selection strategy.
    pub cube_selection: CubeSelection,
    /// Maximum gate-sizing iterations when enforcing the slack budget.
    pub sizing_iterations: usize,
    /// Computation budget for the SPCF construction. When a rung of the
    /// engine ladder exhausts it, [`crate::synthesize`] steps down to a
    /// coarser — but still sound — over-approximation instead of
    /// running away (DESIGN.md §7). Unlimited by default.
    pub budget: Budget,
    /// Worker threads for the SPCF construction (1 = serial). Results
    /// are identical for every value — the parallel driver merges
    /// per-output BDDs deterministically (DESIGN.md §8).
    pub jobs: usize,
}

impl Default for MaskingOptions {
    fn default() -> Self {
        MaskingOptions {
            target_fraction: 0.9,
            slack_fraction: 0.2,
            extract: ExtractOptions::default(),
            map: MapOptions::default(),
            and_tree_arity: 8,
            cube_selection: CubeSelection::EssentialWeight,
            sizing_iterations: 40,
            budget: Budget::unlimited(),
            jobs: 1,
        }
    }
}

impl MaskingOptions {
    /// Validates option invariants.
    ///
    /// # Panics
    ///
    /// Panics if fractions are outside `(0, 1)` or the AND-tree arity is
    /// smaller than 2.
    pub fn validate(&self) {
        assert!(
            self.target_fraction > 0.0 && self.target_fraction < 1.0,
            "target_fraction must be in (0, 1)"
        );
        assert!(
            self.slack_fraction > 0.0 && self.slack_fraction < 1.0,
            "slack_fraction must be in (0, 1)"
        );
        assert!(self.and_tree_arity >= 2, "AND tree needs arity >= 2");
        assert!(self.jobs >= 1, "jobs must be >= 1");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let o = MaskingOptions::default();
        assert_eq!(o.target_fraction, 0.9);
        assert_eq!(o.slack_fraction, 0.2);
        assert_eq!(o.cube_selection, CubeSelection::EssentialWeight);
        o.validate();
    }

    #[test]
    #[should_panic(expected = "target_fraction")]
    fn bad_fraction_rejected() {
        let o = MaskingOptions { target_fraction: 1.5, ..Default::default() };
        o.validate();
    }
}
