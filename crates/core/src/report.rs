//! Measurement of masked designs: the columns of the paper's Table 2.

use crate::design::MaskedDesign;
use crate::synth::DegradationLevel;
use std::time::Duration;
use tm_logic::Bdd;
use tm_netlist::Delay;
use tm_sim::power::estimate_power;
use tm_spcf::SpcfSet;
use tm_sta::Sta;

/// Number of random vectors used for power estimation.
const POWER_VECTORS: usize = 512;
/// Seed for the power-estimation workload (fixed for reproducibility).
const POWER_SEED: u64 = 0x70AD;

/// Metrics of one masked design, mirroring Table 2 of the paper.
#[derive(Clone, Debug)]
pub struct MaskingReport {
    /// Circuit name.
    pub circuit: String,
    /// Primary input count of the original circuit.
    pub num_inputs: usize,
    /// Primary output count of the original circuit.
    pub num_outputs: usize,
    /// Gate count of the original circuit.
    pub num_gates: usize,
    /// Number of protected (critical) primary outputs.
    pub critical_outputs: usize,
    /// Number of critical patterns: |⋃ SPCFs| (Table 2 column 5).
    pub critical_patterns: f64,
    /// Critical path delay `Δ` of the original circuit.
    pub delta: Delay,
    /// Target arrival time `Δ_y` the masking protects against.
    pub target: Delay,
    /// Critical path delay of the masking circuit alone.
    pub masking_delay: Delay,
    /// Timing slack of the masking circuit over the original, percent
    /// (Table 2 column 6).
    pub slack_percent: f64,
    /// Whether the configured slack budget was met.
    pub slack_met: bool,
    /// Area of the original circuit (library units).
    pub area_original: f64,
    /// Area overhead of masking logic + MUXes, percent (column 7).
    pub area_overhead_percent: f64,
    /// Dynamic power overhead under a random workload, percent
    /// (column 8).
    pub power_overhead_percent: f64,
    /// How far the SPCF ladder degraded to fit the computation budget
    /// ([`DegradationLevel::Exact`] when the paper's flow ran to
    /// completion).
    pub degradation: DegradationLevel,
    /// Worker threads the SPCF computation was asked to use (1 =
    /// serial; results are identical for every value).
    pub jobs: usize,
    /// Wall-clock time of the whole synthesis.
    pub synthesis_time: Duration,
}

impl MaskingReport {
    /// Measures a masked design.
    ///
    /// `slack_fraction` is the budget the synthesis was asked to meet
    /// (0.2 = 20 %).
    pub fn measure(
        design: &MaskedDesign,
        spcf: &SpcfSet,
        bdd: &mut Bdd,
        delta: Delay,
        target: Delay,
        slack_fraction: f64,
        degradation: DegradationLevel,
        synthesis_time: Duration,
    ) -> Self {
        let original = &design.original;
        let critical_patterns = spcf.critical_pattern_count(bdd);
        let (masking_delay, slack_percent, slack_met) = if design.is_protected() {
            let d = Sta::new(&design.masking).critical_path_delay();
            let slack = (delta - d) / delta * 100.0;
            (d, slack, d <= delta * (1.0 - slack_fraction) + Delay::new(1e-9))
        } else {
            (Delay::ZERO, 100.0, true)
        };

        let power_overhead_percent = if design.is_protected() {
            let p_orig = estimate_power(original, POWER_VECTORS, POWER_SEED);
            let p_comb = estimate_power(&design.combined, POWER_VECTORS, POWER_SEED);
            if p_orig.dynamic_per_vector > 0.0 {
                (p_comb.dynamic_per_vector - p_orig.dynamic_per_vector) / p_orig.dynamic_per_vector
                    * 100.0
            } else {
                0.0
            }
        } else {
            0.0
        };

        MaskingReport {
            circuit: original.name().to_string(),
            num_inputs: original.inputs().len(),
            num_outputs: original.outputs().len(),
            num_gates: original.num_gates(),
            critical_outputs: design.protected.len(),
            critical_patterns,
            delta,
            target,
            masking_delay,
            slack_percent,
            slack_met,
            area_original: original.area(),
            area_overhead_percent: design.area_overhead() * 100.0,
            power_overhead_percent,
            degradation,
            jobs: spcf.jobs,
            synthesis_time,
        }
    }

    /// Formats the report as one row in the style of Table 2. Rows
    /// whose SPCF degraded below exact are flagged, since their pattern
    /// counts and areas reflect an over-approximation.
    pub fn table2_row(&self) -> String {
        let mut row = format!(
            "{:<18} {:>4}/{:<4} {:>6} {:>9} {:>12.3e} {:>8.1} {:>7.1} {:>7.1}",
            self.circuit,
            self.num_inputs,
            self.num_outputs,
            self.num_gates,
            self.critical_outputs,
            self.critical_patterns,
            self.slack_percent,
            self.area_overhead_percent,
            self.power_overhead_percent,
        );
        if self.degradation != DegradationLevel::Exact {
            row.push_str(&format!("  [degraded: {}]", self.degradation));
        }
        row
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tm_netlist::circuits::comparator2;
    use tm_netlist::library::lsi10k_like;

    #[test]
    fn unprotected_report_is_neutral() {
        let nl = comparator2(Arc::new(lsi10k_like()));
        let design = MaskedDesign::unprotected(nl);
        let mut bdd = Bdd::new(4);
        let spcf = SpcfSet::new(
            tm_spcf::Algorithm::ShortPath,
            Delay::new(6.3),
            Vec::new(),
            Duration::ZERO,
            1,
        );
        let r = MaskingReport::measure(
            &design,
            &spcf,
            &mut bdd,
            Delay::new(7.0),
            Delay::new(6.3),
            0.2,
            DegradationLevel::Exact,
            Duration::ZERO,
        );
        assert_eq!(r.critical_outputs, 0);
        assert_eq!(r.area_overhead_percent, 0.0);
        assert_eq!(r.power_overhead_percent, 0.0);
        assert!(r.slack_met);
        assert_eq!(r.jobs, 1);
        assert!(r.table2_row().contains("comparator2"));
    }
}
