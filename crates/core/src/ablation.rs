//! Ablation baselines for the design choices §4 argues against.
//!
//! The paper rejects *top-down synthesis* — "in the extreme case,
//! duplication of the critical paths of C … the duplicated paths will be
//! as susceptible to timing errors as the critical paths in the original
//! circuit". [`duplication_masking`] implements exactly that baseline:
//! the fanin cones of the critical outputs are copied verbatim, the
//! prediction is the copy's output, and the indicator is constant 1.
//! Functionally it masks perfectly; physically it has (near) zero slack,
//! so under aging it fails together with the original — which the
//! injection experiments demonstrate.
//!
//! The cube-selection ablation (`CubeSelection::FullCover`) lives in
//! [`crate::options`]; extraction-bound and target sweeps are driven by
//! the bench harness with ordinary [`crate::MaskingOptions`].

use crate::options::MaskingOptions;
use crate::report::MaskingReport;
use crate::synth::{assemble_masked_design, DegradationLevel, MaskingResult};
use std::collections::HashMap;
use std::time::Instant;
use tm_logic::Bdd;
use tm_netlist::{NetId, Netlist};
use tm_spcf::short_path_spcf;
use tm_sta::Sta;

/// The top-down duplication baseline: copy the critical cones, predict
/// with the copy, indicate always.
///
/// The returned result is drop-in comparable with
/// [`crate::synthesize`]'s: same report fields, same verification
/// interface (it passes — duplication is functionally sound), but
/// `report.slack_met` is false on any circuit whose critical cone *is*
/// the critical path, because a copy cannot be faster than the
/// original.
///
/// # Panics
///
/// Panics on invalid options.
pub fn duplication_masking(netlist: &Netlist, options: MaskingOptions) -> MaskingResult {
    options.validate();
    let start = Instant::now();
    let sta = Sta::new(netlist);
    let delta = sta.critical_path_delay();
    let target = delta * options.target_fraction;

    let mut bdd = Bdd::new(netlist.inputs().len().max(1));
    let spcf = short_path_spcf(netlist, &sta, &mut bdd, target);
    let zero = bdd.zero();
    let protected: Vec<NetId> = spcf
        .outputs
        .iter()
        .filter(|o| o.spcf != zero)
        .map(|o| o.output)
        .collect();

    if protected.is_empty() {
        let design = crate::design::MaskedDesign::unprotected(netlist.clone());
        let report = MaskingReport::measure(
            &design,
            &spcf,
            &mut bdd,
            delta,
            target,
            options.slack_fraction,
            DegradationLevel::Exact,
            start.elapsed(),
        );
        return MaskingResult { design, bdd, spcf, report };
    }

    // Duplicate the union of the critical cones into a fresh netlist.
    let lib = netlist.library().clone();
    let mut masking = Netlist::new(format!("{}_dup", netlist.name()), lib.clone());
    let mut copy_of: HashMap<NetId, NetId> = HashMap::new();
    for &pi in netlist.inputs() {
        let c = masking.add_input(netlist.net_name(pi).to_string());
        copy_of.insert(pi, c);
    }
    let mut in_cone = vec![false; netlist.num_nets()];
    for &net in &protected {
        let (gates, _) = netlist.fanin_cone(net);
        for g in gates {
            in_cone[netlist.gate(g).output().index()] = true;
        }
    }
    for (_, g) in netlist.gates() {
        let out = g.output();
        if !in_cone[out.index()] {
            continue;
        }
        let inputs: Vec<NetId> = g.inputs().iter().map(|i| copy_of[i]).collect();
        let c = masking.add_gate(g.cell(), &inputs, format!("dup_{}", netlist.net_name(out)));
        copy_of.insert(out, c);
    }

    let tie1 = lib.expect("TIE1");
    let mut masked_meta = Vec::with_capacity(protected.len());
    for &net in &protected {
        let yt = copy_of[&net];
        let yt_pos = masking.outputs().len();
        masking.mark_output(yt);
        let e = masking.add_gate(tie1, &[], format!("e_{}", netlist.net_name(net)));
        let e_pos = masking.outputs().len();
        masking.mark_output(e);
        masked_meta.push((net, yt_pos, e_pos));
    }

    let design = assemble_masked_design(netlist, masking, &masked_meta);
    let report = MaskingReport::measure(
        &design,
        &spcf,
        &mut bdd,
        delta,
        target,
        options.slack_fraction,
        DegradationLevel::Exact,
        start.elapsed(),
    );
    MaskingResult { design, bdd, spcf, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::{inject_and_measure, uniform_aging};
    use crate::synth::synthesize;
    use crate::verify::verify;
    use std::sync::Arc;
    use tm_netlist::circuits::comparator2;
    use tm_netlist::library::lsi10k_like;
    use tm_sim::patterns::random_vectors;

    #[test]
    fn duplication_is_functionally_sound_but_has_no_slack() {
        let nl = comparator2(Arc::new(lsi10k_like()));
        let mut dup = duplication_masking(&nl, MaskingOptions::default());
        let v = verify(&mut dup);
        assert!(v.all_ok(), "duplication masks correctly in the functional domain");
        // But the copy is exactly as slow as the original: no slack.
        assert!(!dup.report.slack_met);
        assert!(dup.report.slack_percent < 20.0);
        // The proposed synthesis meets the budget on the same circuit.
        let proposed = synthesize(&nl, MaskingOptions::default());
        assert!(proposed.report.slack_met);
    }

    #[test]
    fn duplication_fails_under_common_mode_aging() {
        let nl = comparator2(Arc::new(lsi10k_like()));
        let dup = duplication_masking(&nl, MaskingOptions::default());
        let proposed = synthesize(&nl, MaskingOptions::default());
        let clock = Sta::new(&nl).critical_path_delay();
        let vectors = random_vectors(4, 500, 99);
        // Common-mode wearout: everything (original + masking) ages 8%.
        let dup_scale = uniform_aging(&dup.design, 1.08).expect("valid factor");
        let dup_out = inject_and_measure(&dup.design, &dup_scale, clock, &vectors)
            .expect("valid run");
        let prop_scale = uniform_aging(&proposed.design, 1.08).expect("valid factor");
        let prop_out = inject_and_measure(&proposed.design, &prop_scale, clock, &vectors)
            .expect("valid run");
        assert!(dup_out.raw_errors > 0);
        // The duplicate is as late as the original: errors escape.
        assert!(
            dup_out.masked_errors > 0,
            "duplication baseline unexpectedly masked everything: {dup_out:?}"
        );
        // The proposed masking circuit rides on its slack: nothing escapes.
        assert_eq!(prop_out.masked_errors, 0, "{prop_out:?}");
    }
}
