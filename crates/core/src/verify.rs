//! Exact (BDD-based) verification of masked designs.
//!
//! Three properties make masking sound, and all three are checked
//! exactly over the full input space:
//!
//! 1. **Coverage** — `Σ_y ⇒ e_y`: every speed-path activation pattern
//!    raises the indicator (the paper's "100 % masking of timing
//!    errors": column "100 % coverage" of Table 2).
//! 2. **Safety** — `e_y ⇒ (ỹ ≡ y)`: whenever the MUX selects the
//!    prediction, the prediction is right, so masking never corrupts a
//!    good output.
//! 3. **Transparency** — the combined netlist computes exactly the
//!    original functions (settled values are untouched by the added
//!    hardware).

use crate::synth::MaskingResult;
use tm_spcf::net_global_bdds;

/// Verification verdict for one protected output.
#[derive(Clone, Debug)]
pub struct OutputVerdict {
    /// Position of the output in the original output list.
    pub position: usize,
    /// `Σ_y ⇒ e_y` holds.
    pub spcf_covered: bool,
    /// `e_y ⇒ (ỹ ≡ y)` holds.
    pub prediction_safe: bool,
    /// Fraction of SPCF patterns with `e_y = 1` (1.0 when covered).
    pub coverage_fraction: f64,
}

/// Full verification verdict.
#[derive(Clone, Debug)]
pub struct VerificationReport {
    /// Per protected output verdicts.
    pub outputs: Vec<OutputVerdict>,
    /// The combined netlist computes the original functions.
    pub functionally_transparent: bool,
}

impl VerificationReport {
    /// Whether every check passed.
    pub fn all_ok(&self) -> bool {
        self.functionally_transparent
            && self
                .outputs
                .iter()
                .all(|o| o.spcf_covered && o.prediction_safe)
    }

    /// Masking coverage over all protected outputs (minimum of the
    /// per-output fractions; 1.0 = the paper's 100 % masking).
    pub fn coverage(&self) -> f64 {
        self.outputs
            .iter()
            .map(|o| o.coverage_fraction)
            .fold(1.0, f64::min)
    }
}

/// Verifies a synthesis result exactly.
///
/// Uses the BDD manager carried in the result (the SPCFs live there).
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use tm_masking::{synthesize, verify, MaskingOptions};
/// use tm_netlist::{circuits::comparator2, library::lsi10k_like};
///
/// let nl = comparator2(Arc::new(lsi10k_like()));
/// let mut result = synthesize(&nl, MaskingOptions::default());
/// let verdict = verify(&mut result);
/// assert!(verdict.all_ok());
/// assert_eq!(verdict.coverage(), 1.0);
/// ```
pub fn verify(result: &mut MaskingResult) -> VerificationReport {
    let _span = tm_telemetry::span!("masking.verify");
    let bdd = &mut result.bdd;
    let design = &result.design;

    let orig_globals = net_global_bdds(&design.original, bdd);
    let comb_globals = net_global_bdds(&design.combined, bdd);
    let mask_globals = if design.is_protected() {
        net_global_bdds(&design.masking, bdd)
    } else {
        Vec::new()
    };

    let mut outputs = Vec::with_capacity(design.protected.len());
    for p in &design.protected {
        let sigma = result
            .spcf
            .spcf_of(p.original)
            .expect("protected output has an SPCF");
        let e = mask_globals[p.e.index()];
        let yt = mask_globals[p.ytilde.index()];
        let y = orig_globals[p.original.index()];

        let spcf_covered = bdd.is_subset(sigma, e);
        let agree = bdd.xnor(yt, y);
        let prediction_safe = bdd.is_subset(e, agree);
        let sigma_count = bdd.sat_count(sigma);
        let covered = bdd.and(sigma, e);
        let coverage_fraction = if sigma_count > 0.0 {
            bdd.sat_count(covered) / sigma_count
        } else {
            1.0
        };
        outputs.push(OutputVerdict {
            position: p.position,
            spcf_covered,
            prediction_safe,
            coverage_fraction,
        });
    }

    let functionally_transparent = design
        .original
        .outputs()
        .iter()
        .zip(design.combined.outputs())
        .all(|(&o, &c)| orig_globals[o.index()] == comb_globals[c.index()]);

    // Transparency checks every primary output; the loop above checked
    // the protected ones.
    tm_telemetry::counter_add(
        "masking.verify.outputs_checked",
        (outputs.len() + design.original.outputs().len()) as u64,
    );
    bdd.publish_metrics();
    VerificationReport { outputs, functionally_transparent }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::MaskingOptions;
    use crate::synth::synthesize;
    use std::sync::Arc;
    use tm_netlist::circuits::{comparator2, priority_encoder, ripple_adder};
    use tm_netlist::library::lsi10k_like;

    #[test]
    fn comparator_verifies() {
        let nl = comparator2(Arc::new(lsi10k_like()));
        let mut r = synthesize(&nl, MaskingOptions::default());
        let v = verify(&mut r);
        assert!(v.all_ok(), "{v:?}");
        assert_eq!(v.coverage(), 1.0);
        assert_eq!(v.outputs.len(), 1);
    }

    #[test]
    fn arithmetic_and_control_verify() {
        let lib = Arc::new(lsi10k_like());
        for nl in [ripple_adder(lib.clone(), 3), priority_encoder(lib.clone(), 6)] {
            let mut r = synthesize(&nl, MaskingOptions::default());
            let v = verify(&mut r);
            assert!(v.all_ok(), "{}: {v:?}", nl.name());
            assert_eq!(v.coverage(), 1.0, "{}", nl.name());
        }
    }

    #[test]
    fn unprotected_design_trivially_verifies() {
        // An adder at a very loose target has no critical outputs.
        let lib = Arc::new(lsi10k_like());
        let nl = ripple_adder(lib, 2);
        let opts = MaskingOptions { target_fraction: 0.999, ..Default::default() };
        let mut r = synthesize(&nl, opts);
        let v = verify(&mut r);
        assert!(v.functionally_transparent);
        // Whatever was protected (possibly nothing) is sound.
        assert!(v.all_ok());
    }
}
